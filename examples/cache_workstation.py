"""Scenario 1: a workstation-class RISC with a lockup-free data cache.

This is the paper's first machine family (Motorola 88000-style,
Section 4.5): loads hit in 2 cycles or miss in 5/10, and the processor
does not block on outstanding loads.  We write a small numerical
program in minif, compile it under both schedulers, and measure the
improvement with the paper's full 30-run bootstrap methodology.

Run:  python examples/cache_workstation.py
"""

from repro import BalancedScheduler, TraditionalScheduler, compile_program
from repro.frontend import compile_minif
from repro.machine import CACHE_SYSTEMS, SystemRow, UNLIMITED
from repro.simulate import (
    compare_runs,
    simulate_program,
    spawn,
)

SOURCE = """
program blas_like
  array x[8192], y[8192], z[8192], d[8192]
  # daxpy-style stream with a loop-carried norm accumulator
  kernel axpy freq 500 unroll 2
    t1 = x[i] * alpha
    z[i] = t1 + y[i]
    nrm = nrm + t1 * t1
  end
  # banded smoother: neighbour stencil with a divide
  kernel smooth freq 300 unroll 2
    t1 = z[i-1] + z[i+1]
    t2 = t1 / d[i]
    y[i] = t2 - z[i]
  end
end
"""


def main() -> None:
    program = compile_minif(SOURCE)
    print(f"program {program.name}: "
          f"{int(program.total_instruction_count(weighted=False))} static "
          f"instructions in {len(program.all_blocks())} blocks\n")

    print(f"{'cache':12s}{'trad W':>8s}{'trad cyc':>12s}{'bal cyc':>10s}"
          f"{'improvement':>24s}")
    for memory in CACHE_SYSTEMS:
        for optimistic in memory.optimistic_latencies:
            traditional = compile_program(
                program, TraditionalScheduler(optimistic)
            )
            balanced = compile_program(program, BalancedScheduler())

            key = (memory.name, f"{optimistic:g}")
            trad_runs = simulate_program(
                traditional.final_blocks, UNLIMITED, memory,
                spawn("workstation", *key, "t"), runs=30,
            )
            bal_runs = simulate_program(
                balanced.final_blocks, UNLIMITED, memory,
                spawn("workstation", *key, "b"), runs=30,
            )
            improvement = compare_runs(
                trad_runs, bal_runs, spawn("workstation", *key, "boot")
            )
            print(
                f"{memory.name:12s}{optimistic:8g}"
                f"{trad_runs.mean_runtime():12,.0f}"
                f"{bal_runs.mean_runtime():10,.0f}"
                f"{str(improvement):>24s}"
            )

    print(
        "\nReading the table: improvement grows as the cache gets less"
        "\npredictable (lower hit rate, bigger miss penalty) -- the"
        "\nbalanced scheduler never saw any of these machines; it"
        "\nscheduled once, from the program's own parallelism."
    )


if __name__ == "__main__":
    main()
