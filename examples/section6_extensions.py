"""Scenario 3: the Section 6 extensions, demonstrated together.

* balanced weights for a multi-cycle asynchronous FP unit,
* pinning loads whose latency is known (second access to a cache line),
* enlarging a basic block at the IR level before scheduling,
* a superscalar issue-width sweep.

Run:  python examples/section6_extensions.py
"""

from repro import BalancedScheduler, build_dag
from repro.extensions import (
    KnownLatencyScheduler,
    MultiCycleBalancedScheduler,
    enlarge_block,
    run_width_sweep,
    second_access_same_line,
    with_fp_latency,
)
from repro.frontend import compile_minif
from repro.ir import format_block
from repro.machine import system_row
from repro.workloads import load_program

SOURCE = """
program stencil
  array u[4096], w[4096]
  kernel relax freq 50
    t1 = u[i-1] + u[i+1]
    t2 = t1 * c0
    w[i] = t2 - u[i]
  end
end
"""


def main() -> None:
    program = compile_minif(SOURCE)
    block = program.functions[0].blocks[0]

    # ------------------------------------------------------------------
    # 1. Block enlarging: unroll at the IR level, then schedule.
    # ------------------------------------------------------------------
    big = enlarge_block(block, 4)
    print(f"enlarged {block.name}: {len(block)} -> {len(big)} instructions")
    result = BalancedScheduler().schedule_block(big)
    print("first 8 scheduled instructions:")
    for inst in result.block.instructions[:8]:
        print(f"    {inst}")

    # ------------------------------------------------------------------
    # 2. Known latencies: u[i-1], u[i], u[i+1] share cache lines across
    #    unrolled copies, so repeat accesses are pinned to the hit time.
    # ------------------------------------------------------------------
    oracle = second_access_same_line(hit_latency=2, line_elements=4)
    known_scheduler = KnownLatencyScheduler(oracle)
    dag = build_dag(big)
    known = known_scheduler.known_loads(dag)
    print(
        f"\nknown-latency oracle pinned {len(known)} of "
        f"{len(dag.load_nodes())} loads to the 2-cycle hit time"
    )

    # ------------------------------------------------------------------
    # 3. Multi-cycle FP: a 4-cycle asynchronous FP unit.  FP results
    #    now receive balanced weights too.
    # ------------------------------------------------------------------
    with_fp_latency(big.instructions, 4)
    mc = MultiCycleBalancedScheduler()
    dag = build_dag(big)
    mc.assign_weights(dag)
    weighted_fp = [
        (v, dag.weights[v])
        for v in dag.nodes()
        if dag.instructions[v].is_fp and not dag.is_load(v)
    ]
    print(f"\nmulti-cycle extension weighted {len(weighted_fp)} FP operations,")
    print(f"e.g. node {weighted_fp[0][0]} gets weight {weighted_fp[0][1]}")

    # ------------------------------------------------------------------
    # 4. Trace scheduling: splice the hot path of a CFG and let the
    #    balanced weights see across block boundaries.
    # ------------------------------------------------------------------
    from repro.extensions import compare_trace_vs_blocks
    from repro.machine import UNLIMITED
    from repro.simulate import simulate_block
    from repro.workloads import hot_path_cfg

    def cycles_at(block, latency=6):
        n = sum(1 for i in block if i.is_load)
        return simulate_block(block.instructions, [latency] * n, UNLIMITED).cycles

    per_block, traced = compare_trace_vs_blocks(
        hot_path_cfg(), BalancedScheduler, cycles_at
    )
    print(
        f"\ntrace scheduling at latency 6: hot path takes {per_block:.0f}"
        f" cycles block-by-block, {traced:.0f} as one trace"
        f" ({100 * (per_block - traced) / per_block:.0f}% saved)"
    )

    # ------------------------------------------------------------------
    # 5. Software pipelining: modulo-schedule a reduction loop.
    # ------------------------------------------------------------------
    from repro.extensions import modulo_schedule

    loop = compile_minif(
        """
program swp
  array a[64], b[64]
  kernel dot freq 1
    s = s + a[i] * b[i]
  end
end
""",
        pointer_loads=False,
    ).functions[0].blocks[0]
    kernel = modulo_schedule(loop, BalancedScheduler())
    print(f"\nmodulo scheduling the dot kernel:")
    print(kernel.format())

    # ------------------------------------------------------------------
    # 6. Superscalar sweep on a real suite program.
    # ------------------------------------------------------------------
    print("\nsuperscalar sweep (MDG on N(2,5)):")
    sweep = run_width_sweep(load_program("MDG"), system_row("N(2,5)", 2))
    print(sweep.format())


if __name__ == "__main__":
    main()
