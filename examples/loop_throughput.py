"""Scenario 4: loop steady-state throughput and the recurrence bound.

How many cycles per iteration does a loop sustain once the pipeline is
full, and how close is that to the theoretical recurrence bound?  We
measure three loop shapes under both schedulers at a 6-cycle load
latency, using IR-level unrolling as the software-pipelining stand-in
(Section 6).

Run:  python examples/loop_throughput.py
"""

from repro.core import BalancedScheduler, TraditionalScheduler
from repro.frontend import compile_minif
from repro.simulate import recurrence_bound, throughput

LOOPS = {
    "stream  (no recurrence)": """
program p
  array a[64], c[64]
  kernel k freq 1
    t1 = a[i] * a[i+1]
    c[i] = t1 + t1
  end
end
""",
    "dot     (1-op recurrence)": """
program p
  array a[64], b[64]
  kernel k freq 1
    s = s + a[i] * b[i]
  end
end
""",
    "filter  (2-op recurrence)": """
program p
  array x[64]
  kernel k freq 1
    s = s * c0 + x[i]
  end
end
""",
}

LATENCY = 6


def main() -> None:
    print(
        f"steady-state cycles/iteration at load latency {LATENCY} "
        "(IR-level unrolling, factors 4/8/12)\n"
    )
    header = (
        f"  {'loop':28s}{'recurrence bound':>18s}"
        f"{'balanced':>12s}{'trad W=2':>12s}"
    )
    print(header)
    print("  " + "-" * (len(header) - 2))
    for name, source in LOOPS.items():
        body = compile_minif(source, pointer_loads=False).functions[0].blocks[0]
        bound = recurrence_bound(body, LATENCY)
        balanced = throughput(
            body, BalancedScheduler(), LATENCY, factors=(4, 8, 12)
        )
        traditional = throughput(
            body, TraditionalScheduler(2), LATENCY, factors=(4, 8, 12)
        )
        print(
            f"  {name:28s}{str(bound):>18s}"
            f"{balanced.cycles_per_iteration:12.2f}"
            f"{traditional.cycles_per_iteration:12.2f}"
        )
    print(
        "\nThe recurrence bound is what *any* scheduler could achieve;"
        "\nunrolling gives the balanced weights room to reach it even"
        "\nwhen each source iteration alone cannot hide the latency."
    )


if __name__ == "__main__":
    main()
