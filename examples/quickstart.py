"""Quickstart: build a block, weight it, schedule it, simulate it.

Run:  python examples/quickstart.py
"""

from repro import BalancedScheduler, TraditionalScheduler, build_dag
from repro.core import balanced_weights
from repro.ir import IRBuilder, format_block
from repro.machine import CacheMemory, UNLIMITED
from repro.simulate import sample_block, spawn


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build a small basic block through the IR builder.
    #    Two independent loads feed an add; a third load's result is
    #    stored after a multiply -- a little of everything.
    # ------------------------------------------------------------------
    b = IRBuilder()
    x = b.load("A", 0)
    y = b.load("A", 1)
    total = b.add(x, y)
    z = b.load("B", 0)
    b.store(b.mul(total, z), "C", 0)

    print("source block:")
    print(format_block(b.block))

    # ------------------------------------------------------------------
    # 2. Compute balanced weights (the paper's Figure 6 algorithm).
    # ------------------------------------------------------------------
    dag = build_dag(b.block)
    weights = balanced_weights(dag)
    print("\nbalanced load weights (1 + distributed parallelism):")
    for node, weight in sorted(weights.items()):
        print(f"  node {node}: {dag.instructions[node]}  ->  weight {weight}")

    # ------------------------------------------------------------------
    # 3. Schedule under both policies.
    # ------------------------------------------------------------------
    balanced = BalancedScheduler().schedule_block(b.block)
    traditional = TraditionalScheduler(2).schedule_block(b.block)
    print("\nbalanced schedule:")
    print(format_block(balanced.block))
    print("\ntraditional (W=2) schedule:")
    print(format_block(traditional.block))

    # ------------------------------------------------------------------
    # 4. Simulate both on a cache machine with uncertain latency
    #    (80% hits at 2 cycles, 20% misses at 10).
    # ------------------------------------------------------------------
    memory = CacheMemory(hit_rate=0.80, hit_latency=2, miss_latency=10)
    for name, result in (("balanced", balanced), ("traditional", traditional)):
        samples = sample_block(
            result.block, UNLIMITED, memory, spawn("quickstart", name), runs=30
        )
        print(
            f"\n{name:11s}: mean {samples.cycles.mean():5.1f} cycles over 30 runs"
            f"  (interlocks {samples.interlocks.mean():4.1f})"
        )


if __name__ == "__main__":
    main()
