"""Walk through the paper's worked examples, end to end.

Regenerates, with commentary:
  * Figure 1/2 -- the serial-loads DAG and its three schedules,
  * Figure 3  -- the interlock curves,
  * Figure 4/5 -- the parallel-loads DAG,
  * Table 1   -- the full weight-contribution matrix for Figure 7.

Run:  python examples/paper_walkthrough.py
"""

from repro.experiments import run_figure2, run_figure3, run_table1


def main() -> None:
    print("=" * 70)
    print("Balanced Scheduling (Kerns & Eggers, PLDI 1993) -- walkthrough")
    print("=" * 70)

    figure2 = run_figure2()
    print()
    print(figure2.format())
    print(
        "\nThe greedy schedule gives every padding slot to L0; the lazy"
        "\nschedule gives none to anyone; the balanced scheduler measures"
        "\nthe load level parallelism (4 independent issue slots shared by"
        "\n2 serial loads -> weight 1 + 4/2 = 3) and splits it evenly."
    )

    print()
    figure3 = run_figure3()
    print(figure3.format())
    print(
        "\nBetween latencies 2 and 4 the balanced schedule is strictly"
        "\nbetter; at the extremes nothing any scheduler does matters."
    )

    print()
    table1 = run_table1()
    print(table1.format())
    print(
        "\nReading one row: L4 can overlap with L1 (1/4: it shares L1"
        "\nwith three other serial loads), with the parallel pair L5, L6"
        "\n(1 each) and with X1..X4 (1/3 each: the longest load path"
        "\nthrough that component is 3 loads deep)."
    )


if __name__ == "__main__":
    main()
