"""Scenario 2: a Tera-style multiprocessor with a multipath network.

The paper's second machine family (Section 4.5): no cache, addresses
hashed across memory modules, latency a zero-based normal whose mean
falls as more threads share the machine.  We sweep mean and deviation,
and also compare the three processor models -- UNLIMITED, MAX-8 and
LEN-8 (the Tera-style 8-cycle lookahead limit) -- on the noisiest
configuration.

Run:  python examples/network_multiprocessor.py
"""

from repro import BalancedScheduler, TraditionalScheduler, compile_program
from repro.frontend import compile_minif
from repro.machine import LEN_8, MAX_8, NetworkMemory, UNLIMITED
from repro.simulate import compare_runs, simulate_program, spawn

SOURCE = """
program particle_push
  array px[4096], pv[4096], fld[4096], cell[4096]
  # gather the field at each particle's cell (loads in series!)
  kernel gather freq 400 unroll 2
    t1 = fld[cell[i]] * q0
    pv[i] = pv[i] + t1
    en = en + t1 * pv[i]
  end
  # advance positions
  kernel push freq 400 unroll 2
    t1 = pv[i] * dt
    px[i] = px[i] + t1
  end
end
"""


def improvement_for(program, memory, processor, tag):
    traditional = compile_program(
        program, TraditionalScheduler(memory.mean_latency)
    )
    balanced = compile_program(program, BalancedScheduler())
    trad_runs = simulate_program(
        traditional.final_blocks, processor, memory,
        spawn("network", tag, "t"), runs=30,
    )
    bal_runs = simulate_program(
        balanced.final_blocks, processor, memory,
        spawn("network", tag, "b"), runs=30,
    )
    result = compare_runs(trad_runs, bal_runs, spawn("network", tag, "boot"))
    return result, trad_runs, bal_runs


def main() -> None:
    program = compile_minif(SOURCE)

    print("sweep over network load (UNLIMITED processor):")
    print(f"  {'network':10s}{'TI%':>7s}{'BI%':>7s}{'improvement':>26s}")
    for mean in (2, 3, 5):
        for sigma in (2, 5):
            memory = NetworkMemory(mean, sigma)
            result, trad_runs, bal_runs = improvement_for(
                program, memory, UNLIMITED, memory.name
            )
            print(
                f"  {memory.name:10s}"
                f"{trad_runs.interlock_percentage():7.1f}"
                f"{bal_runs.interlock_percentage():7.1f}"
                f"{str(result):>26s}"
            )

    print("\nprocessor models on N(5,5) (the noisiest design point):")
    memory = NetworkMemory(5, 5)
    for processor in (UNLIMITED, MAX_8, LEN_8):
        result, trad_runs, bal_runs = improvement_for(
            program, memory, processor, f"{memory.name}/{processor.name}"
        )
        print(
            f"  {processor.name:10s} TI%={trad_runs.interlock_percentage():5.1f}"
            f" BI%={bal_runs.interlock_percentage():5.1f}"
            f"   {result}"
        )

    print(
        "\nHigher sigma means more uncertainty, and the balanced"
        "\nscheduler's margin widens with it; the restricted processors"
        "\n(MAX-8, LEN-8) stall more overall but preserve the ordering."
    )


if __name__ == "__main__":
    main()
