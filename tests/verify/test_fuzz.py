"""Tests for the differential fuzzing harness itself.

The generator must round-trip through the printer/parser exactly
(otherwise shrunk artifacts would not replay), clean programs must
leave no artifacts behind, and the artifact format must survive a
write/load/replay cycle.
"""

import os

import pytest

from repro.frontend import format_program_ast, parse_program
from repro.simulate.rng import spawn
from repro.verify.fuzz import (
    ARTIFACT_SCHEMA,
    Mismatch,
    check_source,
    load_artifact,
    random_ast,
    replay_artifact,
    run_fuzz,
    write_artifact,
)

DEGENERATE_SOURCES = {
    "empty": """
program empty
  array va[64]
  kernel k0 freq 1 unroll 1
  end
end
""",
    "single": """
program single
  array va[64]
  scalar s0
  kernel k0 freq 1 unroll 1
    s0 = va[i]
  end
end
""",
    "allload": """
program allload
  array va[64], vb[64]
  scalar s0
  kernel k0 freq 3 unroll 1
    s0 = va[i] + vb[i] + va[i+1] + vb[i+1] + va[i+2] + vb[i+2]
  end
end
""",
    "antifan": """
program antifan
  array va[64]
  scalar s0
  kernel k0 freq 2 unroll 1
    s0 = va[1] + va[1] + va[1] + va[1]
    va[1] = s0
  end
end
""",
}


@pytest.mark.parametrize("seed", range(25))
def test_generator_round_trips_exactly(seed):
    ast = random_ast(spawn("fuzz-gen", 0, seed))
    printed = format_program_ast(ast)
    reparsed = format_program_ast(parse_program(printed))
    assert printed == reparsed


@pytest.mark.parametrize("name", sorted(DEGENERATE_SOURCES))
def test_degenerate_shapes_are_clean(name):
    assert check_source(DEGENERATE_SOURCES[name], seed=5, runs=2) == []


def test_generator_produces_parseable_unrolled_kernels():
    """Any generated program lowers without error (smoke over shapes)."""
    from repro.frontend import compile_minif

    for seed in range(15):
        ast = random_ast(spawn("fuzz-gen", 1, seed))
        program = compile_minif(format_program_ast(ast))
        assert program.name == "fuzz"


def test_clean_run_writes_no_artifacts(tmp_path):
    out = tmp_path / "fuzz"
    report = run_fuzz(seed=3, iters=4, out_dir=str(out), runs=2)
    assert report.failures == 0
    assert report.programs_checked == 4
    assert report.artifacts == []
    assert not out.exists(), "clean runs must leave out_dir untouched"
    assert "0 mismatches" in report.format()


def test_artifact_round_trip(tmp_path):
    source = DEGENERATE_SOURCES["single"]
    mismatch = Mismatch("cycles", "synthetic", expected="1", actual="2")
    path = write_artifact(
        str(tmp_path), seed=9, iteration=3, source=source,
        shrunk=source, mismatches=[mismatch], runs=2,
    )
    assert os.path.basename(path) == "fuzz-9-00003.json"
    payload = load_artifact(path)
    assert payload["schema"] == ARTIFACT_SCHEMA
    assert payload["seed"] == 9
    assert payload["shrunk_source"] == source
    assert payload["mismatches"][0]["kind"] == "cycles"
    # The recorded program is clean, so a replay reports nothing --
    # exactly what a fixed bug's artifact looks like after the fix.
    assert replay_artifact(path) == []


def test_load_artifact_rejects_foreign_json(tmp_path):
    path = tmp_path / "not-an-artifact.json"
    path.write_text('{"schema": "something/else"}')
    with pytest.raises(ValueError, match="not a fuzz artifact"):
        load_artifact(str(path))


def test_mismatch_renders_expected_and_actual():
    text = str(Mismatch("cycles", "blocks diverge", expected="4", actual="5"))
    assert "[cycles]" in text
    assert "expected 4" in text and "got 5" in text


def test_failing_source_is_reported_and_shrunk(tmp_path):
    """End-to-end negative path: a corrupted check must produce an
    artifact.  We simulate a pipeline bug by checking a program whose
    'expected' side we tamper with via a monkeypatched policy -- the
    cheap, deterministic stand-in is checking that a *broken source*
    (here: one that fails to parse) surfaces as a crash, not silence."""
    with pytest.raises(Exception):
        check_source("program broken\n", seed=0, runs=1)
