"""Shrunk fuzz findings, pinned forever.

Every program here was found by ``balanced-sched fuzz``, minimized by
the shrinker, and fixed in the commit that added it.  Keep them cheap
and exact: each documents the failure it used to trigger.
"""

import pytest

from repro.analysis.alias import AliasModel
from repro.analysis.equivalence import assert_equivalent
from repro.core import BalancedScheduler, TraditionalScheduler
from repro.core.pipeline import compile_program
from repro.frontend import compile_minif
from repro.ir.operands import VirtualReg
from repro.regalloc import SPILL_OUT_REGION
from repro.verify import check_allocation, check_compiled
from repro.verify.fuzz import check_source

#: Found by ``fuzz --seed 1`` (iteration 0), shrunk to four statements.
#: The unroll-3 kernel scatters through ``idx`` with enough pressure
#: that the allocator spills the base pointers; reloads then carry the
#: bases in different spill-pool registers.  Both the oracle and the
#: production equivalence checker used to count store *versions* with
#: a register-identity alias test, which flips from provably-distinct
#: to conservatively-overlapping across the spill -- so a perfectly
#: legal compilation was reported as "store effects differ" (versions
#: 6/5 vs. 8/7 on the same addresses and values).  Versions are now
#: counted in value space, which renaming and spilling cannot perturb.
SPILLED_SCATTER_VERSIONS = """
program fuzz
  array vb[1024], vd[1024], idx[1024]
  scalar s2
  kernel k0 freq 39 unroll 3
    t0 = vd[idx[2*i-2]]
    vb[idx[i+1]] = 1
    vb[i] = 1
    s2 = t0 + vb[idx[i+2]]
  end
end
"""


@pytest.mark.parametrize(
    "model", list(AliasModel), ids=lambda m: m.value
)
def test_spilled_scatter_store_versions(model):
    program = compile_minif(SPILLED_SCATTER_VERSIONS)
    compiled = compile_program(program, BalancedScheduler(), alias_model=model)
    if model is AliasModel.FORTRAN:
        # The C model constrains the schedule enough that pressure
        # stays under the register file; FORTRAN is the failing shape.
        spilled = [cb for cb in compiled.blocks if cb.spill_count > 0]
        assert spilled, "regression requires the allocator to actually spill"
    for cb in compiled.blocks:
        assert check_allocation(cb.source, cb.final, model) == []
        assert_equivalent(cb.source, cb.final, model)
        assert check_compiled(cb, model) == []


def test_spilled_scatter_full_differential_check():
    """The exact check the fuzzer runs must be clean end to end."""
    assert check_source(SPILLED_SCATTER_VERSIONS, seed=1, runs=2) == []


def test_unspilled_compilation_was_always_fine():
    """Control: without spills the old version accounting agreed too
    (this is what localized the bug to spill-induced renaming)."""
    program = compile_minif(SPILLED_SCATTER_VERSIONS)
    compiled = compile_program(program, TraditionalScheduler(2))
    for cb in compiled.blocks:
        if cb.spill_count == 0:
            assert_equivalent(cb.source, cb.final)


#: Found by ``fuzz --seed 19930601`` (iteration 352; 296/317/363/476
#: shrank to the same root cause).  k1's live-out scalar ``s0`` gets
#: *spilled*: the allocator used to park its value in a private,
#: sequentially numbered slot, so the final block ended with the value
#: at an address no consumer (and no validator) could recover -- the
#: virtual placeholder left in ``live_out`` read as ``unknown``.
#: Spilled live-outs now get the same positional contract spilled
#: live-ins always had: the value lands in the ``__spill_out`` slot at
#: its live-out index, and both validators resolve the placeholder
#: from there.
SPILLED_LIVEOUT_SCALAR = """
program fuzz
  array va[1024], vb[1024], vc[1024], vd[1024], idx[1024]
  scalar s0, s1, s2
  kernel k0 freq 34
    s0 = va[i+4] + va[i+2] + vc[i+2] + va[i] + vd[i-2] + va[3*i+3]
  end
  kernel k1 freq 3 unroll 3
    vb[0] = (vb[i-2] + vc[i]) / (s1 - s1) - (vc[idx[3*i+3]] + vd[i-1]) * (vb[3*i-2] * vd[2*i-2])
    s0 = s0 - va[i-1]
    vb[3*i] = 8
    vc[i-1] = vd[idx[2*i+3]] / vc[0]
    va[i+4] = vc[i+3] - s0
    s0 = s1 + s1
  end
end
"""


def test_spilled_liveout_keeps_positional_out_slot():
    """The failing shape: traditional W=5 under FORTRAN spills k1's
    live-out.  The placeholder must survive in ``live_out`` with a
    matching store into the out slot at its live-out position, and
    every validator must resolve it."""
    program = compile_minif(SPILLED_LIVEOUT_SCALAR)
    compiled = compile_program(
        program, TraditionalScheduler(5), alias_model=AliasModel.FORTRAN
    )
    placeholder_seen = False
    for cb in compiled.blocks:
        for position, reg in enumerate(cb.final.live_out):
            if not isinstance(reg, VirtualReg):
                continue
            placeholder_seen = True
            out_slots = [
                inst.mem.offset
                for inst in cb.final.instructions
                if inst.is_store
                and inst.mem is not None
                and inst.mem.region == SPILL_OUT_REGION
            ]
            assert position in out_slots, (
                "spilled live-out has no store into its positional out slot"
            )
        assert check_allocation(cb.source, cb.final, AliasModel.FORTRAN) == []
        assert_equivalent(cb.source, cb.final, AliasModel.FORTRAN)
        assert check_compiled(cb, AliasModel.FORTRAN) == []
    assert placeholder_seen, "regression requires a spilled live-out"


def test_spilled_liveout_full_differential_check():
    """The exact check the fuzzer runs must be clean end to end."""
    assert check_source(SPILLED_LIVEOUT_SCALAR, seed=1, runs=2) == []


#: Found by ``fuzz --seed 424242`` (iteration 6); the artifact is
#: pinned at ``results/fuzz/fuzz-424242-00006.json``.  ``s0 = s2``
#: makes both live-out scalars the *same* virtual register, so
#: ``live_out`` lists it twice -- and the register gets spilled.  The
#: rewriter kept one position per register (a last-wins dict), emitted
#: a single ``__spill_out`` store at position 1, and left position 0's
#: slot empty; the oracle, resolving live-outs by position, read
#: ``unknown`` at position 0.  Spilled definitions now store into the
#: slot at *every* live-in/live-out position the register occupies.
DUPLICATED_LIVEOUT_POSITIONS = """
program fuzz
  array va[1024], vd[1024]
  scalar s0, s2
  kernel k0 freq 26 unroll 3
    va[i] = va[i] + (va[i] + s0)
    s2 = vd[i] + vd[i]
    s0 = s2
  end
end
"""


def test_duplicated_liveout_positions_all_get_out_slots():
    """The failing shape: balanced under FORTRAN spills a register that
    occupies two live-out positions.  Every position must have a store
    into its out slot, and every validator must resolve both."""
    program = compile_minif(DUPLICATED_LIVEOUT_POSITIONS)
    compiled = compile_program(
        program, BalancedScheduler(), alias_model=AliasModel.FORTRAN
    )
    duplicate_seen = False
    for cb in compiled.blocks:
        positions = {}
        for position, reg in enumerate(cb.final.live_out):
            positions.setdefault(reg, []).append(position)
        out_slots = {
            inst.mem.offset
            for inst in cb.final.instructions
            if inst.is_store
            and inst.mem is not None
            and inst.mem.region == SPILL_OUT_REGION
        }
        for reg, occupied in positions.items():
            if not isinstance(reg, VirtualReg) or len(occupied) < 2:
                continue
            duplicate_seen = True
            for position in occupied:
                assert position in out_slots, (
                    f"duplicated spilled live-out lacks a store into "
                    f"out slot {position}"
                )
        assert check_allocation(cb.source, cb.final, AliasModel.FORTRAN) == []
        assert_equivalent(cb.source, cb.final, AliasModel.FORTRAN)
        assert check_compiled(cb, AliasModel.FORTRAN) == []
    assert duplicate_seen, "regression requires a spilled duplicated live-out"


def test_duplicated_liveout_full_differential_check():
    """The exact check the fuzzer runs must be clean end to end."""
    assert check_source(DUPLICATED_LIVEOUT_POSITIONS, seed=424242, runs=3) == []
