"""The legality oracle against the exact-scheduler code path.

Until this backend existed, every schedule the oracle ever checked
came from the shared list scheduler -- a single code path, so a bug
common to scheduler and oracle could hide.  The branch-and-bound
search constructs orders by a completely different mechanism; these
tests drive the full two-pass pipeline (schedule, allocate with
spilling, re-schedule) through it and require oracle-clean artefacts,
including machine admissibility with per-slot occupancy and the
regalloc soundness check, on both the certified and the
budget-expired best-effort paths.  A tampering test pins that the
oracle still has teeth on this path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.alias import AliasModel
from repro.core import OptimalScheduler, compile_block, compile_program
from repro.core.optimal import OptimalScheduleResult
from repro.machine.processor import UNLIMITED
from repro.regalloc.target import TIGHT_REGISTER_FILE
from repro.verify.oracle import (
    LegalityError,
    assert_legal,
    check_compiled,
    check_machine,
    check_schedule,
)
from repro.workloads import random_block
from repro.workloads.perfect import load_program

MODELS = (2, 5)


class TestPipelineLegality:
    @pytest.mark.parametrize("alias_model", [
        AliasModel.FORTRAN, AliasModel.C_CONSERVATIVE,
    ])
    @pytest.mark.parametrize("latency", MODELS)
    def test_suite_program_compiles_oracle_clean(self, alias_model, latency):
        program = load_program("MDG")
        compiled = compile_program(
            program,
            OptimalScheduler(latency),
            alias_model=alias_model,
        )
        for artefact in compiled.blocks:
            assert check_compiled(
                artefact, alias_model, processors=(UNLIMITED,)
            ) == []

    def test_spill_heavy_compile_is_regalloc_sound(self):
        """A tight register file forces spill code; both passes and the
        allocation itself must survive the oracle."""
        program = load_program("QCD2")
        compiled = compile_program(
            program,
            OptimalScheduler(5),
            register_file=TIGHT_REGISTER_FILE,
        )
        spilled = 0
        for artefact in compiled.blocks:
            assert_legal(artefact, processors=(UNLIMITED,))
            if artefact.allocation is not None:
                spilled += artefact.allocation.spill_instruction_count
        assert spilled > 0, "expected spill traffic under TIGHT registers"

    def test_second_pass_result_is_the_exact_backend(self):
        program = load_program("TRACK")
        compiled = compile_program(program, OptimalScheduler(5))
        for artefact in compiled.blocks:
            assert isinstance(artefact.pass1, OptimalScheduleResult)
            if artefact.pass2 is not None:
                assert isinstance(artefact.pass2, OptimalScheduleResult)
                assert artefact.pass2.certified


class TestBestEffortPath:
    def test_budget_expired_compile_stays_legal(self):
        """node_budget=1 aborts every non-trivial search immediately;
        the emitted best-effort schedules are the (legal) seeds and
        must pass every oracle check all the same."""
        program = load_program("BDNA")
        policy = OptimalScheduler(5, node_budget=1)
        compiled = compile_program(program, policy)
        best_effort = 0
        for artefact in compiled.blocks:
            assert_legal(artefact, processors=(UNLIMITED,))
            if not artefact.pass1.certified:
                best_effort += 1
                assert artefact.pass1.lower_bound <= artefact.pass1.cost
        assert best_effort > 0, "budget=1 should leave searches open"

    def test_machine_occupancy_from_optimal_slots(self):
        """The result's issue-time slots are single-occupancy on the
        width-1 machine (the search never double-books a cycle)."""
        rng = np.random.default_rng(1404)
        for _ in range(5):
            block = random_block(rng, n_instructions=18)
            artefact = compile_block(block, OptimalScheduler(5))
            final = (
                artefact.pass2 if artefact.pass2 is not None
                else artefact.pass1
            )
            assert check_machine(
                artefact.final,
                UNLIMITED,
                slots=final.slots,
                order=final.order,
            ) == []


class TestOracleTeeth:
    def test_tampered_optimal_schedule_is_rejected(self):
        """Swap two truly-dependent instructions in an optimal schedule
        and the oracle must object -- proving the clean results above
        are a real check, not vacuous."""
        program = load_program("TRACK")
        caught = 0
        for block in program.all_blocks():
            result = OptimalScheduler(5).schedule_block(block)
            assert check_schedule(block, result.block) == []
            instructions = list(result.block.instructions)
            for i in range(len(instructions) - 1):
                swapped = list(instructions)
                swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
                if check_schedule(block, result.block.replaced(swapped)):
                    caught += 1
                    break
        assert caught > 0

    def test_assert_legal_raises_on_a_forged_artefact(self):
        program = load_program("TRACK")
        block = program.all_blocks()[0]
        artefact = compile_block(block, OptimalScheduler(5))
        forged_final = artefact.final.replaced(
            list(reversed(artefact.final.instructions))
        )

        class Forged:
            source = artefact.source
            pass1 = artefact.pass1
            allocation = artefact.allocation
            pass2 = None
            final = forged_final

        # A reversed block breaks pass-1 permutation/dependence checks
        # only if pass2 is presented as the final; forge pass1 instead.
        forged = Forged()
        forged.pass1 = type(artefact.pass1)(
            order=list(reversed(artefact.pass1.order)),
            block=forged_final,
            noop_span=artefact.pass1.noop_span,
            priorities=artefact.pass1.priorities,
        )
        with pytest.raises(LegalityError):
            assert_legal(forged)
