"""Shrinker self-tests against synthetic oracles.

A predicate that keys on a source-level marker lets us verify the
greedy loop converges to the minimal reproducer (one kernel, one
statement) without paying for real compilation, and that every
intermediate candidate passes through the real parser -- so whatever
the shrinker returns is a valid minif program.
"""

import pytest

from repro.frontend import compile_minif, parse_program
from repro.verify.shrink import (
    MAX_PREDICATE_CALLS,
    shrink_ast,
    shrink_source,
)

BIG = """
program big
  array va[1024], vb[1024], vc[1024]
  scalar s0, s1
  kernel k0 freq 10 unroll 2
    t0 = vb[i] * vc[i]
    s1 = s1 + t0
  end
  kernel k1 freq 7 unroll 3
    t0 = va[i] + vb[i+1]
    vc[i] = t0 * vb[i]
    s0 = s0 + vc[i+2]
  end
  kernel k2 freq 2 unroll 1
    vb[i] = vc[i] + vb[i]
  end
end
"""


def _statements(source: str):
    ast = parse_program(source)
    return [s for kernel in ast.kernels for s in kernel.body]


def test_converges_to_single_marker_statement():
    """The marker ('va' appears) lives in one statement of one kernel;
    the shrinker must strip everything else."""
    shrunk = shrink_source(BIG, lambda src: "va[i]" in src)
    ast = parse_program(shrunk)
    assert len(ast.kernels) == 1
    assert len(ast.kernels[0].body) == 1
    assert "va[i]" in shrunk
    # Neutralized knobs: nothing kept the unroll factor alive.
    assert ast.kernels[0].unroll == 1


def test_shrunk_program_still_fails_predicate():
    predicate = lambda src: "vc[i]" in src  # noqa: E731
    shrunk = shrink_source(BIG, predicate)
    assert predicate(shrunk)


def test_shrunk_program_round_trips_through_frontend():
    shrunk = shrink_source(BIG, lambda src: "va[i]" in src)
    program = compile_minif(shrunk)  # must lower cleanly
    assert program.name == "big"


def test_unused_declarations_are_pruned():
    shrunk = shrink_source(BIG, lambda src: "va[i]" in src)
    ast = parse_program(shrunk)
    assert "vc" not in ast.arrays or "vc[" in shrunk
    assert all(s in shrunk for s in ast.scalars)


def test_predicate_call_cap_is_respected():
    calls = []

    def predicate(src):
        calls.append(src)
        return "va[i]" in src

    shrink_source(BIG, predicate, max_calls=5)
    assert len(calls) <= 5


def test_crashing_predicate_counts_as_failing():
    """A candidate that crashes the checker still reproduces a bug."""

    def predicate(src):
        if "va[i]" not in src:
            raise RuntimeError("checker blew up")
        return True

    shrunk = shrink_source(BIG, predicate)
    # Everything 'fails', so the shrinker reduces to the global
    # minimum its reductions can reach: one kernel, one statement.
    ast = parse_program(shrunk)
    assert len(ast.kernels) == 1
    assert len(ast.kernels[0].body) <= 1


def test_unsatisfiable_predicate_returns_input_unchanged():
    ast = parse_program(BIG)
    result = shrink_ast(ast, lambda src: False)
    assert result is ast


def test_default_cap_is_sane():
    assert 50 <= MAX_PREDICATE_CALLS <= 10000
