"""Mutation tests for the delay-tracking issue-admissibility check.

The oracle restates the adaptive front end's contract from the IR data
model alone; its teeth are tampered traces: every corruption an
unsound issue engine could plausibly produce (an instruction issued
before its operand's data returns, a reordered hardware-constrained
pair, an over-packed issue group, a dropped or duplicated issue) must
raise at least one violation, while every genuine engine trace -- at
any table size, width and memory family -- must be clean.
"""

import pytest

from repro.ir.operands import MemRef, RegClass, VirtualReg
from repro.ir.instructions import Instruction, Opcode, alu, load, nop, store
from repro.machine import (
    BLOCKING,
    LEN_8,
    MAX_8,
    UNLIMITED,
    delay_tracking,
    superscalar,
)
from repro.simulate.rng import spawn
from repro.simulate.simulator import delaytrack_issue_trace, simulate_block
from repro.verify import check_delaytrack_issue, hardware_ordered_pairs
from repro.workloads.generator import random_block

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)


def _reg(k):
    return VirtualReg(k, RegClass.FP)


def _chain_block():
    """load -> consumer, load -> consumer: the canonical reorder bait."""
    r0, r1, r2, r3 = (_reg(k) for k in range(4))
    return [
        load(r0, A, tag="x"),
        alu(Opcode.FADD, r1, (r0, r0)),
        load(r2, A.displaced(1), tag="y"),
        alu(Opcode.FADD, r3, (r2, r2)),
    ]


def _trace(instructions, latencies, processor):
    return delaytrack_issue_trace(instructions, latencies, processor)


# ----------------------------------------------------------------------
# Genuine traces are clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize("table", [0, 1, 2, 8, 10**6])
@pytest.mark.parametrize(
    "base",
    [UNLIMITED, MAX_8, LEN_8, BLOCKING, superscalar(2), superscalar(4, MAX_8)],
    ids=lambda p: p.name,
)
def test_engine_traces_are_admissible(table, base):
    processor = delay_tracking(table, base)
    for seed in range(6):
        rng = spawn("dt-oracle", table, base.name, seed)
        block = random_block(rng, n_instructions=int(rng.integers(4, 30)))
        n_loads = sum(1 for i in block.instructions if i.is_load)
        latencies = [int(x) for x in rng.integers(1, 40, size=n_loads)]
        trace = _trace(block.instructions, latencies, processor)
        assert check_delaytrack_issue(
            block.instructions, latencies, processor, trace
        ) == []


def test_trace_agrees_with_simulation_accounting():
    """The trace's last issue cycle is consistent with the reported
    cycle count (every issue happens strictly inside the block)."""
    processor = delay_tracking(8)
    block = _chain_block()
    latencies = [10, 2]
    trace = _trace(block, latencies, processor)
    result = simulate_block(block, latencies, processor)
    assert max(cycle for _, cycle in trace) < result.cycles
    assert len(trace) == result.instructions


def test_nops_are_invisible_to_the_trace():
    block = _chain_block()
    padded = [block[0], nop(), block[1], nop(), block[2], block[3]]
    processor = delay_tracking(8)
    trace = _trace(padded, [10, 2], processor)
    assert sorted(pos for pos, _ in trace) == [0, 2, 4, 5]
    assert check_delaytrack_issue(padded, [10, 2], processor, trace) == []


# ----------------------------------------------------------------------
# Tampered traces must be rejected
# ----------------------------------------------------------------------
def _violation_rules(violations):
    return {v.rule for v in violations}


def test_rejects_issue_before_data_returns():
    processor = delay_tracking(8)
    block = _chain_block()
    latencies = [10, 2]
    trace = _trace(block, latencies, processor)
    early = [
        (pos, cycle if pos != 1 else 1) for pos, cycle in trace
    ]
    early.sort(key=lambda entry: entry[1])
    violations = check_delaytrack_issue(block, latencies, processor, early)
    assert "dependence" in _violation_rules(violations)


def test_rejects_reordered_hardware_pair():
    """A store and a later load of the same cell must never swap: the
    hardware has no alias knowledge."""
    r0, r1 = _reg(0), _reg(1)
    block = [
        store(r0, A),
        load(r1, A, tag="reload"),
    ]
    processor = delay_tracking(8)
    latencies = [1]
    trace = _trace(block, latencies, processor)
    assert [pos for pos, _ in trace] == [0, 1]
    swapped = [(trace[1][0], trace[0][1]), (trace[0][0], trace[1][1])]
    violations = check_delaytrack_issue(block, latencies, processor, swapped)
    assert "dependence" in _violation_rules(violations)


def test_rejects_overpacked_issue_group():
    processor = delay_tracking(8, superscalar(2))
    r = [_reg(k) for k in range(6)]
    block = [alu(Opcode.FADD, r[k + 3], (r[k], r[k])) for k in range(3)]
    trace = [(0, 0), (1, 0), (2, 0)]  # three issues, two slots
    violations = check_delaytrack_issue(block, [], processor, trace)
    assert any("2-wide" in v.detail for v in violations)


def test_rejects_width_one_dual_issue():
    processor = delay_tracking(8)
    r0, r1, r2, r3 = (_reg(k) for k in range(4))
    block = [alu(Opcode.FADD, r2, (r0, r0)), alu(Opcode.FADD, r3, (r1, r1))]
    violations = check_delaytrack_issue(
        block, [], processor, [(0, 0), (1, 0)]
    )
    assert any("1-wide" in v.detail for v in violations)


def test_rejects_dropped_and_duplicated_issues():
    processor = delay_tracking(8)
    block = _chain_block()
    latencies = [4, 4]
    trace = _trace(block, latencies, processor)
    dropped = trace[:-1]
    assert check_delaytrack_issue(block, latencies, processor, dropped)
    duplicated = trace + [trace[0]]
    assert check_delaytrack_issue(block, latencies, processor, duplicated)


def test_rejects_regressing_cycles_and_negative_cycles():
    processor = delay_tracking(8)
    r0, r1, r2, r3 = (_reg(k) for k in range(4))
    block = [alu(Opcode.FADD, r2, (r0, r0)), alu(Opcode.FADD, r3, (r1, r1))]
    regressed = [(0, 5), (1, 0)]
    violations = check_delaytrack_issue(block, [], processor, regressed)
    assert any("regress" in v.detail for v in violations)
    negative = [(0, -1), (1, 0)]
    violations = check_delaytrack_issue(block, [], processor, negative)
    assert any("negative" in v.detail for v in violations)


def test_rejects_latency_underrun():
    processor = delay_tracking(8)
    block = _chain_block()
    violations = check_delaytrack_issue(
        block, [3], processor, [(0, 0), (1, 3), (2, 4), (3, 7)]
    )
    assert any("2 loads but only 1" in v.detail for v in violations)


# ----------------------------------------------------------------------
# The restated pair relation
# ----------------------------------------------------------------------
def test_hardware_pairs_are_alias_blind():
    """Distinct cells in distinct regions still order when a store is
    involved: the issue hardware cannot prove independence."""
    B = MemRef(region="B", base=None, offset=7, affine_coeff=0)
    r0, r1 = _reg(0), _reg(1)
    block = [store(r0, A), load(r1, B, tag="other")]
    assert (0, 1) in hardware_ordered_pairs(block)


def test_hardware_pairs_keep_terminator_last():
    r0, r1 = _reg(0), _reg(1)
    branch = Instruction(opcode=Opcode.BRANCH, defs=(), uses=())
    block = [alu(Opcode.FADD, r1, (r0, r0)), branch]
    assert (0, 1) in hardware_ordered_pairs(block)


def test_independent_alu_pair_is_unordered():
    r = [_reg(k) for k in range(4)]
    block = [alu(Opcode.FADD, r[2], (r[0], r[0])), alu(Opcode.FADD, r[3], (r[1], r[1]))]
    assert hardware_ordered_pairs(block) == []
