"""Property tests: the oracle vs. the real pipeline at scale.

Two halves.  First, volume: 200 seeded random programs through the
full compile pipeline must produce zero violations under every
processor-model family and both alias models -- the oracle may not
cry wolf.  Second, teeth at scale: systematically corrupted versions
of real schedules must always be rejected.  A final section
cross-checks the oracle's independently restated analyses against the
production ones (alias predicate, dependence order, spill-region
naming), which is what licenses calling the oracle "independent"
rather than "divergent".
"""

import numpy as np
import pytest

from repro.analysis import build_dag, may_alias, ordered_pairs
from repro.analysis.alias import AliasModel
from repro.analysis.equivalence import block_effect
from repro.core import BalancedScheduler, TraditionalScheduler, compile_block
from repro.ir.operands import MemRef, RegClass, VirtualReg
from repro.regalloc import SPILL_HOME_REGION, SPILL_OUT_REGION
from repro.simulate.rng import spawn
from repro.verify import check_compiled, check_schedule, constrained_pairs
from repro.verify import oracle
from repro.verify.fuzz import FUZZ_PROCESSORS
from repro.workloads import random_block

N_PROGRAMS = 200
POLICIES = (
    lambda: BalancedScheduler(),
    lambda: TraditionalScheduler(2),
)


def _case(seed: int):
    rng = spawn("verify-properties", seed)
    block = random_block(rng, n_instructions=int(rng.integers(4, 26)))
    model = (
        AliasModel.FORTRAN if seed % 2 == 0 else AliasModel.C_CONSERVATIVE
    )
    policy = POLICIES[seed % len(POLICIES)]()
    return block, policy, model


@pytest.mark.parametrize("chunk", range(10))
def test_real_pipeline_never_violates(chunk):
    """200 random programs, zero violations across every model family."""
    span = N_PROGRAMS // 10
    for seed in range(chunk * span, (chunk + 1) * span):
        block, policy, model = _case(seed)
        compiled = compile_block(block, policy, alias_model=model)
        violations = check_compiled(
            compiled, model, processors=FUZZ_PROCESSORS
        )
        assert violations == [], (
            f"seed {seed} ({policy.name}, {model.value}): {violations[:3]}"
        )


@pytest.mark.parametrize("seed", range(0, 40, 2))
def test_corrupted_schedules_always_rejected(seed):
    """Swap/drop/duplicate applied to a *real* schedule must be caught."""
    block, policy, model = _case(seed)
    compiled = compile_block(block, policy, register_file=None,
                             alias_model=model)
    source, scheduled = compiled.source, compiled.pass1.block

    # Drop the last instruction.
    dropped = scheduled.replaced(scheduled.instructions[:-1])
    assert any(
        v.rule == "completeness"
        for v in check_schedule(source, dropped, model)
    )

    # Duplicate the first instruction.
    duplicated = scheduled.replaced(
        scheduled.instructions + [scheduled.instructions[0]]
    )
    assert any(
        v.rule == "completeness"
        for v in check_schedule(source, duplicated, model)
    )

    # Swap the first constrained pair (skip blocks with none).
    pairs = constrained_pairs(source.instructions, model)
    if not pairs:
        return
    i, j = pairs[0]
    position = {
        inst.ident: k for k, inst in enumerate(scheduled.instructions)
    }
    pi = position[source.instructions[i].ident]
    pj = position[source.instructions[j].ident]
    instructions = list(scheduled.instructions)
    instructions[pi], instructions[pj] = instructions[pj], instructions[pi]
    assert any(
        v.rule == "dependence"
        for v in check_schedule(
            source, scheduled.replaced(instructions), model
        )
    )


# ----------------------------------------------------------------------
# Cross-checks: restated analyses vs. production analyses
# ----------------------------------------------------------------------
def _transitive_closure(pairs, n):
    succ = {i: set() for i in range(n)}
    for i, j in pairs:
        succ[i].add(j)
    reached = {}

    def reach(i):
        if i not in reached:
            acc = set()
            reached[i] = acc
            for j in succ[i]:
                acc.add(j)
                acc.update(reach(j))
        return reached[i]

    return {(i, j) for i in range(n) for j in reach(i)}


@pytest.mark.parametrize("model", list(AliasModel), ids=lambda m: m.value)
def test_constrained_pairs_generate_the_dag_order(model):
    """closure(oracle pairs) == closure(DAG edges), on random blocks.

    The oracle's direct-conflict relation lists fewer pairs than the
    DAG's transitive order (chained constraints are implied, not
    listed), but both must generate the *same* total-order constraint.
    """
    for seed in range(30):
        rng = np.random.default_rng(seed)
        block = random_block(rng, n_instructions=16)
        n = len(block.instructions)
        direct = constrained_pairs(block.instructions, model)
        want = ordered_pairs(build_dag(block, alias_model=model))
        got = _transitive_closure(direct, n)
        assert set(direct) <= want, f"seed {seed}: oracle over-constrains"
        assert got == want, f"seed {seed}: orders diverge"


def test_oracle_alias_agrees_with_production_alias():
    rng = np.random.default_rng(7)
    regs = [VirtualReg(i, RegClass.INT) for i in range(3)]
    regions = ["va", "vb", "__spill0", "__spill_home"]
    for _ in range(2000):
        def ref():
            return MemRef(
                region=regions[rng.integers(0, len(regions))],
                base=regs[rng.integers(0, len(regs))],
                offset=int(rng.integers(-2, 3)),
                affine_coeff=[None, 1, 2][rng.integers(0, 3)],
            )
        a, b = ref(), ref()
        for model in AliasModel:
            assert oracle.oracle_may_alias(a, b, model) == may_alias(
                a, b, model
            ), (a, b, model)


def test_oracle_spill_naming_matches_allocator():
    assert oracle.SPILL_HOME_REGION == SPILL_HOME_REGION
    assert oracle.SPILL_OUT_REGION == SPILL_OUT_REGION
    assert SPILL_HOME_REGION.startswith(oracle.SPILL_PREFIX)
    assert SPILL_OUT_REGION.startswith(oracle.SPILL_PREFIX)


@pytest.mark.parametrize("seed", range(0, 30, 3))
def test_oracle_effect_agrees_with_equivalence_checker(seed):
    """The oracle's private symbolic executor and the production
    translation validator must summarize a block identically."""
    block, policy, model = _case(seed)
    compiled = compile_block(block, policy, alias_model=model)
    for candidate in (compiled.source, compiled.final):
        stores, live_out = oracle._block_effect(candidate, model)
        reference = block_effect(candidate, model)
        assert stores == reference.store_multiset()
        assert live_out == reference.live_out
