"""Unit and mutation tests for the schedule-legality oracle.

The mutation tests are the oracle's teeth: every corruption a buggy
scheduler or allocator could plausibly emit (swapped dependent pair,
dropped/duplicated/rewritten instruction, clobbered live value,
misplaced terminator) must produce at least one violation, and the
real pipeline's output must produce none.
"""

import dataclasses

import pytest

from repro.analysis.alias import AliasModel
from repro.core import BalancedScheduler, compile_block
from repro.frontend import compile_minif
from repro.ir.instructions import Instruction, Opcode
from repro.ir.operands import MemRef, RegClass, VirtualReg
from repro.machine import LEN_8, MAX_8, UNLIMITED, superscalar
from repro.verify import (
    LegalityError,
    Violation,
    assert_legal,
    check_allocation,
    check_compiled,
    check_machine,
    check_permutation,
    check_schedule,
    constrained_pairs,
    oracle_may_alias,
)

TINY = """
program tiny
  array va[1024], vb[1024]
  scalar s0
  kernel k0 freq 10 unroll 1
    t0 = va[i] + vb[i]
    vb[i] = t0 * va[i+1]
    s0 = s0 + t0
  end
end
"""


def _tiny_block():
    program = compile_minif(TINY)
    (block,) = [b for f in program for b in f]
    return block


def _compile_tiny(**kwargs):
    return compile_block(_tiny_block(), BalancedScheduler(), **kwargs)


# ----------------------------------------------------------------------
# Alias rules
# ----------------------------------------------------------------------
def _ref(region="va", base=None, offset=0, coeff=1):
    return MemRef(region=region, base=base, offset=offset, affine_coeff=coeff)


class TestOracleMayAlias:
    def test_same_base_same_coeff_offsets_decide(self):
        base = VirtualReg(0, RegClass.INT)
        assert oracle_may_alias(_ref(base=base), _ref(base=base))
        assert not oracle_may_alias(_ref(base=base), _ref(base=base, offset=1))

    def test_unknown_coeff_is_conservative(self):
        base = VirtualReg(0, RegClass.INT)
        a = _ref(base=base, coeff=None)
        b = _ref(base=base, offset=1, coeff=None)
        assert oracle_may_alias(a, b)

    def test_different_bases_same_region_conservative(self):
        a = _ref(base=VirtualReg(0, RegClass.INT))
        b = _ref(base=VirtualReg(1, RegClass.INT), offset=5)
        assert oracle_may_alias(a, b)

    def test_spill_regions_never_alias_user_memory(self):
        spill = _ref(region="__spill0")
        home = _ref(region="__spill_home")
        user = _ref(region="va")
        for model in ("fortran", "c"):
            assert not oracle_may_alias(spill, user, model)
            assert not oracle_may_alias(home, user, model)

    def test_cross_region_depends_on_model(self):
        a, b = _ref(region="va"), _ref(region="vb")
        assert not oracle_may_alias(a, b, "fortran")
        assert oracle_may_alias(a, b, "c")
        assert not oracle_may_alias(a, b, AliasModel.FORTRAN)
        assert oracle_may_alias(a, b, AliasModel.C_CONSERVATIVE)


# ----------------------------------------------------------------------
# Completeness (permutation) mutations
# ----------------------------------------------------------------------
class TestPermutation:
    def test_real_schedule_is_a_permutation(self):
        compiled = _compile_tiny(register_file=None)
        assert check_permutation(compiled.source, compiled.pass1.block) == []

    def test_dropped_instruction_detected(self):
        compiled = _compile_tiny(register_file=None)
        scheduled = compiled.pass1.block
        corrupted = scheduled.replaced(scheduled.instructions[:-1])
        violations = check_permutation(compiled.source, corrupted)
        assert any("dropped" in v.detail for v in violations)

    def test_duplicated_instruction_detected(self):
        compiled = _compile_tiny(register_file=None)
        scheduled = compiled.pass1.block
        corrupted = scheduled.replaced(
            scheduled.instructions + [scheduled.instructions[0]]
        )
        violations = check_permutation(compiled.source, corrupted)
        assert any("duplicated" in v.detail for v in violations)

    def test_invented_instruction_detected(self):
        compiled = _compile_tiny(register_file=None)
        scheduled = compiled.pass1.block
        invented = Instruction(
            Opcode.FADD,
            defs=(VirtualReg(999, RegClass.FP),),
            uses=(VirtualReg(999, RegClass.FP), VirtualReg(999, RegClass.FP)),
        )
        corrupted = scheduled.replaced(scheduled.instructions + [invented])
        violations = check_permutation(compiled.source, corrupted)
        assert any("invented" in v.detail for v in violations)

    def test_inplace_rewrite_detected(self):
        compiled = _compile_tiny(register_file=None)
        scheduled = compiled.pass1.block
        instructions = list(scheduled.instructions)
        victim = instructions[0]
        # Same ident, different latency: a silent in-place edit.
        instructions[0] = dataclasses.replace(victim, latency=victim.latency + 7)
        violations = check_permutation(
            compiled.source, scheduled.replaced(instructions)
        )
        assert any("rewritten" in v.detail for v in violations)


# ----------------------------------------------------------------------
# Dependence-preservation mutations
# ----------------------------------------------------------------------
class TestSchedule:
    def test_real_schedule_is_legal(self):
        compiled = _compile_tiny(register_file=None)
        assert check_schedule(compiled.source, compiled.pass1.block) == []

    def test_swapped_dependent_pair_detected(self):
        compiled = _compile_tiny(register_file=None)
        source = compiled.source
        scheduled = compiled.pass1.block
        pairs = constrained_pairs(source.instructions)
        assert pairs, "tiny program must have at least one dependence"
        i, j = pairs[0]
        position = {inst.ident: k for k, inst in enumerate(scheduled.instructions)}
        pi = position[source.instructions[i].ident]
        pj = position[source.instructions[j].ident]
        instructions = list(scheduled.instructions)
        instructions[pi], instructions[pj] = instructions[pj], instructions[pi]
        violations = check_schedule(source, scheduled.replaced(instructions))
        assert any(v.rule == "dependence" for v in violations)

    def test_fully_reversed_schedule_detected(self):
        compiled = _compile_tiny(register_file=None)
        reversed_block = compiled.pass1.block.replaced(
            list(reversed(compiled.pass1.block.instructions))
        )
        violations = check_schedule(compiled.source, reversed_block)
        assert any(v.rule == "dependence" for v in violations)


# ----------------------------------------------------------------------
# Register-allocation mutations
# ----------------------------------------------------------------------
class TestAllocation:
    def test_real_allocation_is_sound(self):
        compiled = _compile_tiny()
        assert check_allocation(compiled.source, compiled.final) == []

    def test_clobbered_store_value_detected(self):
        """Rerouting the register a store reads changes an observable."""
        compiled = _compile_tiny()
        final = compiled.final
        instructions = list(final.instructions)
        store_pos = next(
            k for k, inst in enumerate(instructions)
            if inst.is_store and not inst.mem.region.startswith("__spill")
        )
        store = instructions[store_pos]
        replacement = next(
            reg
            for inst in instructions[:store_pos]
            for reg in inst.defs
            if reg.rclass == store.uses[0].rclass and reg != store.uses[0]
        )
        instructions[store_pos] = dataclasses.replace(
            store, uses=(replacement,) + store.uses[1:]
        )
        violations = check_allocation(
            compiled.source, final.replaced(instructions)
        )
        assert any(v.rule == "regalloc" for v in violations)

    def test_undefined_register_read_detected(self):
        compiled = _compile_tiny()
        final = compiled.final
        instructions = list(final.instructions)
        store_pos = next(
            k for k, inst in enumerate(instructions) if inst.is_store
        )
        store = instructions[store_pos]
        ghost = VirtualReg(4321, store.uses[0].rclass)
        instructions[store_pos] = dataclasses.replace(store, uses=(ghost,))
        violations = check_allocation(
            compiled.source, final.replaced(instructions)
        )
        assert any("neither live-in nor previously assigned" in v.detail
                   for v in violations)

    def test_dropped_store_detected(self):
        compiled = _compile_tiny()
        final = compiled.final
        instructions = [
            inst for inst in final.instructions
            if not (inst.is_store and not inst.mem.region.startswith("__spill"))
        ]
        violations = check_allocation(
            compiled.source, final.replaced(instructions)
        )
        assert any("store effects differ" in v.detail for v in violations)


# ----------------------------------------------------------------------
# Machine admissibility
# ----------------------------------------------------------------------
class TestMachine:
    @pytest.mark.parametrize(
        "processor",
        [UNLIMITED, MAX_8, LEN_8, superscalar(2)],
        ids=lambda p: p.name,
    )
    def test_real_output_is_admissible(self, processor):
        compiled = _compile_tiny()
        assert check_machine(compiled.final, processor) == []

    def test_leftover_nop_detected(self):
        compiled = _compile_tiny()
        final = compiled.final
        corrupted = final.replaced(
            list(final.instructions) + [Instruction(Opcode.NOP)]
        )
        violations = check_machine(corrupted, UNLIMITED)
        assert any("no-op" in v.detail for v in violations)

    def test_negative_latency_detected(self):
        compiled = _compile_tiny()
        final = compiled.final
        instructions = list(final.instructions)
        instructions[0] = dataclasses.replace(instructions[0], latency=-1)
        violations = check_machine(final.replaced(instructions), UNLIMITED)
        assert any("negative" in v.detail for v in violations)

    def test_oversubscribed_slot_detected(self):
        compiled = _compile_tiny()
        slots = {k: 0 for k in range(3)}  # three instructions, one slot
        violations = check_machine(
            compiled.final, UNLIMITED, slots=slots, order=[0, 1, 2]
        )
        assert any("issue slot" in v.detail for v in violations)


# ----------------------------------------------------------------------
# Whole-artefact entry points
# ----------------------------------------------------------------------
class TestEntryPoints:
    def test_check_compiled_clean_on_real_pipeline(self):
        compiled = _compile_tiny()
        assert check_compiled(
            compiled, AliasModel.FORTRAN, processors=(UNLIMITED, MAX_8, LEN_8)
        ) == []

    def test_assert_legal_raises_with_context(self):
        compiled = _compile_tiny(register_file=None)
        corrupted = dataclasses.replace(
            compiled,
            pass1=dataclasses.replace(
                compiled.pass1,
                block=compiled.pass1.block.replaced(
                    compiled.pass1.block.instructions[:-1]
                ),
            ),
        )
        with pytest.raises(LegalityError, match="legality violation"):
            assert_legal(corrupted, context="unit test")

    def test_violation_renders_rule_and_positions(self):
        violation = Violation("machine", "broken thing", where=(3, 5))
        assert "[machine]" in str(violation)
        assert "[3, 5]" in str(violation)
