"""The pipeline verification hook: null-switch, counters, obs mirror.

The hook must be invisible when off (the default for every existing
caller), count and pass through when the pipeline is clean, raise
:class:`LegalityError` on a corrupted artefact, and mirror its
counters into the observability registry when a recorder is active
(that mirror is what ``tools/check_verify.py`` gates CI on).
"""

import dataclasses

import pytest

from repro.core import BalancedScheduler, compile_block
from repro.frontend import compile_minif
from repro.ir.printer import format_block
from repro.obs import recorder as obs_recorder
from repro.verify import LegalityError, hooks

SOURCE = """
program hooked
  array va[256], vb[256]
  scalar s0
  kernel k0 freq 5 unroll 1
    t0 = va[i] * vb[i]
    vb[i] = t0 + va[i+1]
    s0 = s0 + t0
  end
end
"""


def _block():
    program = compile_minif(SOURCE)
    (block,) = [b for f in program for b in f]
    return block


@pytest.fixture(autouse=True)
def _no_leftover_hook():
    yield
    hooks.disable()


def test_hook_is_off_by_default():
    assert hooks.get() is None


def test_verifying_context_counts_blocks():
    with hooks.verifying() as hook:
        compile_block(_block(), BalancedScheduler())
    assert hook.blocks_checked == 1
    assert hook.violations == 0
    assert hooks.get() is None, "context must restore the prior hook"


def test_enable_disable_round_trip():
    hook = hooks.enable()
    assert hooks.get() is hook
    assert hooks.disable() is hook
    assert hooks.get() is None
    assert hooks.disable() is None


def test_output_identical_with_hook_on():
    """Verification must observe, never transform."""
    plain = compile_block(_block(), BalancedScheduler())
    with hooks.verifying():
        checked = compile_block(_block(), BalancedScheduler())
    assert format_block(checked.final) == format_block(plain.final)


def test_corrupted_artifact_raises_legality_error():
    compiled = compile_block(_block(), BalancedScheduler())
    corrupted = dataclasses.replace(
        compiled,
        pass1=dataclasses.replace(
            compiled.pass1,
            block=compiled.pass1.block.replaced(
                compiled.pass1.block.instructions[:-1]
            ),
        ),
    )
    hook = hooks.enable()
    with pytest.raises(LegalityError, match="hooked|k0"):
        hook.check(corrupted, "fortran")
    assert hook.violations >= 1
    assert hook.last_violations


def test_raise_on_violation_false_only_counts():
    compiled = compile_block(_block(), BalancedScheduler())
    corrupted = dataclasses.replace(
        compiled,
        pass1=dataclasses.replace(
            compiled.pass1,
            block=compiled.pass1.block.replaced(
                compiled.pass1.block.instructions[:-1]
            ),
        ),
    )
    hook = hooks.enable(raise_on_violation=False)
    violations = hook.check(corrupted, "fortran")
    assert violations
    assert hook.violations == len(violations)


def test_counters_mirrored_into_obs_metrics():
    rec = obs_recorder.enable()
    try:
        with hooks.verifying():
            compile_block(_block(), BalancedScheduler())
    finally:
        obs_recorder.disable()
    counters = {
        key: value for key, value in rec.metrics.counters.items()
        if key.startswith("verify.")
    }
    assert counters.get("verify.blocks_checked") == 1
    assert "verify.violations" not in counters, "clean runs record no violations"
