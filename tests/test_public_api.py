"""Public-API consistency checks across every package.

Guards against the usual packaging rot: ``__all__`` naming things that
do not exist, public modules that fail to import, and the top-level
facade drifting from the subpackages.
"""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.ir",
    "repro.frontend",
    "repro.analysis",
    "repro.core",
    "repro.regalloc",
    "repro.machine",
    "repro.simulate",
    "repro.workloads",
    "repro.extensions",
    "repro.experiments",
    "repro.obs",
    "repro.verify",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} should declare __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


def test_every_submodule_imports():
    """Import every module in the tree (catches syntax/import errors in
    modules no test touches directly)."""
    failures = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        try:
            importlib.import_module(info.name)
        except Exception as error:  # pragma: no cover - failure reporting
            failures.append((info.name, error))
    assert not failures, failures


def test_top_level_facade_covers_both_schedulers():
    assert repro.BalancedScheduler is not None
    assert repro.TraditionalScheduler is not None
    assert repro.__version__


def test_no_all_duplicates():
    for name in PACKAGES:
        module = importlib.import_module(name)
        exported = list(getattr(module, "__all__", []))
        assert len(exported) == len(set(exported)), f"duplicates in {name}.__all__"
