"""Tests for the scheduling policies (traditional / balanced / average)."""

from fractions import Fraction

import pytest

from repro.analysis import build_dag
from repro.core import (
    AverageWeightScheduler,
    BalancedScheduler,
    SchedulingPolicy,
    TraditionalScheduler,
    as_fraction,
    balanced_weights,
)


class TestAsFraction:
    def test_int(self):
        assert as_fraction(5) == Fraction(5)

    def test_decimal_float_exact(self):
        assert as_fraction(2.6) == Fraction(13, 5)
        assert as_fraction(2.15) == Fraction(43, 20)
        assert as_fraction(7.6) == Fraction(38, 5)

    def test_fraction_passthrough(self):
        value = Fraction(7, 3)
        assert as_fraction(value) is value


class TestTraditional:
    def test_uniform_load_weights(self, saxpy_block):
        dag = build_dag(saxpy_block)
        TraditionalScheduler(4).assign_weights(dag)
        for node in dag.load_nodes():
            assert dag.weights[node] == Fraction(4)

    def test_non_loads_untouched(self, saxpy_block):
        dag = build_dag(saxpy_block)
        TraditionalScheduler(4).assign_weights(dag)
        for node in dag.nodes():
            if not dag.is_load(node):
                assert dag.weights[node] == dag.instructions[node].latency

    def test_name_mentions_latency(self):
        assert "2.6" in TraditionalScheduler(2.6).name


class TestBalanced:
    def test_assign_matches_weights_function(self, saxpy_block):
        dag = build_dag(saxpy_block)
        expected = balanced_weights(dag)
        BalancedScheduler().assign_weights(dag)
        for node, weight in expected.items():
            assert dag.weights[node] == weight

    def test_machine_independent(self, saxpy_block):
        """The balanced policy has no latency parameter at all."""
        policy = BalancedScheduler()
        assert not hasattr(policy, "optimistic_latency")


class TestAverageWeight:
    def test_every_load_gets_the_block_average(self, reduction_block):
        dag = build_dag(reduction_block)
        per_load = balanced_weights(dag)
        average = sum(per_load.values(), Fraction(0)) / len(per_load)
        AverageWeightScheduler().assign_weights(dag)
        for node in dag.load_nodes():
            assert dag.weights[node] == average

    def test_no_loads_is_a_no_op(self):
        from repro.analysis.dag import CodeDAG
        from repro.ir import Opcode, VirtualReg, alu

        dag = CodeDAG([alu(Opcode.ADD, VirtualReg(0), ())])
        AverageWeightScheduler().assign_weights(dag)
        assert dag.weights == [1]


class TestPolicyInterface:
    def test_policies_share_one_scheduler_implementation(self, saxpy_block):
        """Same tie-breaks + same weights => identical schedules."""
        fixed = BalancedScheduler()
        dag = build_dag(saxpy_block)
        fixed.assign_weights(dag)

        class Precomputed(SchedulingPolicy):
            name = "precomputed"

            def assign_weights(self, inner):
                for node, weight in enumerate(dag.weights):
                    inner.set_weight(node, weight)

        ours = fixed.schedule_block(saxpy_block)
        theirs = Precomputed().schedule_block(saxpy_block)
        assert ours.order == theirs.order

    def test_schedule_block_returns_new_block(self, saxpy_block):
        result = BalancedScheduler().schedule_block(saxpy_block)
        assert result.block is not saxpy_block
        assert len(result.block) == len(saxpy_block)
