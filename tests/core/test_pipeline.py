"""Tests for the two-pass compile pipeline."""

import numpy as np
import pytest

from repro.analysis import build_dag
from repro.core import (
    BalancedScheduler,
    TraditionalScheduler,
    compile_block,
    compile_program,
)
from repro.frontend import compile_minif
from repro.ir import PhysReg, VirtualReg, verify_block
from repro.regalloc import RegisterFile
from repro.workloads import load_program, random_block

TIGHT = RegisterFile(n_int=4, n_fp=4)


class TestCompileBlock:
    def test_no_allocation_keeps_virtual_registers(self, saxpy_block):
        compiled = compile_block(saxpy_block, BalancedScheduler(), register_file=None)
        assert compiled.allocation is None
        assert compiled.pass2 is None
        assert any(
            isinstance(r, VirtualReg)
            for inst in compiled.final
            for r in inst.all_regs()
        )

    def test_allocation_yields_physical_registers(self, saxpy_block):
        compiled = compile_block(saxpy_block, BalancedScheduler())
        assert compiled.allocation is not None
        for inst in compiled.final:
            for reg in inst.all_regs():
                assert isinstance(reg, PhysReg)

    def test_second_pass_reschedules_allocated_code(self, saxpy_block):
        compiled = compile_block(saxpy_block, BalancedScheduler())
        assert compiled.pass2 is not None
        assert len(compiled.final) == len(compiled.allocation.block)

    def test_second_pass_can_be_disabled(self, saxpy_block):
        compiled = compile_block(
            saxpy_block, BalancedScheduler(), second_pass=False
        )
        assert compiled.pass2 is None
        assert compiled.final is compiled.allocation.block

    def test_spill_counts_surface(self, reduction_block):
        compiled = compile_block(
            reduction_block, TraditionalScheduler(30), register_file=TIGHT
        )
        assert compiled.spill_count > 0
        assert compiled.dynamic_spills == pytest.approx(
            compiled.spill_count * reduction_block.frequency
        )

    def test_final_block_verifies(self, rng):
        for _ in range(10):
            block = random_block(rng, n_instructions=20)
            compiled = compile_block(block, BalancedScheduler())
            verify_block(compiled.final, strict_defs=False)

    def test_instruction_multiset_preserved_without_allocation(self, saxpy_block):
        compiled = compile_block(saxpy_block, BalancedScheduler(), register_file=None)
        original = sorted(i.ident for i in saxpy_block)
        final = sorted(i.ident for i in compiled.final)
        assert original == final


class TestCompileProgram:
    def test_per_block_results(self):
        program = load_program("TRACK")
        result = compile_program(program, BalancedScheduler())
        assert len(result.blocks) == len(program.all_blocks())
        assert result.program_name == "TRACK"
        assert result.policy_name == "balanced"

    def test_dynamic_instruction_count_weighted(self):
        program = compile_minif(
            """
program tiny
  array a[8]
  kernel k freq 10 unroll 1
    s = s + a[i]
  end
end
"""
        )
        result = compile_program(program, BalancedScheduler(), register_file=None)
        block = program.functions[0].blocks[0]
        assert result.dynamic_instructions == pytest.approx(10.0 * len(block))

    def test_spill_percentage_zero_without_pressure(self):
        program = load_program("FLO52Q")
        result = compile_program(program, BalancedScheduler())
        assert result.spill_percentage == pytest.approx(0.0)

    def test_spill_percentage_positive_under_pressure(self):
        program = load_program("QCD2")
        result = compile_program(program, BalancedScheduler())
        assert result.spill_percentage > 0


class TestSchedulingQualityInvariant:
    def test_balanced_dominates_on_figure1(self, figure1):
        """On the worked example, the balanced schedule's interlocks
        are <= both traditional schedules at every latency 1..8."""
        from repro.core import Direction
        from repro.simulate import interlock_sweep

        block, _ = figure1
        top_down = Direction.TOP_DOWN
        latencies = range(1, 9)
        balanced = interlock_sweep(
            BalancedScheduler(direction=top_down).schedule_block(block).block,
            latencies,
        )
        for weight in (1, 5):
            traditional = interlock_sweep(
                TraditionalScheduler(weight, direction=top_down)
                .schedule_block(block)
                .block,
                latencies,
            )
            for ours, theirs in zip(balanced, traditional):
                assert ours <= theirs
