"""Differential tests pinning the array-native engine to the reference.

The dispatcher in :meth:`ListScheduler.schedule` routes every
expressible tie-break chain through :mod:`repro.core.schedfast`
(packed int64 selection keys over a scaled-integer clock).  These
tests hold the two engines together byte-for-byte -- schedules, no-op
spans, slot maps, priorities, decision logs and selection metrics --
across directions, tie-break sets and random DAGs, and cover the
collapsed empty-tie-breaks branch of ``_select_index`` directly.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.analysis import build_dag
from repro.core import BalancedScheduler, Direction, ListScheduler
from repro.core.scheduler import (
    DEFAULT_TIE_BREAKS,
    _SchedulerState,
    consumed_minus_defined,
    exposed_count,
    original_order,
    register_pressure,
)
from repro.obs.decisions import DecisionLog
from repro.simulate.rng import spawn
from repro.workloads import random_block

TIE_BREAK_SETS = {
    "default": DEFAULT_TIE_BREAKS,
    "empty": (),
    "pressure": (register_pressure,),
    "no-exposed": (consumed_minus_defined, original_order),
    "exposed-only": (exposed_count,),
}


def weighted_dag(seed: int, size: int = 40):
    """A random balanced-weighted (block, dag) pair."""
    block = random_block(
        spawn("schedfast-prop", seed), n_instructions=size
    )
    dag = build_dag(block)
    BalancedScheduler().assign_weights(dag)
    return block, dag


def result_surface(result):
    return (
        result.order,
        result.noop_span,
        result.priorities,
        result.slots,
        list(result.block.instructions),
    )


class TestFastPathEngages:
    @pytest.mark.parametrize("name", sorted(TIE_BREAK_SETS))
    @pytest.mark.parametrize(
        "direction", [Direction.BOTTOM_UP, Direction.TOP_DOWN]
    )
    def test_all_tie_break_sets_take_fast_path(self, name, direction):
        """Every parity case below must actually exercise schedfast."""
        block, dag = weighted_dag(7)
        scheduler = ListScheduler(TIE_BREAK_SETS[name], direction)
        with obs.recording() as rec:
            scheduler.schedule(dag, block)
        counters = rec.metrics.snapshot()["counters"]
        engines = {
            key: value
            for key, value in counters.items()
            if key.startswith("sched.fast_path")
        }
        assert engines == {"sched.fast_path{engine=fast}": 1}


class TestFastReferenceParity:
    @pytest.mark.parametrize("name", sorted(TIE_BREAK_SETS))
    @pytest.mark.parametrize(
        "direction", [Direction.BOTTOM_UP, Direction.TOP_DOWN]
    )
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_identical_schedules(self, name, direction, seed):
        block, dag = weighted_dag(seed)
        scheduler = ListScheduler(TIE_BREAK_SETS[name], direction)
        fast = scheduler.schedule(dag, block)
        reference = scheduler._schedule_reference(dag, block, None)
        assert result_surface(fast) == result_surface(reference)

    @given(seed=st.integers(0, 10_000), size=st.integers(1, 80))
    @settings(max_examples=30, deadline=None)
    def test_identical_schedules_varied_sizes(self, seed, size):
        block, dag = weighted_dag(seed, size)
        scheduler = ListScheduler()
        fast = scheduler.schedule(dag, block)
        reference = scheduler._schedule_reference(dag, block, None)
        assert result_surface(fast) == result_surface(reference)

    def test_noop_span_is_exact_fraction(self):
        block, dag = weighted_dag(11)
        result = ListScheduler().schedule(dag, block)
        assert isinstance(result.noop_span, Fraction)
        for slot in result.slots.values():
            assert isinstance(slot, Fraction)


class TestObservedParity:
    """Fast-path observability mirrors the reference byte-for-byte."""

    @pytest.mark.parametrize(
        "direction", [Direction.BOTTOM_UP, Direction.TOP_DOWN]
    )
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_decision_log_parity(self, direction, seed):
        block, dag = weighted_dag(seed, 30)
        scheduler = ListScheduler(direction=direction)
        with obs.recording(decisions=True) as rec_fast:
            scheduler.schedule(dag, block)
        with obs.recording(decisions=True) as rec_ref:
            scheduler._schedule_reference(dag, block, rec_ref)
        assert rec_fast.decisions.render() == rec_ref.decisions.render()
        assert DecisionLog.diff(rec_fast.decisions, rec_ref.decisions) == []

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_selection_metrics_parity(self, seed):
        block, dag = weighted_dag(seed, 30)
        scheduler = ListScheduler()
        with obs.recording() as rec_fast:
            scheduler.schedule(dag, block)
        with obs.recording() as rec_ref:
            scheduler._schedule_reference(dag, block, rec_ref)
        fast_snap = rec_fast.metrics.snapshot()
        ref_snap = rec_ref.metrics.snapshot()
        for section in ("counters", "gauges", "histograms"):
            fast_series = {
                key: value
                for key, value in fast_snap[section].items()
                if not key.startswith("sched.fast_path")
            }
            ref_series = {
                key: value
                for key, value in ref_snap[section].items()
                if not key.startswith("sched.fast_path")
            }
            assert fast_series == ref_series


class TestSelectIndexEmptyTieBreaks:
    """The collapsed branch: no co-leaders, or no tie-breaks to run."""

    def _state(self, size: int = 6):
        block, dag = weighted_dag(3, size)
        return _SchedulerState(dag, Direction.BOTTOM_UP)

    def test_unique_maximum_needs_no_tie_breaks(self):
        state = self._state()
        ready = [(0, 0), (1, 1), (2, 2)]
        prio_rank = [1, 5, 3]
        idx = ListScheduler()._select_index(
            state, ready, prio_rank, [None] * 3, DEFAULT_TIE_BREAKS
        )
        assert idx == 1

    def test_empty_chain_picks_earliest_coleader(self):
        state = self._state()
        ready = [(0, 2), (1, 0), (2, 1)]
        prio_rank = [4, 4, 4]
        idx = ListScheduler(tie_breaks=())._select_index(
            state, ready, prio_rank, [], ()
        )
        assert idx == 0

    def test_empty_chain_ignores_later_coleaders(self):
        state = self._state()
        ready = [(0, 0), (1, 1), (2, 2), (3, 3)]
        prio_rank = [1, 7, 7, 7]
        idx = ListScheduler(tie_breaks=())._select_index(
            state, ready, prio_rank, [], ()
        )
        assert idx == 1

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=15, deadline=None)
    def test_empty_chain_end_to_end_matches_reference(self, seed):
        block, dag = weighted_dag(seed, 25)
        scheduler = ListScheduler(tie_breaks=())
        fast = scheduler.schedule(dag, block)
        reference = scheduler._schedule_reference(dag, block, None)
        assert result_surface(fast) == result_surface(reference)
