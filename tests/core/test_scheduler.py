"""Tests for the shared list scheduler.

Covers both directions, the delayed ready-list / virtual no-op
machinery, fractional weights, and the dependence-preservation
property on random blocks.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import build_dag
from repro.analysis.dag import CodeDAG, DepKind
from repro.core import (
    BalancedScheduler,
    Direction,
    ListScheduler,
    TraditionalScheduler,
    schedule_dag,
)
from repro.ir import MemRef, Opcode, VirtualReg, alu, load
from repro.workloads import figure1_block, label_order, random_block


def respects_dependences(dag: CodeDAG, order):
    position = {node: index for index, node in enumerate(order)}
    for src in dag.nodes():
        for dst in dag.successors(src):
            if position[src] >= position[dst]:
                return False
    return True


class TestBasics:
    def test_schedule_is_permutation(self, saxpy_block):
        dag = build_dag(saxpy_block)
        result = schedule_dag(dag, saxpy_block)
        assert sorted(result.order) == list(range(len(dag)))

    def test_dependences_respected(self, saxpy_block):
        dag = build_dag(saxpy_block)
        result = schedule_dag(dag, saxpy_block)
        assert respects_dependences(dag, result.order)

    def test_emitted_block_matches_order(self, saxpy_block):
        dag = build_dag(saxpy_block)
        result = schedule_dag(dag, saxpy_block)
        for position, node in enumerate(result.order):
            assert result.block[position] is saxpy_block[node]

    def test_empty_dag(self):
        result = schedule_dag(CodeDAG([]))
        assert result.order == []
        assert result.noop_span == 0

    def test_single_node(self):
        mem = MemRef(region="A", base=None, offset=0, affine_coeff=0)
        dag = CodeDAG([load(VirtualReg(0), mem)])
        assert schedule_dag(dag).order == [0]


class TestVirtualNoops:
    def test_noop_span_on_starved_chain(self):
        """A 2-node chain with weight 5 starves the ready list for 4
        reverse slots (the paper's virtual no-ops)."""
        mem = MemRef(region="A", base=None, offset=0, affine_coeff=0)
        instrs = [
            load(VirtualReg(0), mem),
            alu(Opcode.ADD, VirtualReg(1), (VirtualReg(0),)),
        ]
        dag = CodeDAG(instrs)
        dag.add_edge(0, 1, DepKind.TRUE)
        dag.set_weight(0, Fraction(5))
        result = schedule_dag(dag)
        assert result.order == [0, 1]
        assert result.noop_span == Fraction(4)

    def test_no_noops_when_saturated(self, figure1):
        block, _ = figure1
        result = BalancedScheduler().schedule_block(block)
        # Weight 3 with two 2-instruction pads leaves a single gap of
        # zero: the schedule is dense.
        assert result.noop_span == 0

    def test_fractional_weights_fractional_gaps(self):
        mem = MemRef(region="A", base=None, offset=0, affine_coeff=0)
        instrs = [
            load(VirtualReg(0), mem),
            alu(Opcode.ADD, VirtualReg(1), (VirtualReg(0),)),
        ]
        dag = CodeDAG(instrs)
        dag.add_edge(0, 1, DepKind.TRUE)
        dag.set_weight(0, Fraction(5, 2))
        result = schedule_dag(dag)
        assert result.noop_span == Fraction(3, 2)


class TestPriorities:
    def test_priority_in_result(self, figure1):
        block, labels = figure1
        result = BalancedScheduler().schedule_block(block)
        inverse = {v: k for k, v in labels.items()}
        # priority(L0) = w + priority(L1) = 3 + 4 = 7.
        assert result.priorities[inverse["L0"]] == Fraction(7)

    def test_anti_edges_carry_unit_latency(self):
        mem = MemRef(region="A", base=None, offset=0, affine_coeff=0)
        instrs = [
            load(VirtualReg(0), mem),
            load(VirtualReg(0), mem.displaced(1)),  # OUTPUT dep
        ]
        dag = CodeDAG(instrs)
        dag.add_edge(0, 1, DepKind.OUTPUT)
        dag.set_weight(0, Fraction(9))
        result = schedule_dag(dag)
        # OUTPUT edges order but do not stretch: no no-ops needed.
        assert result.noop_span == 0
        assert result.order == [0, 1]


class TestDirections:
    def test_both_directions_valid(self, saxpy_block):
        dag_bu = build_dag(saxpy_block)
        bu = ListScheduler(direction=Direction.BOTTOM_UP).schedule(dag_bu)
        dag_td = build_dag(saxpy_block)
        td = ListScheduler(direction=Direction.TOP_DOWN).schedule(dag_td)
        assert respects_dependences(dag_bu, bu.order)
        assert respects_dependences(dag_td, td.order)

    def test_figure2c_exact_in_both_directions(self, figure1):
        """The balanced schedule matches the paper in either direction."""
        block, labels = figure1
        for direction in Direction:
            result = BalancedScheduler(direction=direction).schedule_block(block)
            assert label_order(labels, result.order) == [
                "L0", "X0", "X1", "L1", "X2", "X3", "X4",
            ]

    def test_greedy_figure2a_top_down_only(self, figure1):
        block, labels = figure1
        result = TraditionalScheduler(
            5, direction=Direction.TOP_DOWN
        ).schedule_block(block)
        assert label_order(labels, result.order) == [
            "L0", "X0", "X1", "X2", "X3", "L1", "X4",
        ]


class TestProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_blocks_schedule_correctly(self, seed):
        rng = np.random.default_rng(seed)
        block = random_block(rng, n_instructions=int(rng.integers(2, 30)))
        for direction in Direction:
            dag = build_dag(block)
            result = ListScheduler(direction=direction).schedule(dag, block)
            assert sorted(result.order) == list(range(len(dag)))
            assert respects_dependences(dag, result.order)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        block = random_block(rng, n_instructions=15)
        first = BalancedScheduler().schedule_block(block)
        second = BalancedScheduler().schedule_block(block)
        assert first.order == second.order
