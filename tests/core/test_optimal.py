"""Property tests for the exact branch-and-bound scheduler.

The load-bearing checks:

* on random small DAGs (<= 10 instructions) the search returns exactly
  the brute-force permutation minimum, certified, under both memory
  models and under every register-pressure cap;
* the cost model agrees instruction-for-instruction with the scalar
  simulator (the search optimises what the tables measure);
* best-effort results (budget exhausted) stay inside the certificate:
  lower bound <= cost <= the balanced seed's cost;
* the policy wrapper behaves like any other :class:`SchedulingPolicy`
  (legal orders, permutation-clean blocks, integer-latency guard).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.analysis import build_dag
from repro.core import (
    BalancedScheduler,
    InfeasiblePressureError,
    OptimalScheduler,
    OptimalScheduleResult,
    max_live_registers,
    optimize_order,
    schedule_cost,
)
from repro.simulate.simulator import UNLIMITED, simulate_block
from repro.verify.oracle import check_schedule
from repro.workloads import figure1_block, random_block
from repro.workloads.perfect import load_program

MODELS = (2, 5)


def small_random_blocks(seed: int, count: int, max_n: int = 10):
    """Verifier-clean random blocks small enough to brute-force."""
    rng = np.random.default_rng(seed)
    for index in range(count):
        n = int(rng.integers(2, max_n + 1))
        yield random_block(rng, n_instructions=n, name=f"small{index}")


def all_topological_orders(dag, limit: int = 200_000):
    """Every topological order of ``dag`` (bounded; asserts if cut)."""
    n = len(dag)
    indegree = [len(dag.predecessors(v)) for v in range(n)]
    scheduled = [False] * n
    order = []

    def rec():
        if len(order) == n:
            yield tuple(order)
            return
        for v in range(n):
            if indegree[v] == 0 and not scheduled[v]:
                for s, _kind in dag.successor_items(v):
                    indegree[s] -= 1
                order.append(v)
                scheduled[v] = True
                yield from rec()
                order.pop()
                scheduled[v] = False
                for s, _kind in dag.successor_items(v):
                    indegree[s] += 1

    orders = list(itertools.islice(rec(), limit))
    if len(orders) == limit:
        return None  # too many orders to enumerate; caller skips
    return orders


# ----------------------------------------------------------------------
# Exactness against brute force
# ----------------------------------------------------------------------
class TestBruteForce:
    def test_certified_results_match_the_permutation_minimum(self):
        checked = 0
        for block in small_random_blocks(seed=9301, count=25):
            dag = build_dag(block)
            orders = all_topological_orders(dag)
            if orders is None:
                continue
            for latency in MODELS:
                result = optimize_order(
                    dag, latency,
                    live_in=block.live_in, live_out=block.live_out,
                )
                brute = min(schedule_cost(dag, o, latency) for o in orders)
                assert result.certified
                assert result.cost == brute
                assert result.lower_bound == result.cost
                checked += 1
        assert checked >= 40

    def test_pressure_capped_search_is_exact_and_detects_infeasibility(self):
        for block in small_random_blocks(seed=9302, count=8, max_n=8):
            dag = build_dag(block)
            orders = all_topological_orders(dag)
            if orders is None:
                continue
            latency = 5
            for cap in range(0, 10):
                feasible = [
                    o for o in orders
                    if max_live_registers(
                        dag, o, block.live_in, block.live_out
                    ) <= cap
                ]
                result = optimize_order(
                    dag, latency, max_live=cap,
                    live_in=block.live_in, live_out=block.live_out,
                )
                if not feasible:
                    assert not result.feasible
                else:
                    assert result.feasible and result.certified
                    assert result.cost == min(
                        schedule_cost(dag, o, latency) for o in feasible
                    )

    def test_tightening_the_cap_never_speeds_the_schedule(self):
        for block in small_random_blocks(seed=9303, count=10, max_n=9):
            dag = build_dag(block)
            previous = None
            for cap in range(12, 0, -1):
                result = optimize_order(
                    dag, 5, max_live=cap,
                    live_in=block.live_in, live_out=block.live_out,
                )
                if not result.feasible:
                    break
                if previous is not None:
                    assert result.cost >= previous
                previous = result.cost


# ----------------------------------------------------------------------
# The cost model is the simulator
# ----------------------------------------------------------------------
class TestCostModel:
    def test_schedule_cost_equals_the_scalar_simulator(self):
        rng = np.random.default_rng(9304)
        for _ in range(20):
            block = random_block(rng, n_instructions=int(rng.integers(2, 30)))
            dag = build_dag(block)
            for policy in (BalancedScheduler(), OptimalScheduler(5)):
                result = policy.schedule_dag(dag, block)
                for latency in MODELS:
                    simulated = simulate_block(
                        result.block.instructions,
                        [latency] * len(result.block.loads),
                        UNLIMITED,
                    )
                    assert (
                        schedule_cost(dag, result.order, latency)
                        == simulated.cycles
                    )

    def test_figure1_optima(self):
        """The Figure 1 DAG: 7 instructions, loads L0 -> L1 serial.
        All-hit (W=2) admits a fully covered 7-cycle schedule.  All-miss
        (W=5): L0 issues at 0, X0..X3 cover cycles 1-4, L1 issues the
        moment L0 returns (5) and X4 waits for L1 at 10 -- 11 cycles,
        with only the four X's available to cover ten miss cycles."""
        block, _labels = figure1_block()
        dag = build_dag(block)
        assert optimize_order(dag, 2).cost == 7
        assert optimize_order(dag, 5).cost == 11

    def test_max_live_matches_a_direct_recount(self):
        for block in small_random_blocks(seed=9305, count=10):
            dag = build_dag(block)
            order = BalancedScheduler().schedule_dag(dag, block).order
            uses_left = {}
            for inst in block.instructions:
                for reg in set(inst.all_uses()):
                    uses_left[reg] = uses_left.get(reg, 0) + 1
            live_out = set(block.live_out)
            defined = set(block.live_in)
            peak = len([
                r for r in defined
                if uses_left.get(r, 0) > 0 or r in live_out
            ])
            for v in order:
                inst = block.instructions[v]
                for reg in set(inst.all_uses()):
                    uses_left[reg] -= 1
                defined.update(inst.defs)
                live = [
                    r for r in defined
                    if uses_left.get(r, 0) > 0 or r in live_out
                ]
                peak = max(peak, len(live))
            assert max_live_registers(
                dag, order, block.live_in, block.live_out
            ) == peak


# ----------------------------------------------------------------------
# Budgets and certificates
# ----------------------------------------------------------------------
class TestBudget:
    def test_best_effort_stays_between_bound_and_seed(self):
        program = load_program("BDNA")
        for block in program.all_blocks():
            dag = build_dag(block)
            balanced = BalancedScheduler().schedule_dag(dag, block).order
            for latency in MODELS:
                tight = optimize_order(
                    dag, latency, seed_orders=[balanced], node_budget=1
                )
                balanced_cost = schedule_cost(dag, balanced, latency)
                assert tight.lower_bound <= tight.cost <= balanced_cost
                full = optimize_order(dag, latency, seed_orders=[balanced])
                assert full.certified
                assert tight.lower_bound <= full.cost <= tight.cost

    def test_budget_must_be_positive(self):
        block, _labels = figure1_block()
        dag = build_dag(block)
        with pytest.raises(ValueError):
            optimize_order(dag, 2, node_budget=0)

    def test_expansions_are_deterministic(self):
        program = load_program("MDG")
        block = program.all_blocks()[0]
        dag = build_dag(block)
        first = optimize_order(dag, 5)
        second = optimize_order(dag, 5)
        assert first == second


# ----------------------------------------------------------------------
# The policy wrapper
# ----------------------------------------------------------------------
class TestOptimalScheduler:
    def test_rejects_fractional_latency(self):
        with pytest.raises(ValueError):
            OptimalScheduler(2.5)
        with pytest.raises(ValueError):
            OptimalScheduler(-1)

    def test_float_and_int_latency_share_a_name(self):
        assert OptimalScheduler(2.0).name == OptimalScheduler(2).name == (
            "optimal(W=2)"
        )

    def test_result_carries_the_certificate(self):
        block, _labels = figure1_block()
        result = OptimalScheduler(5).schedule_block(block)
        assert isinstance(result, OptimalScheduleResult)
        assert result.certified
        assert result.cost == result.lower_bound == 11
        assert result.load_latency == 5
        assert sorted(result.order) == list(range(len(block)))
        assert not check_schedule(block, result.block)
        # Issue slots follow the fixed-latency recurrence; the last
        # instruction completes the block at `cost`.
        assert max(result.slots.values()) == result.cost - 1

    def test_never_worse_than_balanced_on_the_suite(self):
        program = load_program("QCD2")
        for block in program.all_blocks():
            dag = build_dag(block)
            balanced = BalancedScheduler().schedule_dag(dag, block)
            for latency in MODELS:
                result = OptimalScheduler(latency).schedule_dag(dag, block)
                assert result.cost <= schedule_cost(
                    dag, balanced.order, latency
                )

    def test_infeasible_pressure_cap_raises(self):
        block, _labels = figure1_block()
        with pytest.raises(InfeasiblePressureError):
            OptimalScheduler(2, max_live=0).schedule_block(block)

    def test_empty_block_schedules_to_nothing(self):
        from repro.ir.block import BasicBlock

        result = OptimalScheduler(2).schedule_block(BasicBlock("empty"))
        assert result.order == []
        assert result.cost == 0
        assert result.certified
