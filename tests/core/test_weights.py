"""Tests for the balanced weight computation (paper Figure 6).

Includes the paper's three worked examples as exact oracles, plus
hypothesis property tests cross-checking the fast implementation
against the naive reference on random DAGs.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import build_dag
from repro.analysis.dag import CodeDAG, DepKind
from repro.core import (
    average_block_weight,
    balanced_weights,
    balanced_weights_reference,
    contribution_matrix,
)
from repro.ir import MemRef, Opcode, VirtualReg, alu, load
from repro.workloads import (
    figure1_block,
    figure4_block,
    figure7_block,
    random_block,
    random_dag,
)


class TestWorkedExamples:
    def test_figure1_weights_are_three(self, figure1):
        """Serial loads: weight = 1 + 4/2 = 3 for both."""
        block, labels = figure1
        weights = balanced_weights(build_dag(block))
        named = {labels[k]: v for k, v in weights.items()}
        assert named == {"L0": Fraction(3), "L1": Fraction(3)}

    def test_figure4_weights_are_six(self, figure4):
        """Parallel loads: weight = 1 + 5/1 = 6 for both."""
        block, labels = figure4
        weights = balanced_weights(build_dag(block))
        named = {labels[k]: v for k, v in weights.items()}
        assert named == {"L0": Fraction(6), "L1": Fraction(6)}

    def test_figure7_weights(self, figure7):
        """Totals from Table 1's cells (see DESIGN.md erratum note)."""
        block, labels = figure7
        weights = balanced_weights(build_dag(block))
        named = {labels[k]: v for k, v in weights.items()}
        assert named == {
            "L1": Fraction(10),
            "L2": Fraction(5, 4),
            "L3": Fraction(31, 12),
            "L4": Fraction(55, 12),
            "L5": Fraction(37, 12),
            "L6": Fraction(37, 12),
        }

    def test_figure7_prose_contributions(self, figure7):
        """'X1 contributes 1/1 to L1's weight ... and 1/3 to the
        weights of each load instruction, L3, L4, L5 and L6.'"""
        block, labels = figure7
        matrix = contribution_matrix(build_dag(block))
        inverse = {v: k for k, v in labels.items()}
        x1 = inverse["X1"]
        assert matrix[inverse["L1"]][x1] == Fraction(1)
        for name in ("L3", "L4", "L5", "L6"):
            assert matrix[inverse[name]][x1] == Fraction(1, 3)
        # 'L2 does not appear in a connected component because it is a
        # predecessor of X1': X1 contributes nothing to L2.
        assert matrix[inverse["L2"]][x1] == 0


class TestEdgeCases:
    def test_no_loads(self):
        dag = CodeDAG([alu(Opcode.ADD, VirtualReg(100), ()) for _ in range(3)])
        assert balanced_weights(dag) == {}

    def test_single_isolated_load(self):
        mem = MemRef(region="A", base=None, offset=0, affine_coeff=0)
        dag = CodeDAG([load(VirtualReg(0), mem)])
        assert balanced_weights(dag) == {0: Fraction(1)}

    def test_lone_load_with_independents(self):
        mem = MemRef(region="A", base=None, offset=0, affine_coeff=0)
        instrs = [load(VirtualReg(0), mem)] + [
            alu(Opcode.ADD, VirtualReg(100 + k), ()) for k in range(4)
        ]
        dag = CodeDAG(instrs)
        # Four independents, Chances = 1 each -> weight 5.
        assert balanced_weights(dag)[0] == Fraction(5)

    def test_weights_are_at_least_one(self, rng):
        for _ in range(10):
            dag = random_dag(rng, n_nodes=15)
            for weight in balanced_weights(dag).values():
                assert weight >= 1

    def test_empty_dag(self):
        assert balanced_weights(CodeDAG([])) == {}


class TestOracle:
    @given(st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_fast_matches_reference_on_random_dags(self, seed):
        rng = np.random.default_rng(seed)
        dag = random_dag(
            rng,
            n_nodes=int(rng.integers(1, 16)),
            edge_probability=float(rng.uniform(0.05, 0.5)),
            load_fraction=float(rng.uniform(0.1, 0.9)),
        )
        assert balanced_weights(dag) == balanced_weights_reference(dag)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_fast_matches_reference_on_real_blocks(self, seed):
        rng = np.random.default_rng(seed)
        block = random_block(rng, n_instructions=int(rng.integers(4, 28)))
        dag = build_dag(block)
        assert balanced_weights(dag) == balanced_weights_reference(dag)


class TestContributionMatrix:
    def test_total_is_one_plus_cells(self, figure7):
        block, _ = figure7
        dag = build_dag(block)
        matrix = contribution_matrix(dag)
        weights = balanced_weights(dag)
        for node, row in matrix.items():
            assert weights[node] == 1 + sum(row.values())

    def test_self_not_in_row(self, figure7):
        block, _ = figure7
        matrix = contribution_matrix(build_dag(block))
        for node, row in matrix.items():
            assert node not in row


class TestAverageWeight:
    def test_mean_of_per_load_weights(self, figure7):
        block, _ = figure7
        dag = build_dag(block)
        weights = balanced_weights(dag)
        expected = sum(weights.values(), Fraction(0)) / len(weights)
        assert average_block_weight(dag) == expected

    def test_none_without_loads(self):
        dag = CodeDAG([alu(Opcode.ADD, VirtualReg(100), ())])
        assert average_block_weight(dag) is None


class TestGeneralisedPredicate:
    def test_all_nodes_weighted_matches_loads_on_load_only_dag(self, rng):
        dag = random_dag(rng, n_nodes=10, load_fraction=1.0)
        default = balanced_weights(dag)
        explicit = balanced_weights(dag, lambda d, v: d.is_load(v))
        assert default == explicit

    def test_fp_predicate_weighs_fp_nodes(self, saxpy_block):
        dag = build_dag(saxpy_block)
        weighted = balanced_weights(
            dag, lambda d, v: d.is_load(v) or d.instructions[v].is_fp
        )
        fp_nodes = [
            v for v in dag.nodes() if dag.instructions[v].is_fp
        ]
        assert fp_nodes
        for v in fp_nodes:
            assert v in weighted


class TestMemoisationCounter:
    def test_gind_memo_hits_recorded(self, saxpy_block):
        """Unrolled blocks repeat (G_ind, slots) pairs; the batched
        implementation counts every dedup as a memo hit."""
        from repro import obs

        dag = build_dag(saxpy_block)
        with obs.recording() as rec:
            balanced_weights(dag)
        counters = rec.metrics.snapshot()["counters"]
        assert counters.get("sched.gind_memo_hits", 0) > 0

    def test_counter_silent_without_recorder(self, saxpy_block):
        dag = build_dag(saxpy_block)
        assert balanced_weights(dag) == balanced_weights_reference(dag)
