"""Unit tests for IR operands."""

import pytest

from repro.ir import Immediate, MemRef, PhysReg, RegClass, VirtualReg, is_register


class TestVirtualReg:
    def test_name_int(self):
        assert VirtualReg(3, RegClass.INT).name == "v3"

    def test_name_fp(self):
        assert VirtualReg(7, RegClass.FP).name == "vf7"

    def test_value_equality(self):
        assert VirtualReg(1) == VirtualReg(1)
        assert VirtualReg(1) != VirtualReg(2)
        assert VirtualReg(1, RegClass.INT) != VirtualReg(1, RegClass.FP)

    def test_hashable(self):
        regs = {VirtualReg(1), VirtualReg(1), VirtualReg(2)}
        assert len(regs) == 2

    def test_str_matches_name(self):
        reg = VirtualReg(5, RegClass.FP)
        assert str(reg) == reg.name


class TestPhysReg:
    def test_names(self):
        assert PhysReg(2, RegClass.INT).name == "r2"
        assert PhysReg(4, RegClass.FP).name == "f4"

    def test_spill_pool_flag_distinguishes(self):
        assert PhysReg(1) != PhysReg(1, is_spill_pool=True)

    def test_phys_differs_from_virtual(self):
        assert PhysReg(1) != VirtualReg(1)


class TestImmediate:
    def test_str(self):
        assert str(Immediate(42)) == "#42"

    def test_negative(self):
        assert str(Immediate(-3)) == "#-3"


class TestMemRef:
    def test_str_with_base(self):
        mem = MemRef(region="A", base=VirtualReg(0), offset=2)
        assert str(mem) == "A[v0+2]"

    def test_str_negative_offset(self):
        mem = MemRef(region="A", base=VirtualReg(0), offset=-1)
        assert str(mem) == "A[v0-1]"

    def test_str_without_base(self):
        mem = MemRef(region="S", base=None, offset=3)
        assert str(mem) == "S[0+3]"

    def test_displaced_shifts_offset_only(self):
        mem = MemRef(region="A", base=VirtualReg(0), offset=2, affine_coeff=1)
        moved = mem.displaced(5)
        assert moved.offset == 7
        assert moved.region == mem.region
        assert moved.base == mem.base
        assert moved.affine_coeff == mem.affine_coeff

    def test_frozen(self):
        mem = MemRef(region="A")
        with pytest.raises(AttributeError):
            mem.offset = 9  # type: ignore[misc]


def test_is_register():
    assert is_register(VirtualReg(0))
    assert is_register(PhysReg(0))
    assert not is_register(Immediate(1))
    assert not is_register(MemRef(region="A"))
