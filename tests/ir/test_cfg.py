"""Tests for the control-flow graph substrate."""

import pytest

from repro.ir import BasicBlock, Instruction, Opcode, VirtualReg, alu, load
from repro.ir.cfg import CFG, CFGEdge, CFGError
from repro.ir.operands import MemRef, RegClass

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)


def diamond_cfg():
    """entry -> (hot 0.9 | cold 0.1) -> join."""
    cfg = CFG(name="diamond", entry="entry", entry_frequency=100.0)
    entry = BasicBlock("entry")
    entry.append(load(VirtualReg(0, RegClass.FP), A))
    entry.append(Instruction(Opcode.BRANCH, uses=(VirtualReg(0, RegClass.FP),)))
    cfg.add_block(entry)
    hot = BasicBlock("hot")
    hot.append(alu(Opcode.FADD, VirtualReg(1, RegClass.FP),
                   (VirtualReg(0, RegClass.FP),)))
    cfg.add_block(hot)
    cold = BasicBlock("cold")
    cold.append(alu(Opcode.FMUL, VirtualReg(2, RegClass.FP),
                    (VirtualReg(0, RegClass.FP),)))
    cfg.add_block(cold)
    join = BasicBlock("join")
    join.append(alu(Opcode.ADD, VirtualReg(3), ()))
    cfg.add_block(join)
    cfg.add_edge("entry", "hot", 0.9)
    cfg.add_edge("entry", "cold", 0.1)
    cfg.add_edge("hot", "join", 1.0)
    cfg.add_edge("cold", "join", 1.0)
    return cfg


class TestConstruction:
    def test_duplicate_block_rejected(self):
        cfg = CFG(name="c", entry="a")
        cfg.add_block(BasicBlock("a"))
        with pytest.raises(CFGError, match="duplicate"):
            cfg.add_block(BasicBlock("a"))

    def test_edge_to_unknown_block_rejected(self):
        cfg = CFG(name="c", entry="a")
        cfg.add_block(BasicBlock("a"))
        with pytest.raises(CFGError, match="unknown block"):
            cfg.add_edge("a", "b")

    def test_bad_probability_rejected(self):
        with pytest.raises(CFGError):
            CFGEdge("a", "b", 1.5)


class TestValidation:
    def test_diamond_validates(self):
        diamond_cfg().validate()

    def test_missing_entry(self):
        cfg = CFG(name="c", entry="nope")
        cfg.add_block(BasicBlock("a"))
        with pytest.raises(CFGError, match="entry"):
            cfg.validate()

    def test_cycle_rejected(self):
        cfg = CFG(name="c", entry="a")
        cfg.add_block(BasicBlock("a"))
        cfg.add_block(BasicBlock("b"))
        cfg.add_edge("a", "b")
        cfg.add_edge("b", "a")
        with pytest.raises(CFGError, match="cycle"):
            cfg.validate()

    def test_probabilities_must_sum_to_one(self):
        cfg = diamond_cfg()
        cfg.edges[0] = CFGEdge("entry", "hot", 0.5)  # now sums to 0.6
        with pytest.raises(CFGError, match="sum"):
            cfg.validate()

    def test_multiway_needs_branch(self):
        cfg = diamond_cfg()
        cfg.blocks["entry"].instructions.pop()  # drop the branch
        with pytest.raises(CFGError, match="terminating branch"):
            cfg.validate()


class TestFrequencies:
    def test_propagation_through_diamond(self):
        cfg = diamond_cfg()
        cfg.propagate_frequencies()
        assert cfg.block("entry").frequency == pytest.approx(100.0)
        assert cfg.block("hot").frequency == pytest.approx(90.0)
        assert cfg.block("cold").frequency == pytest.approx(10.0)
        assert cfg.block("join").frequency == pytest.approx(100.0)

    def test_topological_order_entry_first(self):
        order = diamond_cfg().topological_order()
        assert order[0] == "entry"
        assert order[-1] == "join"
        assert set(order) == {"entry", "hot", "cold", "join"}


class TestHottestPath:
    def test_follows_probabilities(self):
        assert diamond_cfg().hottest_path() == ["entry", "hot", "join"]

    def test_single_block(self):
        cfg = CFG(name="c", entry="only")
        cfg.add_block(BasicBlock("only"))
        assert cfg.hottest_path() == ["only"]
