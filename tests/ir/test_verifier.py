"""Unit tests for the IR verifier."""

import pytest

from repro.ir import (
    BasicBlock,
    Instruction,
    MemRef,
    Opcode,
    VerificationError,
    VirtualReg,
    alu,
    is_schedulable,
    load,
    nop,
    store,
    verify_block,
)

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)


def test_clean_block_passes():
    block = BasicBlock("b")
    block.append(load(VirtualReg(0), A))
    block.append(alu(Opcode.ADD, VirtualReg(1), (VirtualReg(0),)))
    verify_block(block)


def test_use_before_def_rejected():
    block = BasicBlock("b")
    block.append(alu(Opcode.ADD, VirtualReg(1), (VirtualReg(0),)))
    with pytest.raises(VerificationError, match="undefined register"):
        verify_block(block)


def test_live_in_excuses_external_values():
    block = BasicBlock("b", live_in=[VirtualReg(0)])
    block.append(alu(Opcode.ADD, VirtualReg(1), (VirtualReg(0),)))
    verify_block(block)


def test_strict_defs_off_allows_it():
    block = BasicBlock("b")
    block.append(alu(Opcode.ADD, VirtualReg(1), (VirtualReg(0),)))
    verify_block(block, strict_defs=False)


def test_load_must_define():
    bad = Instruction(Opcode.LOAD, mem=A)
    block = BasicBlock("b")
    block.append(bad)
    with pytest.raises(VerificationError, match="exactly 1"):
        verify_block(block)


def test_load_needs_memory_operand():
    bad = Instruction(Opcode.LOAD, defs=(VirtualReg(0),))
    block = BasicBlock("b")
    block.append(bad)
    with pytest.raises(VerificationError, match="memory operand"):
        verify_block(block)


def test_store_must_not_define():
    bad = Instruction(
        Opcode.STORE, defs=(VirtualReg(0),), uses=(VirtualReg(1),), mem=A
    )
    block = BasicBlock("b", live_in=[VirtualReg(1)])
    block.append(bad)
    with pytest.raises(VerificationError, match="must not define"):
        verify_block(block)


def test_terminator_must_be_last():
    block = BasicBlock("b")
    block.append(Instruction(Opcode.RET))
    block.append(nop())
    with pytest.raises(VerificationError, match="terminator"):
        verify_block(block)


def test_duplicate_ident_rejected():
    block = BasicBlock("b")
    inst = load(VirtualReg(0), A)
    block.append(inst)
    block.append(inst)  # same object, same ident
    with pytest.raises(VerificationError, match="duplicate ident"):
        verify_block(block)


def test_is_schedulable_rejects_nops():
    block = BasicBlock("b")
    block.append(nop())
    assert not is_schedulable(block)


def test_is_schedulable_accepts_clean(saxpy_block):
    assert is_schedulable(saxpy_block)
