"""Unit tests for BasicBlock / Function / Program."""

import pytest

from repro.ir import (
    BasicBlock,
    Function,
    MemRef,
    Opcode,
    Program,
    RegClass,
    VirtualReg,
    alu,
    load,
    nop,
    store,
)

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)


def small_block(name="b", freq=2.0):
    block = BasicBlock(name, frequency=freq)
    block.append(load(VirtualReg(0), A))
    block.append(alu(Opcode.ADD, VirtualReg(1), (VirtualReg(0),)))
    block.append(store(VirtualReg(1), A.displaced(1)))
    return block


class TestBasicBlock:
    def test_len_and_iter(self):
        block = small_block()
        assert len(block) == 3
        assert [i.opcode for i in block] == [Opcode.LOAD, Opcode.ADD, Opcode.STORE]

    def test_indexing(self):
        block = small_block()
        assert block[0].is_load
        assert block[-1].is_store

    def test_loads_and_stores(self):
        block = small_block()
        assert len(block.loads) == 1
        assert len(block.stores) == 1

    def test_count_spills(self):
        block = small_block()
        assert block.count_spills() == 0
        block.append(load(VirtualReg(2), A, tag="spill"))
        assert block.count_spills() == 1

    def test_without_nops(self):
        block = small_block()
        block.append(nop())
        cleaned = block.without_nops()
        assert len(cleaned) == 3
        assert len(block) == 4  # original untouched
        assert cleaned.frequency == block.frequency

    def test_replaced_preserves_metadata(self):
        block = small_block(freq=7.5)
        block.live_in.append(VirtualReg(9))
        block.live_out.append(VirtualReg(1))
        replaced = block.replaced(list(reversed(block.instructions)))
        assert replaced.frequency == 7.5
        assert replaced.live_in == [VirtualReg(9)]
        assert replaced.live_out == [VirtualReg(1)]
        assert replaced[0].is_store

    def test_str_contains_frequency(self):
        assert "freq=2" in str(small_block())


class TestFunction:
    def test_new_vreg_unique_and_classed(self):
        fn = Function("f")
        a = fn.new_vreg()
        b = fn.new_vreg(RegClass.FP)
        assert a != b
        assert a.rclass is RegClass.INT
        assert b.rclass is RegClass.FP

    def test_block_lookup(self):
        fn = Function("f")
        fn.add_block(BasicBlock("entry"))
        fn.add_block(BasicBlock("loop"))
        assert fn.block("loop").name == "loop"
        with pytest.raises(KeyError):
            fn.block("missing")


class TestProgram:
    def test_function_lookup(self):
        prog = Program("p")
        prog.add_function(Function("f"))
        assert prog.function("f").name == "f"
        with pytest.raises(KeyError):
            prog.function("g")

    def test_all_blocks(self):
        prog = Program("p")
        f1, f2 = Function("f1"), Function("f2")
        f1.add_block(small_block("a"))
        f2.add_block(small_block("b"))
        f2.add_block(small_block("c"))
        prog.add_function(f1)
        prog.add_function(f2)
        assert [b.name for b in prog.all_blocks()] == ["a", "b", "c"]

    def test_total_instruction_count(self):
        prog = Program("p")
        fn = Function("f")
        fn.add_block(small_block("a", freq=10.0))  # 3 instructions
        fn.add_block(small_block("b", freq=1.0))
        prog.add_function(fn)
        assert prog.total_instruction_count(weighted=True) == pytest.approx(33.0)
        assert prog.total_instruction_count(weighted=False) == 6.0
