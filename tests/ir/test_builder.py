"""Unit tests for the IRBuilder convenience layer."""

from repro.ir import IRBuilder, Opcode, RegClass, verify_block


class TestIRBuilder:
    def test_quickstart_block_is_well_formed(self):
        b = IRBuilder()
        x = b.load("A", 0)
        y = b.load("A", 1)
        b.store(b.add(x, y), "B", 0)
        verify_block(b.block)
        assert len(b.block) == 4
        assert len(b.block.loads) == 2

    def test_base_pointer_shared_per_region(self):
        b = IRBuilder()
        b.load("A", 0)
        b.load("A", 3)
        bases = {i.mem.base for i in b.block.loads}
        assert len(bases) == 1
        assert b.base_of("A") in b.block.live_in

    def test_distinct_regions_distinct_bases(self):
        b = IRBuilder()
        b.load("A", 0)
        b.load("B", 0)
        assert b.base_of("A") != b.base_of("B")

    def test_fp_arithmetic_selects_fp_opcode(self):
        b = IRBuilder()
        x = b.load("A", 0)  # FP by default
        y = b.load("A", 1)
        b.add(x, y)
        b.mul(x, y)
        b.div(x, y)
        b.sub(x, y)
        opcodes = [i.opcode for i in b.block.instructions[2:]]
        assert opcodes == [Opcode.FADD, Opcode.FMUL, Opcode.FDIV, Opcode.FSUB]

    def test_int_arithmetic_selects_int_opcode(self):
        b = IRBuilder()
        x = b.li(1)
        y = b.li(2)
        assert b.add(x, y)
        assert b.block.instructions[-1].opcode is Opcode.ADD

    def test_fma(self):
        b = IRBuilder()
        x = b.load("A", 0)
        result = b.fma(x, x, x)
        assert result.rclass is RegClass.FP
        assert b.block.instructions[-1].opcode is Opcode.FMA

    def test_start_block(self):
        b = IRBuilder()
        b.load("A", 0)
        second = b.start_block("second", frequency=5.0)
        b.li(1)
        assert len(b.function.blocks) == 2
        assert second.frequency == 5.0
        assert len(second) == 1

    def test_mark_live_out(self):
        b = IRBuilder()
        x = b.load("A", 0)
        b.mark_live_out([x])
        assert x in b.block.live_out

    def test_mov(self):
        b = IRBuilder()
        x = b.load("A", 0)
        y = b.mov(x)
        assert y != x
        assert b.block.instructions[-1].opcode is Opcode.MOV
