"""Round-trip tests: textual IR printing and parsing."""

import numpy as np
import pytest

from repro.ir import (
    BasicBlock,
    IRParseError,
    MemRef,
    Opcode,
    PhysReg,
    RegClass,
    VirtualReg,
    format_block,
    format_instruction,
    parse_block,
    parse_instruction,
    parse_register,
)
from repro.workloads import random_block


class TestParseRegister:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("v0", VirtualReg(0, RegClass.INT)),
            ("vf12", VirtualReg(12, RegClass.FP)),
            ("r3", PhysReg(3, RegClass.INT)),
            ("f9", PhysReg(9, RegClass.FP)),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_register(text) == expected

    @pytest.mark.parametrize("text", ["x0", "v", "3", "vf", "rv1"])
    def test_invalid(self, text):
        with pytest.raises(IRParseError):
            parse_register(text)


class TestInstructionRoundTrip:
    @pytest.mark.parametrize(
        "line",
        [
            "load  vf3, A[v0+2]",
            "store vf4, B[v1-1]",
            "fadd  vf5, vf3, vf4",
            "li    v5, #7",
            "add   v6, v5, v0",
            "load  r1, __spill[0+3]  ; spill",
            "nop",
        ],
    )
    def test_round_trip(self, line):
        inst = parse_instruction(line)
        again = parse_instruction(format_instruction(inst))
        assert again.opcode is inst.opcode
        assert again.defs == inst.defs
        assert again.uses == inst.uses
        assert again.imm == inst.imm
        assert again.tag == inst.tag
        if inst.mem is not None:
            assert again.mem.region == inst.mem.region
            assert again.mem.offset == inst.mem.offset
            assert again.mem.base == inst.mem.base

    def test_unknown_opcode_rejected(self):
        with pytest.raises(IRParseError):
            parse_instruction("frobnicate v1, v2")

    def test_empty_rejected(self):
        with pytest.raises(IRParseError):
            parse_instruction("   ")

    def test_two_memory_operands_rejected(self):
        with pytest.raises(IRParseError):
            parse_instruction("load v1, A[v0+0], B[v0+0]")


class TestBlockRoundTrip:
    def test_header_preserved(self):
        block = BasicBlock("kernel", frequency=12.5)
        block.append(parse_instruction("li v0, #1"))
        text = format_block(block)
        again = parse_block(text)
        assert again.name == "kernel"
        assert again.frequency == 12.5
        assert len(again) == 1

    def test_headerless_text_defaults(self):
        block = parse_block("li v0, #1\nadd v1, v0, v0")
        assert block.name == "entry"
        assert block.frequency == 1.0
        assert len(block) == 2

    def test_random_blocks_round_trip(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            block = random_block(rng, n_instructions=12)
            again = parse_block(format_block(block))
            assert len(again) == len(block)
            for ours, theirs in zip(block.instructions, again.instructions):
                assert ours.opcode is theirs.opcode
                assert ours.defs == theirs.defs
                assert ours.uses == theirs.uses

    def test_empty_block_text_rejected(self):
        with pytest.raises(IRParseError):
            parse_block("\n\n")
