"""Unit tests for IR instructions and their constructors."""

import pytest

from repro.ir import (
    Instruction,
    MemRef,
    Opcode,
    RegClass,
    VirtualReg,
    alu,
    li,
    load,
    mov,
    nop,
    store,
)

A0 = MemRef(region="A", base=VirtualReg(0), offset=0)


class TestClassification:
    def test_load(self):
        inst = load(VirtualReg(1), A0)
        assert inst.is_load and not inst.is_store
        assert inst.is_mem

    def test_store(self):
        inst = store(VirtualReg(1), A0)
        assert inst.is_store and not inst.is_load
        assert inst.is_mem

    def test_alu_not_mem(self):
        inst = alu(Opcode.ADD, VirtualReg(2), (VirtualReg(0), VirtualReg(1)))
        assert not inst.is_mem and not inst.is_load and not inst.is_store

    def test_fp_classification(self):
        assert alu(Opcode.FADD, VirtualReg(1), ()).is_fp
        assert not alu(Opcode.ADD, VirtualReg(1), ()).is_fp

    def test_terminators(self):
        assert Instruction(Opcode.BRANCH).is_terminator
        assert Instruction(Opcode.RET).is_terminator
        assert not nop().is_terminator

    def test_spill_tag(self):
        assert load(VirtualReg(1), A0, tag="spill").is_spill
        assert not load(VirtualReg(1), A0).is_spill


class TestRegisterAccessors:
    def test_all_uses_includes_mem_base(self):
        inst = load(VirtualReg(1), A0)
        assert VirtualReg(0) in inst.all_uses()
        assert inst.uses == ()

    def test_store_uses_value_and_base(self):
        inst = store(VirtualReg(3), A0)
        assert set(inst.all_uses()) == {VirtualReg(3), VirtualReg(0)}

    def test_all_regs(self):
        inst = alu(Opcode.ADD, VirtualReg(2), (VirtualReg(0), VirtualReg(1)))
        assert set(inst.all_regs()) == {VirtualReg(0), VirtualReg(1), VirtualReg(2)}

    def test_with_registers_rewrites_mem_base(self):
        inst = load(VirtualReg(1), A0)
        rewritten = inst.with_registers(
            defs=[VirtualReg(9)], uses=[], mem_base=VirtualReg(8)
        )
        assert rewritten.defs == (VirtualReg(9),)
        assert rewritten.mem is not None
        assert rewritten.mem.base == VirtualReg(8)
        # Original untouched.
        assert inst.mem.base == VirtualReg(0)


class TestIdent:
    def test_generation_order_monotonic(self):
        first = nop()
        second = nop()
        assert second.ident > first.ident

    def test_copy_gets_fresh_ident(self):
        inst = load(VirtualReg(1), A0)
        clone = inst.copy()
        assert clone.ident != inst.ident
        assert clone.opcode is inst.opcode


class TestIssueSlots:
    def test_every_instruction_is_one_slot(self):
        for inst in (load(VirtualReg(1), A0), nop(), li(VirtualReg(0), 3)):
            assert inst.issue_slots == 1


class TestConstructors:
    def test_li_has_immediate(self):
        inst = li(VirtualReg(0), 7)
        assert inst.imm is not None and inst.imm.value == 7

    def test_mov(self):
        inst = mov(VirtualReg(1), VirtualReg(0))
        assert inst.defs == (VirtualReg(1),)
        assert inst.uses == (VirtualReg(0),)

    def test_alu_latency_override(self):
        inst = alu(Opcode.FMUL, VirtualReg(1), (), latency=4)
        assert inst.latency == 4

    def test_str_contains_opcode(self):
        assert "load" in str(load(VirtualReg(1), A0))
        assert "spill" in str(load(VirtualReg(1), A0, tag="spill"))
