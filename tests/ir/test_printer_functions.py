"""Tests for function/program-level textual rendering."""

from repro.frontend import compile_minif
from repro.ir import format_function, format_program

SOURCE = """
program render
  array a[16], b[16]
  kernel first freq 3
    t1 = a[i] + b[i]
    b[i] = t1
  end
  kernel second freq 7
    s = s + a[i]
  end
end
"""


def test_format_function_contains_blocks():
    program = compile_minif(SOURCE)
    text = format_function(program.functions[0])
    assert text.startswith("func first:")
    assert "block first freq 3:" in text
    assert "load" in text


def test_format_program_lists_every_function():
    program = compile_minif(SOURCE)
    text = format_program(program)
    assert text.startswith("program render:")
    assert "func first:" in text
    assert "func second:" in text
    assert "freq 7" in text


def test_rendering_is_indented_consistently():
    program = compile_minif(SOURCE)
    text = format_program(program)
    for line in text.splitlines():
        if line.strip().startswith(("load", "store", "fadd", "fmul", "li")):
            assert line.startswith("        "), line  # 2 + 2 + 4 spaces
