"""Tests for the reconstructed Figure 1/4/7 DAGs.

These verify every structural claim the paper's prose makes about the
example graphs; the weight/schedule claims themselves are covered in
``tests/core`` and ``tests/experiments``.
"""

from repro.analysis import build_dag, reachable
from repro.ir import verify_block
from repro.workloads import figure1_block, figure4_block, figure7_block, label_order


def inverse(labels):
    return {v: k for k, v in labels.items()}


class TestFigure1:
    def test_seven_nodes_two_loads(self, figure1):
        block, labels = figure1
        assert len(block) == 7
        assert len(block.loads) == 2
        verify_block(block)

    def test_loads_in_series(self, figure1):
        """L1 is dependent on L0 (the serial-loads example)."""
        block, labels = figure1
        dag = build_dag(block)
        inv = inverse(labels)
        assert inv["L1"] in dag.successors(inv["L0"])

    def test_x0_to_x3_independent_of_loads(self, figure1):
        block, labels = figure1
        dag = build_dag(block)
        inv = inverse(labels)
        for name in ("X0", "X1", "X2", "X3"):
            node = inv[name]
            for load_name in ("L0", "L1"):
                assert not reachable(dag, inv[load_name], node)
                assert not reachable(dag, node, inv[load_name])

    def test_x4_is_the_sink(self, figure1):
        block, labels = figure1
        dag = build_dag(block)
        inv = inverse(labels)
        assert dag.successors(inv["X4"]) == []
        assert len(dag.predecessors(inv["X4"])) == 5  # L1 + X0..X3


class TestFigure4:
    def test_loads_parallel(self, figure4):
        """'L0 and L1 are independent.'"""
        block, labels = figure4
        dag = build_dag(block)
        inv = inverse(labels)
        assert not reachable(dag, inv["L0"], inv["L1"])
        assert not reachable(dag, inv["L1"], inv["L0"])

    def test_each_load_parallel_with_five_instructions(self, figure4):
        """'each load instruction may execute in parallel with five
        other instructions' -> weight 1 + 5/1 = 6."""
        from repro.analysis.reachability import bits, closures, independent_mask

        block, labels = figure4
        dag = build_dag(block)
        inv = inverse(labels)
        preds, succs = closures(dag)
        for load_name in ("L0", "L1"):
            mask = independent_mask(dag, inv[load_name], preds, succs)
            assert len(list(bits(mask))) == 5


class TestFigure7:
    def test_ten_nodes_six_loads(self, figure7):
        block, labels = figure7
        assert len(block) == 10
        assert len(block.loads) == 6
        verify_block(block)

    def test_l1_isolated(self, figure7):
        block, labels = figure7
        dag = build_dag(block)
        inv = inverse(labels)
        assert dag.successors(inv["L1"]) == []
        assert dag.predecessors(inv["L1"]) == []

    def test_l2_is_predecessor_of_x1(self, figure7):
        """'L2 does not appear in a connected component because it is
        a predecessor of X1.'"""
        block, labels = figure7
        dag = build_dag(block)
        inv = inverse(labels)
        assert reachable(dag, inv["L2"], inv["X1"])

    def test_three_components_for_x1(self, figure7):
        """'step 4 generates the three connected components.'"""
        from repro.analysis import connected_components
        from repro.analysis.reachability import closures, independent_mask

        block, labels = figure7
        dag = build_dag(block)
        inv = inverse(labels)
        preds, succs = closures(dag)
        mask = independent_mask(dag, inv["X1"], preds, succs)
        comps = connected_components(dag, mask, dag.undirected_neighbor_masks())
        assert len(comps) == 3

    def test_four_load_path_for_l1(self, figure7):
        """For i = L1 the component holds the 4-load series that gives
        the 1/4 contributions of Table 1's L1 column."""
        from repro.analysis import connected_components, longest_load_path
        from repro.analysis.reachability import closures, independent_mask

        block, labels = figure7
        dag = build_dag(block)
        inv = inverse(labels)
        preds, succs = closures(dag)
        mask = independent_mask(dag, inv["L1"], preds, succs)
        comps = connected_components(dag, mask, dag.undirected_neighbor_masks())
        assert len(comps) == 1
        assert longest_load_path(dag, comps[0]) == 4


def test_label_order_helper(figure1):
    block, labels = figure1
    assert label_order(labels, [0, 1]) == ["L0", "L1"]
