"""Tests for the trace-scheduling demonstration CFG."""

import pytest

from repro.extensions import form_trace
from repro.ir import verify_block
from repro.workloads import hot_path_cfg


class TestHotPathCfg:
    def test_validates(self):
        hot_path_cfg().validate()

    def test_block_count(self):
        cfg = hot_path_cfg(n_hot_blocks=5)
        assert len(cfg.blocks) == 6  # five hot + cold

    def test_hot_path_frequencies_decay(self):
        cfg = hot_path_cfg(n_hot_blocks=4, hot_probability=0.9,
                           entry_frequency=100.0)
        freqs = [cfg.block(f"b{k}").frequency for k in range(3)]
        assert freqs[0] == pytest.approx(100.0)
        assert freqs[1] == pytest.approx(90.0)
        assert freqs[2] == pytest.approx(81.0)

    def test_final_block_collects_all_flow(self):
        cfg = hot_path_cfg(n_hot_blocks=3, entry_frequency=40.0)
        assert cfg.block("b2").frequency == pytest.approx(40.0)

    def test_cold_block_gets_residual_flow(self):
        cfg = hot_path_cfg(n_hot_blocks=3, hot_probability=0.9,
                           entry_frequency=100.0)
        # 10 from b0 plus 9 from b1.
        assert cfg.block("cold").frequency == pytest.approx(19.0)

    def test_hottest_path_is_the_hot_chain(self):
        cfg = hot_path_cfg(n_hot_blocks=4)
        assert cfg.hottest_path() == ["b0", "b1", "b2", "b3"]

    def test_trace_forms_and_verifies_blockwise(self):
        cfg = hot_path_cfg()
        for name in cfg.hottest_path():
            verify_block(cfg.block(name))
        trace = form_trace(cfg)
        assert len(trace.side_exits) == len(trace.source_blocks) - 1

    def test_needs_two_blocks(self):
        with pytest.raises(ValueError):
            hot_path_cfg(n_hot_blocks=1)

    def test_distinct_regions_keep_blocks_independent(self):
        """Each hot block touches its own region, so the only trace
        constraints are the side exits (maximum hoisting freedom)."""
        cfg = hot_path_cfg(n_hot_blocks=3)
        regions = set()
        for name in cfg.hottest_path():
            for inst in cfg.block(name):
                if inst.mem is not None:
                    regions.add(inst.mem.region)
        assert len(regions) == 3
