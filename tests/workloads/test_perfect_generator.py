"""Tests for the Perfect Club stand-ins and the random generators."""

import numpy as np
import pytest

from repro.analysis import build_dag
from repro.core import balanced_weights
from repro.ir import verify_block
from repro.workloads import (
    PROGRAM_ORDER,
    load_program,
    load_suite,
    program_names,
    random_block,
    random_dag,
)


class TestSuite:
    def test_eight_programs_in_paper_order(self):
        assert program_names() == list(PROGRAM_ORDER)
        assert len(program_names()) == 8

    def test_all_programs_compile_and_verify(self):
        for name, program in load_suite().items():
            assert program.name == name
            for block in program.all_blocks():
                verify_block(block)

    def test_unknown_program_rejected(self):
        with pytest.raises(KeyError):
            load_program("SPICE")

    def test_cache_returns_same_object(self):
        assert load_program("MDG") is load_program("MDG")

    def test_every_block_has_loads(self):
        for program in load_suite().values():
            for block in program.all_blocks():
                assert block.loads, f"{program.name}/{block.name} has no loads"

    def test_relative_sizes_match_paper(self):
        """MG3D dwarfs everything; TRACK is by far the smallest."""
        sizes = {
            name: program.total_instruction_count()
            for name, program in load_suite().items()
        }
        assert max(sizes, key=sizes.get) == "MG3D"
        assert min(sizes, key=sizes.get) == "TRACK"

    def test_weights_in_modest_ilp_regime(self):
        """DESIGN.md: the suite targets *typical* weights well below 30
        so the N(30,5) latency cannot be hidden (as in the paper).
        Individual pointer-table loads may score higher (they are
        independent of nearly everything), so the check is on the
        per-block median."""
        for program in load_suite().values():
            for function in program:
                dag = build_dag(function.blocks[0])
                weights = sorted(balanced_weights(dag).values())
                median = weights[len(weights) // 2]
                # BDNA's force kernel is the widest (median 29,
                # right at the N(30,5) boundary -- it is also the
                # program the paper shows benefiting there).
                assert median <= 30
                assert weights[-1] < 60

    def test_gather_programs_have_load_series(self):
        """MDG and QCD2 use neighbour-list gathers: Chances > 1."""
        from repro.analysis.components import longest_load_path

        for name in ("MDG", "QCD2"):
            program = load_program(name)
            dag = build_dag(program.functions[0].blocks[0])
            full = (1 << len(dag)) - 1
            assert longest_load_path(dag, full) >= 3


class TestRandomBlock:
    def test_blocks_verify(self, rng):
        for _ in range(25):
            verify_block(random_block(rng))

    def test_requested_length(self, rng):
        block = random_block(rng, n_instructions=17)
        assert len(block) == 17 + 0  # exactly n instructions

    def test_has_live_in_bases(self, rng):
        block = random_block(rng)
        assert block.live_in

    def test_deterministic_for_seed(self):
        a = random_block(np.random.default_rng(5))
        b = random_block(np.random.default_rng(5))
        assert [str(i) for i in a] == [str(i) for i in b]


class TestRandomDag:
    def test_acyclic(self, rng):
        for _ in range(20):
            random_dag(rng).check_acyclic()

    def test_load_fraction_extremes(self, rng):
        all_loads = random_dag(rng, load_fraction=1.0)
        assert len(all_loads.load_nodes()) == len(all_loads)
        no_loads = random_dag(rng, load_fraction=0.0)
        assert no_loads.load_nodes() == []

    def test_edge_probability_extremes(self, rng):
        dense = random_dag(rng, n_nodes=8, edge_probability=1.0)
        assert dense.edge_count() == 8 * 7 // 2
        sparse = random_dag(rng, n_nodes=8, edge_probability=0.0)
        assert sparse.edge_count() == 0
