"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend import compile_minif
from repro.workloads import figure1_block, figure4_block, figure7_block


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(20250607)


@pytest.fixture
def figure1():
    """(block, labels) of the paper's Figure 1 DAG."""
    return figure1_block()


@pytest.fixture
def figure4():
    return figure4_block()


@pytest.fixture
def figure7():
    return figure7_block()


SAXPY_SOURCE = """
program saxpy
  array a[1024], b[1024], c[1024]
  kernel body freq 100 unroll 2
    t1 = a[i] * x0
    c[i] = t1 + b[i]
  end
end
"""


@pytest.fixture
def saxpy_block():
    """A small realistic block from the frontend."""
    program = compile_minif(SAXPY_SOURCE)
    return program.functions[0].blocks[0]


REDUCTION_SOURCE = """
program dot
  array a[1024], b[1024]
  kernel body freq 10 unroll 4
    s = s + a[i] * b[i]
  end
end
"""


@pytest.fixture
def reduction_block():
    """An unrolled reduction (serial spine) block."""
    program = compile_minif(REDUCTION_SOURCE)
    return program.functions[0].blocks[0]
