"""Tests for the memory-system latency models."""

import numpy as np
import pytest

from repro.machine import (
    CacheMemory,
    FixedMemory,
    MIN_LATENCY,
    MixedMemory,
    NetworkMemory,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestFixedMemory:
    def test_constant(self, rng):
        mem = FixedMemory(4)
        assert set(mem.sample_many(rng, 100)) == {4}
        assert mem.mean_latency == 4.0

    def test_rejects_sub_unit(self):
        with pytest.raises(ValueError):
            FixedMemory(0)


class TestCacheMemory:
    def test_only_hit_and_miss_values(self, rng):
        mem = CacheMemory(0.8, 2, 10)
        samples = mem.sample_many(rng, 2000)
        assert set(np.unique(samples)) == {2, 10}

    def test_hit_rate_respected(self, rng):
        mem = CacheMemory(0.8, 2, 10)
        samples = mem.sample_many(rng, 20_000)
        hit_fraction = (samples == 2).mean()
        assert hit_fraction == pytest.approx(0.8, abs=0.02)

    def test_effective_access_times_match_paper(self):
        assert CacheMemory(0.80, 2, 5).mean_latency == pytest.approx(2.6)
        assert CacheMemory(0.80, 2, 10).mean_latency == pytest.approx(3.6)
        assert CacheMemory(0.95, 2, 5).mean_latency == pytest.approx(2.15)
        assert CacheMemory(0.95, 2, 10).mean_latency == pytest.approx(2.4)

    def test_optimistic_latencies_hit_then_effective(self):
        mem = CacheMemory(0.80, 2, 5)
        assert mem.optimistic_latencies == (2.0, 2.6)

    def test_name(self):
        assert CacheMemory(0.8, 2, 5).name == "L80(2,5)"

    def test_degenerate_hit_rates(self, rng):
        always_hit = CacheMemory(1.0, 2, 10)
        assert set(always_hit.sample_many(rng, 50)) == {2}
        always_miss = CacheMemory(0.0, 2, 10)
        assert set(always_miss.sample_many(rng, 50)) == {10}

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheMemory(1.5, 2, 5)
        with pytest.raises(ValueError):
            CacheMemory(0.8, 5, 2)


class TestNetworkMemory:
    def test_samples_clamped_at_one(self, rng):
        mem = NetworkMemory(2, 5)
        samples = mem.sample_many(rng, 5000)
        assert samples.min() >= MIN_LATENCY

    def test_sample_mean_near_parameter(self, rng):
        mem = NetworkMemory(30, 5)
        samples = mem.sample_many(rng, 20_000)
        assert samples.mean() == pytest.approx(30, abs=0.2)

    def test_integer_samples(self, rng):
        samples = NetworkMemory(5, 2).sample_many(rng, 100)
        assert samples.dtype == np.int64

    def test_zero_std_is_deterministic(self, rng):
        samples = NetworkMemory(7, 0).sample_many(rng, 50)
        assert set(samples) == {7}

    def test_optimistic_latency_is_mean(self):
        assert NetworkMemory(5, 2).optimistic_latencies == (5.0,)

    def test_name(self):
        assert NetworkMemory(30, 5).name == "N(30,5)"

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkMemory(0.5, 2)
        with pytest.raises(ValueError):
            NetworkMemory(5, -1)


class TestMixedMemory:
    def test_hits_are_hit_latency(self, rng):
        mem = MixedMemory(0.80, 2, 30, 5)
        samples = mem.sample_many(rng, 20_000)
        assert (samples == 2).mean() == pytest.approx(0.8, abs=0.02)

    def test_paper_mean_is_7_6(self):
        mem = MixedMemory(0.80, 2, 30, 5)
        assert mem.mean_latency == pytest.approx(7.6)
        assert mem.optimistic_latencies == (2.0, 7.6)

    def test_misses_follow_network(self, rng):
        mem = MixedMemory(0.80, 2, 30, 5)
        samples = mem.sample_many(rng, 20_000)
        misses = samples[samples != 2]
        assert misses.mean() == pytest.approx(30, abs=0.5)

    def test_name(self):
        assert MixedMemory(0.80, 2, 30, 5).name == "L80-N(30,5)"


class TestDeterminism:
    def test_same_seed_same_samples(self):
        mem = CacheMemory(0.8, 2, 10)
        a = mem.sample_many(np.random.default_rng(7), 100)
        b = mem.sample_many(np.random.default_rng(7), 100)
        assert (a == b).all()
