"""Tests for processor models and the named paper configurations."""

import pytest

from repro.machine import (
    ALL_SYSTEMS,
    CACHE_SYSTEMS,
    LEN_8,
    MAX_8,
    MIXED_SYSTEMS,
    NETWORK_SYSTEMS,
    PAPER_PROCESSORS,
    ProcessorModel,
    SYSTEMS_BY_NAME,
    UNLIMITED,
    paper_system_rows,
    superscalar,
    system_row,
)


class TestProcessorModels:
    def test_unlimited_has_no_limits(self):
        assert UNLIMITED.max_outstanding_loads is None
        assert UNLIMITED.max_load_cycles is None
        assert UNLIMITED.issue_width == 1

    def test_max8(self):
        assert MAX_8.max_outstanding_loads == 8
        assert MAX_8.max_load_cycles is None

    def test_len8(self):
        assert LEN_8.max_load_cycles == 8
        assert LEN_8.max_outstanding_loads is None

    def test_paper_processors_order(self):
        assert [p.name for p in PAPER_PROCESSORS] == [
            "UNLIMITED",
            "MAX-8",
            "LEN-8",
        ]

    def test_superscalar_wraps_base(self):
        wide = superscalar(4, MAX_8)
        assert wide.issue_width == 4
        assert wide.max_outstanding_loads == 8
        assert "x4" in wide.name

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorModel("bad", issue_width=0)
        with pytest.raises(ValueError):
            ProcessorModel("bad", max_outstanding_loads=0)
        with pytest.raises(ValueError):
            ProcessorModel("bad", max_load_cycles=0)


class TestPaperSystems:
    def test_twelve_memory_systems(self):
        assert len(ALL_SYSTEMS) == 12
        assert len(CACHE_SYSTEMS) == 4
        assert len(NETWORK_SYSTEMS) == 7
        assert len(MIXED_SYSTEMS) == 1

    def test_seventeen_table_rows(self):
        """4 caches x 2 latencies + 7 networks x 1 + mixed x 2 = 17."""
        rows = paper_system_rows()
        assert len(rows) == 17

    def test_row_latencies_match_paper(self):
        labels = [row.label for row in paper_system_rows()]
        for expected in (
            "L80(2,5) @ 2",
            "L80(2,5) @ 2.6",
            "L80(2,10) @ 3.6",
            "L95(2,5) @ 2.15",
            "L95(2,10) @ 2.4",
            "N(30,5) @ 30",
            "L80-N(30,5) @ 7.6",
        ):
            assert expected in labels

    def test_groups_cover_all_rows(self):
        groups = {row.group for row in paper_system_rows()}
        assert groups == {
            "Data cache; bus-based interconnection",
            "No cache; network interconnection",
            "Mixed",
        }

    def test_lookup_by_name(self):
        assert SYSTEMS_BY_NAME["N(30,5)"].mean_latency == 30

    def test_system_row_lookup(self):
        row = system_row("L80(2,5)", 2.6)
        assert row.memory.name == "L80(2,5)"
        assert row.optimistic_latency == 2.6
        with pytest.raises(KeyError):
            system_row("L99(1,1)", 1)
