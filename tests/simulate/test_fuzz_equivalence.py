"""Scalar-vs-batch equivalence driven by the fuzz generator and by
pinned degenerate fixtures.

``tests/simulate/test_batch_equivalence.py`` already covers random IR
blocks; this file ports the same exactness contract onto the *minif*
path the fuzzer exercises -- real pipeline output (scheduling, spills,
second pass) rather than generator-shaped IR -- and pins the
degenerate block shapes a suite-derived corpus never produces: empty
blocks, single-instruction blocks, all-load chains, maximum-width
anti-dependence fans into one cell, and kernels whose load runs
overflow the LEN/MAX windows.
"""

import glob
import os

import pytest

from repro.core import BalancedScheduler
from repro.core.pipeline import compile_program
from repro.frontend import compile_minif
from repro.frontend.printer import format_program_ast
from repro.machine.processor import (
    LEN_8,
    MAX_8,
    ProcessorModel,
    delay_tracking,
    superscalar,
)
from repro.simulate import (
    batch_native,
    simulate_block,
    simulate_block_batch,
)
from repro.simulate.rng import spawn
from repro.verify.fuzz import (
    FUZZ_MEMORIES,
    FUZZ_PROCESSORS,
    Mismatch,
    check_source,
    random_ast,
    write_artifact,
)
from repro.verify.shrink import shrink_source

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")
FIXTURES = sorted(glob.glob(os.path.join(FIXTURE_DIR, "*.mf")))

RUNS = 5


def _fixture_source(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _assert_scalar_batch_agree(block, processor, memory, key):
    n_loads = len(block.loads)
    rng = spawn("fuzz-equivalence", *key)
    latencies = memory.sample_many(rng, n_loads * RUNS).reshape(RUNS, n_loads)
    batch = simulate_block_batch(block.instructions, latencies, processor)
    for run in range(RUNS):
        scalar = simulate_block(
            block.instructions, [int(x) for x in latencies[run]], processor
        )
        assert scalar.cycles == int(batch.cycles[run]), (
            f"{key}: run {run} cycles {scalar.cycles} != "
            f"{int(batch.cycles[run])} on {processor.name}/{memory.name}"
        )
        assert scalar.interlock_cycles == int(batch.interlocks[run]), (
            f"{key}: run {run} interlocks diverge on "
            f"{processor.name}/{memory.name}"
        )


@pytest.mark.parametrize(
    "path", FIXTURES, ids=[os.path.basename(p) for p in FIXTURES]
)
def test_fixture_inventory_and_full_differential_check(path):
    """Every pinned fixture passes the fuzzer's whole check (legality
    oracle on six compilations + scalar/batch agreement)."""
    assert len(FIXTURES) >= 5, "degenerate fixture set went missing"
    assert check_source(_fixture_source(path), seed=11, runs=2) == []


@pytest.mark.parametrize("processor", FUZZ_PROCESSORS, ids=lambda p: p.name)
@pytest.mark.parametrize(
    "path", FIXTURES, ids=[os.path.basename(p) for p in FIXTURES]
)
def test_fixture_scalar_batch_exact(path, processor):
    """Direct per-run comparison on every (fixture, processor) pair,
    independent of check_source's memory rotation."""
    program = compile_minif(_fixture_source(path))
    compiled = compile_program(program, BalancedScheduler())
    for index, block in enumerate(compiled.final_blocks):
        memory = FUZZ_MEMORIES[index % len(FUZZ_MEMORIES)]
        _assert_scalar_batch_agree(
            block, processor, memory,
            key=(os.path.basename(path), block.name, processor.name),
        )


def test_empty_block_simulates_to_zero():
    program = compile_minif(_fixture_source(
        os.path.join(FIXTURE_DIR, "empty.mf")
    ))
    compiled = compile_program(program, BalancedScheduler())
    for block in compiled.final_blocks:
        for processor in FUZZ_PROCESSORS:
            if not batch_native(processor):
                continue
            _assert_scalar_batch_agree(
                block, processor, FUZZ_MEMORIES[0],
                key=("empty", block.name, processor.name),
            )


# ----------------------------------------------------------------------
# Superscalar: fuzz-generated programs, widths 2/4/8 crossed with every
# memory family; failures are shrunk and written as replayable
# artifacts under results/fuzz/ like any other fuzz finding.
# ----------------------------------------------------------------------
SUPERSCALAR_WIDTHS = (2, 4, 8)

#: Artifact seed namespace for this test file (disjoint from CLI fuzz
#: runs, so a written artifact is attributable at a glance).
_ARTIFACT_SEED = 930601


def _superscalar_processors(width):
    """Every memory-constraint family at one issue width (BLOCKING
    included: both simulators must agree to ignore ``blocking_loads``
    at width > 1)."""
    return (
        superscalar(width),
        superscalar(width, MAX_8),
        superscalar(width, LEN_8),
        ProcessorModel(
            f"MAX-2x{width}", max_outstanding_loads=2, issue_width=width
        ),
        ProcessorModel(
            f"LEN-3x{width}", max_load_cycles=3, issue_width=width
        ),
        ProcessorModel(
            f"BLOCKINGx{width}", blocking_loads=True, issue_width=width
        ),
    )


def _superscalar_mismatches(source, width, seed):
    """Scalar-vs-batch divergences on every (block, processor, memory)
    triple: the fuzz harness's cycles check, restricted to superscalar
    models but crossing *all* memory families instead of rotating."""
    program = compile_minif(source)
    compiled = compile_program(program, BalancedScheduler())
    mismatches = []
    for block in compiled.final_blocks:
        n_loads = len(block.loads)
        for processor in _superscalar_processors(width):
            for memory in FUZZ_MEMORIES:
                rng = spawn(
                    "fuzz-ss", seed, block.name, processor.name, memory.name
                )
                latencies = memory.sample_many(rng, n_loads * RUNS).reshape(
                    RUNS, n_loads
                )
                batch = simulate_block_batch(
                    block.instructions, latencies, processor
                )
                for run in range(RUNS):
                    scalar = simulate_block(
                        block.instructions,
                        [int(x) for x in latencies[run]],
                        processor,
                    )
                    if (
                        scalar.cycles != int(batch.cycles[run])
                        or scalar.interlock_cycles != int(batch.interlocks[run])
                    ):
                        mismatches.append(Mismatch(
                            "cycles",
                            f"superscalar scalar/batch divergence: block "
                            f"{block.name}, {processor.name}, "
                            f"{memory.name}, run {run}",
                            expected=(
                                f"cycles={scalar.cycles} "
                                f"interlocks={scalar.interlock_cycles}"
                            ),
                            actual=(
                                f"cycles={int(batch.cycles[run])} "
                                f"interlocks={int(batch.interlocks[run])}"
                            ),
                        ))
    return mismatches


@pytest.mark.parametrize("width", SUPERSCALAR_WIDTHS)
@pytest.mark.parametrize("seed", range(4))
def test_fuzz_superscalar_widths_across_memory_families(width, seed):
    """Seeded fuzz programs through the real pipeline, then scalar vs.
    batch on superscalar models at this width crossed with all four
    memory families; a failure is shrunk and persisted as a replayable
    ``results/fuzz/`` artifact before the test fails."""
    ast = random_ast(
        spawn("fuzz-superscalar-gen", width, seed), max_statements=4
    )
    source = format_program_ast(ast)
    mismatches = _superscalar_mismatches(source, width, seed)
    if mismatches:
        shrunk = shrink_source(
            source,
            lambda text: bool(_superscalar_mismatches(text, width, seed)),
        )
        path = write_artifact(
            os.path.join("results", "fuzz"),
            _ARTIFACT_SEED,
            width * 100 + seed,
            source,
            shrunk,
            mismatches,
            RUNS,
        )
        pytest.fail(
            f"superscalar scalar/batch divergence (width {width}, seed "
            f"{seed}); shrunk artifact written to {path}:\n"
            + "\n".join(str(m) for m in mismatches[:5])
        )


# ----------------------------------------------------------------------
# Delay-tracking: fuzz-generated programs, table sizes crossed with
# issue widths 1/2/4 and every memory-constraint family; failures are
# shrunk and written as replayable artifacts like any other finding.
# ----------------------------------------------------------------------
DELAYTRACK_WIDTHS = (1, 2, 4)


def _delaytrack_processors(width):
    """Tight and saturating tracking tables over every memory-constraint
    family at one issue width (BLOCKING included: at width 1 a blocking
    machine must be unchanged by tracking; at width > 1 both simulators
    must agree to ignore ``blocking_loads``)."""
    base_width = superscalar(width) if width > 1 else None
    processors = []
    for table in (1, 8):
        processors.extend((
            delay_tracking(table, base_width) if base_width is not None
            else delay_tracking(table),
            delay_tracking(table, ProcessorModel(
                f"MAX-2x{width}" if width > 1 else "MAX-2",
                max_outstanding_loads=2, issue_width=width,
            )),
            delay_tracking(table, ProcessorModel(
                f"LEN-3x{width}" if width > 1 else "LEN-3",
                max_load_cycles=3, issue_width=width,
            )),
            delay_tracking(table, ProcessorModel(
                f"BLOCKINGx{width}" if width > 1 else "BLOCKING",
                blocking_loads=True, issue_width=width,
            )),
        ))
    return tuple(processors)


def _delaytrack_mismatches(source, width, seed):
    """Scalar-vs-batch divergences on every (block, processor, memory)
    triple for the delay-tracking crosses at one issue width."""
    program = compile_minif(source)
    compiled = compile_program(program, BalancedScheduler())
    mismatches = []
    for block in compiled.final_blocks:
        n_loads = len(block.loads)
        for processor in _delaytrack_processors(width):
            for memory in FUZZ_MEMORIES:
                rng = spawn(
                    "fuzz-dt", seed, block.name, processor.name, memory.name
                )
                latencies = memory.sample_many(rng, n_loads * RUNS).reshape(
                    RUNS, n_loads
                )
                batch = simulate_block_batch(
                    block.instructions, latencies, processor
                )
                for run in range(RUNS):
                    scalar = simulate_block(
                        block.instructions,
                        [int(x) for x in latencies[run]],
                        processor,
                    )
                    if (
                        scalar.cycles != int(batch.cycles[run])
                        or scalar.interlock_cycles != int(batch.interlocks[run])
                    ):
                        mismatches.append(Mismatch(
                            "cycles",
                            f"delaytrack scalar/batch divergence: block "
                            f"{block.name}, {processor.name}, "
                            f"{memory.name}, run {run}",
                            expected=(
                                f"cycles={scalar.cycles} "
                                f"interlocks={scalar.interlock_cycles}"
                            ),
                            actual=(
                                f"cycles={int(batch.cycles[run])} "
                                f"interlocks={int(batch.interlocks[run])}"
                            ),
                        ))
    return mismatches


@pytest.mark.parametrize("width", DELAYTRACK_WIDTHS)
@pytest.mark.parametrize("seed", range(3))
def test_fuzz_delaytrack_tables_across_memory_families(width, seed):
    """Seeded fuzz programs through the real pipeline, then scalar vs.
    batch on delay-tracking models (tables 1 and 8, all four
    memory-constraint families) at this width crossed with all five
    fuzz memory systems; a failure is shrunk and persisted as a
    replayable ``results/fuzz/`` artifact before the test fails."""
    ast = random_ast(
        spawn("fuzz-delaytrack-gen", width, seed), max_statements=4
    )
    source = format_program_ast(ast)
    mismatches = _delaytrack_mismatches(source, width, seed)
    if mismatches:
        shrunk = shrink_source(
            source,
            lambda text: bool(_delaytrack_mismatches(text, width, seed)),
        )
        path = write_artifact(
            os.path.join("results", "fuzz"),
            _ARTIFACT_SEED,
            1000 + width * 100 + seed,
            source,
            shrunk,
            mismatches,
            RUNS,
        )
        pytest.fail(
            f"delaytrack scalar/batch divergence (width {width}, seed "
            f"{seed}); shrunk artifact written to {path}:\n"
            + "\n".join(str(m) for m in mismatches[:5])
        )


# ----------------------------------------------------------------------
# The exact-backend cross: fuzz-generated programs through the optimal
# scheduler's legality + cost-chain checks, failures shrunk and written
# to results/fuzz/ like any other fuzz finding.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(6))
def test_fuzz_optimal_cross_legality_and_cost_chain(seed):
    """Seeded fuzz programs against the branch-and-bound backend: the
    two-pass pipeline under the optimal policy must be oracle-clean in
    both alias models, and on every block the cost chain
    ``lower_bound <= optimal <= balanced <= worst list schedule`` must
    hold under both memory models.  A failure is shrunk and persisted
    as a replayable ``results/fuzz/`` artifact before the test fails."""
    from repro.verify.fuzz import _check_optimal_cross

    def optimal_mismatches(text):
        return _check_optimal_cross(compile_minif(text))

    ast = random_ast(spawn("fuzz-optimal-gen", seed), max_statements=4)
    source = format_program_ast(ast)
    mismatches = optimal_mismatches(source)
    if mismatches:
        shrunk = shrink_source(
            source, lambda text: bool(optimal_mismatches(text))
        )
        path = write_artifact(
            os.path.join("results", "fuzz"),
            _ARTIFACT_SEED,
            900 + seed,
            source,
            shrunk,
            mismatches,
            RUNS,
        )
        pytest.fail(
            f"optimal-policy cross failed (seed {seed}); shrunk artifact "
            f"written to {path}:\n"
            + "\n".join(str(m) for m in mismatches[:5])
        )


@pytest.mark.parametrize("seed", range(10))
def test_generated_programs_scalar_batch_exact(seed):
    """The fuzz generator's own output, checked directly (a fast,
    deterministic slice of what `balanced-sched fuzz` sweeps)."""
    ast = random_ast(spawn("fuzz-equivalence-gen", seed), max_statements=4)
    program = compile_minif(format_program_ast(ast))
    compiled = compile_program(program, BalancedScheduler())
    for index, block in enumerate(compiled.final_blocks):
        processor = FUZZ_PROCESSORS[index % len(FUZZ_PROCESSORS)]
        memory = FUZZ_MEMORIES[(seed + index) % len(FUZZ_MEMORIES)]
        _assert_scalar_batch_agree(
            block, processor, memory,
            key=("gen", seed, block.name, processor.name),
        )
