"""Scalar-vs-batch equivalence driven by the fuzz generator and by
pinned degenerate fixtures.

``tests/simulate/test_batch_equivalence.py`` already covers random IR
blocks; this file ports the same exactness contract onto the *minif*
path the fuzzer exercises -- real pipeline output (scheduling, spills,
second pass) rather than generator-shaped IR -- and pins the
degenerate block shapes a suite-derived corpus never produces: empty
blocks, single-instruction blocks, all-load chains, maximum-width
anti-dependence fans into one cell, and kernels whose load runs
overflow the LEN/MAX windows.
"""

import glob
import os

import pytest

from repro.core import BalancedScheduler
from repro.core.pipeline import compile_program
from repro.frontend import compile_minif
from repro.frontend.printer import format_program_ast
from repro.simulate import (
    batch_native,
    simulate_block,
    simulate_block_batch,
)
from repro.simulate.rng import spawn
from repro.verify.fuzz import (
    FUZZ_MEMORIES,
    FUZZ_PROCESSORS,
    check_source,
    random_ast,
)

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")
FIXTURES = sorted(glob.glob(os.path.join(FIXTURE_DIR, "*.mf")))

RUNS = 5


def _fixture_source(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _assert_scalar_batch_agree(block, processor, memory, key):
    n_loads = len(block.loads)
    rng = spawn("fuzz-equivalence", *key)
    latencies = memory.sample_many(rng, n_loads * RUNS).reshape(RUNS, n_loads)
    batch = simulate_block_batch(block.instructions, latencies, processor)
    for run in range(RUNS):
        scalar = simulate_block(
            block.instructions, [int(x) for x in latencies[run]], processor
        )
        assert scalar.cycles == int(batch.cycles[run]), (
            f"{key}: run {run} cycles {scalar.cycles} != "
            f"{int(batch.cycles[run])} on {processor.name}/{memory.name}"
        )
        assert scalar.interlock_cycles == int(batch.interlocks[run]), (
            f"{key}: run {run} interlocks diverge on "
            f"{processor.name}/{memory.name}"
        )


@pytest.mark.parametrize(
    "path", FIXTURES, ids=[os.path.basename(p) for p in FIXTURES]
)
def test_fixture_inventory_and_full_differential_check(path):
    """Every pinned fixture passes the fuzzer's whole check (legality
    oracle on six compilations + scalar/batch agreement)."""
    assert len(FIXTURES) >= 5, "degenerate fixture set went missing"
    assert check_source(_fixture_source(path), seed=11, runs=2) == []


@pytest.mark.parametrize("processor", FUZZ_PROCESSORS, ids=lambda p: p.name)
@pytest.mark.parametrize(
    "path", FIXTURES, ids=[os.path.basename(p) for p in FIXTURES]
)
def test_fixture_scalar_batch_exact(path, processor):
    """Direct per-run comparison on every (fixture, processor) pair,
    independent of check_source's memory rotation."""
    program = compile_minif(_fixture_source(path))
    compiled = compile_program(program, BalancedScheduler())
    for index, block in enumerate(compiled.final_blocks):
        memory = FUZZ_MEMORIES[index % len(FUZZ_MEMORIES)]
        _assert_scalar_batch_agree(
            block, processor, memory,
            key=(os.path.basename(path), block.name, processor.name),
        )


def test_empty_block_simulates_to_zero():
    program = compile_minif(_fixture_source(
        os.path.join(FIXTURE_DIR, "empty.mf")
    ))
    compiled = compile_program(program, BalancedScheduler())
    for block in compiled.final_blocks:
        for processor in FUZZ_PROCESSORS:
            if not batch_native(processor):
                continue
            _assert_scalar_batch_agree(
                block, processor, FUZZ_MEMORIES[0],
                key=("empty", block.name, processor.name),
            )


@pytest.mark.parametrize("seed", range(10))
def test_generated_programs_scalar_batch_exact(seed):
    """The fuzz generator's own output, checked directly (a fast,
    deterministic slice of what `balanced-sched fuzz` sweeps)."""
    ast = random_ast(spawn("fuzz-equivalence-gen", seed), max_statements=4)
    program = compile_minif(format_program_ast(ast))
    compiled = compile_program(program, BalancedScheduler())
    for index, block in enumerate(compiled.final_blocks):
        processor = FUZZ_PROCESSORS[index % len(FUZZ_PROCESSORS)]
        memory = FUZZ_MEMORIES[(seed + index) % len(FUZZ_MEMORIES)]
        _assert_scalar_batch_agree(
            block, processor, memory,
            key=("gen", seed, block.name, processor.name),
        )
