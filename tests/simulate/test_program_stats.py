"""Tests for program-level simulation and the bootstrap statistics."""

import numpy as np
import pytest

from repro.machine import FixedMemory, NetworkMemory, UNLIMITED
from repro.simulate import (
    BlockSamples,
    ImprovementResult,
    ProgramRuns,
    bootstrap_means,
    compare_runs,
    percentage_improvement,
    program_bootstrap_runtimes,
    sample_block,
    simulate_program,
    spawn,
)
from repro.workloads import load_program


@pytest.fixture
def mdg_blocks():
    from repro.core import BalancedScheduler, compile_program

    program = load_program("MDG")
    return compile_program(program, BalancedScheduler()).final_blocks


class TestSampleBlock:
    def test_runs_shape(self, mdg_blocks):
        rng = spawn("test", "sample")
        samples = sample_block(mdg_blocks[0], UNLIMITED, FixedMemory(2), rng, runs=7)
        assert samples.cycles.shape == (7,)
        assert samples.interlocks.shape == (7,)

    def test_fixed_memory_deterministic_across_runs(self, mdg_blocks):
        rng = spawn("test", "fixed")
        samples = sample_block(mdg_blocks[0], UNLIMITED, FixedMemory(3), rng, runs=5)
        assert len(set(samples.cycles.tolist())) == 1

    def test_random_memory_varies(self, mdg_blocks):
        rng = spawn("test", "vary")
        samples = sample_block(
            mdg_blocks[0], UNLIMITED, NetworkMemory(5, 5), rng, runs=20
        )
        assert len(set(samples.cycles.tolist())) > 1

    def test_cycles_at_least_instructions(self, mdg_blocks):
        rng = spawn("test", "floor")
        for block in mdg_blocks:
            samples = sample_block(block, UNLIMITED, NetworkMemory(5, 2), rng, runs=5)
            assert (samples.cycles >= len(block)).all()


class TestProgramRuns:
    def test_weighted_cycles_scale_by_frequency(self, mdg_blocks):
        rng = spawn("test", "weighted")
        runs = simulate_program(mdg_blocks, UNLIMITED, FixedMemory(2), rng, runs=3)
        manual = sum(
            s.frequency * s.cycles[0] for s in runs.blocks
        )
        assert runs.weighted_cycles()[0] == pytest.approx(manual)

    def test_interlock_percentage_bounds(self, mdg_blocks):
        rng = spawn("test", "ipct")
        runs = simulate_program(
            mdg_blocks, UNLIMITED, NetworkMemory(30, 5), rng, runs=5
        )
        assert 0 <= runs.interlock_percentage() <= 100

    def test_dynamic_instructions(self, mdg_blocks):
        rng = spawn("test", "dyn")
        runs = simulate_program(mdg_blocks, UNLIMITED, FixedMemory(2), rng, runs=2)
        expected = sum(len(b) * b.frequency for b in mdg_blocks)
        assert runs.dynamic_instructions == pytest.approx(expected)


class TestBootstrap:
    def test_shape_and_range(self):
        rng = np.random.default_rng(0)
        samples = np.array([10.0, 12.0, 14.0])
        means = bootstrap_means(samples, rng, n_boot=100)
        assert means.shape == (100,)
        assert means.min() >= 10.0
        assert means.max() <= 14.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_means(np.array([]), np.random.default_rng(0))

    def test_program_bootstrap_sums_blocks(self, mdg_blocks):
        rng = spawn("test", "boot")
        runs = simulate_program(mdg_blocks, UNLIMITED, FixedMemory(2), rng, runs=5)
        boot = program_bootstrap_runtimes(runs, spawn("test", "boot2"), n_boot=50)
        assert boot.shape == (50,)
        # Deterministic latencies: every bootstrap mean is the runtime.
        assert np.allclose(boot, runs.weighted_cycles()[0])


class TestImprovement:
    def test_positive_when_balanced_faster(self):
        trad = np.full(100, 200.0)
        bal = np.full(100, 150.0)
        result = percentage_improvement(trad, bal)
        assert result.mean == pytest.approx(25.0)
        assert result.ci_low == pytest.approx(25.0)
        assert result.significant

    def test_negative_when_balanced_slower(self):
        result = percentage_improvement(np.full(10, 100.0), np.full(10, 110.0))
        assert result.mean == pytest.approx(-10.0)

    def test_ci_brackets_mean(self):
        rng = np.random.default_rng(3)
        trad = rng.normal(100, 5, 100)
        bal = rng.normal(90, 5, 100)
        result = percentage_improvement(trad, bal)
        assert result.ci_low <= result.mean <= result.ci_high

    def test_insignificant_straddles_zero(self):
        rng = np.random.default_rng(4)
        trad = rng.normal(100, 10, 100)
        bal = trad + rng.normal(0, 10, 100)
        result = percentage_improvement(trad, bal)
        assert not result.significant

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            percentage_improvement(np.zeros(5), np.zeros(6))

    def test_str_format(self):
        result = ImprovementResult(mean=5.0, ci_low=3.0, ci_high=7.0)
        assert "5.0" in str(result)


class TestCompareRuns:
    def test_end_to_end(self, mdg_blocks):
        rng_a = spawn("cmp", "a")
        rng_b = spawn("cmp", "b")
        slow = simulate_program(mdg_blocks, UNLIMITED, FixedMemory(9), rng_a, runs=5)
        fast = simulate_program(mdg_blocks, UNLIMITED, FixedMemory(2), rng_b, runs=5)
        result = compare_runs(slow, fast, spawn("cmp", "boot"))
        assert result.mean > 0


class TestSpawn:
    def test_same_key_same_stream(self):
        a = spawn("x", 1).integers(0, 1 << 30, 5)
        b = spawn("x", 1).integers(0, 1 << 30, 5)
        assert (a == b).all()

    def test_different_keys_differ(self):
        a = spawn("x", 1).integers(0, 1 << 30, 5)
        b = spawn("x", 2).integers(0, 1 << 30, 5)
        assert not (a == b).all()

    def test_seed_changes_stream(self):
        a = spawn("x", seed=1).integers(0, 1 << 30, 5)
        b = spawn("x", seed=2).integers(0, 1 << 30, 5)
        assert not (a == b).all()
