"""Round-trip tests for trace serialisation and replay.

A trace produced by a seeded run must survive ``to_dict`` -> JSON ->
``from_dict`` byte-for-byte, and the reloaded trace's observed load
latencies must replay through :func:`trace_block` to *identical* cycle
counts -- on straight-line schedules and on spliced trace-scheduling
blocks alike.
"""

import json

from repro.core import BalancedScheduler, TraditionalScheduler
from repro.extensions.trace import form_trace, schedule_trace
from repro.machine import LEN_8, MAX_8, NetworkMemory, UNLIMITED
from repro.simulate.trace import BlockTrace, StallReason, trace_block
from repro.workloads import load_program, random_block

from tests.extensions.test_trace import hot_path_cfg


def _scheduled_suite_block(policy=None):
    block = next(iter(next(iter(load_program("MDG")))))
    policy = policy or BalancedScheduler()
    return policy.schedule_block(block).block


def _round_trip(trace, instructions):
    """to_dict -> JSON text -> from_dict, as a tool would do on disk."""
    payload = json.loads(json.dumps(trace.to_dict()))
    return BlockTrace.from_dict(payload, instructions)


class TestSimulateTraceRoundTrip:
    def test_json_round_trip_is_lossless(self, rng):
        block = _scheduled_suite_block()
        n_loads = sum(1 for i in block if i.is_load)
        latencies = NetworkMemory(30, 5).sample_many(rng, n_loads)
        trace = trace_block(block.instructions, latencies, UNLIMITED)
        reloaded = _round_trip(trace, block.instructions)
        assert reloaded.cycles == trace.cycles
        assert reloaded.interlock_cycles == trace.interlock_cycles
        assert reloaded.to_dict() == trace.to_dict()

    def test_reloaded_trace_replays_to_identical_cycles(self, rng):
        block = _scheduled_suite_block()
        n_loads = sum(1 for i in block if i.is_load)
        latencies = NetworkMemory(30, 5).sample_many(rng, n_loads)
        trace = trace_block(block.instructions, latencies, UNLIMITED)
        reloaded = _round_trip(trace, block.instructions)
        replay = trace_block(
            block.instructions, reloaded.load_latencies(), UNLIMITED
        )
        assert replay.cycles == trace.cycles
        assert replay.interlock_cycles == trace.interlock_cycles
        assert [(e.issue, e.completion, e.stall) for e in replay.entries] == [
            (e.issue, e.completion, e.stall) for e in trace.entries
        ]

    def test_round_trip_replays_on_every_single_issue_processor(self, rng):
        for _ in range(10):
            block = random_block(rng, n_instructions=25)
            n_loads = sum(1 for i in block if i.is_load)
            latencies = NetworkMemory(8, 4).sample_many(rng, n_loads)
            for processor in (UNLIMITED, MAX_8, LEN_8):
                trace = trace_block(block.instructions, latencies, processor)
                reloaded = _round_trip(trace, block.instructions)
                replay = trace_block(
                    block.instructions, reloaded.load_latencies(), processor
                )
                assert replay.cycles == trace.cycles
                assert replay.interlock_cycles == trace.interlock_cycles

    def test_stall_attribution_survives_the_round_trip(self, rng):
        block = _scheduled_suite_block(TraditionalScheduler(2))
        n_loads = sum(1 for i in block if i.is_load)
        latencies = NetworkMemory(30, 5).sample_many(rng, n_loads)
        trace = trace_block(block.instructions, latencies, UNLIMITED)
        reloaded = _round_trip(trace, block.instructions)
        assert reloaded.stalls_by_writer() == trace.stalls_by_writer()
        operand = sum(
            e.stall
            for e in reloaded.entries
            if e.reason is StallReason.OPERAND
        )
        assert sum(reloaded.stalls_by_writer().values()) == operand

    def test_waited_on_registers_resolve_by_name(self, rng):
        block = _scheduled_suite_block()
        n_loads = sum(1 for i in block if i.is_load)
        latencies = NetworkMemory(30, 5).sample_many(rng, n_loads)
        trace = trace_block(block.instructions, latencies, UNLIMITED)
        reloaded = _round_trip(trace, block.instructions)
        stalled = [e for e in trace.entries if e.waited_on is not None]
        assert stalled, "seeded run should include operand stalls"
        for before, after in zip(trace.entries, reloaded.entries):
            assert str(before.waited_on) == str(after.waited_on)
            assert before.waited_on_writer == after.waited_on_writer


class TestExtensionsTraceRoundTrip:
    """The spliced trace-scheduling block round-trips like any other."""

    def _scheduled_trace_block(self):
        trace = form_trace(hot_path_cfg())
        return schedule_trace(trace, BalancedScheduler()).block

    def test_trace_scheduled_block_round_trips(self, rng):
        block = self._scheduled_trace_block()
        n_loads = sum(1 for i in block if i.is_load)
        latencies = NetworkMemory(6, 2).sample_many(rng, n_loads)
        trace = trace_block(block.instructions, latencies, UNLIMITED)
        reloaded = _round_trip(trace, block.instructions)
        assert reloaded.to_dict() == trace.to_dict()
        replay = trace_block(
            block.instructions, reloaded.load_latencies(), UNLIMITED
        )
        assert replay.cycles == trace.cycles
        assert replay.interlock_cycles == trace.interlock_cycles

    def test_same_seed_same_trace_same_payload(self):
        import numpy as np

        block = self._scheduled_trace_block()
        n_loads = sum(1 for i in block if i.is_load)

        def run(seed):
            rng = np.random.default_rng(seed)
            latencies = NetworkMemory(6, 2).sample_many(rng, n_loads)
            return trace_block(block.instructions, latencies, UNLIMITED)

        first, second = run(42), run(42)
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())
        assert first.cycles == second.cycles
