"""Tests for loop steady-state throughput analysis."""

import pytest

from repro.core import BalancedScheduler, TraditionalScheduler
from repro.frontend import compile_minif
from repro.simulate.throughput import recurrence_bound, throughput

STREAM = """
program p
  array a[64], c[64]
  kernel k freq 1
    t1 = a[i] * a[i+1]
    c[i] = t1 + t1
  end
end
"""

REDUCTION = """
program p
  array a[64]
  kernel k freq 1
    s = s + a[i]
  end
end
"""

SPINE = """
program p
  array a[64]
  kernel k freq 1
    s = s * c0 + a[i]
  end
end
"""

CHAINED = """
program p
  array a[64]
  kernel k freq 1
    s = (s + a[i]) / (s - a[i+1])
  end
end
"""


def body_of(source):
    return compile_minif(source, pointer_loads=False).functions[0].blocks[0]


class TestThroughput:
    def test_stream_loop_approaches_issue_limit(self):
        """A fully parallel loop sustains ~n instructions/iteration
        once the unroll factor covers the latency."""
        body = body_of(STREAM)
        result = throughput(body, BalancedScheduler(), load_latency=4,
                            factors=(2, 4, 8, 12))
        assert result.cycles_per_iteration == pytest.approx(len(body), rel=0.3)

    def test_slope_respects_issue_bound_asymptotically(self):
        """Whatever the latency, the sustained rate cannot beat one
        issue slot per instruction (measured at large factors, where
        fill transients no longer bend the fit)."""
        body = body_of(CHAINED)
        for latency in (2, 10):
            result = throughput(
                body, BalancedScheduler(), load_latency=latency,
                factors=(8, 12, 16, 20),
            )
            assert result.cycles_per_iteration >= len(body) - 0.6

    def test_samples_recorded(self):
        body = body_of(STREAM)
        result = throughput(body, BalancedScheduler(), load_latency=2,
                            factors=(2, 4))
        assert len(result.samples) == 2
        assert result.samples[0][0] == 2

    def test_needs_two_factors(self):
        with pytest.raises(ValueError):
            throughput(body_of(STREAM), BalancedScheduler(), 2, factors=(4,))

    def test_balanced_at_least_as_good_as_traditional_hit_weight(self):
        """At a latency above the baseline's optimistic weight, the
        balanced schedule's sustained rate is no worse."""
        body = body_of(STREAM)
        balanced = throughput(body, BalancedScheduler(), load_latency=8,
                              factors=(2, 4, 8))
        traditional = throughput(body, TraditionalScheduler(2), load_latency=8,
                                 factors=(2, 4, 8))
        assert (
            balanced.cycles_per_iteration
            <= traditional.cycles_per_iteration + 0.5
        )


class TestRecurrenceBound:
    def test_no_carried_values_bound_is_one(self):
        assert recurrence_bound(body_of(STREAM), load_latency=9) == 1

    def test_single_op_recurrence_bound_is_one(self):
        """s = s + a[i]: the carried cycle is one unit-latency fadd, so
        iterations can issue back to back -- bound 1."""
        assert recurrence_bound(body_of(REDUCTION), load_latency=9) == 1

    def test_two_op_spine_bound_is_two(self):
        """s = s*c0 + a[i]: fmul -> fadd around the carried cycle."""
        assert recurrence_bound(body_of(SPINE), load_latency=9) == 2

    def test_chained_bound_counts_cycle_latency(self):
        bound = recurrence_bound(body_of(CHAINED), load_latency=9)
        assert bound == 2  # fadd/fsub -> fdiv around the carried cycle

    def test_bound_independent_of_load_latency_off_cycle(self):
        """Loads feed the cycle but are not ON it (they have no carried
        ancestor), so the bound must not scale with load latency."""
        low = recurrence_bound(body_of(REDUCTION), load_latency=2)
        high = recurrence_bound(body_of(REDUCTION), load_latency=50)
        assert low == high

    def test_measured_throughput_respects_bound(self):
        for source in (REDUCTION, CHAINED):
            body = body_of(source)
            bound = recurrence_bound(body, load_latency=6)
            measured = throughput(
                body, BalancedScheduler(), load_latency=6, factors=(4, 8, 12)
            )
            assert measured.cycles_per_iteration >= float(bound) - 0.35
