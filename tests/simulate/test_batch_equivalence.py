"""Property test: the batch simulator IS the scalar simulator.

``simulate_block_batch`` replaces the per-run Python loop of
``sample_block`` (see docs/performance.md), so its per-run cycle and
interlock counts must match ``simulate_block`` *exactly* -- not
statistically -- for every processor model and memory family.  Random
generated blocks give the cross-product real coverage: deep dependence
chains, wide independent sections, spills, NOPs, and load densities
the hand-written simulator tests never reach.
"""

import numpy as np
import pytest

from repro.machine import (
    LEN_8,
    MAX_8,
    ProcessorModel,
    UNLIMITED,
    superscalar,
)
from repro.machine.config import SYSTEMS_BY_NAME
from repro.machine.memory import FixedMemory
from repro.machine.processor import BLOCKING
from repro.simulate import simulate_block
from repro.simulate.batch import BatchSimResult, simulate_block_batch
from repro.simulate.program import sample_block
from repro.simulate.rng import spawn
from repro.workloads.generator import random_block

#: All processor models the paper uses, plus tighter MAX/LEN variants
#: (small limits bind far more often than the paper's 8) and the
#: Section 6 superscalar extension at widths 2/4/8 -- including
#: width-crossed MAX/LEN limits -- which exercises the vectorized
#: multi-issue kernel (there is no scalar fallback in the batch path).
PROCESSORS = [
    UNLIMITED,
    MAX_8,
    LEN_8,
    BLOCKING,
    ProcessorModel("MAX-2", max_outstanding_loads=2),
    ProcessorModel("LEN-3", max_load_cycles=3),
    ProcessorModel("LEN-3+MAX-2", max_load_cycles=3, max_outstanding_loads=2),
    superscalar(2),
    superscalar(4),
    superscalar(8),
    superscalar(4, MAX_8),
    superscalar(4, LEN_8),
    ProcessorModel("MAX-2x4", max_outstanding_loads=2, issue_width=4),
    ProcessorModel(
        "LEN-3+MAX-2x8",
        max_load_cycles=3,
        max_outstanding_loads=2,
        issue_width=8,
    ),
]

#: One memory system per family: cache (bimodal), network (normal),
#: mixed (bimodal-with-normal-tail), fixed (degenerate).
MEMORIES = [
    SYSTEMS_BY_NAME["L80(2,5)"],
    SYSTEMS_BY_NAME["N(2,5)"],
    SYSTEMS_BY_NAME["N(30,5)"],
    SYSTEMS_BY_NAME["L80-N(30,5)"],
    FixedMemory(4),
]

RUNS = 7


def _random_case(seed: int):
    rng = spawn("batch-equivalence", seed)
    block = random_block(rng, n_instructions=int(rng.integers(4, 110)))
    n_loads = sum(1 for i in block.instructions if i.is_load)
    return rng, block, n_loads


@pytest.mark.parametrize("processor", PROCESSORS, ids=lambda p: p.name)
@pytest.mark.parametrize("memory", MEMORIES, ids=lambda m: m.name)
@pytest.mark.parametrize("seed", range(4))
def test_batch_matches_scalar_exactly(processor, memory, seed):
    rng, block, n_loads = _random_case(seed)
    latencies = memory.sample_many(rng, n_loads * RUNS).reshape(RUNS, n_loads)

    batch = simulate_block_batch(block.instructions, latencies, processor)
    assert isinstance(batch, BatchSimResult)
    assert batch.cycles.shape == (RUNS,)
    assert batch.interlocks.shape == (RUNS,)

    for run in range(RUNS):
        scalar = simulate_block(block.instructions, latencies[run], processor)
        assert batch.cycles[run] == scalar.cycles, (
            f"cycles diverge on run {run}: "
            f"batch {batch.cycles[run]} vs scalar {scalar.cycles}"
        )
        assert batch.interlocks[run] == scalar.interlock_cycles, (
            f"interlocks diverge on run {run}: "
            f"batch {batch.interlocks[run]} vs scalar {scalar.interlock_cycles}"
        )
        assert batch.instructions == scalar.instructions


@pytest.mark.parametrize("processor", PROCESSORS, ids=lambda p: p.name)
def test_sample_block_draw_order_unchanged(processor):
    """``sample_block`` must consume the RNG exactly as the scalar loop
    did (one ``sample_many(n_loads * runs)`` draw), or every seeded
    artifact shifts."""
    memory = SYSTEMS_BY_NAME["N(2,5)"]
    _, block, n_loads = _random_case(11)

    samples = sample_block(block, processor, memory, spawn("draws", 1), runs=5)

    reference = spawn("draws", 1)
    latencies = memory.sample_many(reference, n_loads * 5).reshape(5, n_loads)
    for run in range(5):
        scalar = simulate_block(block.instructions, latencies[run], processor)
        assert samples.cycles[run] == scalar.cycles
        assert samples.interlocks[run] == scalar.interlock_cycles


def test_zero_runs():
    _, block, n_loads = _random_case(3)
    empty = np.zeros((0, n_loads), dtype=np.int64)
    batch = simulate_block_batch(block.instructions, empty, UNLIMITED)
    assert batch.cycles.shape == (0,)
    assert batch.interlocks.shape == (0,)


def test_rejects_one_dimensional_latencies():
    _, block, n_loads = _random_case(5)
    with pytest.raises(ValueError, match="runs, n_loads"):
        simulate_block_batch(
            block.instructions, np.zeros(n_loads, dtype=np.int64), UNLIMITED
        )
