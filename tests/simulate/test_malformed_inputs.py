"""Scalar and batch simulators reject malformed input identically.

The batch simulator advertises itself as a drop-in replacement for the
per-run scalar loop, and callers (the experiment engine, the trace
simulator) catch errors by type and surface messages to users -- so
the two paths must agree on *which* exception each malformed input
raises and on the exact message, for every processor model including
the vectorized superscalar kernel.  Extra trailing latencies are explicitly
allowed in both paths (callers may share one oversized sample buffer
across blocks) and must not change results.
"""

import numpy as np
import pytest

from repro.ir import MemRef, Opcode, RegClass, VirtualReg, alu, load, nop
from repro.machine import LEN_8, MAX_8, UNLIMITED, superscalar
from repro.machine.processor import BLOCKING
from repro.simulate import LatencyOverrunError, simulate_block
from repro.simulate.batch import simulate_block_batch

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)

PROCESSORS = [
    UNLIMITED,
    MAX_8,
    LEN_8,
    BLOCKING,
    superscalar(2),
    superscalar(4),
    superscalar(8, MAX_8),
]

RUNS = 3


def three_load_block():
    """Three loads (one behind a NOP) with consumers between them."""
    r = lambda k: VirtualReg(k, RegClass.FP)
    return [
        load(r(0), A),
        alu(Opcode.FADD, r(10), (r(0),)),
        load(r(1), A.displaced(1)),
        nop(),
        load(r(2), A.displaced(2)),
        alu(Opcode.FADD, r(11), (r(1), r(2))),
    ]


def raises_identically(scalar_fn, batch_fn, expected_type):
    """Both paths raise ``expected_type`` with the same ``str()``."""
    with pytest.raises(expected_type) as scalar_exc:
        scalar_fn()
    with pytest.raises(expected_type) as batch_exc:
        batch_fn()
    assert str(scalar_exc.value) == str(batch_exc.value)
    return str(scalar_exc.value)


@pytest.mark.parametrize("processor", PROCESSORS, ids=lambda p: p.name)
class TestUnderrun:
    def test_too_few_latencies_same_error_and_message(self, processor):
        block = three_load_block()
        message = raises_identically(
            lambda: simulate_block(block, [4], processor),
            lambda: simulate_block_batch(
                block, np.full((RUNS, 1), 4, dtype=np.int64), processor
            ),
            LatencyOverrunError,
        )
        # Totals-based: names the block's load count, not how far the
        # simulation got before running out.
        assert message == "3 loads but only 1 latencies"

    def test_empty_latencies(self, processor):
        block = three_load_block()
        message = raises_identically(
            lambda: simulate_block(block, [], processor),
            lambda: simulate_block_batch(
                block, np.zeros((RUNS, 0), dtype=np.int64), processor
            ),
            LatencyOverrunError,
        )
        assert message == "3 loads but only 0 latencies"

    def test_underrun_raised_before_simulation(self, processor):
        """The error fires eagerly, even when no run would reach the
        missing latency (zero runs in the batch)."""
        block = three_load_block()
        with pytest.raises(LatencyOverrunError):
            simulate_block_batch(
                block, np.zeros((0, 2), dtype=np.int64), processor
            )


@pytest.mark.parametrize("processor", PROCESSORS, ids=lambda p: p.name)
class TestNegativeLatency:
    def test_negative_latency_same_error_and_message(self, processor):
        block = three_load_block()
        batch = np.full((RUNS, 3), 4, dtype=np.int64)
        batch[1, 2] = -7
        message = raises_identically(
            lambda: simulate_block(block, [4, 4, -7], processor),
            lambda: simulate_block_batch(block, batch, processor),
            ValueError,
        )
        assert message == "negative load latency -7 at load 2"

    def test_batch_reports_first_bad_run_first_bad_load(self, processor):
        """With several negatives the batch names the one the scalar
        path would hit first: earliest run, then earliest load."""
        block = three_load_block()
        batch = np.full((RUNS, 3), 4, dtype=np.int64)
        batch[2, 0] = -1
        batch[1, 2] = -9
        batch[1, 1] = -5
        with pytest.raises(ValueError) as exc:
            simulate_block_batch(block, batch, processor)
        assert str(exc.value) == "negative load latency -5 at load 1"

    def test_negative_in_ignored_extra_column_is_allowed(self, processor):
        """Validation covers only the latencies loads will consume."""
        block = three_load_block()
        scalar = simulate_block(block, [4, 4, 4, -1], processor)
        assert scalar.cycles > 0
        batch = np.full((RUNS, 4), 4, dtype=np.int64)
        batch[:, 3] = -1
        result = simulate_block_batch(block, batch, processor)
        assert (result.cycles == scalar.cycles).all()


@pytest.mark.parametrize("processor", PROCESSORS, ids=lambda p: p.name)
class TestExtraLatencies:
    def test_extra_latencies_ignored_identically(self, processor):
        block = three_load_block()
        exact = simulate_block(block, [4, 2, 9], processor)
        extra = simulate_block(block, [4, 2, 9, 30, 30], processor)
        assert extra == exact

        exact_batch = simulate_block_batch(
            block, np.array([[4, 2, 9]] * RUNS, dtype=np.int64), processor
        )
        extra_batch = simulate_block_batch(
            block,
            np.array([[4, 2, 9, 30, 30]] * RUNS, dtype=np.int64),
            processor,
        )
        assert (extra_batch.cycles == exact_batch.cycles).all()
        assert (extra_batch.interlocks == exact_batch.interlocks).all()
        assert extra_batch.instructions == exact_batch.instructions
        assert (exact_batch.cycles == exact.cycles).all()


def test_one_dimensional_latencies_still_rejected():
    """The batch-only shape check (no scalar analogue) is unchanged."""
    with pytest.raises(ValueError, match="runs, n_loads"):
        simulate_block_batch(
            three_load_block(), np.zeros(3, dtype=np.int64), UNLIMITED
        )
