"""Property tests pinning the vectorized superscalar batch kernel.

The broad scalar-vs-batch sweeps live in ``test_batch_equivalence.py``
and ``test_fuzz_equivalence.py``; this file pins the *edge* shapes of
the multi-issue model:

* width >= block length degenerates to the dataflow limit -- widening
  further changes nothing;
* ``superscalar(1)`` is semantically UNLIMITED (same dispatch path,
  identical results on both simulators);
* empty blocks, all-NOP blocks and ``runs = 0`` batches;
* malformed-input parity with the scalar simulator (same exception
  types and messages), asserted *before* any fast path runs -- even a
  zero-run batch must reject an underrun.
"""

import numpy as np
import pytest

from repro.ir import MemRef, Opcode, RegClass, VirtualReg, alu, load, nop
from repro.machine import UNLIMITED, superscalar
from repro.machine.processor import MAX_8, ProcessorModel
from repro.simulate import LatencyOverrunError, simulate_block
from repro.simulate.batch import simulate_block_batch
from repro.simulate.rng import spawn
from repro.workloads.generator import random_block

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)

WIDTHS = (2, 4, 8)
RUNS = 6


def _reg(k):
    return VirtualReg(k, RegClass.FP)


def _latencies(block, seed, runs=RUNS):
    n_loads = sum(1 for i in block.instructions if i.is_load)
    rng = spawn("superscalar-edge", seed)
    return rng.integers(0, 12, size=(runs, n_loads)).astype(np.int64)


def _assert_matches_scalar(instructions, latencies, processor):
    batch = simulate_block_batch(instructions, latencies, processor)
    for run in range(latencies.shape[0]):
        scalar = simulate_block(
            instructions, [int(x) for x in latencies[run]], processor
        )
        assert int(batch.cycles[run]) == scalar.cycles
        assert int(batch.interlocks[run]) == scalar.interlock_cycles
        assert batch.instructions == scalar.instructions
    return batch


# ----------------------------------------------------------------------
# Degenerate widths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
def test_width_at_least_block_length_is_dataflow_limited(seed):
    """Once every instruction fits in one issue group, only dependences
    (and memory constraints) matter: width n, n + 3 and 4n agree
    exactly, per run, and match the scalar simulator."""
    rng = spawn("superscalar-dataflow", seed)
    block = random_block(rng, n_instructions=int(rng.integers(4, 40)))
    executed = sum(
        1 for i in block.instructions if i.opcode is not Opcode.NOP
    )
    latencies = _latencies(block, seed)
    reference = _assert_matches_scalar(
        block.instructions, latencies, superscalar(max(2, executed))
    )
    for wider in (executed + 3, 4 * max(1, executed)):
        batch = _assert_matches_scalar(
            block.instructions, latencies, superscalar(max(2, wider))
        )
        assert (batch.cycles == reference.cycles).all()
        assert (batch.interlocks == reference.interlocks).all()


@pytest.mark.parametrize("seed", range(5))
def test_width_one_via_superscalar_matches_unlimited(seed):
    """``superscalar(1)`` carries a different name but identical
    semantics -- both simulators dispatch on ``issue_width`` and take
    the single-issue path."""
    rng = spawn("superscalar-w1", seed)
    block = random_block(rng, n_instructions=int(rng.integers(4, 60)))
    latencies = _latencies(block, seed)
    via_width = simulate_block_batch(
        block.instructions, latencies, superscalar(1)
    )
    direct = simulate_block_batch(block.instructions, latencies, UNLIMITED)
    assert (via_width.cycles == direct.cycles).all()
    assert (via_width.interlocks == direct.interlocks).all()
    assert via_width.instructions == direct.instructions
    for run in range(RUNS):
        scalar = simulate_block(
            block.instructions, [int(x) for x in latencies[run]],
            superscalar(1),
        )
        assert scalar.cycles == int(direct.cycles[run])


# ----------------------------------------------------------------------
# Empty / all-NOP / zero-run blocks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("width", WIDTHS)
def test_empty_block(width):
    batch = simulate_block_batch(
        [], np.zeros((RUNS, 0), dtype=np.int64), superscalar(width)
    )
    assert (batch.cycles == 0).all()
    assert (batch.interlocks == 0).all()
    assert batch.instructions == 0
    scalar = simulate_block([], [], superscalar(width))
    assert scalar.cycles == 0 and scalar.instructions == 0


@pytest.mark.parametrize("width", WIDTHS)
def test_all_nop_block(width):
    block = [nop(), nop(), nop()]
    batch = simulate_block_batch(
        block, np.zeros((RUNS, 0), dtype=np.int64), superscalar(width)
    )
    assert (batch.cycles == 0).all()
    assert (batch.interlocks == 0).all()
    assert batch.instructions == 0
    scalar = simulate_block(block, [], superscalar(width))
    assert scalar.cycles == 0 and scalar.interlock_cycles == 0


@pytest.mark.parametrize("width", (1,) + WIDTHS)
def test_zero_runs_shapes_and_instruction_count(width):
    """A zero-run batch returns empty per-run vectors but still counts
    the executed (non-NOP) instructions -- identically for every
    width, single-issue included."""
    block = [
        load(_reg(0), A),
        nop(),
        alu(Opcode.FADD, _reg(1), (_reg(0),)),
    ]
    batch = simulate_block_batch(
        block, np.zeros((0, 1), dtype=np.int64), superscalar(width)
    )
    assert batch.cycles.shape == (0,)
    assert batch.interlocks.shape == (0,)
    assert batch.instructions == 2


# ----------------------------------------------------------------------
# Malformed-input parity (before any fast path)
# ----------------------------------------------------------------------
MALFORMED_PROCESSORS = [
    superscalar(4),
    superscalar(8),
    superscalar(4, MAX_8),
    ProcessorModel("LEN-3x8", max_load_cycles=3, issue_width=8),
]


def _two_load_block():
    return [
        load(_reg(0), A),
        load(_reg(1), A.displaced(1)),
        alu(Opcode.FADD, _reg(2), (_reg(0), _reg(1))),
    ]


@pytest.mark.parametrize(
    "processor", MALFORMED_PROCESSORS, ids=lambda p: p.name
)
class TestMalformedParity:
    def test_underrun_same_type_and_message(self, processor):
        block = _two_load_block()
        with pytest.raises(LatencyOverrunError) as scalar_exc:
            simulate_block(block, [3], processor)
        with pytest.raises(LatencyOverrunError) as batch_exc:
            simulate_block_batch(
                block, np.full((RUNS, 1), 3, dtype=np.int64), processor
            )
        assert str(scalar_exc.value) == str(batch_exc.value)
        assert str(batch_exc.value) == "2 loads but only 1 latencies"

    def test_underrun_fires_before_fast_path_even_with_zero_runs(
        self, processor
    ):
        block = _two_load_block()
        with pytest.raises(LatencyOverrunError):
            simulate_block_batch(
                block, np.zeros((0, 1), dtype=np.int64), processor
            )

    def test_negative_latency_same_type_and_message(self, processor):
        block = _two_load_block()
        batch = np.full((RUNS, 2), 3, dtype=np.int64)
        batch[0, 1] = -4
        with pytest.raises(ValueError) as scalar_exc:
            simulate_block(block, [3, -4], processor)
        with pytest.raises(ValueError) as batch_exc:
            simulate_block_batch(block, batch, processor)
        assert str(scalar_exc.value) == str(batch_exc.value)
        assert str(batch_exc.value) == "negative load latency -4 at load 1"
