"""Tests for the instruction-level block simulator."""

import numpy as np
import pytest

from repro.ir import (
    BasicBlock,
    MemRef,
    Opcode,
    RegClass,
    VirtualReg,
    alu,
    load,
    nop,
    store,
)
from repro.machine import LEN_8, MAX_8, ProcessorModel, UNLIMITED, superscalar
from repro.simulate import LatencyOverrunError, interlock_sweep, simulate_block

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)


def load_use_block(gap=0):
    """A load, `gap` fillers, then a consumer of the load."""
    block = [load(VirtualReg(0, RegClass.FP), A)]
    for k in range(gap):
        block.append(alu(Opcode.ADD, VirtualReg(100 + k), ()))
    block.append(
        alu(Opcode.FADD, VirtualReg(1, RegClass.FP), (VirtualReg(0, RegClass.FP),))
    )
    return block


class TestBasicAccounting:
    def test_cycles_equal_instructions_plus_interlocks(self):
        """The paper's identity: runtime = instructions + interlocks."""
        for gap in (0, 1, 3):
            for latency in (1, 2, 5, 9):
                result = simulate_block(load_use_block(gap), [latency])
                assert result.cycles == result.instructions + result.interlock_cycles

    def test_adjacent_use_stalls_latency_minus_one(self):
        result = simulate_block(load_use_block(0), [5])
        assert result.interlock_cycles == 4

    def test_padding_hides_latency(self):
        result = simulate_block(load_use_block(4), [5])
        assert result.interlock_cycles == 0

    def test_unit_latency_never_stalls(self):
        result = simulate_block(load_use_block(0), [1])
        assert result.interlock_cycles == 0

    def test_nops_are_free(self):
        block = load_use_block(0)
        block.insert(1, nop())
        with_nop = simulate_block(block, [5])
        without = simulate_block(load_use_block(0), [5])
        assert with_nop.instructions == without.instructions
        assert with_nop.cycles == without.cycles

    def test_trailing_load_costs_nothing(self):
        """Block-local simulation: an unconsumed load's latency never
        materialises (identically for both schedulers)."""
        block = [load(VirtualReg(0, RegClass.FP), A)]
        assert simulate_block(block, [50]).cycles == 1

    def test_missing_latency_raises(self):
        with pytest.raises(LatencyOverrunError):
            simulate_block(load_use_block(0), [])

    def test_store_waits_for_value(self):
        block = [
            load(VirtualReg(0, RegClass.FP), A),
            store(VirtualReg(0, RegClass.FP), A.displaced(1)),
        ]
        result = simulate_block(block, [4])
        assert result.interlock_cycles == 3

    def test_multicycle_alu_stalls_consumer(self):
        block = [
            alu(Opcode.FMUL, VirtualReg(0, RegClass.FP), (), latency=4),
            alu(Opcode.FADD, VirtualReg(1, RegClass.FP), (VirtualReg(0, RegClass.FP),)),
        ]
        result = simulate_block(block, [])
        assert result.interlock_cycles == 3


class TestMax8:
    def _many_loads(self, n):
        return [
            load(VirtualReg(k, RegClass.FP), A.displaced(k)) for k in range(n)
        ]

    def test_eight_outstanding_free(self):
        result = simulate_block(self._many_loads(8), [100] * 8, MAX_8)
        assert result.interlock_cycles == 0

    def test_ninth_load_blocks(self):
        """'If a ninth load instruction is issued, the processor blocks
        until one of the eight outstanding loads completes.'"""
        result = simulate_block(self._many_loads(9), [100] * 9, MAX_8)
        # Load 0 completes at 100; the ninth issues then.
        assert result.interlock_cycles == 100 - 8

    def test_completed_loads_free_slots(self):
        result = simulate_block(self._many_loads(9), [2] * 9, MAX_8)
        assert result.interlock_cycles == 0

    def test_unlimited_never_blocks(self):
        result = simulate_block(self._many_loads(9), [100] * 9, UNLIMITED)
        assert result.interlock_cycles == 0


class TestLen8:
    def test_short_loads_unaffected(self):
        result = simulate_block(load_use_block(4), [5], LEN_8)
        assert result.interlock_cycles == 0

    def test_long_load_freezes_processor(self):
        """A 12-cycle load blocks the core from cycle 8 after issue."""
        block = load_use_block(8)  # enough fillers to hide 9 cycles
        unlimited = simulate_block(block, [12], UNLIMITED)
        len8 = simulate_block(block, [12], LEN_8)
        assert unlimited.interlock_cycles == 3
        assert len8.interlock_cycles > unlimited.interlock_cycles

    def test_freeze_window_exact(self):
        # load @0 (latency 12) freezes the core over cycles [8, 12):
        # fillers issue at 1..7, the eighth is pushed from 8 to 12.
        block = [load(VirtualReg(0, RegClass.FP), A)]
        for k in range(10):
            block.append(alu(Opcode.ADD, VirtualReg(100 + k), ()))
        result = simulate_block(block, [12], LEN_8)
        assert result.interlock_cycles == 4


class TestSuperscalar:
    def test_width_two_halves_ideal_time(self):
        block = [alu(Opcode.ADD, VirtualReg(100 + k), ()) for k in range(8)]
        wide = simulate_block(block, [], superscalar(2))
        assert wide.cycles == 4

    def test_dependences_still_respected(self):
        result = simulate_block(load_use_block(0), [5], superscalar(4))
        assert result.cycles >= 6  # consumer cannot start before data

    def test_single_issue_width_matches_scalar(self):
        block = load_use_block(3)
        scalar = simulate_block(block, [4], UNLIMITED)
        one_wide = simulate_block(block, [4], superscalar(1))
        assert one_wide.cycles == scalar.cycles


class TestInterlockSweep:
    def test_monotone_in_latency(self, figure1):
        block, _ = figure1
        counts = interlock_sweep(block, range(1, 10))
        assert counts == sorted(counts)

    def test_empty_block(self):
        empty = BasicBlock("e")
        assert interlock_sweep(empty, [1, 2, 3]) == [0, 0, 0]
