"""Tests for the execution tracer (validated against the simulator)."""

import numpy as np
import pytest

from repro.core import BalancedScheduler, TraditionalScheduler
from repro.ir import MemRef, Opcode, RegClass, VirtualReg, alu, load, nop
from repro.machine import LEN_8, MAX_8, NetworkMemory, UNLIMITED, superscalar
from repro.simulate import simulate_block
from repro.simulate.trace import StallReason, trace_block, trace_with_memory
from repro.workloads import figure1_block, load_program, random_block

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)


def load_use(gap=0):
    block = [load(VirtualReg(0, RegClass.FP), A)]
    for k in range(gap):
        block.append(alu(Opcode.ADD, VirtualReg(100 + k), ()))
    block.append(
        alu(Opcode.FADD, VirtualReg(1, RegClass.FP), (VirtualReg(0, RegClass.FP),))
    )
    return block


class TestTraceAccounting:
    def test_matches_simulator_on_simple_block(self):
        block = load_use(2)
        for latency in (1, 3, 7):
            sim = simulate_block(block, [latency])
            trace = trace_block(block, [latency])
            assert trace.cycles == sim.cycles
            assert trace.interlock_cycles == sim.interlock_cycles

    def test_matches_simulator_on_random_blocks(self, rng):
        for _ in range(20):
            block = random_block(rng, n_instructions=25)
            n_loads = sum(1 for i in block if i.is_load)
            latencies = NetworkMemory(5, 5).sample_many(rng, n_loads)
            for processor in (UNLIMITED, MAX_8, LEN_8):
                sim = simulate_block(block.instructions, latencies, processor)
                trace = trace_block(block.instructions, latencies, processor)
                assert trace.cycles == sim.cycles
                assert trace.interlock_cycles == sim.interlock_cycles

    def test_matches_simulator_on_suite_schedules(self, rng):
        program = load_program("MDG")
        compiled = BalancedScheduler()
        for function in program:
            block = compiled.schedule_block(function.blocks[0]).block
            n_loads = sum(1 for i in block if i.is_load)
            latencies = NetworkMemory(30, 5).sample_many(rng, n_loads)
            sim = simulate_block(block.instructions, latencies, UNLIMITED)
            trace = trace_block(block.instructions, latencies, UNLIMITED)
            assert trace.cycles == sim.cycles
            assert trace.interlock_cycles == sim.interlock_cycles


class TestStallAttribution:
    def test_operand_stall_names_register(self):
        trace = trace_block(load_use(0), [6])
        consumer = trace.entries[-1]
        assert consumer.stall == 5
        assert consumer.reason is StallReason.OPERAND
        assert consumer.waited_on == VirtualReg(0, RegClass.FP)

    def test_no_stall_no_reason(self):
        trace = trace_block(load_use(4), [3])
        assert all(e.reason is StallReason.NONE for e in trace.entries)

    def test_load_slot_stall_flagged(self):
        block = [
            load(VirtualReg(k, RegClass.FP), A.displaced(k)) for k in range(9)
        ]
        trace = trace_block(block, [50] * 9, MAX_8)
        ninth = trace.entries[8]
        assert ninth.reason is StallReason.LOAD_SLOTS
        assert ninth.stall > 0

    def test_freeze_stall_flagged(self):
        block = [load(VirtualReg(0, RegClass.FP), A)]
        for k in range(10):
            block.append(alu(Opcode.ADD, VirtualReg(100 + k), ()))
        trace = trace_block(block, [12], LEN_8)
        frozen = [e for e in trace.entries if e.reason is StallReason.FREEZE]
        assert frozen
        assert sum(e.stall for e in frozen) == 4

    def test_stalls_by_reason_totals(self):
        trace = trace_block(load_use(0), [6])
        by_reason = trace.stalls_by_reason()
        assert by_reason == {StallReason.OPERAND: 5}
        assert sum(by_reason.values()) == trace.interlock_cycles

    def test_hottest_returns_biggest_stalls(self, figure1):
        block, _ = figure1
        scheduled = TraditionalScheduler(5).schedule_block(block).block
        trace = trace_block(scheduled.instructions, [8, 8])
        hottest = trace.hottest(1)
        assert hottest[0].stall == max(e.stall for e in trace.entries)


class TestRendering:
    def test_render_has_one_row_per_instruction(self):
        block = load_use(2)
        trace = trace_block(block, [4])
        rendered = trace.render()
        assert rendered.count("\n") == len(block)
        assert "I" in rendered

    def test_render_empty(self):
        assert "empty" in trace_block([], []).render()

    def test_nops_excluded(self):
        block = load_use(1)
        block.insert(1, nop())
        trace = trace_block(block, [2])
        assert len(trace.entries) == len(block) - 1


class TestGuards:
    def test_superscalar_rejected(self):
        with pytest.raises(ValueError, match="single-issue"):
            trace_block(load_use(0), [2], superscalar(2))

    def test_trace_with_memory(self, rng, figure1):
        block, _ = figure1
        trace = trace_with_memory(block, UNLIMITED, NetworkMemory(3, 2), rng)
        assert trace.cycles >= len(block)
