"""Property tests pinning the delay-tracking issue model.

The broad scalar-vs-batch sweeps live in ``test_fuzz_equivalence.py``;
this file pins the model's *degeneracies* -- the boundary shapes that
make the delay-tracking semantics checkable without a second
implementation:

* table size 0 reproduces the existing in-order interlocked model
  exactly (cycles *and* interlocks), across every memory family and
  issue width;
* a table at least as large as the block's load count saturates --
  perfect per-load knowledge; growing it further changes nothing --
  and on a crafted block achieves the reordering the in-order machine
  cannot;
* ``blocking_loads`` composes: a blocking machine never stalls on load
  *data* (it stalled at the load itself), so delay tracking can never
  reorder and the BLOCKING baseline is reproduced exactly;
* empty / all-NOP / zero-run edges and malformed-input parity with the
  existing kernels, asserted before any fast path;
* the ``blocking_loads``-at-``issue_width > 1`` gap warns instead of
  staying silent, on both engines.
"""

import numpy as np
import pytest

from repro.ir import MemRef, Opcode, RegClass, VirtualReg, alu, load, nop
from repro.machine import (
    BLOCKING,
    DT_8,
    LEN_8,
    MAX_8,
    UNLIMITED,
    delay_tracking,
    model_family,
    parse_processor,
    superscalar,
)
from repro.machine.processor import ProcessorModel
from repro.obs import recorder as obs
from repro.obs.metrics import split_series_key
from repro.simulate import LatencyOverrunError, simulate_block
from repro.simulate.batch import simulate_block_batch
from repro.simulate.rng import spawn
from repro.workloads.generator import random_block

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)

RUNS = 6

BASES = [
    UNLIMITED,
    MAX_8,
    LEN_8,
    ProcessorModel("MAX-2", max_outstanding_loads=2),
    ProcessorModel("LEN-3", max_load_cycles=3),
    ProcessorModel("LEN-3+MAX-2", max_load_cycles=3, max_outstanding_loads=2),
    BLOCKING,
]


def _reg(k):
    return VirtualReg(k, RegClass.FP)


def _block(seed, lo=4, hi=40):
    rng = spawn("delaytrack-prop", seed)
    return random_block(rng, n_instructions=int(rng.integers(lo, hi)))


def _latencies(block, seed, runs=RUNS, high=12):
    n_loads = sum(1 for i in block.instructions if i.is_load)
    rng = spawn("delaytrack-lat", seed)
    return rng.integers(0, high, size=(runs, n_loads)).astype(np.int64)


def _scalar_rows(instructions, latencies, processor):
    return [
        simulate_block(instructions, [int(x) for x in row], processor)
        for row in latencies
    ]


def _assert_matches_scalar(instructions, latencies, processor):
    batch = simulate_block_batch(instructions, latencies, processor)
    for run, scalar in enumerate(
        _scalar_rows(instructions, latencies, processor)
    ):
        assert int(batch.cycles[run]) == scalar.cycles
        assert int(batch.interlocks[run]) == scalar.interlock_cycles
        assert batch.instructions == scalar.instructions
    return batch


# ----------------------------------------------------------------------
# Table size 0 degrades to the in-order interlocked model
# ----------------------------------------------------------------------
@pytest.mark.parametrize("base", BASES, ids=lambda p: p.name)
@pytest.mark.parametrize("seed", range(4))
def test_table_zero_is_the_base_model(base, seed):
    """With no tracking entries no load ever publishes its delay, so no
    instruction is ever parked: cycles *and* interlocks must equal the
    base in-order model on every run."""
    block = _block(seed)
    latencies = _latencies(block, seed)
    dt = delay_tracking(0, base)
    for row in latencies:
        row_list = [int(x) for x in row]
        got = simulate_block(block.instructions, row_list, dt)
        want = simulate_block(block.instructions, row_list, base)
        assert got.cycles == want.cycles
        assert got.interlock_cycles == want.interlock_cycles
        assert got.instructions == want.instructions


@pytest.mark.parametrize("width", (2, 4))
@pytest.mark.parametrize("seed", range(3))
def test_table_zero_matches_superscalar(width, seed):
    block = _block(seed)
    latencies = _latencies(block, seed)
    for base in (superscalar(width), superscalar(width, MAX_8)):
        dt = delay_tracking(0, base)
        for row in latencies:
            row_list = [int(x) for x in row]
            got = simulate_block(block.instructions, row_list, dt)
            want = simulate_block(block.instructions, row_list, base)
            assert got.cycles == want.cycles
            assert got.interlock_cycles == want.interlock_cycles


# ----------------------------------------------------------------------
# Table size >= loads saturates: perfect per-load knowledge
# ----------------------------------------------------------------------
@pytest.mark.parametrize("base", BASES, ids=lambda p: p.name)
@pytest.mark.parametrize("seed", range(4))
def test_table_saturates_at_load_count(base, seed):
    """A table with one entry per load already tracks everything in
    flight; any larger table -- including an effectively infinite one --
    must behave identically."""
    block = _block(seed)
    n_loads = sum(1 for i in block.instructions if i.is_load)
    latencies = _latencies(block, seed)
    saturated = delay_tracking(max(n_loads, 1), base)
    for bigger in (n_loads + 7, 10**9):
        huge = delay_tracking(bigger, base)
        for row in latencies:
            row_list = [int(x) for x in row]
            got = simulate_block(block.instructions, row_list, huge)
            want = simulate_block(block.instructions, row_list, saturated)
            assert got.cycles == want.cycles
            assert got.interlock_cycles == want.interlock_cycles


def test_infinite_table_reorders_around_a_known_delay():
    """The crafted shape delay tracking exists for: the head consumer
    stalls on a tracked 10-cycle load, so the adaptive machine parks it
    and runs the younger independent chain inside the stall.  The
    in-order machine pays the full serialization."""
    block = [
        load(_reg(0), A),                            # 10 cycles
        alu(Opcode.FADD, _reg(1), (_reg(0), _reg(0))),
        load(_reg(2), A.displaced(1)),               # 2 cycles
        alu(Opcode.FADD, _reg(3), (_reg(2), _reg(2))),
    ]
    latencies = [10, 2]
    base = simulate_block(block, latencies, UNLIMITED)
    adaptive = simulate_block(block, latencies, delay_tracking(10**9))
    # In order: load@0, fadd@10, load@11, fadd@13 -> 14 cycles.
    assert base.cycles == 14
    # Adaptive: load@0 (parks the fadd, ready 10), load@1, fadd@3,
    # parked fadd@10 -> 11 cycles.
    assert adaptive.cycles == 11
    assert adaptive.instructions == base.instructions == 4
    # Single-issue accounting still holds: runtime = issues + stalls.
    assert adaptive.cycles == 4 + adaptive.interlock_cycles


def test_tracking_table_capacity_gates_the_reordering():
    """Two stalled consumers, one table entry: only the load that won
    the entry lets its consumer park.  The second consumer stalls
    in-order exactly like the base machine."""
    block = [
        load(_reg(0), A),                            # tracked, 12 cycles
        load(_reg(1), A.displaced(1)),               # untracked, 12 cycles
        alu(Opcode.FADD, _reg(2), (_reg(1),)),       # stalls on untracked
        alu(Opcode.FADD, _reg(3), (_reg(0),)),       # would park if reached
        alu(Opcode.FADD, _reg(4), ()),               # independent filler
    ]
    latencies = [12, 12]
    one_entry = simulate_block(block, latencies, delay_tracking(1))
    base = simulate_block(block, latencies, UNLIMITED)
    # The untracked stall pins fetch at the first consumer: nothing
    # after it can issue early, so table-1 equals the in-order machine
    # on this block...
    assert one_entry.cycles == base.cycles
    # ...while a two-entry table tracks both loads, parks both
    # consumers and pulls the filler into the stall.
    two_entries = simulate_block(block, latencies, delay_tracking(2))
    assert two_entries.cycles < base.cycles


# ----------------------------------------------------------------------
# Composition with blocking loads
# ----------------------------------------------------------------------
@pytest.mark.parametrize("table", (1, 4, 10**6))
@pytest.mark.parametrize("seed", range(3))
def test_blocking_machine_is_unchanged_by_tracking(table, seed):
    """A blocking machine stalls at the load itself, so data is always
    back before any consumer issues: no stall-on-use ever occurs and
    delay tracking has nothing to reorder -- the BLOCKING baseline is
    reproduced exactly, interlocks included."""
    block = _block(seed)
    latencies = _latencies(block, seed)
    dt = delay_tracking(table, BLOCKING)
    for row in latencies:
        row_list = [int(x) for x in row]
        got = simulate_block(block.instructions, row_list, dt)
        want = simulate_block(block.instructions, row_list, BLOCKING)
        assert got.cycles == want.cycles
        assert got.interlock_cycles == want.interlock_cycles


# ----------------------------------------------------------------------
# Empty / all-NOP / zero-run edges (both engines)
# ----------------------------------------------------------------------
DT_EDGE = [delay_tracking(0), DT_8, delay_tracking(4, superscalar(4, MAX_8))]


@pytest.mark.parametrize("processor", DT_EDGE, ids=lambda p: p.name)
def test_empty_block(processor):
    batch = simulate_block_batch(
        [], np.zeros((RUNS, 0), dtype=np.int64), processor
    )
    assert (batch.cycles == 0).all()
    assert (batch.interlocks == 0).all()
    assert batch.instructions == 0
    scalar = simulate_block([], [], processor)
    assert scalar.cycles == 0 and scalar.instructions == 0


@pytest.mark.parametrize("processor", DT_EDGE, ids=lambda p: p.name)
def test_all_nop_block(processor):
    block = [nop(), nop(), nop()]
    batch = simulate_block_batch(
        block, np.zeros((RUNS, 0), dtype=np.int64), processor
    )
    assert (batch.cycles == 0).all()
    assert (batch.interlocks == 0).all()
    assert batch.instructions == 0
    scalar = simulate_block(block, [], processor)
    assert scalar.cycles == 0 and scalar.interlock_cycles == 0


@pytest.mark.parametrize("processor", DT_EDGE, ids=lambda p: p.name)
def test_zero_runs_shapes_and_instruction_count(processor):
    block = [
        load(_reg(0), A),
        nop(),
        alu(Opcode.FADD, _reg(1), (_reg(0),)),
    ]
    batch = simulate_block_batch(
        block, np.zeros((0, 1), dtype=np.int64), processor
    )
    assert batch.cycles.shape == (0,)
    assert batch.interlocks.shape == (0,)
    assert batch.instructions == 2


# ----------------------------------------------------------------------
# Malformed-input parity (before any fast path)
# ----------------------------------------------------------------------
def _two_load_block():
    return [
        load(_reg(0), A),
        load(_reg(1), A.displaced(1)),
        alu(Opcode.FADD, _reg(2), (_reg(0), _reg(1))),
    ]


@pytest.mark.parametrize(
    "processor",
    [DT_8, delay_tracking(0), delay_tracking(2, superscalar(4, LEN_8))],
    ids=lambda p: p.name,
)
class TestMalformedParity:
    def test_underrun_same_type_and_message(self, processor):
        block = _two_load_block()
        with pytest.raises(LatencyOverrunError) as scalar_exc:
            simulate_block(block, [3], processor)
        with pytest.raises(LatencyOverrunError) as batch_exc:
            simulate_block_batch(
                block, np.full((RUNS, 1), 3, dtype=np.int64), processor
            )
        assert str(scalar_exc.value) == str(batch_exc.value)
        assert str(batch_exc.value) == "2 loads but only 1 latencies"

    def test_underrun_fires_before_fast_path_even_with_zero_runs(
        self, processor
    ):
        block = _two_load_block()
        with pytest.raises(LatencyOverrunError):
            simulate_block_batch(
                block, np.zeros((0, 1), dtype=np.int64), processor
            )

    def test_negative_latency_same_type_and_message(self, processor):
        block = _two_load_block()
        batch = np.full((RUNS, 2), 3, dtype=np.int64)
        batch[0, 1] = -4
        with pytest.raises(ValueError) as scalar_exc:
            simulate_block(block, [3, -4], processor)
        with pytest.raises(ValueError) as batch_exc:
            simulate_block_batch(block, batch, processor)
        assert str(scalar_exc.value) == str(batch_exc.value)
        assert str(batch_exc.value) == "negative load latency -4 at load 1"


# ----------------------------------------------------------------------
# Kernel dispatch label and model family
# ----------------------------------------------------------------------
def test_batch_dispatch_is_labelled_delaytrack():
    block = _two_load_block()
    latencies = np.full((RUNS, 2), 3, dtype=np.int64)
    with obs.recording() as rec:
        simulate_block_batch(block, latencies, DT_8)
    kernels = {
        split_series_key(key)[1].get("kernel"): value
        for key, value in rec.metrics.counters.items()
        if split_series_key(key)[0] == "sim.batch_kernel"
    }
    assert kernels == {"delaytrack": RUNS}


def test_model_family_and_parsing():
    assert model_family(DT_8) == "delaytrack"
    assert model_family(delay_tracking(0)) == "delaytrack"
    assert model_family(delay_tracking(2, superscalar(4))) == "delaytrack"
    assert parse_processor("dt8") == DT_8
    assert parse_processor("max8+dt4") == delay_tracking(4, MAX_8)
    parsed = parse_processor("len8x2+dt4")
    assert parsed.max_load_cycles == 8
    assert parsed.issue_width == 2
    assert parsed.load_delay_tracking == 4
    with pytest.raises(ValueError):
        parse_processor("dt-8")
    with pytest.raises(ValueError):
        ProcessorModel("DT-bad", load_delay_tracking=-1)


# ----------------------------------------------------------------------
# blocking_loads at issue_width > 1 warns on both engines
# ----------------------------------------------------------------------
BLOCKING_X2 = ProcessorModel("BLOCKINGx2", blocking_loads=True, issue_width=2)


@pytest.mark.parametrize(
    "processor",
    [BLOCKING_X2, delay_tracking(2, BLOCKING_X2)],
    ids=lambda p: p.name,
)
def test_blocking_at_width_warns_scalar(processor):
    block = _two_load_block()
    with pytest.warns(RuntimeWarning, match="blocking_loads is ignored"):
        simulate_block(block, [3, 4], processor)


@pytest.mark.parametrize(
    "processor",
    [BLOCKING_X2, delay_tracking(2, BLOCKING_X2)],
    ids=lambda p: p.name,
)
def test_blocking_at_width_warns_batch_and_counts(processor):
    block = _two_load_block()
    latencies = np.full((RUNS, 2), 3, dtype=np.int64)
    with obs.recording() as rec:
        with pytest.warns(RuntimeWarning, match="blocking_loads is ignored"):
            simulate_block_batch(block, latencies, processor)
    ignored = {
        split_series_key(key)[1].get("feature"): value
        for key, value in rec.metrics.counters.items()
        if split_series_key(key)[0] == "sim.feature_ignored"
    }
    assert ignored == {"blocking-loads": RUNS}


def test_nonblocking_multi_issue_does_not_warn(recwarn):
    import warnings as _warnings

    block = _two_load_block()
    with _warnings.catch_warnings():
        _warnings.simplefilter("error", RuntimeWarning)
        simulate_block(block, [3, 4], superscalar(4))
        simulate_block_batch(
            block, np.full((RUNS, 2), 3, dtype=np.int64), superscalar(4)
        )


# ----------------------------------------------------------------------
# Random-block scalar/batch agreement (the broad sweeps live in
# test_fuzz_equivalence.py; this is the cheap always-on slice)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("table", (0, 1, 2, 8))
@pytest.mark.parametrize("seed", range(3))
def test_batch_matches_scalar_across_tables(table, seed):
    block = _block(seed)
    latencies = _latencies(block, seed)
    for base in (UNLIMITED, MAX_8, LEN_8, BLOCKING):
        _assert_matches_scalar(
            block.instructions, latencies, delay_tracking(table, base)
        )


@pytest.mark.parametrize("width", (2, 4))
@pytest.mark.parametrize("seed", range(2))
def test_batch_matches_scalar_superscalar_crosses(width, seed):
    block = _block(seed)
    latencies = _latencies(block, seed)
    for base in (superscalar(width), superscalar(width, LEN_8)):
        for table in (0, 2, 8):
            _assert_matches_scalar(
                block.instructions, latencies, delay_tracking(table, base)
            )
