"""Tests for the conventional blocking-loads processor (Section 1's
baseline hardware, which makes load scheduling pointless)."""

import numpy as np
import pytest

from repro.core import BalancedScheduler, TraditionalScheduler
from repro.ir import MemRef, Opcode, RegClass, VirtualReg, alu, load
from repro.machine import BLOCKING, UNLIMITED
from repro.simulate import simulate_block
from repro.workloads import random_block

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)


def padded_load(gap):
    block = [load(VirtualReg(0, RegClass.FP), A)]
    for k in range(gap):
        block.append(alu(Opcode.ADD, VirtualReg(100 + k), ()))
    block.append(
        alu(Opcode.FADD, VirtualReg(1, RegClass.FP), (VirtualReg(0, RegClass.FP),))
    )
    return block


class TestBlockingSemantics:
    def test_stalls_full_latency_at_every_load(self):
        result = simulate_block(padded_load(0), [6], BLOCKING)
        assert result.interlock_cycles == 5

    def test_padding_does_not_help(self):
        """The defining property: independent work cannot overlap a
        load, so schedules are irrelevant."""
        unpadded = simulate_block(padded_load(0), [6], BLOCKING)
        padded = simulate_block(padded_load(4), [6], BLOCKING)
        assert (
            padded.cycles - padded.instructions
            == unpadded.cycles - unpadded.instructions
        )

    def test_unit_latency_free(self):
        result = simulate_block(padded_load(2), [1], BLOCKING)
        assert result.interlock_cycles == 0

    def test_runtime_is_schedule_independent(self, rng):
        """Any two valid schedules of a block run in the same time on
        blocking hardware with identical latency draws."""
        for _ in range(10):
            block = random_block(rng, n_instructions=18)
            n = sum(1 for i in block if i.is_load)
            latencies = rng.integers(1, 12, size=n)
            runtimes = set()
            for policy in (BalancedScheduler(), TraditionalScheduler(2),
                           TraditionalScheduler(9)):
                scheduled = policy.schedule_block(block).block
                # Latencies follow load *identity*, not position: remap
                # by original ident order.
                order = [i for i in scheduled if i.is_load]
                original = [i for i in block if i.is_load]
                ident_latency = {
                    inst.ident: int(latencies[k])
                    for k, inst in enumerate(original)
                }
                remapped = [ident_latency[i.ident] for i in order]
                result = simulate_block(
                    scheduled.instructions, remapped, BLOCKING
                )
                runtimes.add(result.cycles)
            assert len(runtimes) == 1

    def test_blocking_never_faster_than_nonblocking(self, rng):
        for _ in range(10):
            block = random_block(rng, n_instructions=15)
            n = sum(1 for i in block if i.is_load)
            latencies = rng.integers(1, 20, size=n)
            nonblocking = simulate_block(block.instructions, latencies, UNLIMITED)
            blocking = simulate_block(block.instructions, latencies, BLOCKING)
            assert blocking.cycles >= nonblocking.cycles

    def test_identity_still_holds(self):
        result = simulate_block(padded_load(3), [9], BLOCKING)
        assert result.cycles == result.instructions + result.interlock_cycles
