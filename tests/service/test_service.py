"""End-to-end tests of the scheduling service.

The headline invariants:

* responses are **byte-identical** to the batch CLI for identical
  specs (compile/schedule/explain share the CLI's render functions;
  simulate payloads come from the same engine cells);
* concurrent requests share the compilation and result caches and
  coalesce into engine batches;
* a pool worker dying mid-request surfaces as HTTP 503 plus a
  ``pool_downgrade`` manifest record and metric -- and the daemon
  keeps serving;
* ``/metrics`` is valid Prometheus text exposition.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.common import (
    FAULT_ONCE_ENV,
    FAULT_PROGRAM_ENV,
    evaluate_cells,
    shutdown_pool,
)
from repro.experiments.manifest import ManifestWriter, read_runs
from repro.experiments.runner import main as cli_main
from repro.obs.export import (
    validate_chrome_trace,
    validate_prometheus_text,
)
from repro.service import (
    SchedulingService,
    ServiceClient,
    ServiceError,
    ServiceThread,
    cell_payload,
    parse_request,
    to_cell_spec,
)

SOURCE = """
program svc
  array a[256], b[256], c[256]
  kernel k1 freq 20 unroll 2
    t1 = a[i] * b[i]
    c[i] = t1 + a[i+1]
  end
end
"""

SIM_PAYLOAD = {
    "program": "TRACK",
    "memory": "N(2,5)",
    "runs": 3,
    "n_boot": 10,
}


@pytest.fixture
def served(tmp_path):
    """A running service (fresh caches) and a client talking to it."""
    service = SchedulingService(
        cache=ResultCache(tmp_path / "cache"),
        manifest=ManifestWriter(tmp_path / "manifest.jsonl"),
        batch_window_s=0.02,
    )
    with ServiceThread(service) as thread:
        yield service, ServiceClient(port=thread.port)


def _cli_stdout(capsys, argv):
    """Run the real CLI in-process and return exactly its stdout."""
    capsys.readouterr()
    assert cli_main(argv) == 0
    return capsys.readouterr().out


class TestByteIdentity:
    def test_compile_matches_the_cli(self, served, tmp_path, capsys):
        _, client = served
        path = tmp_path / "svc.mf"
        path.write_text(SOURCE)
        expected = _cli_stdout(capsys, ["compile", str(path)])
        assert client.compile(source=SOURCE)["output"] == expected

    def test_schedule_matches_the_cli(self, served, tmp_path, capsys):
        _, client = served
        path = tmp_path / "svc.mf"
        path.write_text(SOURCE)
        expected = _cli_stdout(
            capsys, ["schedule", str(path), "--policy", "traditional",
                     "--verbose"]
        )
        got = client.schedule(
            source=SOURCE, policy="traditional", verbose=True
        )
        assert got["output"] == expected

    def test_optimal_schedule_matches_the_cli(self, served, tmp_path, capsys):
        """`"policy": "optimal"` routes through the same renderer as
        the CLI; the certificate lines (cost / certified / expansions)
        must agree byte-for-byte -- the search budget is deterministic,
        and the policy name normalises int-vs-float latency."""
        _, client = served
        path = tmp_path / "svc.mf"
        path.write_text(SOURCE)
        expected = _cli_stdout(
            capsys, ["schedule", str(path), "--policy", "optimal",
                     "--latency", "5", "--verbose"]
        )
        got = client.schedule(
            source=SOURCE, policy="optimal", latency=5, verbose=True
        )
        assert got["output"] == expected
        assert "certified optimal" in got["output"]

    def test_optimal_fractional_latency_is_a_400(self, served):
        _, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.schedule(source=SOURCE, policy="optimal", latency=2.5)
        assert excinfo.value.status == 400
        assert "latency" in str(excinfo.value)

    def test_explain_matches_the_cli(self, served, tmp_path, capsys):
        _, client = served
        path = tmp_path / "svc.mf"
        path.write_text(SOURCE)
        expected = _cli_stdout(capsys, ["explain", str(path), "--full"])
        assert client.explain(source=SOURCE, full=True)["output"] == expected

    def test_simulate_payload_matches_the_batch_engine(self, served):
        """The /simulate body must be the canonical serialisation of
        the exact cell the batch engine computes for the same spec."""
        _, client = served
        spec = to_cell_spec(parse_request("simulate", dict(SIM_PAYLOAD)))
        (cell,) = evaluate_cells([spec], jobs=1)
        expected = (
            json.dumps(cell_payload(cell), sort_keys=True) + "\n"
        ).encode("utf-8")
        assert client.simulate_bytes(**SIM_PAYLOAD) == expected

    def test_repeated_requests_are_byte_identical(self, served):
        _, client = served
        first = client.simulate_bytes(**SIM_PAYLOAD)
        second = client.simulate_bytes(**SIM_PAYLOAD)
        assert first == second


class TestConcurrency:
    def test_concurrent_identical_requests_coalesce(self, tmp_path):
        service = SchedulingService(
            cache=ResultCache(tmp_path / "cache"),
            batch_window_s=0.25,  # wide window: everyone joins one flush
        )
        with ServiceThread(service) as thread:
            client = ServiceClient(port=thread.port)
            bodies = [None] * 6
            errors = []

            def worker(index):
                try:
                    bodies[index] = client.simulate_bytes(**SIM_PAYLOAD)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(bodies))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            batcher = service._batcher
            assert not errors
            assert len(set(bodies)) == 1, "every client saw the same bytes"
            # All six landed before the first flush: one engine call.
            assert batcher.coalesced >= 1

    def test_full_queue_rejects_with_429(self, tmp_path):
        service = SchedulingService(
            cache=None,
            max_queue=1,
            batch_window_s=0.5,
        )
        with ServiceThread(service) as thread:
            client = ServiceClient(port=thread.port)
            statuses = []
            lock = threading.Lock()

            def worker(memory):
                try:
                    client.simulate(
                        program="TRACK", memory=memory, runs=3, n_boot=10
                    )
                    with lock:
                        statuses.append(200)
                except ServiceError as exc:
                    with lock:
                        statuses.append(exc.status)

            threads = [
                threading.Thread(target=worker, args=(m,))
                for m in ("N(2,5)", "N(2,2)", "N(3,2)")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert 200 in statuses, "someone must get through"
            assert 429 in statuses, "someone must be turned away"

    def test_deadline_returns_504(self, served):
        _, client = served
        with pytest.raises(ServiceError) as excinfo:
            # 1 ms cannot cover a Monte-Carlo cell; the request times
            # out in the queue and reports 504.
            client.simulate(**SIM_PAYLOAD, deadline_ms=1)
        assert excinfo.value.status == 504


class TestPoolKillDrill:
    @pytest.fixture(autouse=True)
    def cold_pool(self):
        """Fork fresh workers after the crash-hook env is in place and
        never leak them into later tests."""
        shutdown_pool()
        yield
        shutdown_pool()

    def test_503_then_keeps_serving(self, tmp_path, monkeypatch):
        """A worker killed mid-batch surfaces as 503 (plus manifest
        record and metric) and the daemon survives to serve the retry."""
        sentinel = tmp_path / "worker-died"
        monkeypatch.setenv(FAULT_PROGRAM_ENV, "TRACK")
        monkeypatch.setenv(FAULT_ONCE_ENV, str(sentinel))
        manifest_path = tmp_path / "manifest.jsonl"
        service = SchedulingService(
            jobs=2,
            cache=ResultCache(tmp_path / "cache"),
            manifest=ManifestWriter(manifest_path),
            pool_retries=0,  # first breakage is final: deterministic 503
            batch_window_s=0.25,
        )
        with ServiceThread(service) as thread:
            client = ServiceClient(port=thread.port)
            statuses = []
            lock = threading.Lock()

            def worker(latency):
                # Two different optimistic latencies land in different
                # compile-sharing groups, so the flush dispatches two
                # pool items -- a single item would run inline in the
                # parent, where the crash hook deliberately never fires.
                try:
                    client.simulate(
                        program="TRACK", memory="N(2,5)",
                        optimistic_latency=latency, runs=3, n_boot=10,
                    )
                    with lock:
                        statuses.append(200)
                except ServiceError as exc:
                    with lock:
                        statuses.append(exc.status)

            threads = [
                threading.Thread(target=worker, args=(lat,))
                for lat in (2, 3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)

            assert sentinel.exists(), "the worker never died"
            assert statuses == [503, 503], statuses

            # The daemon is still alive; the sentinel makes the crash
            # one-shot, so a retry on the rebuilt pool succeeds.
            assert client.healthz() == {"status": "ok"}
            retry = client.simulate(
                program="TRACK", memory="N(2,5)", runs=3, n_boot=10
            )
            assert retry["program"] == "TRACK"

            metrics_text = client.metrics()
            assert "service_pool_downgrade" in metrics_text
            assert 'status="503"' in metrics_text

        (run,) = read_runs(manifest_path)
        assert run.downgrades > 0, "manifest must record the downgrade"

    def test_downgrade_is_stamped_with_trace_ids_and_traces_survive(
        self, tmp_path, monkeypatch
    ):
        """Reproducer: a pool worker dying under a *traced* request
        used to leave the ``pool_downgrade`` manifest record and the
        request record without the active trace ids, so the 503 could
        not be correlated with the trace that hit it.  Both must carry
        the caller's trace id -- and tracing must survive the rebuild:
        a traced retry on the fresh pool still collects worker spans.
        """
        sentinel = tmp_path / "worker-died"
        monkeypatch.setenv(FAULT_PROGRAM_ENV, "TRACK")
        monkeypatch.setenv(FAULT_ONCE_ENV, str(sentinel))
        manifest_path = tmp_path / "manifest.jsonl"
        service = SchedulingService(
            jobs=2,
            cache=ResultCache(tmp_path / "cache"),
            manifest=ManifestWriter(manifest_path),
            pool_retries=0,
            batch_window_s=0.0,
        )
        caller_trace = "feedfacefeedfacefeedfacefeedface"
        retry_trace = "deadbeefdeadbeefdeadbeefdeadbeef"
        with ServiceThread(service) as thread:
            client = ServiceClient(port=thread.port)
            # jobs=2 forces even this lone cell onto a pool worker,
            # where the crash hook kills it -> 503.
            with pytest.raises(ServiceError) as excinfo:
                client.simulate_traced(
                    traceparent=f"00-{caller_trace}-{'12' * 8}-01",
                    program="TRACK", memory="N(2,5)", runs=3, n_boot=10,
                )
            assert excinfo.value.status == 503
            assert sentinel.exists(), "the worker never died"

            # The recent-requests ring marks the downgraded request.
            (record,) = [
                r
                for r in client.debug_requests()
                if r["trace_id"] == caller_trace
            ]
            assert record["pool_downgrade"] is True
            assert record["status"] == 503

            # Pool rebuild: the traced retry succeeds and its trace
            # still carries spans from the *new* worker process.
            payload, trace_id = client.simulate_traced(
                traceparent=f"00-{retry_trace}-{'34' * 8}-01",
                program="TRACK", memory="N(2,5)", runs=3, n_boot=10,
            )
            assert trace_id == retry_trace
            assert payload["program"] == "TRACK"
            trace = client.debug_trace(retry_trace)
            assert validate_chrome_trace(trace) == []
            spans = [
                e for e in trace["traceEvents"] if e.get("ph") == "X"
            ]
            assert len({e["pid"] for e in spans}) >= 2

        records = [
            json.loads(line)
            for line in manifest_path.read_text().splitlines()
        ]
        (downgrade,) = [
            r for r in records if r["event"] == "pool_downgrade"
        ]
        assert downgrade["trace_ids"] == [caller_trace]
        failed = [
            r
            for r in records
            if r["event"] == "request" and r["status"] == 503
        ]
        assert failed and failed[0]["trace_id"] == caller_trace


class TestTracing:
    """Request-scoped tracing: traceparent round trips, worker span
    fragments reassemble into a Perfetto-loadable trace, and the debug
    routes expose the recent-requests ring."""

    CALLER_TRACE = "0af7651916cd43dd8448eb211c80319c"
    CALLER_SPAN = "b7ad6b7169203331"

    @pytest.fixture(autouse=True)
    def cold_pool(self):
        """jobs=2 forks real workers; never leak them across tests."""
        shutdown_pool()
        yield
        shutdown_pool()

    @pytest.fixture
    def traced(self, tmp_path):
        """A jobs=2 service, so traced cells run in real pool workers."""
        service = SchedulingService(
            jobs=2,
            cache=ResultCache(tmp_path / "cache"),
            manifest=ManifestWriter(tmp_path / "manifest.jsonl"),
            batch_window_s=0.0,
        )
        with ServiceThread(service) as thread:
            yield service, ServiceClient(port=thread.port)

    def _traceparent(self, trace_id=None):
        return f"00-{trace_id or self.CALLER_TRACE}-{self.CALLER_SPAN}-01"

    def test_caller_trace_id_round_trips(self, traced):
        _, client = traced
        payload, trace_id = client.simulate_traced(
            traceparent=self._traceparent(), **SIM_PAYLOAD
        )
        assert trace_id == self.CALLER_TRACE
        assert "improvement_pct" in payload

    def test_trace_id_is_minted_when_header_absent(self, traced):
        _, client = traced
        _, trace_id = client.simulate_traced(**SIM_PAYLOAD)
        assert trace_id and len(trace_id) == 32
        assert trace_id != self.CALLER_TRACE
        int(trace_id, 16)  # well-formed hex

    def test_debug_trace_spans_server_and_worker(self, traced):
        _, client = traced
        client.simulate_traced(
            traceparent=self._traceparent(), **SIM_PAYLOAD
        )
        trace = client.debug_trace(self.CALLER_TRACE)
        assert validate_chrome_trace(trace) == []
        spans = [
            e for e in trace["traceEvents"] if e.get("ph") == "X"
        ]
        names = {e["name"] for e in spans}
        assert "request /simulate" in names
        assert any(n.startswith("evaluate_cell") for n in names)
        # The engine cell ran in a pool worker: spans from >= 2 pids.
        assert len({e["pid"] for e in spans}) >= 2
        assert trace["otherData"]["trace_id"] == self.CALLER_TRACE

    def test_debug_requests_lists_the_request(self, traced):
        _, client = traced
        client.simulate_traced(
            traceparent=self._traceparent(), **SIM_PAYLOAD
        )
        (record,) = [
            r
            for r in client.debug_requests()
            if r["trace_id"] == self.CALLER_TRACE
        ]
        assert record["route"] == "simulate"
        assert record["status"] == 200
        assert record["parent_id"] == self.CALLER_SPAN
        assert record["spans"] > 0
        assert record["cell_keys"], "the evaluated cell key is noted"
        assert "pool" in record["timings_ms"]

    def test_trace_id_lands_on_the_manifest_request_record(
        self, traced, tmp_path
    ):
        _, client = traced
        client.simulate_traced(
            traceparent=self._traceparent(), **SIM_PAYLOAD
        )
        records = [
            json.loads(line)
            for line in (tmp_path / "manifest.jsonl")
            .read_text()
            .splitlines()
        ]
        (request,) = [r for r in records if r["event"] == "request"]
        assert request["trace_id"] == self.CALLER_TRACE

    def test_tracing_off_is_byte_identical_and_404s_debug(self, tmp_path):
        """--no-tracing must change nothing but the extras: the
        /simulate body stays byte-identical to the batch engine, and
        the debug routes answer 404."""
        service = SchedulingService(
            cache=ResultCache(tmp_path / "cache"),
            trace_requests=False,
        )
        with ServiceThread(service) as thread:
            client = ServiceClient(port=thread.port)
            spec = to_cell_spec(
                parse_request("simulate", dict(SIM_PAYLOAD))
            )
            (cell,) = evaluate_cells([spec], jobs=1)
            expected = (
                json.dumps(cell_payload(cell), sort_keys=True) + "\n"
            ).encode("utf-8")
            status, body, headers = client.request(
                "POST", "/simulate", dict(SIM_PAYLOAD),
                headers={"traceparent": self._traceparent()},
            )
            assert (status, body) == (200, expected)
            assert "traceparent" not in headers
            for path in ("/debug/requests", f"/debug/trace/{'a' * 32}"):
                status, body = client.raw_request("GET", path)
                assert status == 404
                assert "tracing is disabled" in json.loads(body)["error"]

    def test_malformed_traceparent_falls_back_to_a_fresh_trace(
        self, traced
    ):
        _, client = traced
        payload, trace_id = client.simulate_traced(
            traceparent="00-not-a-real-header", **SIM_PAYLOAD
        )
        assert "improvement_pct" in payload
        assert trace_id and trace_id != self.CALLER_TRACE


class TestMetricsEndpoint:
    def test_prometheus_text_is_valid(self, served):
        _, client = served
        client.simulate(**SIM_PAYLOAD)
        client.compile(source=SOURCE)
        text = client.metrics()
        assert validate_prometheus_text(text) == []
        assert 'service_requests{endpoint="simulate",status="200"} 1' in text

    def test_request_records_land_in_the_manifest(self, served, tmp_path):
        service, client = served
        client.simulate(**SIM_PAYLOAD)
        client.healthz()
        with pytest.raises(ServiceError):
            client.simulate(program="TRACK", memory="BOGUS")
        # Shut down to flush run_end, then reassemble.
        # (ServiceThread's __exit__ does it; read after the with block
        # in other tests -- here read the raw records instead.)
        records = [
            json.loads(line)
            for line in (tmp_path / "manifest.jsonl").read_text().splitlines()
        ]
        requests = [r for r in records if r["event"] == "request"]
        assert [r["kind"] for r in requests] == ["simulate", "simulate"]
        assert [r["status"] for r in requests] == [200, 400]


class TestRequestValidation:
    def test_unknown_field_is_400(self, served):
        _, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(program="TRACK", memory="N(2,5)", bogus=1)
        assert excinfo.value.status == 400
        assert "bogus" in str(excinfo.value)

    def test_delay_tracking_processor_specs_are_accepted(self, served):
        """/simulate takes the full parse_processor grammar, so the
        adaptive-hardware family is reachable over the wire."""
        _, client = served
        payload = client.simulate(processor="dt8", **SIM_PAYLOAD)
        assert payload["processor"] == "DT-8"
        payload = client.simulate(processor="max8x2+dt4", **SIM_PAYLOAD)
        assert payload["processor"] == "MAX-8x2+DT4"

    def test_unknown_processor_spec_is_400(self, served):
        _, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(
                processor="dt8turbo", **SIM_PAYLOAD
            )
        assert excinfo.value.status == 400
        assert "dt8turbo" in str(excinfo.value)

    def test_unknown_program_is_400(self, served):
        _, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(program="NOPE", memory="N(2,5)")
        assert excinfo.value.status == 400

    def test_source_xor_program(self, served):
        _, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.compile(source=SOURCE, program="TRACK")
        assert excinfo.value.status == 400

    def test_bad_json_is_400(self, served):
        _, client = served
        status, _ = client.raw_request("POST", "/compile", None)
        # empty body parses as {} -> missing source/program -> 400
        assert status == 400

    def test_unknown_route_is_404(self, served):
        _, client = served
        status, _ = client.raw_request("GET", "/nope")
        assert status == 404

    def test_unknown_block_is_404(self, served):
        _, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.explain(source=SOURCE, block="nope")
        assert excinfo.value.status == 404
        assert "choose from" in str(excinfo.value)

    def test_bad_minif_source_is_400(self, served):
        _, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.compile(source="program broken\n")
        assert excinfo.value.status == 400
