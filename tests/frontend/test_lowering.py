"""Tests for minif -> IR lowering."""

import pytest

from repro.frontend import LoweringError, compile_minif
from repro.frontend.lowering import POINTER_TABLE_REGION
from repro.ir import Opcode, RegClass, verify_block


def lower(source, **kwargs):
    program = compile_minif(source, **kwargs)
    return program.functions[0].blocks[0]


SIMPLE = """
program p
  array a[64], b[64]
  kernel k freq 7
    t1 = a[i] * b[i]
    b[i] = t1 + a[i+1]
  end
end
"""


class TestBasicLowering:
    def test_block_is_well_formed(self):
        verify_block(lower(SIMPLE))

    def test_frequency_propagated(self):
        assert lower(SIMPLE).frequency == 7.0

    def test_loads_and_stores_emitted(self):
        block = lower(SIMPLE)
        data_loads = [
            i for i in block.loads if i.mem.region != POINTER_TABLE_REGION
        ]
        assert len(data_loads) == 3  # a[i], b[i], a[i+1]
        assert len(block.stores) == 1

    def test_fp_values_fp_class(self):
        block = lower(SIMPLE)
        for inst in block:
            if inst.opcode in (Opcode.FADD, Opcode.FMUL):
                assert all(r.rclass is RegClass.FP for r in inst.defs)

    def test_undeclared_array_rejected(self):
        with pytest.raises(LoweringError, match="undeclared"):
            lower("program p\nkernel k freq 1\nx = zz[i]\nend\nend")


class TestPointerLoads:
    def test_pointer_loads_on_by_default(self):
        block = lower(SIMPLE)
        pointer_loads = [
            i for i in block.loads if i.mem.region == POINTER_TABLE_REGION
        ]
        assert len(pointer_loads) == 2  # one per referenced array

    def test_data_loads_depend_on_pointer_load(self):
        from repro.analysis import build_dag

        block = lower(SIMPLE)
        dag = build_dag(block)
        pointer_nodes = [
            v for v in dag.load_nodes()
            if dag.instructions[v].mem.region == POINTER_TABLE_REGION
        ]
        data_nodes = [
            v for v in dag.load_nodes() if v not in pointer_nodes
        ]
        for data in data_nodes:
            assert any(
                p in dag.predecessors(data) for p in pointer_nodes
            )

    def test_pointer_loads_off_gives_live_in_bases(self):
        block = lower(SIMPLE, pointer_loads=False)
        assert all(
            i.mem.region != POINTER_TABLE_REGION for i in block.loads
        )
        int_live_ins = [r for r in block.live_in if r.rclass is RegClass.INT]
        assert len(int_live_ins) == 2


class TestUnrolling:
    UNROLLED = """
program p
  array a[64], c[64]
  kernel k freq 8 unroll 3
    t1 = a[i] * 2.0
    s = s + t1
    c[i] = t1
  end
end
"""

    def test_body_replicated(self):
        once = lower(self.UNROLLED.replace("unroll 3", ""))
        thrice = lower(self.UNROLLED)
        pointer_overhead = 2  # a and c pointer loads, once per block
        assert len(thrice) - pointer_overhead >= 3 * (
            len(once) - pointer_overhead
        ) - 3  # literal CSE may save an li per copy

    def test_offsets_shifted_per_copy(self):
        block = lower(self.UNROLLED)
        store_offsets = sorted(i.mem.offset for i in block.stores)
        assert store_offsets == [0, 1, 2]

    def test_reduction_chains_across_copies(self):
        """s = s + ... threads serially through the copies."""
        from repro.analysis import build_dag
        from repro.analysis.critical_path import height_in_nodes

        block = lower(self.UNROLLED)
        dag = build_dag(block)
        # The spine forces DAG height to grow with the unroll factor.
        assert height_in_nodes(dag) >= 4

    def test_temporaries_independent_per_copy(self):
        block = lower(self.UNROLLED)
        fmuls = [i for i in block if i.opcode is Opcode.FMUL]
        defs = {i.defs[0] for i in fmuls}
        assert len(defs) == 3  # three independent t1 versions


class TestLiveness:
    CARRIED = """
program p
  array a[64]
  kernel k freq 1
    s = s + a[i]
    u = s * 2.0
  end
end
"""

    def test_read_before_write_is_live_in(self):
        block = lower(self.CARRIED)
        fp_live_in = [r for r in block.live_in if r.rclass is RegClass.FP]
        assert len(fp_live_in) == 1  # initial s

    def test_assigned_scalars_are_live_out(self):
        block = lower(self.CARRIED)
        assert len(block.live_out) == 2  # final s and u

    def test_temporaries_not_live_out(self):
        block = lower(SIMPLE)
        assert block.live_out == []


class TestGatherLowering:
    GATHER = """
program p
  array v[64], col[64]
  kernel k freq 1
    s = s + v[col[i]]
  end
end
"""

    def test_subscript_load_is_integer(self):
        block = lower(self.GATHER)
        col_loads = [i for i in block.loads if i.mem.region == "col"]
        assert len(col_loads) == 1
        assert col_loads[0].defs[0].rclass is RegClass.INT

    def test_address_add_emitted(self):
        block = lower(self.GATHER)
        assert any(i.opcode is Opcode.ADD for i in block)

    def test_gather_load_conservative_alias(self):
        block = lower(self.GATHER)
        v_loads = [i for i in block.loads if i.mem.region == "v"]
        assert v_loads[0].mem.affine_coeff is None

    def test_three_load_series(self):
        """ptab -> col -> v forms a three-load chain in the DAG."""
        from repro.analysis import build_dag
        from repro.analysis.components import longest_load_path

        block = lower(self.GATHER)
        dag = build_dag(block)
        full = (1 << len(dag)) - 1
        assert longest_load_path(dag, full) == 3
