"""Tests for the minif parser."""

import pytest

from repro.frontend import (
    ArrayRef,
    BinOp,
    IndexExpr,
    IndirectIndex,
    Num,
    ParseError,
    Var,
    parse_program,
)

MINIMAL = """
program p
  array a[64]
  kernel k freq 10
    s = s + a[i]
  end
end
"""


class TestProgramStructure:
    def test_minimal_program(self):
        ast = parse_program(MINIMAL)
        assert ast.name == "p"
        assert ast.arrays == ["a"]
        assert len(ast.kernels) == 1
        assert ast.kernels[0].name == "k"
        assert ast.kernels[0].freq == 10.0
        assert ast.kernels[0].unroll == 1

    def test_multiple_arrays_one_decl(self):
        ast = parse_program(
            "program p\narray a[1], b[2], c[3]\nkernel k freq 1\nx = a[i]\nend\nend"
        )
        assert ast.arrays == ["a", "b", "c"]

    def test_scalar_decl(self):
        ast = parse_program(
            "program p\nscalar s, t\nkernel k freq 1\ns = s + 1\nend\nend"
        )
        assert ast.scalars == ["s", "t"]

    def test_unroll_clause(self):
        ast = parse_program(
            "program p\narray a[8]\nkernel k freq 2 unroll 4\nx = a[i]\nend\nend"
        )
        assert ast.kernels[0].unroll == 4

    def test_unroll_must_be_positive(self):
        with pytest.raises(ParseError, match="unroll"):
            parse_program(
                "program p\nkernel k freq 2 unroll 0\nx = 1\nend\nend"
            )

    def test_missing_end_rejected(self):
        with pytest.raises(ParseError):
            parse_program("program p\nkernel k freq 1\nx = 1\nend")

    def test_junk_after_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program(MINIMAL + "\nextra")


class TestIndexExpressions:
    def _index(self, text):
        source = (
            f"program p\narray a[8], c[8]\nkernel k freq 1\nx = a[{text}]\nend\nend"
        )
        ast = parse_program(source)
        ref = ast.kernels[0].body[0].expr
        assert isinstance(ref, ArrayRef)
        return ref.index

    def test_plain_i(self):
        assert self._index("i") == IndexExpr(coeff=1, offset=0)

    def test_offsets(self):
        assert self._index("i+3") == IndexExpr(1, 3)
        assert self._index("i-2") == IndexExpr(1, -2)

    def test_coefficient(self):
        assert self._index("2*i") == IndexExpr(2, 0)
        assert self._index("2*i+1") == IndexExpr(2, 1)

    def test_constant_index(self):
        assert self._index("5") == IndexExpr(coeff=0, offset=5)

    def test_indirect(self):
        index = self._index("c[i]")
        assert isinstance(index, IndirectIndex)
        assert index.array == "c"
        assert index.inner == IndexExpr(1, 0)

    def test_indirect_with_offset(self):
        index = self._index("c[i+1]")
        assert index == IndirectIndex("c", IndexExpr(1, 1))

    def test_nested_indirect_rejected(self):
        with pytest.raises(ParseError, match="nest"):
            self._index("c[c[i]]")

    def test_wrong_induction_variable_rejected(self):
        with pytest.raises(ParseError, match="'i'"):
            self._index("j")

    def test_shifted(self):
        assert IndexExpr(2, 1).shifted(3) == IndexExpr(2, 7)
        shifted = IndirectIndex("c", IndexExpr(1, 0)).shifted(2)
        assert shifted.inner.offset == 2


class TestExpressions:
    def _expr(self, text):
        source = f"program p\narray a[8]\nkernel k freq 1\nx = {text}\nend\nend"
        return parse_program(source).kernels[0].body[0].expr

    def test_precedence_mul_over_add(self):
        expr = self._expr("a[i] + b * 2")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.rhs, BinOp) and expr.rhs.op == "*"

    def test_parentheses_override(self):
        expr = self._expr("(a[i] + b) * 2")
        assert expr.op == "*"
        assert isinstance(expr.lhs, BinOp) and expr.lhs.op == "+"

    def test_left_associativity(self):
        expr = self._expr("x - y - z")
        assert expr.op == "-"
        assert isinstance(expr.lhs, BinOp)
        assert expr.rhs == Var("z")

    def test_number_literal(self):
        assert self._expr("2.5") == Num(2.5)

    def test_var_temp_convention(self):
        assert Var("t1").is_temp
        assert not Var("s").is_temp


class TestAssignTargets:
    def test_scalar_target(self):
        ast = parse_program(MINIMAL)
        assert ast.kernels[0].body[0].target == Var("s")

    def test_array_target(self):
        ast = parse_program(
            "program p\narray a[8]\nkernel k freq 1\na[i+1] = 2\nend\nend"
        )
        target = ast.kernels[0].body[0].target
        assert isinstance(target, ArrayRef)
        assert target.index == IndexExpr(1, 1)
