"""Tests for the minif tokenizer."""

import pytest

from repro.frontend import LexError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    skip = (TokenKind.EOF, TokenKind.NEWLINE)
    return [t.text for t in tokenize(source) if t.kind not in skip]


class TestTokenKinds:
    def test_keywords_recognised(self):
        tokens = tokenize("program kernel array scalar freq unroll end")
        keyword_texts = [
            t.text for t in tokens if t.kind is TokenKind.KEYWORD
        ]
        assert keyword_texts == [
            "program", "kernel", "array", "scalar", "freq", "unroll", "end",
        ]

    def test_identifiers_vs_keywords(self):
        tokens = tokenize("programx kernels")
        assert all(
            t.kind is not TokenKind.KEYWORD
            for t in tokens
            if t.text
        )

    def test_numbers(self):
        values = [
            t.text for t in tokenize("1 2.5 100 3e2 1.5e-3")
            if t.kind is TokenKind.NUMBER
        ]
        assert values == ["1", "2.5", "100", "3e2", "1.5e-3"]

    def test_operators_and_brackets(self):
        source = "a = b[i] + c * (d - 2) / e, f"
        got = kinds(source)
        assert TokenKind.OP in got
        assert TokenKind.LBRACKET in got
        assert TokenKind.LPAREN in got
        assert TokenKind.COMMA in got


class TestNewlines:
    def test_statement_separator_emitted(self):
        tokens = tokenize("a = 1\nb = 2\n")
        newline_count = sum(1 for t in tokens if t.kind is TokenKind.NEWLINE)
        assert newline_count == 2

    def test_blank_lines_collapsed(self):
        tokens = tokenize("a = 1\n\n\n\nb = 2")
        newline_count = sum(1 for t in tokens if t.kind is TokenKind.NEWLINE)
        assert newline_count == 2  # one between, one final

    def test_final_newline_synthesised(self):
        tokens = tokenize("a = 1")
        assert tokens[-2].kind is TokenKind.NEWLINE
        assert tokens[-1].kind is TokenKind.EOF


class TestComments:
    def test_comments_stripped(self):
        tokens = tokenize("a = 1  # the answer\nb = 2")
        assert all("answer" not in t.text for t in tokens)

    def test_comment_only_line(self):
        tokens = tokenize("# header\na = 1")
        assert texts("# header\na = 1") == ["a", "=", "1"]


class TestErrors:
    def test_bad_character(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a = $1")
        assert "line 1" in str(excinfo.value)

    def test_error_reports_later_line(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a = 1\nb = @2")
        assert "line 2" in str(excinfo.value)


class TestPositions:
    def test_line_and_column_tracked(self):
        tokens = tokenize("ab = 1\n  cd = 2")
        cd = next(t for t in tokens if t.text == "cd")
        assert cd.line == 2
        assert cd.column == 3
