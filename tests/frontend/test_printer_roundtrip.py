"""Round-trip fuzzing of the minif printer against the parser.

Hypothesis generates random ASTs, the printer emits source, the
parser reads it back; the result must match the original AST node for
node (declared array sizes are documentation and not preserved).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import (
    ArrayRef,
    Assign,
    BinOp,
    IndexExpr,
    IndirectIndex,
    Kernel,
    Num,
    ProgramAST,
    Var,
    parse_program,
)
from repro.frontend.lowering import lower_ast
from repro.frontend.printer import format_expr, format_program_ast
from repro.ir import verify_block

ARRAYS = ("arra", "arrb", "arrc", "arrd")
SCALARS = ("s", "u", "acc")
TEMPS = ("t1", "t2", "t3")

# Constant subscripts (coeff = 0) must be non-negative in the grammar.
affine_indices = st.builds(
    IndexExpr,
    coeff=st.sampled_from([1, 2, 3]),
    offset=st.integers(-4, 4),
)
constant_indices = st.builds(
    IndexExpr, coeff=st.just(0), offset=st.integers(0, 4)
)
index_exprs = st.one_of(affine_indices, constant_indices)
indirect_indices = st.builds(
    IndirectIndex,
    array=st.sampled_from(ARRAYS),
    inner=st.builds(IndexExpr, coeff=st.just(1), offset=st.integers(-2, 2)),
)
indices = st.one_of(index_exprs, indirect_indices)

array_refs = st.builds(ArrayRef, array=st.sampled_from(ARRAYS), index=indices)
leaf_exprs = st.one_of(
    st.builds(Num, value=st.integers(0, 9).map(float)),
    st.builds(Var, name=st.sampled_from(SCALARS + TEMPS)),
    array_refs,
)


def expr_strategy():
    return st.recursive(
        leaf_exprs,
        lambda children: st.builds(
            BinOp,
            op=st.sampled_from(["+", "-", "*", "/"]),
            lhs=children,
            rhs=children,
        ),
        max_leaves=6,
    )


assigns = st.builds(
    Assign,
    target=st.one_of(
        st.builds(Var, name=st.sampled_from(SCALARS + TEMPS)),
        st.builds(
            ArrayRef,
            array=st.sampled_from(ARRAYS),
            index=index_exprs,
        ),
    ),
    expr=expr_strategy(),
)

kernels = st.builds(
    Kernel,
    name=st.sampled_from(["alpha", "beta", "gamma"]),
    freq=st.integers(1, 500).map(float),
    unroll=st.integers(1, 3),
    body=st.lists(assigns, min_size=1, max_size=5),
)


def program_strategy():
    return st.builds(
        ProgramAST,
        name=st.just("fuzzed"),
        arrays=st.just(list(ARRAYS)),
        scalars=st.just([]),
        kernels=st.lists(kernels, min_size=1, max_size=3, unique_by=lambda k: k.name),
    )


class TestRoundTrip:
    @given(program_strategy())
    @settings(max_examples=80, deadline=None)
    def test_print_parse_round_trip(self, ast):
        source = format_program_ast(ast)
        parsed = parse_program(source)
        assert parsed.name == ast.name
        assert parsed.arrays == ast.arrays
        assert len(parsed.kernels) == len(ast.kernels)
        for ours, theirs in zip(ast.kernels, parsed.kernels):
            assert theirs.name == ours.name
            assert theirs.freq == ours.freq
            assert theirs.unroll == ours.unroll
            assert theirs.body == ours.body

    @given(program_strategy())
    @settings(max_examples=40, deadline=None)
    def test_fuzzed_programs_lower_cleanly(self, ast):
        """Whatever the fuzzer writes must lower to verifier-clean IR."""
        program = lower_ast(ast)
        for block in program.all_blocks():
            verify_block(block)

    @given(expr_strategy())
    @settings(max_examples=100, deadline=None)
    def test_expression_precedence_preserved(self, expr):
        """format -> parse preserves the expression tree exactly."""
        source = (
            "program p\n  array arra[8], arrb[8], arrc[8], arrd[8]\n"
            "  kernel k freq 1\n"
            f"    sink = {format_expr(expr)}\n"
            "  end\nend\n"
        )
        parsed = parse_program(source)
        assert parsed.kernels[0].body[0].expr == expr


class TestSuiteSourcesRoundTrip:
    def test_all_suite_programs_round_trip(self):
        from repro.workloads import PROGRAM_SOURCES

        for name, source in PROGRAM_SOURCES.items():
            ast = parse_program(source)
            again = parse_program(format_program_ast(ast))
            assert again.name == ast.name
            assert [k.body for k in again.kernels] == [
                k.body for k in ast.kernels
            ]
