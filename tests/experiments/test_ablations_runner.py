"""Tests for the ablation studies and the CLI runner."""

import pytest

from repro.experiments import (
    run_alias_ablation,
    run_pipelining_ablation,
    run_allocator_ablation,
    run_trace_ablation,
    run_blocking_ablation,
    run_average_weight_ablation,
    run_direction_ablation,
    run_spill_pool_ablation,
    run_superscalar_ablation,
)
from repro.experiments.runner import EXPERIMENTS, main


class TestAverageWeightAblation:
    def test_reports_both_policies_on_every_system(self):
        table = run_average_weight_ablation("MDG")
        for label in (
            "balanced vs traditional @ N(2,5) @ 2",
            "average-weight vs traditional @ N(2,5) @ 2",
        ):
            assert label in table

    def test_balanced_competitive_with_average_variant(self):
        """Divergence documented in EXPERIMENTS.md: the paper reports
        the block-average variant was no better than *traditional*; in
        our substrate (homogeneous kernels, virtual no-ops removed, no
        pressure penalty for over-weighting) the variant tracks
        per-load balanced closely.  The reproducible claims are that
        both weighting schemes clearly beat traditional and that
        per-load balancing is competitive."""
        table = run_average_weight_ablation("MDG")
        balanced = [v for k, v in table.items() if k.startswith("balanced")]
        average = [v for k, v in table.items() if k.startswith("average")]
        assert all(v > 0 for v in balanced)
        assert sum(balanced) >= sum(average) - 10.0


class TestBlockingAblation:
    def test_nonblocking_is_the_enabler(self):
        """Section 1: balanced scheduling's advantage requires
        non-blocking loads; on blocking hardware it collapses."""
        table = run_blocking_ablation("MDG")
        unlimited = next(v for k, v in table.items() if "UNLIMITED" in k)
        blocking = next(v for k, v in table.items() if "BLOCKING" in k)
        assert unlimited > 10
        assert abs(blocking) < 5
        assert unlimited > blocking + 10


class TestDirectionAblation:
    def test_both_directions_reported(self):
        table = run_direction_ablation("MDG")
        assert any("bottom-up" in key for key in table)
        assert any("top-down" in key for key in table)

    def test_bottom_up_balanced_wins(self):
        table = run_direction_ablation("MDG")
        for key, value in table.items():
            if "bottom-up" in key:
                assert value > 0


class TestSpillPoolAblation:
    def test_reports_both_configurations(self):
        table = run_spill_pool_ablation("QCD2")
        assert any("enlarged FIFO" in key for key in table)
        assert any("GCC" in key for key in table)

    def test_spill_percentages_reported(self):
        table = run_spill_pool_ablation("QCD2")
        spills = [v for k, v in table.items() if "spill %" in k]
        assert spills and all(v >= 0 for v in spills)


class TestAliasAblation:
    def test_fortran_vs_c_reported(self):
        table = run_alias_ablation("MDG")
        assert any("fortran" in key for key in table)
        assert any(key.startswith("c alias") or "c alias" in key for key in table)


class TestTraceAblation:
    def test_trace_beats_blocks_for_balanced(self):
        table = run_trace_ablation(latency=6)
        saving = table["balanced: trace saving %"]
        assert saving > 20

    def test_balanced_exploits_trace_more_than_traditional(self):
        """The Section 6 synergy: enlarging blocks helps, and balanced
        weighting is what converts the room into hidden latency."""
        table = run_trace_ablation(latency=6)
        assert (
            table["balanced: trace saving %"]
            > table["traditional W=2: trace saving %"]
        )


class TestAllocatorAblation:
    def test_both_allocators_reported(self):
        table = run_allocator_ablation("BDNA")
        assert any("linear scan" in k for k in table)
        assert any("chaitin" in k for k in table)

    def test_allocators_have_different_characters(self):
        """The Table 4 sensitivity result: the two allocators make
        measurably different spill choices on the same schedules."""
        table = run_allocator_ablation("BDNA")
        linear_t2 = table["linear scan: traditional W=2 spill %"]
        chaitin_t2 = table["chaitin cost/degree: traditional W=2 spill %"]
        assert linear_t2 != chaitin_t2


class TestSuperscalarAblation:
    def test_three_widths(self):
        table = run_superscalar_ablation("MDG")
        assert len(table) == 3
        assert any("width 1" in key for key in table)
        assert any("width 4" in key for key in table)


class TestPipeliningAblation:
    def test_ii_matches_unrolled_throughput(self):
        table = run_pipelining_ablation(load_latency=6)
        for loop in ("stream", "dot", "filter"):
            ii = table[f"{loop}: modulo II (cycles/iteration)"]
            unrolled = table[f"{loop}: unrolled balanced cycles/iteration"]
            assert abs(ii - unrolled) < 0.6

    def test_stages_reported(self):
        table = run_pipelining_ablation()
        assert all(
            v >= 1 for k, v in table.items() if "stages" in k
        )


class TestRunnerCLI:
    def test_experiment_list_complete(self):
        assert set(EXPERIMENTS) == {
            "figure2",
            "figure3",
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "ablations",
        }

    def test_figure2_via_cli(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "worked example schedules" in out
        assert "regenerated" in out

    def test_quick_table4(self, capsys):
        assert main(["table4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "spill instructions" in out

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])
