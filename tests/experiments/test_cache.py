"""Tests for the on-disk result cache behind ``run --resume``.

The contract: keys are pure functions of the cell spec (stable across
processes -- never ``hash()``), values round-trip bit-exactly through
pickle, corrupt entries read as misses, and ``evaluate_cells`` replays
cached cells so resumed runs match fresh runs exactly.
"""

import dataclasses
import pickle

import pytest

from repro.experiments.cache import (
    CODE_VERSION,
    ResultCache,
    cell_key,
    object_key,
    spec_token,
)
from repro.experiments.common import CellSpec, evaluate_cells
from repro.machine import MAX_8, UNLIMITED, system_row
from repro.machine.config import SystemRow


def _spec(**overrides):
    base = dict(
        program="TRACK",
        system=system_row("L80(2,5)", 2),
        processor=UNLIMITED,
        runs=3,
        n_boot=100,
    )
    base.update(overrides)
    return CellSpec(**base)


def _specs():
    return [
        _spec(program=name, processor=processor)
        for name in ("TRACK", "ARC2D")
        for processor in (UNLIMITED, MAX_8)
    ]


class TestKeys:
    def test_key_is_deterministic_across_constructions(self):
        assert cell_key(_spec()) == cell_key(_spec())

    def test_every_result_field_changes_the_key(self):
        base = cell_key(_spec())
        assert cell_key(_spec(program="ARC2D")) != base
        assert cell_key(_spec(system=system_row("N(2,5)", 2))) != base
        assert cell_key(_spec(system=system_row("L80(2,5)", 5))) != base
        assert cell_key(_spec(processor=MAX_8)) != base
        assert cell_key(_spec(seed=7)) != base
        assert cell_key(_spec(runs=5)) != base
        assert cell_key(_spec(n_boot=200)) != base
        assert cell_key(_spec(register_file=None)) != base

    def test_presentation_only_group_is_excluded(self):
        """SystemRow.group labels table sections; it cannot change a
        result, so it must not change the key (or renaming a section
        header would orphan the whole cache)."""
        row = system_row("L80(2,5)", 2)
        relabelled = SystemRow(row.memory, row.optimistic_latency, "Other")
        assert cell_key(_spec(system=row)) == cell_key(
            _spec(system=relabelled)
        )

    def test_token_is_json_primitive_only(self):
        import json

        json.dumps(spec_token(_spec()))  # must not raise

    def test_code_version_salts_every_key(self):
        assert CODE_VERSION in str(
            [CODE_VERSION]
        )  # sanity: it is a string constant
        key = object_key("x")
        assert key == object_key("x")
        assert key != object_key("y")


class TestStore:
    def test_round_trip_preserves_float_bits(self, tmp_path):
        cache = ResultCache(tmp_path)
        value = {"pi": 3.141592653589793, "tiny": 5e-324}
        cache.put_object(object_key("t"), value)
        loaded = cache.get_object(object_key("t"))
        assert pickle.dumps(loaded) == pickle.dumps(value)

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get_object(object_key("absent")) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = object_key("will-corrupt")
        cache.put_object(key, [1, 2, 3])
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.get_object(key) is None
        # ...and the next put repairs it.
        cache.put_object(key, [4])
        assert cache.get_object(key) == [4]

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = object_key("will-truncate")
        cache.put_object(key, list(range(100)))
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get_object(key) is None

    def test_truncated_entry_logs_a_warning_naming_the_file(
        self, tmp_path, caplog
    ):
        """Reproducer: a SIGKILL mid-write can leave a torn pickle.
        The read must degrade to a miss *and say so* -- a silent miss
        hides disk corruption from the operator."""
        cache = ResultCache(tmp_path)
        key = object_key("will-truncate-loudly")
        cache.put_object(key, {"big": list(range(1000))})
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:17])
        with caplog.at_level("WARNING", logger="repro.experiments.cache"):
            assert cache.get_object(key) is None
        (record,) = [
            r for r in caplog.records if "corrupt result-cache" in r.message
        ]
        assert str(path) in record.getMessage()
        assert "miss" in record.getMessage()

    def test_empty_entry_logs_a_warning(self, tmp_path, caplog):
        """Zero-byte files are the most common SIGKILL artifact."""
        cache = ResultCache(tmp_path)
        key = object_key("will-be-empty")
        cache.put_object(key, [1])
        cache.path_for(key).write_bytes(b"")
        with caplog.at_level("WARNING", logger="repro.experiments.cache"):
            assert cache.get_object(key) is None
        assert any(
            "corrupt result-cache" in r.message for r in caplog.records
        )
        # ...and the next put repairs the entry.
        cache.put_object(key, [2])
        assert cache.get_object(key) == [2]

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put_object(object_key("a"), 1)
        cache.put_object(object_key("b"), 2)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.get_object(object_key("a")) is None

    def test_no_temp_files_survive_a_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_object(object_key("a"), 1)
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []


class TestEvaluateCellsWithCache:
    def test_resumed_run_matches_fresh_run(self, tmp_path):
        specs = _specs()
        fresh = evaluate_cells(specs, jobs=1)

        cache = ResultCache(tmp_path)
        first = evaluate_cells(specs, jobs=1, cache=cache)
        assert len(cache) == len(specs)
        resumed = evaluate_cells(specs, jobs=1, cache=cache)
        for a, b, c in zip(fresh, first, resumed):
            assert pickle.dumps(b) == pickle.dumps(c)
            assert a.imp_pct == c.imp_pct
            assert a.improvement.ci_low == c.improvement.ci_low
            assert a.balanced_instructions == c.balanced_instructions

    def test_partial_cache_recomputes_only_the_missing(self, tmp_path):
        """The crash scenario: k cells were checkpointed before the
        interrupt; the re-run replays them and computes the rest."""
        specs = _specs()
        cache = ResultCache(tmp_path)
        evaluate_cells(specs[:2], jobs=1, cache=cache)
        assert len(cache) == 2

        resumed = evaluate_cells(specs, jobs=1, cache=cache)
        reference = evaluate_cells(specs, jobs=1)
        assert len(cache) == len(specs)
        for a, b in zip(resumed, reference):
            assert a.imp_pct == b.imp_pct
            assert a.improvement.ci_low == b.improvement.ci_low

    def test_fresh_ignores_reads_but_still_writes(self, tmp_path):
        specs = _specs()[:2]
        cache = ResultCache(tmp_path)
        poisoned = evaluate_cells(specs, jobs=1, cache=cache)
        # Corrupt the stored values; --fresh must not read them...
        for spec in specs:
            cache.put(spec, dataclasses.replace(poisoned[0], program="BOGUS"))
        fresh = evaluate_cells(specs, jobs=1, cache=cache, resume=False)
        assert [c.program for c in fresh] == [s.program for s in specs]
        # ...and must repopulate the store with the real results.
        for spec, cell in zip(specs, fresh):
            assert cache.get(spec).program == cell.program
