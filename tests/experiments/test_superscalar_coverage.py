"""The batch path has no scalar fallback left -- and the engine proves it.

Three gates, matching the PR's acceptance criteria:

1. ``repro.simulate.batch`` no longer contains ``_scalar_fallback``
   (the superscalar kernel is the only multi-issue path), and
   ``batch_native`` reports every model as native.
2. A superscalar ``CellSpec`` routed through ``evaluate_cells`` runs
   *every* simulated run on the vectorized superscalar kernel -- pinned
   by the ``sim.batch_kernel`` obs counter, which the batch simulator
   increments per kernel dispatch.
3. ``run_superscalar_ablation`` (now free of its width-1 special case)
   reproduces the superscalar section of the seed ``results/
   ablations.txt`` byte-for-byte.
"""

import pathlib

import pytest

import repro.simulate.batch as batch_mod
from repro.experiments.ablations import run_superscalar_ablation
from repro.experiments.common import CellSpec, evaluate_cells
from repro.machine.config import paper_system_rows
from repro.machine.processor import (
    LEN_8,
    MAX_8,
    ProcessorModel,
    UNLIMITED,
    superscalar,
)
from repro.obs import recorder as obs
from repro.obs.metrics import split_series_key
from repro.simulate.batch import batch_native

ABLATIONS_TXT = (
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "results"
    / "ablations.txt"
)


def _counter_series(metrics, base):
    return {
        split_series_key(key)[1].get("kernel"): value
        for key, value in metrics.counters.items()
        if split_series_key(key)[0] == base
    }


def _sum_counter(metrics, base):
    return sum(
        value
        for key, value in metrics.counters.items()
        if split_series_key(key)[0] == base
    )


def test_scalar_fallback_is_gone():
    assert not hasattr(batch_mod, "_scalar_fallback"), (
        "the batch simulator grew a scalar fallback back"
    )
    assert hasattr(batch_mod, "_superscalar_kernel")


@pytest.mark.parametrize(
    "processor",
    [
        UNLIMITED,
        MAX_8,
        LEN_8,
        superscalar(2),
        superscalar(8, LEN_8),
        ProcessorModel("MAX-2x4", max_outstanding_loads=2, issue_width=4),
    ],
    ids=lambda p: p.name,
)
def test_every_model_is_batch_native(processor):
    assert batch_native(processor)


def test_superscalar_cell_routes_through_vectorized_kernel():
    """An end-to-end superscalar table cell: every simulated run is
    dispatched to the superscalar vector kernel, none anywhere else."""
    row = paper_system_rows()[0]
    spec = CellSpec("ADM", row, processor=superscalar(4), runs=2, n_boot=25)
    with obs.recording() as rec:
        results = evaluate_cells([spec], jobs=1)
    assert len(results) == 1 and results[0].program == "ADM"

    kernels = _counter_series(rec.metrics, "sim.batch_kernel")
    assert kernels, "the batch simulator recorded no kernel dispatches"
    assert set(kernels) == {"superscalar"}, (
        f"superscalar cell leaked onto other kernel paths: {kernels}"
    )
    total_runs = _sum_counter(rec.metrics, "sim.runs")
    assert kernels["superscalar"] == total_runs > 0
    # Wide-issue attribution is skipped with an explicit reason, never
    # silently (see repro.simulate.program).
    skipped = {
        split_series_key(key)[1].get("reason")
        for key, _ in rec.metrics.counters.items()
        if split_series_key(key)[0] == "sim.attribution_skipped"
    }
    assert skipped == {"multi-issue"}


def test_single_issue_cell_stays_on_single_issue_kernel():
    row = paper_system_rows()[0]
    spec = CellSpec("ADM", row, processor=UNLIMITED, runs=2, n_boot=25)
    with obs.recording() as rec:
        evaluate_cells([spec], jobs=1)
    kernels = _counter_series(rec.metrics, "sim.batch_kernel")
    assert set(kernels) == {"single-issue"}


def test_superscalar_ablation_matches_seed_results_exactly():
    """The ablation now builds every width via ``superscalar(width)``
    (no UNLIMITED special case) and runs on the vectorized kernel;
    its formatted rows must still equal the seed artifact exactly."""
    seed_text = ABLATIONS_TXT.read_text()
    lines = seed_text.splitlines()
    start = lines.index("  == superscalar width (Section 6)")
    seed_rows = []
    for line in lines[start + 1:]:
        if not line.strip():
            break
        seed_rows.append(line)

    table = run_superscalar_ablation()
    # The exact formatting AblationResult.format applies to this table.
    fresh_rows = [
        f"     {configuration:44s} {value:+7.1f}%"
        for configuration, value in table.items()
    ]
    assert fresh_rows == seed_rows
