"""Golden-output and semantics tests for the optimality-gap report.

The rendered report must be byte-stable: the search budget is a
deterministic expansion count (never wall-clock), tie-breaks inside
the branch-and-bound are index-ordered, and the golden file pins the
exact bytes the CLI prints for a fixed program subset -- Pareto
fronts included.  The committed full-suite copy lives at
``results/optimal_gap.txt`` (see EXPERIMENTS.md for provenance).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.optimalgap import (
    CERTIFIED_SIZE_LIMIT,
    run_optimal_gap,
)
from repro.experiments.runner import main as cli_main

GOLDEN = os.path.join(
    os.path.dirname(__file__), "golden", "optimal_gap_track_mg3d.txt"
)


def _cli_stdout(capsys, argv):
    capsys.readouterr()
    assert cli_main(argv) == 0
    return capsys.readouterr().out


class TestGolden:
    def test_cli_matches_the_golden_file_byte_for_byte(self, capsys):
        with open(GOLDEN, encoding="utf-8") as handle:
            expected = handle.read()
        got = _cli_stdout(
            capsys, ["optimal-gap", "--programs", "TRACK,MG3D"]
        )
        assert got == expected

    def test_out_file_equals_stdout(self, capsys, tmp_path):
        stdout = _cli_stdout(
            capsys,
            ["optimal-gap", "--programs", "TRACK", "--no-pareto"],
        )
        out = tmp_path / "gap.txt"
        assert cli_main([
            "optimal-gap", "--programs", "TRACK", "--no-pareto",
            "--out", str(out),
        ]) == 0
        assert out.read_text() == stdout

    def test_unknown_program_exits_2(self, capsys):
        assert cli_main(["optimal-gap", "--programs", "NOPE"]) == 2
        assert "unknown program" in capsys.readouterr().err


class TestReportSemantics:
    @pytest.fixture(scope="class")
    def report(self):
        return run_optimal_gap(programs=["TRACK", "ADM"])

    def test_every_block_appears_under_both_models(self, report):
        by_model = {}
        for row in report.rows:
            by_model.setdefault(row.model, set()).add(
                (row.program, row.block)
            )
        assert by_model["optimistic"] == by_model["pessimistic"]

    def test_gaps_are_nonnegative_and_certified_blocks_close(self, report):
        for row in report.rows:
            assert row.balanced_gap_pct >= 0
            assert row.traditional_gap_pct >= 0
            assert row.lower_bound <= row.optimal_cost
            if row.certified:
                assert row.lower_bound == row.optimal_cost

    def test_suite_blocks_certify_within_default_budget(self, report):
        assert all(
            r.instructions <= CERTIFIED_SIZE_LIMIT for r in report.rows
        )
        assert report.certified_fraction() >= 0.9

    def test_optimal_schedules_are_oracle_clean(self, report):
        assert report.oracle_violations == 0

    def test_pareto_fronts_trade_monotonically(self, report):
        assert report.fronts
        for front in report.fronts:
            assert front.points, f"{front.block}: empty front"
            pressures = [p.max_live for p in front.points]
            costs = [p.cost for p in front.points]
            assert pressures == sorted(pressures, reverse=True)
            assert costs == sorted(costs)
            assert len(set(pressures)) == len(pressures)

    def test_rendering_is_deterministic(self, report):
        again = run_optimal_gap(programs=["TRACK", "ADM"])
        assert again.format() == report.format()
