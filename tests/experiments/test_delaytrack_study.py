"""Golden-output and semantics tests for the delay-tracking study.

The study asks whether compile-time scheduling still pays off once the
*hardware* adapts: it sweeps the delay-tracking table size from 0 (the
paper's in-order interlocked machine) to the perfect-knowledge limit
and measures each policy's improvement over the traditional schedule
on the same processor.  The rendered report is byte-stable for a fixed
seed -- the golden file pins the exact bytes the CLI prints for a
two-program subset, and the committed full-suite copy lives at
``results/delay_tracking.txt`` (see EXPERIMENTS.md for provenance).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.delaytrack import (
    DEFAULT_TABLES,
    POLICY_ORDER,
    run_delay_tracking,
)
from repro.experiments.runner import main as cli_main

GOLDEN = os.path.join(
    os.path.dirname(__file__), "golden", "delay_tracking_track_qcd2.txt"
)


def _cli_stdout(capsys, argv):
    capsys.readouterr()
    assert cli_main(argv) == 0
    return capsys.readouterr().out


class TestGolden:
    def test_cli_matches_the_golden_file_byte_for_byte(self, capsys):
        with open(GOLDEN, encoding="utf-8") as handle:
            expected = handle.read()
        got = _cli_stdout(
            capsys,
            [
                "delay-track", "--programs", "TRACK,QCD2",
                "--tables", "0,2,64", "--quick",
            ],
        )
        assert got == expected

    def test_out_file_equals_stdout(self, capsys, tmp_path):
        argv = [
            "delay-track", "--programs", "TRACK",
            "--tables", "0,2", "--quick",
        ]
        stdout = _cli_stdout(capsys, argv)
        out = tmp_path / "dt.txt"
        assert cli_main(argv + ["--out", str(out)]) == 0
        assert out.read_text() == stdout

    def test_unknown_program_exits_2(self, capsys):
        assert cli_main(["delay-track", "--programs", "NOPE"]) == 2
        assert "unknown program" in capsys.readouterr().err

    def test_malformed_tables_exit_2(self, capsys):
        assert cli_main([
            "delay-track", "--programs", "TRACK", "--tables", "0,two",
        ]) == 2
        assert "--tables" in capsys.readouterr().err
        assert cli_main([
            "delay-track", "--programs", "TRACK", "--tables", "-1",
        ]) == 2
        assert "non-negative" in capsys.readouterr().err


class TestReportSemantics:
    @pytest.fixture(scope="class")
    def report(self):
        return run_delay_tracking(
            programs=["TRACK", "ADM"], tables=(0, 2, 64), runs=3
        )

    def test_every_cell_of_the_sweep_is_present(self, report):
        have = {(c.program, c.table, c.policy) for c in report.cells}
        want = {
            (program, table, policy)
            for program in ("TRACK", "ADM")
            for table in (0, 2, 64)
            for policy in POLICY_ORDER
        }
        assert have == want

    def test_confidence_intervals_bracket_the_mean(self, report):
        for cell in report.cells:
            assert cell.ci_low <= cell.improvement_pct <= cell.ci_high

    def test_issue_traces_are_oracle_clean(self, report):
        # One draw per (block, policy, table): TRACK and ADM compile
        # to 6 non-empty blocks between them, x 4 policies (traditional
        # included) x 3 tables.
        assert report.traces_checked == 6 * 4 * 3
        assert report.oracle_violations == 0

    def test_mean_row_averages_the_program_cells(self, report):
        for policy in POLICY_ORDER:
            for table in (0, 2, 64):
                cells = [
                    c.improvement_pct
                    for c in report.cells
                    if c.policy == policy and c.table == table
                ]
                assert report.mean_improvement(table, policy) == (
                    pytest.approx(sum(cells) / len(cells))
                )

    def test_rendering_is_deterministic(self, report):
        again = run_delay_tracking(
            programs=["TRACK", "ADM"], tables=(0, 2, 64), runs=3
        )
        assert again.format() == report.format()

    def test_table_labels_name_the_hardware(self, report):
        text = report.format()
        assert "in-order" in text
        assert "DT-2" in text
        assert "DT-inf" in text
        assert "violations: 0" in text

    def test_default_tables_span_inorder_to_perfect_knowledge(self):
        assert DEFAULT_TABLES[0] == 0
        # 64 exceeds every suite block's load count, so the last column
        # is the perfect-knowledge limit.
        assert DEFAULT_TABLES[-1] >= 64
        assert list(DEFAULT_TABLES) == sorted(set(DEFAULT_TABLES))


class TestTraceCliGuards:
    # The guard fires before the file is opened, so a placeholder
    # filename keeps these hermetic (same idiom as test_cli_errors).
    def test_trace_rejects_delay_tracking_processors(self, capsys):
        assert cli_main(["trace", "x.mf", "--processor", "dt8"]) == 2
        err = capsys.readouterr().err
        assert "delay-track" in err

    def test_trace_rejects_unknown_processor_specs(self, capsys):
        assert cli_main(["trace", "x.mf", "--processor", "turbo9000"]) == 2
        assert "turbo9000" in capsys.readouterr().err

    def test_trace_rejects_multi_issue_specs(self, capsys):
        assert cli_main(["trace", "x.mf", "--processor", "max8x2"]) == 2
        assert "single-issue" in capsys.readouterr().err
