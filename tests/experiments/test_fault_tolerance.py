"""Fault tolerance: dead workers, poison items, and crash/resume.

``pool_map`` must separate the two failure modes -- a broken pool
(worker died; transient, retried on a rebuilt pool, degraded to inline
past the budget) from a poison item (deterministic exception; the
healthy pool survives and the error names the item).  The end-to-end
drill kills a real pool worker mid-``evaluate_cells`` via the
environment hook and requires byte-identical results anyway.

The crash hooks only fire in *forked workers* (never the parent), and
environment variables reach workers only if the pool forks *after*
they are set -- hence the ``shutdown_pool`` fixture.
"""

import os
import pickle

import pytest

from repro.experiments import common
from repro.experiments.cache import ResultCache
from repro.experiments.common import (
    FAULT_ONCE_ENV,
    FAULT_PROGRAM_ENV,
    CellEvaluationError,
    CellSpec,
    PoolMapStats,
    evaluate_cells,
    pool_map,
    shutdown_pool,
)
from repro.experiments.manifest import ManifestWriter, read_runs
from repro.machine import MAX_8, UNLIMITED, system_row

_PARENT_PID = os.getpid()


@pytest.fixture(autouse=True)
def cold_pool():
    """Fork fresh workers after each test's environment is in place,
    and never leak crash-hook workers into later tests."""
    shutdown_pool()
    yield
    shutdown_pool()


# ----------------------------------------------------------------------
# Picklable worker functions (pool workers import them by reference)
# ----------------------------------------------------------------------
def _always_crash(item):
    if os.getpid() != _PARENT_PID:
        os._exit(1)
    return item * 2


def _crash_once(args):
    item, sentinel = args
    if os.getpid() != _PARENT_PID:
        try:
            os.close(os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            pass
        else:
            os._exit(1)
    return item * 10


def _poison(item):
    if item == 3:
        raise ValueError("boom")
    return -item


def _specs():
    return [
        CellSpec(program=name, system=system_row(label, 2),
                 processor=processor, runs=3, n_boot=100)
        for name, processor in (("TRACK", UNLIMITED), ("ARC2D", MAX_8))
        for label in ("L80(2,5)", "N(2,5)")
    ]


class TestPoolMapFaults:
    def test_broken_pool_is_rebuilt_and_retried(self, tmp_path):
        sentinel = str(tmp_path / "crashed")
        stats = PoolMapStats()
        items = [(i, sentinel) for i in range(4)]
        results = pool_map(_crash_once, items, jobs=2, stats=stats)
        assert results == [0, 10, 20, 30]
        assert os.path.exists(sentinel), "the crash never fired"
        assert stats.pool_rebuilds == 1
        assert stats.inline_items == 0
        assert stats.item_attempts, "retried items must be counted"

    def test_exhausted_retries_degrade_to_inline(self, caplog):
        stats = PoolMapStats()
        with caplog.at_level("WARNING", logger="repro.experiments"):
            results = pool_map(
                _always_crash, list(range(4)), jobs=2, retries=0, stats=stats
            )
        assert results == [0, 2, 4, 6]
        assert stats.pool_rebuilds == 1
        assert stats.inline_items == 4
        assert any("inline" in r.message for r in caplog.records)

    def test_pool_breakage_captures_the_originating_exception(self):
        """The downgrade must be explainable: ``last_error`` holds the
        repr of the exception that broke the pool, ready for the
        manifest's ``pool_downgrade`` record."""
        stats = PoolMapStats()
        pool_map(_always_crash, list(range(4)), jobs=2, retries=0, stats=stats)
        assert stats.last_error is not None
        assert "Broken" in stats.last_error  # repr of a BrokenExecutor

    def test_healthy_runs_leave_no_error_behind(self):
        stats = PoolMapStats()
        assert pool_map(abs, [-1, -2], jobs=1, stats=stats) == [1, 2]
        assert stats.last_error is None

    def test_poison_item_propagates_and_keeps_the_pool(self):
        healthy = common._pool(2)
        with pytest.raises(CellEvaluationError) as exc:
            pool_map(_poison, [1, 2, 3, 4], jobs=2)
        assert exc.value.item == 3
        assert isinstance(exc.value.cause, ValueError)
        assert "boom" in repr(exc.value.cause)
        # The pool survived the deterministic failure (warm workers and
        # their compilation caches are expensive to rebuild)...
        assert common._POOL is healthy
        # ...and still works.
        assert pool_map(_poison, [1, 2], jobs=2) == [-1, -2]

    def test_cell_evaluation_error_survives_pickling(self):
        error = CellEvaluationError(("some", "item"), ValueError("why"))
        clone = pickle.loads(pickle.dumps(error))
        assert clone.item == ("some", "item")
        assert isinstance(clone.cause, ValueError)
        assert str(clone) == str(error)

    def test_on_result_sees_every_item_once(self):
        seen = {}
        results = pool_map(
            abs, [-4, -5, -6], jobs=1,
            on_result=lambda index, value: seen.setdefault(index, value),
        )
        assert results == [4, 5, 6]
        assert seen == {0: 4, 1: 5, 2: 6}


class TestWorkerDeathEndToEnd:
    def test_killed_worker_changes_nothing_but_wall_clock(
        self, tmp_path, monkeypatch
    ):
        """The tentpole invariant: a worker dying mid-run must not
        change a single byte of the results."""
        specs = _specs()
        baseline = evaluate_cells(specs, jobs=1)

        sentinel = str(tmp_path / "worker-died")
        monkeypatch.setenv(FAULT_PROGRAM_ENV, "TRACK")
        monkeypatch.setenv(FAULT_ONCE_ENV, sentinel)
        shutdown_pool()  # fork workers that see the crash hook

        cache = ResultCache(tmp_path / "cache")
        manifest = ManifestWriter(tmp_path / "m.jsonl")
        manifest.start_run("drill", seed=0, runs=3, jobs=2, resume=True)
        survived = evaluate_cells(
            specs, jobs=2, cache=cache, manifest=manifest, resume=True
        )
        manifest.end_run(wall_s=0.0)

        assert os.path.exists(sentinel), "the worker never died"
        for a, b in zip(baseline, survived):
            assert a.program == b.program
            assert a.imp_pct == b.imp_pct
            assert a.improvement.ci_low == b.improvement.ci_low
            assert a.traditional_interlock_pct == b.traditional_interlock_pct
            assert a.balanced_instructions == b.balanced_instructions

        (run,) = read_runs(manifest.path)
        assert run.retries > 0, "the manifest must show the retries"
        assert run.misses == len(specs)

        # Every cell was checkpointed despite the crash; a re-run after
        # the drill is pure replay.
        assert len(cache) == len(specs)
        replay = evaluate_cells(specs, jobs=1, cache=cache)
        for a, b in zip(survived, replay):
            assert pickle.dumps(a) == pickle.dumps(b)

    def test_downgrade_is_recorded_in_the_manifest(self, tmp_path):
        manifest = ManifestWriter(tmp_path / "m.jsonl")
        manifest.start_run("drill", seed=0, runs=3, jobs=2, resume=True)
        manifest.record_pool_downgrade(3)
        manifest.end_run(wall_s=0.0)
        (run,) = read_runs(manifest.path)
        assert run.downgrades == 3
        assert run.end["inline"] == 3

    def test_downgrade_record_carries_the_cause(self, tmp_path):
        import json

        manifest = ManifestWriter(tmp_path / "m.jsonl")
        manifest.start_run("drill", seed=0, runs=3, jobs=2, resume=True)
        manifest.record_pool_downgrade(
            2, cause="BrokenProcessPool('a child process terminated')"
        )
        manifest.record_pool_downgrade(1)  # cause unknown: key omitted
        manifest.end_run(wall_s=0.0)
        records = [
            json.loads(line) for line in manifest.path.read_text().splitlines()
        ]
        first, second = [
            r for r in records if r["event"] == "pool_downgrade"
        ]
        assert first["items"] == 2
        assert "BrokenProcessPool" in first["cause"]
        assert second["items"] == 1 and "cause" not in second
        (run,) = read_runs(manifest.path)
        assert run.downgrades == 3
