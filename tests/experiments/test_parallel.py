"""Tests for the parallel cell engine and the shared compilation cache.

The determinism contract: a cell's value is a pure function of its
:class:`CellSpec` (all random streams are string-keyed), so worker
count, completion order, and process boundaries must never change a
result.  jobs=2 genuinely exercises the ProcessPoolExecutor path even
on a single-core machine -- slower there, but bit-identical.
"""

import pytest

from repro.experiments.common import (
    COMPILATION_CACHE,
    CellSpec,
    ProgramEvaluator,
    evaluate_cells,
    pool_map,
)
from repro.machine import MAX_8, UNLIMITED, system_row
from repro.workloads import load_program


def _specs():
    return [
        CellSpec(program=name, system=system_row(label, latency),
                 processor=processor, runs=3, n_boot=100)
        for name in ("TRACK", "ARC2D")
        for label, latency in (("L80(2,5)", 2), ("N(2,5)", 2))
        for processor in (UNLIMITED, MAX_8)
    ]


class TestEvaluateCells:
    def test_serial_matches_direct_evaluation(self):
        specs = _specs()
        cells = evaluate_cells(specs, jobs=1)
        assert [c.program for c in cells] == [s.program for s in specs]
        direct = ProgramEvaluator(
            load_program("TRACK"), runs=3, n_boot=100
        ).cell(specs[0].system, specs[0].processor)
        assert cells[0].imp_pct == direct.imp_pct
        assert cells[0].improvement.ci_low == direct.improvement.ci_low

    def test_parallel_bit_identical_to_serial(self):
        specs = _specs()
        serial = evaluate_cells(specs, jobs=1)
        parallel = evaluate_cells(specs, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.program == b.program
            assert a.imp_pct == b.imp_pct
            assert a.improvement.ci_low == b.improvement.ci_low
            assert a.traditional_interlock_pct == b.traditional_interlock_pct
            assert a.balanced_instructions == b.balanced_instructions

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            evaluate_cells(_specs(), jobs=0)


class TestPoolMap:
    def test_order_preserved(self):
        assert pool_map(abs, [-3, 1, -2], jobs=2) == [3, 1, 2]

    def test_inline_when_single_job(self):
        assert pool_map(abs, [-1], jobs=1) == [1]

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            pool_map(abs, [1], jobs=-1)


class TestCompilationCache:
    def test_shared_across_evaluators(self):
        """Two evaluators of the same program share one compilation."""
        program = load_program("TRACK")
        first = ProgramEvaluator(program, runs=3).balanced()
        second = ProgramEvaluator(program, runs=3).balanced()
        assert first is second

    def test_cache_counts_each_combination_once(self):
        # Latencies no other test compiles, so the growth counts are
        # deterministic regardless of what already sits in the global
        # cache when the full suite runs.
        program = load_program("ARC2D")
        evaluator = ProgramEvaluator(program, runs=3)
        before = len(COMPILATION_CACHE)
        evaluator.traditional(2.125)
        evaluator.traditional(17 / 8)  # same Fraction key as 2.125
        assert len(COMPILATION_CACHE) - before == 1
        evaluator.traditional(2.375)
        assert len(COMPILATION_CACHE) - before == 2
