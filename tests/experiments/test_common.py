"""Tests for the shared experiment machinery (ProgramEvaluator)."""

import pytest

from repro.experiments.common import CellResult, ProgramEvaluator
from repro.machine import MAX_8, UNLIMITED, system_row
from repro.regalloc import RegisterFile
from repro.workloads import load_program


@pytest.fixture(scope="module")
def evaluator():
    return ProgramEvaluator(load_program("TRACK"), runs=5)


class TestCompilationCaching:
    def test_balanced_compiled_once(self, evaluator):
        first = evaluator.balanced()
        second = evaluator.balanced()
        assert first is second

    def test_traditional_cached_per_latency(self, evaluator):
        a = evaluator.traditional(2)
        b = evaluator.traditional(2.0)
        c = evaluator.traditional(5)
        assert a is b  # 2 and 2.0 normalise to the same key
        assert a is not c

    def test_float_keys_exact(self, evaluator):
        """2.15 and 2.4 are distinct cache keys despite float fuzz."""
        assert evaluator.traditional(2.15) is not evaluator.traditional(2.4)


class TestCellEvaluation:
    def test_cell_fields(self, evaluator):
        row = system_row("L80(2,5)", 2)
        cell = evaluator.cell(row, UNLIMITED)
        assert isinstance(cell, CellResult)
        assert cell.program == "TRACK"
        assert cell.traditional_instructions > 0
        assert cell.balanced_instructions > 0
        assert 0 <= cell.traditional_interlock_pct <= 100
        assert 0 <= cell.balanced_interlock_pct <= 100
        assert cell.imp_pct == cell.improvement.mean

    def test_deterministic_across_instances(self):
        row = system_row("N(2,5)", 2)
        a = ProgramEvaluator(load_program("TRACK"), runs=5).cell(row, UNLIMITED)
        b = ProgramEvaluator(load_program("TRACK"), runs=5).cell(row, UNLIMITED)
        assert a.imp_pct == b.imp_pct
        assert a.improvement.ci_low == b.improvement.ci_low

    def test_seed_changes_results(self):
        row = system_row("N(2,5)", 2)
        a = ProgramEvaluator(load_program("TRACK"), runs=5, seed=1).cell(
            row, UNLIMITED
        )
        b = ProgramEvaluator(load_program("TRACK"), runs=5, seed=2).cell(
            row, UNLIMITED
        )
        assert a.imp_pct != b.imp_pct

    def test_processor_changes_stream(self, evaluator):
        row = system_row("N(2,5)", 2)
        unlimited = evaluator.cell(row, UNLIMITED)
        max8 = evaluator.cell(row, MAX_8)
        # Different processors draw independent latency streams, and
        # their interlock profiles legitimately differ.
        assert (unlimited.traditional_interlock_pct, unlimited.imp_pct) != (
            max8.traditional_interlock_pct,
            max8.imp_pct,
        )

    def test_custom_register_file(self):
        tight = ProgramEvaluator(
            load_program("QCD2"), runs=5,
            register_file=RegisterFile(n_int=6, n_fp=6),
        )
        roomy = ProgramEvaluator(
            load_program("QCD2"), runs=5,
            register_file=RegisterFile(n_int=24, n_fp=24),
        )
        assert tight.balanced().spill_percentage > roomy.balanced().spill_percentage
        assert roomy.balanced().spill_percentage == 0
