"""Exact-reproduction tests for Table 1 (the worked weight matrix)."""

from fractions import Fraction

import pytest

from repro.experiments import (
    PAPER_TABLE1_CELLS,
    PAPER_TABLE1_TOTALS,
    run_table1,
)


@pytest.fixture(scope="module")
def result():
    return run_table1()


class TestCells:
    def test_no_cell_mismatches(self, result):
        assert result.cell_mismatches() == []

    def test_l1_receives_one_from_everyone(self, result):
        row = result.matrix["L1"]
        assert len(row) == 9
        assert set(row.values()) == {Fraction(1)}

    def test_l1_contributes_quarter_to_other_loads(self, result):
        for load in ("L2", "L3", "L4", "L5", "L6"):
            assert result.matrix[load]["L1"] == Fraction(1, 4)

    def test_x_contributions_are_thirds(self, result):
        for load in ("L3", "L4", "L5", "L6"):
            for x in ("X1", "X2", "X3", "X4"):
                assert result.matrix[load][x] == Fraction(1, 3)

    def test_parallel_pair_contributions(self, result):
        assert result.matrix["L4"]["L5"] == Fraction(1)
        assert result.matrix["L4"]["L6"] == Fraction(1)
        assert result.matrix["L5"]["L4"] == Fraction(1, 2)
        assert result.matrix["L6"]["L4"] == Fraction(1, 2)


class TestTotals:
    def test_weight_is_one_plus_row_sum(self, result):
        for load, row in result.matrix.items():
            assert result.weights[load] == 1 + sum(row.values())

    def test_consistent_rows_match_printed_totals(self, result):
        """L1 and L2 are the rows whose printed totals are consistent
        with the printed cells; we match them exactly."""
        assert result.weights["L1"] == PAPER_TABLE1_TOTALS["L1"]
        assert result.weights["L2"] == PAPER_TABLE1_TOTALS["L2"]

    def test_erratum_rows_differ_by_exactly_one_sixth(self, result):
        """The documented Table 1 erratum: the printed totals for
        L3..L6 sit exactly 1/6 below the sum of the printed cells."""
        for load in ("L3", "L4", "L5", "L6"):
            assert result.weights[load] - PAPER_TABLE1_TOTALS[load] == Fraction(
                1, 6
            )


def test_format_renders_all_loads(result):
    text = result.format()
    for load in ("L1", "L2", "L3", "L4", "L5", "L6"):
        assert load in text
    assert "matches the paper exactly" in text
