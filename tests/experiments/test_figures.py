"""Exact-reproduction tests for Figures 1-5 (schedules and interlocks)."""

from fractions import Fraction

import pytest

from repro.experiments import (
    PAPER_SCHEDULES,
    PAPER_WEIGHTS,
    run_figure2,
    run_figure3,
)


@pytest.fixture(scope="module")
def figure2_result():
    return run_figure2()


@pytest.fixture(scope="module")
def figure3_result():
    return run_figure3()


class TestFigure2:
    def test_every_schedule_matches_paper(self, figure2_result):
        for name, expected in PAPER_SCHEDULES.items():
            assert figure2_result.schedules[name] == expected, name

    def test_matches_paper_helper(self, figure2_result):
        assert figure2_result.matches_paper()

    def test_weights_match_paper(self, figure2_result):
        assert set(figure2_result.weights["figure1"].values()) == {
            PAPER_WEIGHTS["figure1"]
        }
        assert set(figure2_result.weights["figure4"].values()) == {
            PAPER_WEIGHTS["figure4"]
        }

    def test_format_mentions_match(self, figure2_result):
        text = figure2_result.format()
        assert "match" in text
        assert "MISMATCH" not in text


class TestFigure3:
    def test_exact_interlock_curves(self, figure3_result):
        """The curves derived from the Figure 1 DAG."""
        assert figure3_result.latencies == [1, 2, 3, 4, 5, 6]
        assert figure3_result.interlocks["greedy_w5"] == [0, 1, 2, 3, 4, 6]
        assert figure3_result.interlocks["lazy_w1"] == [0, 1, 2, 3, 4, 6]
        assert figure3_result.interlocks["balanced"] == [0, 0, 0, 2, 4, 6]

    def test_paper_claim_holds(self, figure3_result):
        """'for latencies in the range of 2-4, the balanced schedules
        are faster than both ... Outside this range the balanced and
        traditional schedules perform equivalently.'"""
        assert figure3_result.matches_paper_claim()

    def test_balanced_never_worse(self, figure3_result):
        balanced = figure3_result.interlocks["balanced"]
        for name in ("greedy_w5", "lazy_w1"):
            for ours, theirs in zip(balanced, figure3_result.interlocks[name]):
                assert ours <= theirs

    def test_custom_latency_range(self):
        result = run_figure3(latencies=range(1, 12))
        assert len(result.interlocks["balanced"]) == 11

    def test_format_reports_claim(self, figure3_result):
        assert "holds" in figure3_result.format()
