"""Tests for the run manifest (the engine's flight recorder)."""

import json

from repro.experiments.manifest import (
    ManifestWriter,
    read_runs,
    summarize_manifest,
)


def _write_run(path, experiment="table2", cells=3, hits=1, status="ok"):
    writer = ManifestWriter(path)
    run_id = writer.start_run(experiment, seed=42, runs=3, jobs=2, resume=True)
    for index in range(cells):
        writer.record_cell(
            key=f"k{index}",
            program=f"P{index}",
            system="L80(2,5) @ 2",
            processor="UNLIMITED",
            wall_s=0.5 * (index + 1),
            worker=1000 + index,
            cache="hit" if index < hits else "miss",
            retries=index,
        )
    writer.end_run(wall_s=9.5, status=status)
    return run_id


class TestWriter:
    def test_records_are_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "m.jsonl"
        _write_run(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 5  # start + 3 cells + end
        records = [json.loads(line) for line in lines]
        assert [r["event"] for r in records] == [
            "run_start", "cell", "cell", "cell", "run_end",
        ]

    def test_run_id_stamps_every_record(self, tmp_path):
        path = tmp_path / "m.jsonl"
        run_id = _write_run(path)
        for line in path.read_text().strip().splitlines():
            assert json.loads(line)["run_id"] == run_id

    def test_end_run_carries_counts(self, tmp_path):
        path = tmp_path / "m.jsonl"
        _write_run(path, cells=4, hits=1)
        end = json.loads(path.read_text().strip().splitlines()[-1])
        assert end["cells"] == 4
        assert end["hits"] == 1
        assert end["misses"] == 3
        assert end["retries"] == 0 + 1 + 2 + 3

    def test_cell_metrics_present_only_when_given(self, tmp_path):
        """Obs-off manifests stay byte-compatible: the ``metrics`` key
        appears only on cells recorded with a metrics summary."""
        path = tmp_path / "m.jsonl"
        writer = ManifestWriter(path)
        writer.start_run("table2", seed=42, runs=3, jobs=1, resume=True)
        writer.record_cell(
            key="bare", program="ADM", system="s", processor="p",
            wall_s=1.0, worker=1, cache="miss",
        )
        writer.record_cell(
            key="observed", program="ADM", system="s", processor="p",
            wall_s=1.0, worker=1, cache="miss",
            metrics={
                "counters": {"sim.cycles": 3042},
                "histograms": {"sim.load_stall_cycles": {
                    "count": 12, "total": 96,
                }},
            },
        )
        writer.end_run(wall_s=2.0)
        bare, observed = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
            if json.loads(line)["event"] == "cell"
        ]
        assert "metrics" not in bare
        assert observed["metrics"]["counters"]["sim.cycles"] == 3042
        # The reader passes the field through untouched.
        (run,) = read_runs(path)
        assert run.cells[1]["metrics"]["histograms"][
            "sim.load_stall_cycles"
        ]["total"] == 96

    def test_appends_across_runs(self, tmp_path):
        path = tmp_path / "m.jsonl"
        first = _write_run(path, experiment="table2")
        second = _write_run(path, experiment="table3")
        runs = read_runs(path)
        assert [r.run_id for r in runs] == [first, second]


class TestReader:
    def test_reassembles_cells_and_status(self, tmp_path):
        path = tmp_path / "m.jsonl"
        _write_run(path, cells=3, hits=2, status="interrupted")
        (run,) = read_runs(path)
        assert run.experiment == "table2"
        assert len(run.cells) == 3
        assert run.hits == 2
        assert run.misses == 1
        assert run.status == "interrupted"

    def test_missing_run_end_reads_as_incomplete(self, tmp_path):
        path = tmp_path / "m.jsonl"
        writer = ManifestWriter(path)
        writer.start_run("table5", seed=1, runs=3, jobs=1, resume=True)
        writer.record_cell(
            key="k", program="MDG", system="s", processor="p",
            wall_s=1.0, worker=1, cache="miss",
        )
        (run,) = read_runs(path)
        assert "incomplete" in run.status

    def test_torn_lines_are_skipped(self, tmp_path):
        """A crash can tear the final line; readers must survive it."""
        path = tmp_path / "m.jsonl"
        _write_run(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "cell", "run_id"')  # torn mid-write
        (run,) = read_runs(path)
        assert len(run.cells) == 3

    def test_torn_line_logs_a_warning_naming_the_line(
        self, tmp_path, caplog
    ):
        """Reproducer: SIGKILL mid-append leaves a partial final line.
        The reader must skip it *with a logged warning* locating the
        damage, not silently or with a crash."""
        path = tmp_path / "m.jsonl"
        _write_run(path)  # 5 records
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "run_end", "wall_s": 3.')  # torn
        with caplog.at_level(
            "WARNING", logger="repro.experiments.manifest"
        ):
            (run,) = read_runs(path)
        assert "incomplete" not in run.status  # prior run_end survived
        (record,) = [
            r for r in caplog.records if "unparseable" in r.message
        ]
        message = record.getMessage()
        assert str(path) in message
        assert ":6" in message, "warning must name the damaged line"

    def test_truncated_mid_file_line_keeps_later_runs(
        self, tmp_path, caplog
    ):
        """Torn bytes mid-file (e.g. concurrent writers before the
        writer lock) must not take later, intact runs down with them."""
        path = tmp_path / "m.jsonl"
        _write_run(path, experiment="first")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "cell", "ru\n')  # torn + newline
        second = _write_run(path, experiment="second")
        with caplog.at_level(
            "WARNING", logger="repro.experiments.manifest"
        ):
            runs = read_runs(path)
        assert [r.experiment for r in runs] == ["first", "second"]
        assert runs[1].run_id == second
        assert any("unparseable" in r.message for r in caplog.records)

    def test_non_object_records_are_skipped_with_warning(
        self, tmp_path, caplog
    ):
        path = tmp_path / "m.jsonl"
        _write_run(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('"just a string"\n[1, 2, 3]\n')
        with caplog.at_level(
            "WARNING", logger="repro.experiments.manifest"
        ):
            (run,) = read_runs(path)
        assert len(run.cells) == 3
        assert sum(
            "non-object" in r.message for r in caplog.records
        ) == 2

    def test_request_events_are_counted(self, tmp_path):
        writer = ManifestWriter(tmp_path / "m.jsonl")
        writer.start_run("serve", jobs=1)
        writer.record_request(kind="simulate", status=200, wall_s=0.5)
        writer.record_request(kind="compile", status=400, wall_s=0.01)
        writer.end_run(wall_s=1.0)
        (run,) = read_runs(tmp_path / "m.jsonl")
        assert run.requests == 2
        assert "requests served: 2" in run.format()

    def test_request_extra_fields_ride_along(self, tmp_path):
        """``record_request`` passes extras (the trace id) through to
        the record verbatim, and the reader keeps them."""
        path = tmp_path / "m.jsonl"
        writer = ManifestWriter(path)
        writer.start_run("serve", jobs=1)
        writer.record_request(
            kind="simulate", status=200, wall_s=0.5, trace_id="ab" * 16
        )
        writer.end_run(wall_s=1.0)
        (run,) = read_runs(path)
        assert run.request_records[0]["trace_id"] == "ab" * 16

    def test_pool_downgrade_record_carries_trace_ids(self, tmp_path):
        path = tmp_path / "m.jsonl"
        writer = ManifestWriter(path)
        writer.start_run("serve", jobs=2)
        writer.record_pool_downgrade(
            2, cause="Boom('worker died')",
            trace_ids=["bb" * 16, "aa" * 16],
        )
        writer.record_pool_downgrade(1)  # untraced batch: no key at all
        writer.end_run(wall_s=1.0)
        traced, untraced = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line)["event"] == "pool_downgrade"
        ]
        assert traced["trace_ids"] == ["aa" * 16, "bb" * 16]
        assert traced["cause"] == "Boom('worker died')"
        assert "trace_ids" not in untraced
        (run,) = read_runs(path)
        assert run.downgrades == 3

    def test_route_latency_stats_golden(self, tmp_path):
        """Per-route p50/p99 over the request records -- nearest-rank,
        so the percentiles are exact observed values."""
        path = tmp_path / "m.jsonl"
        writer = ManifestWriter(path)
        writer.start_run("serve", jobs=1)
        for wall in (0.040, 0.010, 0.030, 0.020):
            writer.record_request(kind="simulate", status=200, wall_s=wall)
        writer.record_request(kind="compile", status=200, wall_s=0.005)
        writer.end_run(wall_s=1.0)
        (run,) = read_runs(path)
        assert run.route_latency_stats() == [
            {"route": "compile", "count": 1, "p50_ms": 5.0, "p99_ms": 5.0},
            {"route": "simulate", "count": 4, "p50_ms": 20.0,
             "p99_ms": 40.0},
        ]

    def test_format_includes_per_route_latency_lines(self, tmp_path):
        """Golden output for `balanced-sched manifest` on a serve run."""
        path = tmp_path / "m.jsonl"
        writer = ManifestWriter(path)
        writer.start_run("serve", jobs=1)
        for wall in (0.040, 0.010, 0.030, 0.020):
            writer.record_request(kind="simulate", status=200, wall_s=wall)
        writer.record_request(kind="compile", status=200, wall_s=0.005)
        writer.end_run(wall_s=1.0)
        (run,) = read_runs(path)
        text = run.format()
        assert "requests served: 5" in text
        assert (
            "    compile    count     1  "
            "p50    5.000ms  p99    5.000ms"
        ) in text
        assert (
            "    simulate   count     4  "
            "p50   20.000ms  p99   40.000ms"
        ) in text

    def test_slowest_orders_by_wall_clock(self, tmp_path):
        path = tmp_path / "m.jsonl"
        _write_run(path, cells=3, hits=0)
        (run,) = read_runs(path)
        slow = run.slowest(2)
        assert [c["program"] for c in slow] == ["P2", "P1"]

    def test_missing_file_is_empty(self, tmp_path):
        assert read_runs(tmp_path / "absent.jsonl") == []


class TestSummary:
    def test_summary_names_runs_hits_and_slow_cells(self, tmp_path):
        path = tmp_path / "m.jsonl"
        _write_run(path, experiment="table3", cells=3, hits=1)
        text = summarize_manifest(path, last=1, top=2)
        assert "table3" in text
        assert "cache hits: 1" in text
        assert "P2" in text  # the slowest non-hit cell
        assert "1 run(s)" in text

    def test_last_selects_most_recent(self, tmp_path):
        path = tmp_path / "m.jsonl"
        _write_run(path, experiment="table2")
        _write_run(path, experiment="table4")
        only_last = summarize_manifest(path, last=1)
        assert "table4" in only_last and "(table2)" not in only_last
        both = summarize_manifest(path, last=2)
        assert "table4" in both and "table2" in both

    def test_empty_manifest_summary(self, tmp_path):
        assert "no runs" in summarize_manifest(tmp_path / "absent.jsonl")
