"""Shape-reproduction tests for Tables 2-5.

These run the real experiment pipelines at a reduced run count (the
paper's 30 runs is used by the benchmark harness; 6 runs keeps the
test suite fast while the shape targets remain stable thanks to the
profile weighting and fixed seeds).
"""

import pytest

from repro.experiments import (
    OPTIMISTIC_LATENCIES,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.machine import LEN_8, MAX_8, UNLIMITED

RUNS = 6


@pytest.fixture(scope="module")
def table2():
    return run_table2(runs=RUNS)


@pytest.fixture(scope="module")
def table3():
    return run_table3(runs=RUNS)


@pytest.fixture(scope="module")
def table4():
    return run_table4()


@pytest.fixture(scope="module")
def table5():
    return run_table5(runs=RUNS)


class TestTable2:
    def test_seventeen_rows_eight_programs(self, table2):
        assert len(table2.rows) == 17
        assert all(len(row.cells) == 8 for row in table2.rows)

    def test_all_shape_checks_pass(self, table2):
        report = table2.shape_report()
        failed = [claim for claim, ok in report.items() if not ok]
        assert not failed, f"shape checks failed: {failed}"

    def test_overall_mean_in_paper_band(self, table2):
        """The paper's UNLIMITED mean improvement is 9.9%; ours must be
        positive and of the same order."""
        assert 3.0 < table2.mean_of_means() < 20.0

    def test_uncertainty_gradient_within_networks(self, table2):
        sigma_two = table2.row("N(2,2) @ 2").mean
        sigma_five = table2.row("N(2,5) @ 2").mean
        assert sigma_five > sigma_two

    def test_row_lookup_raises_for_unknown(self, table2):
        with pytest.raises(KeyError):
            table2.row("L50(9,9) @ 9")

    def test_restricted_processors_similar(self):
        """Section 5: 'The results for MAX-8 and LEN 8 are similar,
        with ... means of 10.0% and 8.7%'. Ours land within a couple of
        points, with every shape check intact."""
        from repro.experiments import run_table2

        for processor, paper_mean in ((MAX_8, 10.0), (LEN_8, 8.7)):
            result = run_table2(processor=processor, runs=RUNS)
            report = result.shape_report()
            # The full sign pattern needs the 30-run setting (the
            # benchmark asserts it); at 6 runs the near-zero rows
            # (N(30,5), mixed @ 7.6) may dip slightly negative, so
            # allow one small-noise violator outside N(30,5).
            negatives = [
                row.mean
                for row in result.rows
                if row.mean <= 0 and "N(30,5) @ 30" not in row.system.label
            ]
            assert len(negatives) <= 1
            assert all(mean > -5 for mean in negatives)
            assert report["bigger sigma helps (N(2,5) > N(2,2))"]
            assert abs(result.mean_of_means() - paper_mean) < 6.0

    def test_format_contains_every_program(self, table2):
        text = table2.format()
        for name in ("ADM", "ARC2D", "QCD2", "TRACK"):
            assert name in text
        assert "[ok]" in text and "[FAIL]" not in text


class TestTable3:
    def test_cells_for_all_processors(self, table3):
        for processor in (UNLIMITED, MAX_8, LEN_8):
            cell = table3.cell("L80(2,5) @ 2", processor)
            assert cell.program == "MDG"

    def test_shape_checks(self, table3):
        report = table3.shape_report()
        failed = [claim for claim, ok in report.items() if not ok]
        assert not failed, f"shape checks failed: {failed}"

    def test_balanced_interlocks_less_on_cache_rows(self, table3):
        cell = table3.cell("L80(2,10) @ 2", UNLIMITED)
        assert cell.balanced_interlock_pct < cell.traditional_interlock_pct

    def test_interlock_share_grows_with_latency(self, table3):
        low = table3.cell("N(2,2) @ 2", UNLIMITED)
        high = table3.cell("N(30,5) @ 30", UNLIMITED)
        assert high.traditional_interlock_pct > low.traditional_interlock_pct
        assert high.balanced_interlock_pct > low.balanced_interlock_pct


class TestTable4:
    def test_all_paper_latency_columns(self, table4):
        assert OPTIMISTIC_LATENCIES == (2, 2.15, 2.4, 2.6, 3, 3.6, 5, 7.6, 30)
        for row in table4.rows:
            assert set(row.traditional) == {float(l) for l in OPTIMISTIC_LATENCIES}

    def test_deterministic(self, table4):
        again = run_table4()
        for row, row2 in zip(table4.rows, again.rows):
            assert row.balanced == row2.balanced
            assert row.traditional == row2.traditional

    def test_spill_heavy_programs(self, table4):
        """QCD2 and BDNA carry the suite's register pressure."""
        assert table4.row("QCD2").balanced > 5
        assert table4.row("BDNA").balanced > 5
        assert table4.row("FLO52Q").balanced == 0

    def test_bdna_balanced_spills_less_everywhere(self, table4):
        """The paper's headline Table 4 direction, reproduced on the
        deep-tree program: balanced <= traditional at every latency."""
        row = table4.row("BDNA")
        assert row.balanced_not_worse_count() == len(OPTIMISTIC_LATENCIES)

    def test_balanced_not_worse_than_w30_on_most_programs(self, table4):
        wins = sum(
            1
            for row in table4.rows
            if row.balanced <= row.traditional[30.0] + 1e-9
        )
        assert wins >= 7


class TestTable5:
    def test_shape_checks(self, table5):
        report = table5.shape_report()
        failed = [claim for claim, ok in report.items() if not ok]
        assert not failed, f"shape checks failed: {failed}"

    def test_interlock_dominated(self, table5):
        """'as latencies get long, interlocks account for an
        increasingly large proportion of execution time.'"""
        for program in ("ADM", "MDG", "TRACK"):
            cell = table5.cell(program, UNLIMITED)
            assert cell.traditional_interlock_pct > 50
            assert cell.balanced_interlock_pct > 50

    def test_improvements_small_both_signs(self, table5):
        values = [
            table5.cell(p, UNLIMITED).imp_pct
            for p in ("ADM", "ARC2D", "BDNA", "FLO52Q", "MDG", "MG3D", "QCD2", "TRACK")
        ]
        assert any(v < 0 for v in values)
        assert all(abs(v) < 25 for v in values)
