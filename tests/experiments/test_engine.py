"""Tests for the shared-memory scheduling engine (wire format + pool).

The wire format must reconstruct ``(BasicBlock, CodeDAG)`` pairs with
full fidelity -- instructions, liveness, dependence edges, exact
``Fraction`` weights and per-edge latency overrides -- and the pooled
fan-out must return byte-identical results to inline scheduling.
"""

from fractions import Fraction

import pytest

from repro.analysis import build_dag
from repro.core import BalancedScheduler, ListScheduler
from repro.experiments.engine import (
    ArenaReader,
    encode_blocks,
    schedule_blocks,
)
from repro.frontend import compile_minif
from repro.simulate.rng import spawn
from repro.workloads import random_block


def weighted_blocks(count: int = 6, size: int = 24):
    """Random balanced-weighted (blocks, dags) lists."""
    policy = BalancedScheduler()
    blocks, dags = [], []
    for k in range(count):
        block = random_block(
            spawn("engine-test", k),
            n_instructions=size,
            name=f"blk{k}",
        )
        dag = build_dag(block)
        policy.assign_weights(dag)
        blocks.append(block)
        dags.append(dag)
    return blocks, dags


SOURCE = """
program engine
  array a[256], b[256]
  kernel body freq 7 unroll 2
    t1 = a[i] * x0
    b[i] = t1 + a[i]
  end
end
"""


class TestWireFormat:
    def test_roundtrip_fidelity(self):
        blocks, dags = weighted_blocks()
        arena = encode_blocks(blocks, dags)
        try:
            reader = ArenaReader(arena.name)
            assert len(reader) == len(blocks)
            for index, (block, dag) in enumerate(zip(blocks, dags)):
                out_block, out_dag = reader.materialize(index)
                assert out_block.name == block.name
                assert out_block.frequency == block.frequency
                assert list(out_block.instructions) == list(block.instructions)
                assert out_block.live_in == block.live_in
                assert out_block.live_out == block.live_out
                assert out_block.carried == block.carried
                assert out_dag._succ == dag._succ
                assert out_dag._pred == dag._pred
                assert out_dag.weights == dag.weights
                assert out_dag._edge_latency == dag._edge_latency
            reader.close()
        finally:
            arena.dispose()

    def test_weights_stay_exact_fractions(self):
        blocks, dags = weighted_blocks(count=2)
        dags[0].weights[0] = Fraction(7, 12)
        dags[1]._edge_latency[(0, 1)] = Fraction(5, 3)
        arena = encode_blocks(blocks, dags)
        try:
            reader = ArenaReader(arena.name)
            _, out0 = reader.materialize(0)
            _, out1 = reader.materialize(1)
            assert out0.weights[0] == Fraction(7, 12)
            assert out1._edge_latency[(0, 1)] == Fraction(5, 3)
            reader.close()
        finally:
            arena.dispose()

    def test_compiled_program_roundtrips(self):
        program = compile_minif(SOURCE)
        policy = BalancedScheduler()
        blocks = program.all_blocks()
        dags = [build_dag(b) for b in blocks]
        for dag in dags:
            policy.assign_weights(dag)
        arena = encode_blocks(blocks, dags)
        try:
            reader = ArenaReader(arena.name)
            for index, (block, dag) in enumerate(zip(blocks, dags)):
                out_block, out_dag = reader.materialize(index)
                assert list(out_block.instructions) == list(block.instructions)
                assert out_dag._succ == dag._succ
                assert out_dag.weights == dag.weights
            reader.close()
        finally:
            arena.dispose()

    def test_mismatched_lengths_rejected(self):
        blocks, dags = weighted_blocks(count=2)
        with pytest.raises(ValueError):
            encode_blocks(blocks, dags[:1])

    def test_mismatched_instructions_rejected(self):
        blocks, dags = weighted_blocks(count=2)
        with pytest.raises(ValueError, match="different"):
            encode_blocks([blocks[0]], [dags[1]])

    def test_empty_arena(self):
        arena = encode_blocks([], [])
        try:
            reader = ArenaReader(arena.name)
            assert len(reader) == 0
            reader.close()
        finally:
            arena.dispose()


class TestScheduleBlocks:
    def _surface(self, result):
        return (
            result.order,
            result.noop_span,
            result.priorities,
            result.slots,
            list(result.block.instructions),
            result.block.name,
        )

    def test_inline_matches_direct_scheduling(self):
        blocks, dags = weighted_blocks()
        scheduler = ListScheduler()
        results = schedule_blocks(blocks, dags, scheduler, jobs=1)
        for block, dag, result in zip(blocks, dags, results):
            direct = scheduler.schedule(dag, block)
            assert self._surface(result) == self._surface(direct)

    def test_pooled_matches_inline(self):
        blocks, dags = weighted_blocks(count=8)
        scheduler = ListScheduler()
        inline = schedule_blocks(blocks, dags, scheduler, jobs=1)
        pooled = schedule_blocks(blocks, dags, scheduler, jobs=2)
        assert [self._surface(r) for r in pooled] == [
            self._surface(r) for r in inline
        ]

    def test_noop_spans_are_fractions_after_pool(self):
        blocks, dags = weighted_blocks(count=4)
        for result in schedule_blocks(blocks, dags, jobs=2):
            assert isinstance(result.noop_span, Fraction)

    def test_single_block_stays_inline(self):
        blocks, dags = weighted_blocks(count=1)
        results = schedule_blocks(blocks, dags, jobs=4)
        assert len(results) == 1
        assert sorted(results[0].order) == list(range(len(dags[0])))
