"""Tests for the CSV/markdown exports and the extended CLI."""

import pathlib

import pytest

from repro.experiments import run_figure3, run_table1, run_table4
from repro.experiments.report import export, records_of, to_csv, to_markdown
from repro.experiments.runner import main

MINIF = """
program clidemo
  array a[64], b[64]
  kernel k freq 5
    s = s + a[i] * b[i]
  end
end
"""


@pytest.fixture
def minif_file(tmp_path):
    path = tmp_path / "demo.mf"
    path.write_text(MINIF)
    return str(path)


class TestRecords:
    def test_figure3_records(self):
        records = records_of(run_figure3())
        assert len(records) == 3
        assert records[0]["latency_1"] == 0

    def test_table1_records(self):
        records = records_of(run_table1())
        loads = {r["load"] for r in records}
        assert loads == {"L1", "L2", "L3", "L4", "L5", "L6"}
        l1 = next(r for r in records if r["load"] == "L1")
        assert l1["weight"] == 10.0

    def test_table4_records(self):
        records = records_of(run_table4())
        assert len(records) == 8
        bdna = next(r for r in records if r["program"] == "BDNA")
        assert bdna["balanced"] > 0
        assert "w30" in bdna

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            records_of(object())  # type: ignore[arg-type]


class TestSerialisation:
    def test_csv_round_trips_through_stdlib(self):
        import csv
        import io

        text = to_csv(records_of(run_figure3()))
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 3
        assert rows[0]["schedule"] in {"greedy_w5", "lazy_w1", "balanced"}

    def test_markdown_has_separator_row(self):
        text = to_markdown(records_of(run_figure3()))
        lines = text.splitlines()
        assert lines[1].startswith("| ---")
        assert len(lines) == 2 + 3

    def test_export_dispatch(self):
        result = run_figure3()
        assert export(result, "text") == result.format()
        assert export(result, "csv").startswith("schedule")
        assert export(result, "markdown").startswith("|")
        with pytest.raises(ValueError):
            export(result, "xml")

    def test_missing_keys_padded(self):
        text = to_markdown([{"a": 1}, {"b": 2}])
        assert "| a | b |" in text


class TestCLI:
    def test_bare_experiment_shorthand(self, capsys):
        assert main(["figure3"]) == 0
        assert "interlocks" in capsys.readouterr().out

    def test_run_with_csv_format(self, capsys):
        assert main(["run", "table4", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert "program,bins,balanced" in out

    def test_compile_command(self, capsys, minif_file):
        assert main(["compile", minif_file]) == 0
        out = capsys.readouterr().out
        assert "==== balanced" in out
        assert "traditional(W=2" in out
        assert "dynamic instructions" in out

    def test_weights_command(self, capsys, minif_file):
        assert main(["weights", minif_file]) == 0
        out = capsys.readouterr().out
        assert "weight" in out
        assert "loads" in out

    def test_weights_matrix_flag(self, capsys, minif_file):
        assert main(["weights", minif_file, "--matrix"]) == 0
        assert "<-" in capsys.readouterr().out

    def test_trace_command(self, capsys, minif_file):
        assert main(["trace", minif_file, "--memory", "N(2,5)"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out
        assert "|" in out  # the pipeline diagram

    def test_trace_traditional_policy(self, capsys, minif_file):
        assert main([
            "trace", minif_file, "--policy", "traditional", "--latency", "5",
            "--processor", "len8",
        ]) == 0
        assert "traditional" in capsys.readouterr().out

    def test_trace_unknown_memory_fails_gracefully(self, capsys, minif_file):
        assert main(["trace", minif_file, "--memory", "BOGUS"]) == 2
        assert "unknown memory" in capsys.readouterr().err


class TestScheduleCommand:
    def test_schedule_inline(self, minif_file, capsys):
        assert main(["schedule", minif_file]) == 0
        out = capsys.readouterr().out
        assert "noop span" in out
        assert "under balanced (jobs=1)" in out

    def test_schedule_pooled_matches_inline(self, minif_file, capsys):
        assert main(["schedule", minif_file, "--verbose"]) == 0
        inline = capsys.readouterr().out
        assert main(["schedule", minif_file, "--verbose", "--jobs", "2"]) == 0
        pooled = capsys.readouterr().out
        assert pooled.replace("jobs=2", "jobs=1") == inline

    def test_schedule_traditional(self, minif_file, capsys):
        assert main(
            ["schedule", minif_file, "--policy", "traditional"]
        ) == 0
        assert "traditional" in capsys.readouterr().out
