"""CLI error paths: every bad input exits non-zero with a one-line
message on stderr -- never a traceback.

Run as real subprocesses so the assertion covers exactly what a shell
user sees (exit status, stderr, nothing leaking to stdout).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def run_cli(argv, cwd=None, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=timeout,
    )


BAD_SOURCE = "program broken\nkernel k freq 1\nx = nosucharray[i]\nend\nend\n"


@pytest.fixture
def bad_mf(tmp_path):
    path = tmp_path / "bad.mf"
    path.write_text(BAD_SOURCE)
    return str(path)


class TestBadInputsExitCleanly:
    @pytest.mark.parametrize(
        "argv",
        [
            pytest.param(["compile", "/no/such/file.mf"], id="missing-file"),
            pytest.param(["schedule", "/no/such/file.mf"], id="missing-file-schedule"),
            pytest.param(["weights", "/no/such/file.mf"], id="missing-file-weights"),
            pytest.param(["explain", "NOSUCHPROG"], id="unknown-program"),
            pytest.param(
                ["run", "table2", "--programs", "BOGUS", "--quick"],
                id="unknown-programs-subset",
            ),
            pytest.param(
                ["run", "table4", "--programs", "ADM", "--quick"],
                id="programs-wrong-experiment",
            ),
            pytest.param(["trace", "x.mf", "--memory", "BOGUS"], id="bad-memory"),
        ],
    )
    def test_exits_2_with_one_line_and_no_traceback(self, argv):
        proc = run_cli(argv)
        assert proc.returncode == 2, proc.stderr
        assert proc.stdout == ""
        assert "Traceback" not in proc.stderr
        lines = [l for l in proc.stderr.splitlines() if l.strip()]
        assert len(lines) == 1, proc.stderr

    def test_bad_minif_source_is_a_one_liner(self, bad_mf):
        proc = run_cli(["compile", bad_mf])
        assert proc.returncode == 2, proc.stderr
        assert proc.stderr.startswith("balanced-sched: ")
        assert "Traceback" not in proc.stderr
        assert len(proc.stderr.strip().splitlines()) == 1

    def test_directory_instead_of_file(self, tmp_path):
        proc = run_cli(["compile", str(tmp_path)])
        assert proc.returncode == 2
        assert proc.stderr.startswith("balanced-sched: ")
        assert "Traceback" not in proc.stderr

    def test_good_input_still_exits_zero(self, tmp_path):
        path = tmp_path / "ok.mf"
        path.write_text(
            "program ok\narray a[64], b[64]\nkernel k freq 1\n"
            "b[i] = a[i] * c0\nend\nend\n"
        )
        proc = run_cli(["compile", str(path)])
        assert proc.returncode == 0, proc.stderr
        assert "==== balanced" in proc.stdout


class TestInterruptDrill:
    def test_sigterm_shuts_down_run_cleanly(self, tmp_path):
        """SIGTERM mid-`run` must behave like Ctrl-C: exit 130, an
        ``interrupted`` manifest record, and no half-written obs
        artifacts from --trace-out/--metrics-out."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments.runner",
                "run", "table2", "--jobs", "2",
                "--trace-out", "trace.json",
                "--metrics-out", "metrics.json",
            ],
            cwd=tmp_path,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        manifest = tmp_path / "results" / "manifest.jsonl"
        deadline = time.monotonic() + 120
        # Interrupt only once the run is demonstrably under way.
        while time.monotonic() < deadline and not manifest.exists():
            if proc.poll() is not None:
                pytest.fail(f"run died early: {proc.communicate()[1]}")
            time.sleep(0.1)
        assert manifest.exists(), "run never started"
        time.sleep(1.0)
        proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 130, stderr
        assert "Traceback" not in stderr

        import json

        records = [
            json.loads(line)
            for line in manifest.read_text().splitlines()
            if line.strip()
        ]
        ends = [r for r in records if r["event"] == "run_end"]
        assert ends and ends[-1]["status"] == "interrupted"

        # Obs artifacts are written atomically on the interrupt path:
        # each either does not exist or parses as complete JSON.
        for name in ("trace.json", "metrics.json"):
            path = tmp_path / name
            if path.exists():
                json.loads(path.read_text())
