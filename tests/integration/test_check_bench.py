"""Tests for the benchmark regression gate (``tools/check_bench.py``).

The gate diffs freshly regenerated ``BENCH_*.json`` files against the
committed baselines, holding machine-independent ratios (speedups) to
a tight tolerance and machine-dependent absolutes (seconds, req/s) to
a catastrophic-only one.  These tests drive it against a throwaway git
repo so both the pass and the fail paths are exercised hermetically.
"""

import importlib.util
import json
import pathlib
import subprocess

import pytest

TOOLS = pathlib.Path(__file__).resolve().parents[2] / "tools"

spec = importlib.util.spec_from_file_location(
    "check_bench", TOOLS / "check_bench.py"
)
check_bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_bench)


BASELINE = {
    "meta": {"python": "3.x", "machine": "baseline-host"},
    "batch": {
        "speedup": 4.0,
        "elapsed_seconds": 10.0,
        "requests_per_s": 1000.0,
        "per_block": [1, 2, 3],
        "byte_identical": True,
    },
}


def _git(repo, *args):
    subprocess.run(
        ["git", "-C", str(repo), *args],
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(repo),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


@pytest.fixture
def repo(tmp_path):
    """A one-commit git repo holding BENCH_x.json as the baseline."""
    _git(tmp_path, "init", "-q")
    (tmp_path / "BENCH_x.json").write_text(json.dumps(BASELINE))
    _git(tmp_path, "add", "BENCH_x.json")
    _git(tmp_path, "commit", "-qm", "baseline")
    return tmp_path


def _run(repo, fresh, **kwargs):
    (repo / "BENCH_x.json").write_text(json.dumps(fresh))
    return check_bench.check(
        str(repo), [str(repo / "BENCH_x.json")], **kwargs
    )


class TestGate:
    def test_identical_file_passes(self, repo, capsys):
        assert _run(repo, BASELINE) == []
        assert ": ok" in capsys.readouterr().out

    def test_small_drift_is_within_tolerance(self, repo):
        fresh = json.loads(json.dumps(BASELINE))
        fresh["batch"]["speedup"] = 3.2  # -20%: inside the 35% floor
        fresh["batch"]["elapsed_seconds"] = 30.0  # 3x slower host: OK
        assert _run(repo, fresh) == []

    def test_relative_regression_fails(self, repo):
        fresh = json.loads(json.dumps(BASELINE))
        fresh["batch"]["speedup"] = 2.0  # half the committed speedup
        (problem,) = _run(repo, fresh)
        assert "batch.speedup" in problem
        assert "relative" in problem

    def test_absolute_cliff_fails(self, repo):
        fresh = json.loads(json.dumps(BASELINE))
        fresh["batch"]["requests_per_s"] = 50.0  # 20x throughput cliff
        (problem,) = _run(repo, fresh)
        assert "requests_per_s" in problem
        assert "absolute" in problem

    def test_lower_is_better_direction(self, repo):
        """A *drop* in elapsed seconds is an improvement, never a
        regression -- even a huge one."""
        fresh = json.loads(json.dumps(BASELINE))
        fresh["batch"]["elapsed_seconds"] = 0.1
        assert _run(repo, fresh) == []
        # ... but a blow-up past the absolute floor fails.
        fresh["batch"]["elapsed_seconds"] = 1000.0
        (problem,) = _run(repo, fresh)
        assert "elapsed_seconds" in problem

    def test_meta_lists_and_schema_drift_are_ignored(self, repo):
        fresh = json.loads(json.dumps(BASELINE))
        fresh["meta"]["machine"] = "other-host"
        fresh["batch"]["per_block"] = [9, 9, 9]
        fresh["batch"]["brand_new_metric"] = 0.001  # only on one side
        del fresh["batch"]["requests_per_s"]  # dropped metric
        assert _run(repo, fresh) == []

    def test_new_file_without_baseline_is_skipped(self, repo, capsys):
        (repo / "BENCH_new.json").write_text(json.dumps(BASELINE))
        problems = check_bench.check(
            str(repo),
            [str(repo / "BENCH_x.json"), str(repo / "BENCH_new.json")],
        )
        assert problems == []
        assert "no committed baseline" in capsys.readouterr().out

    def test_nothing_comparable_is_itself_a_problem(self, repo):
        (repo / "BENCH_new.json").write_text(json.dumps(BASELINE))
        (problem,) = check_bench.check(
            str(repo), [str(repo / "BENCH_new.json")]
        )
        assert "no BENCH files had committed baselines" in problem

    def test_unreadable_fresh_file_is_a_problem(self, repo):
        (repo / "BENCH_x.json").write_text("{not json")
        problems = check_bench.check(
            str(repo), [str(repo / "BENCH_x.json")]
        )
        assert any("unreadable fresh file" in p for p in problems)


class TestMetricClassification:
    @pytest.mark.parametrize(
        "name",
        ["batch.speedup", "overlap_ratio", "hit_over_disabled",
         "obs.overhead_pct"],
    )
    def test_relative_names(self, name):
        assert check_bench.is_relative(name)

    @pytest.mark.parametrize(
        "name", ["elapsed_seconds", "p99_ms", "requests_per_s"]
    )
    def test_absolute_names(self, name):
        assert not check_bench.is_relative(name)

    @pytest.mark.parametrize(
        "name", ["elapsed_seconds", "seconds", "p99_ms", "ns_per_call",
                 "obs.overhead_pct"]
    )
    def test_lower_is_better_names(self, name):
        assert check_bench.lower_is_better(name)

    def test_higher_is_better_names(self):
        assert not check_bench.lower_is_better("requests_per_s")
        assert not check_bench.lower_is_better("batch.speedup")

    def test_walk_metrics_flattens_with_dotted_paths(self):
        metrics = dict(check_bench.walk_metrics(BASELINE))
        assert metrics == {
            "batch.speedup": 4.0,
            "batch.elapsed_seconds": 10.0,
            "batch.requests_per_s": 1000.0,
        }
