"""Cross-cutting property-based tests (hypothesis).

These pin down invariants that span multiple packages: simulator
monotonicity, scheduling quality floors, statistics identities, and
semantic preservation through the full pipeline.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import build_dag
from repro.analysis.equivalence import assert_equivalent
from repro.core import (
    BalancedScheduler,
    TraditionalScheduler,
    balanced_weights,
    compile_block,
)
from repro.machine import LEN_8, MAX_8, UNLIMITED
from repro.regalloc import RegisterFile
from repro.simulate import simulate_block
from repro.workloads import random_block


def _loads(block):
    return sum(1 for i in block if i.is_load)


class TestSimulatorMonotonicity:
    @given(st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_cycles_monotone_in_uniform_latency(self, seed):
        """Raising every load's latency never speeds a block up."""
        rng = np.random.default_rng(seed)
        block = random_block(rng, n_instructions=18)
        n = _loads(block)
        previous = None
        for latency in (1, 2, 4, 8, 16):
            cycles = simulate_block(block.instructions, [latency] * n).cycles
            if previous is not None:
                assert cycles >= previous
            previous = cycles

    @given(st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_cycles_monotone_per_load(self, seed):
        """Raising one load's latency never speeds a block up."""
        rng = np.random.default_rng(seed)
        block = random_block(rng, n_instructions=15)
        n = _loads(block)
        if n == 0:
            return
        base = [3] * n
        base_cycles = simulate_block(block.instructions, base).cycles
        victim = int(rng.integers(0, n))
        bumped = list(base)
        bumped[victim] += 10
        assert simulate_block(block.instructions, bumped).cycles >= base_cycles

    @given(st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_restricted_processors_never_faster(self, seed):
        rng = np.random.default_rng(seed)
        block = random_block(rng, n_instructions=15)
        n = _loads(block)
        latencies = rng.integers(1, 40, size=n)
        base = simulate_block(block.instructions, latencies, UNLIMITED)
        for processor in (MAX_8, LEN_8):
            restricted = simulate_block(
                block.instructions, latencies, processor
            )
            assert restricted.cycles >= base.cycles

    @given(st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_runtime_identity(self, seed):
        """cycles == instructions + interlocks, always (single issue)."""
        rng = np.random.default_rng(seed)
        block = random_block(rng, n_instructions=20)
        latencies = rng.integers(1, 30, size=_loads(block))
        for processor in (UNLIMITED, MAX_8, LEN_8):
            result = simulate_block(block.instructions, latencies, processor)
            assert result.cycles == result.instructions + result.interlock_cycles


class TestSchedulingQuality:
    @given(st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_any_schedule_at_unit_latency_is_stall_free(self, seed):
        """At latency 1 every dependence is satisfied by program order,
        so any valid schedule runs stall-free."""
        rng = np.random.default_rng(seed)
        block = random_block(rng, n_instructions=18)
        for policy in (BalancedScheduler(), TraditionalScheduler(7)):
            scheduled = policy.schedule_block(block).block
            result = simulate_block(
                scheduled.instructions, [1] * _loads(scheduled)
            )
            assert result.interlock_cycles == 0

    @given(st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_scheduling_never_beats_critical_path(self, seed):
        """Runtime is bounded below by the latency-weighted critical
        path evaluated with the actual latency."""
        rng = np.random.default_rng(seed)
        block = random_block(rng, n_instructions=16)
        latency = int(rng.integers(1, 12))
        dag = build_dag(block)
        for node in dag.load_nodes():
            dag.set_weight(node, latency)
        # Longest path with actual latencies, ending at issue of leaf.
        n = len(dag)
        depth = [Fraction(0)] * n
        for v in reversed(range(n)):
            best = Fraction(0)
            for s in dag.successors(v):
                cand = Fraction(dag.edge_latency(v, s)) + depth[s]
                if cand > best:
                    best = cand
            depth[v] = best
        bound = int(max(depth)) + 1 if n else 0

        scheduled = BalancedScheduler().schedule_block(block).block
        result = simulate_block(
            scheduled.instructions, [latency] * _loads(scheduled)
        )
        assert result.cycles >= bound

    @given(st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_weights_never_below_one_never_above_block_size(self, seed):
        rng = np.random.default_rng(seed)
        block = random_block(rng, n_instructions=int(rng.integers(2, 26)))
        weights = balanced_weights(build_dag(block))
        for weight in weights.values():
            assert 1 <= weight <= len(block)


class TestPipelineSemantics:
    @given(st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_full_pipeline_preserves_stores(self, seed):
        from repro.analysis.equivalence import block_effect

        rng = np.random.default_rng(seed)
        block = random_block(rng, n_instructions=18)
        compiled = compile_block(
            block,
            BalancedScheduler(),
            register_file=RegisterFile(n_int=6, n_fp=6),
        )
        before = block_effect(block).store_multiset()
        after = block_effect(compiled.final).store_multiset()
        assert before == after

    @given(st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_scheduling_is_semantics_preserving(self, seed):
        rng = np.random.default_rng(seed)
        block = random_block(rng, n_instructions=22)
        for policy in (BalancedScheduler(), TraditionalScheduler(4)):
            scheduled = policy.schedule_block(block).block
            assert_equivalent(block, scheduled)


class TestStatisticsProperties:
    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_bootstrap_means_within_sample_range(self, seed):
        from repro.simulate import bootstrap_means

        rng = np.random.default_rng(seed)
        samples = rng.uniform(10, 100, size=int(rng.integers(2, 40)))
        means = bootstrap_means(samples, rng, n_boot=64)
        assert means.min() >= samples.min() - 1e-9
        assert means.max() <= samples.max() + 1e-9

    @given(st.integers(0, 5000), st.floats(0.2, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_improvement_sign_flips_under_scaling(self, seed, scale):
        """When one series is a uniform scaling of the other, the
        improvement is exactly (1 - scale) * 100 and swapping the
        arguments flips its sign."""
        from repro.simulate import percentage_improvement

        rng = np.random.default_rng(seed)
        a = rng.uniform(50, 150, size=100)
        b = a * scale
        forward = percentage_improvement(a, b)
        assert forward.mean == pytest.approx((1 - scale) * 100)
        backward = percentage_improvement(b, a)
        if abs(1 - scale) > 1e-6:
            assert (forward.mean > 0) != (backward.mean > 0)

    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_identical_series_zero_improvement(self, seed):
        from repro.simulate import percentage_improvement

        rng = np.random.default_rng(seed)
        series = rng.uniform(50, 150, size=100)
        result = percentage_improvement(series, series.copy())
        assert result.mean == pytest.approx(0.0)
        assert not result.significant
