"""End-to-end integration tests: source text -> schedules -> simulation.

These exercise the full stack the way the examples and benchmarks do,
and pin down the cross-cutting invariants the paper's evaluation rests
on.
"""

import numpy as np
import pytest

from repro import (
    AliasModel,
    BalancedScheduler,
    TraditionalScheduler,
    compile_program,
    simulate_program,
    spawn,
)
from repro.frontend import compile_minif
from repro.ir import verify_block
from repro.machine import (
    CacheMemory,
    FixedMemory,
    LEN_8,
    MAX_8,
    NetworkMemory,
    UNLIMITED,
)
from repro.simulate import compare_runs
from repro.workloads import load_program, load_suite

SOURCE = """
program demo
  array a[1024], b[1024], c[1024], idx[1024]
  kernel stream freq 60 unroll 2
    t1 = a[i] * b[i]
    c[i] = t1 + a[i+1]
  end
  kernel gather freq 40 unroll 2
    s = s + b[idx[i]] / a[i]
  end
end
"""


@pytest.fixture(scope="module")
def demo_program():
    return compile_minif(SOURCE)


class TestFullPipeline:
    def test_source_to_simulation(self, demo_program):
        balanced = compile_program(demo_program, BalancedScheduler())
        runs = simulate_program(
            balanced.final_blocks,
            UNLIMITED,
            CacheMemory(0.8, 2, 10),
            spawn("e2e", "smoke"),
            runs=5,
        )
        assert runs.mean_runtime() > 0
        assert 0 <= runs.interlock_percentage() < 100

    def test_all_final_blocks_verify(self, demo_program):
        for policy in (BalancedScheduler(), TraditionalScheduler(2)):
            compiled = compile_program(demo_program, policy)
            for block in compiled.final_blocks:
                verify_block(block, strict_defs=False)

    def test_balanced_wins_under_uncertainty(self, demo_program):
        """The headline result on a fresh program (not the tuned suite)."""
        trad = compile_program(demo_program, TraditionalScheduler(2))
        bal = compile_program(demo_program, BalancedScheduler())
        memory = NetworkMemory(2, 5)
        trad_runs = simulate_program(
            trad.final_blocks, UNLIMITED, memory, spawn("e2e", "t"), runs=30
        )
        bal_runs = simulate_program(
            bal.final_blocks, UNLIMITED, memory, spawn("e2e", "b"), runs=30
        )
        result = compare_runs(trad_runs, bal_runs, spawn("e2e", "boot"))
        assert result.mean > 0

    def test_deterministic_latency_equal_instruction_counts(self, demo_program):
        """With FixedMemory(1) every load behaves like an ALU op: both
        schedulers' runtimes equal their instruction counts."""
        for policy in (BalancedScheduler(), TraditionalScheduler(1)):
            compiled = compile_program(demo_program, policy)
            runs = simulate_program(
                compiled.final_blocks,
                UNLIMITED,
                FixedMemory(1),
                spawn("e2e", "fixed", policy.name),
                runs=2,
            )
            assert runs.weighted_cycles()[0] == pytest.approx(
                compiled.dynamic_instructions
            )

    def test_restricted_processors_never_faster(self, demo_program):
        """MAX-8 and LEN-8 only add constraints: with identical
        latency draws their block times are >= UNLIMITED's."""
        from repro.simulate import simulate_block

        compiled = compile_program(demo_program, BalancedScheduler())
        rng = spawn("e2e", "restricted")
        for block in compiled.final_blocks:
            n_loads = sum(1 for i in block if i.is_load)
            latencies = NetworkMemory(30, 5).sample_many(rng, n_loads)
            base = simulate_block(block.instructions, latencies, UNLIMITED)
            for processor in (MAX_8, LEN_8):
                restricted = simulate_block(
                    block.instructions, latencies, processor
                )
                assert restricted.cycles >= base.cycles

    def test_alias_model_affects_schedules(self, demo_program):
        fortran = compile_program(
            demo_program, BalancedScheduler(), alias_model=AliasModel.FORTRAN
        )
        c_model = compile_program(
            demo_program,
            BalancedScheduler(),
            alias_model=AliasModel.C_CONSERVATIVE,
        )
        assert fortran.dynamic_instructions == c_model.dynamic_instructions


class TestSuiteIntegration:
    def test_every_program_compiles_under_both_policies(self):
        for name, program in load_suite().items():
            for policy in (BalancedScheduler(), TraditionalScheduler(2)):
                compiled = compile_program(program, policy)
                assert compiled.dynamic_instructions > 0

    def test_balanced_schedule_independent_of_machine(self):
        """Balanced scheduling is machine-independent: its output is
        identical whatever system it will later run on."""
        program = load_program("ADM")
        first = compile_program(program, BalancedScheduler())
        second = compile_program(program, BalancedScheduler())
        for a, b in zip(first.final_blocks, second.final_blocks):
            assert [str(i) for i in a] == [str(i) for i in b]

    def test_traditional_schedules_change_with_latency(self):
        program = load_program("MDG")
        w2 = compile_program(program, TraditionalScheduler(2))
        w30 = compile_program(program, TraditionalScheduler(30))
        different = any(
            [str(i) for i in a] != [str(i) for i in b]
            for a, b in zip(w2.final_blocks, w30.final_blocks)
        )
        assert different
