"""Tests for the IR-level block-enlarging transform (Section 6)."""

import pytest

from repro.analysis import build_dag
from repro.analysis.critical_path import height_in_nodes
from repro.extensions import UnrollError, enlarge_block, infer_carried
from repro.frontend import compile_minif
from repro.ir import verify_block

REDUCTION = """
program p
  array a[64], b[64]
  kernel k freq 12
    s = s + a[i] * b[i]
  end
end
"""

STREAM = """
program p
  array a[64], c[64]
  kernel k freq 4
    t1 = a[i] * 2.0
    c[i] = t1 + a[i+1]
  end
end
"""


def block_of(source):
    return compile_minif(source).functions[0].blocks[0]


class TestInferCarried:
    def test_reduction_maps_final_to_initial(self):
        block = block_of(REDUCTION)
        carried = infer_carried(block)
        assert len(carried) == 1
        (final, initial), = carried.items()
        assert final in block.live_out
        assert initial in block.live_in

    def test_no_carried_values(self):
        block = block_of(STREAM)
        assert infer_carried(block) == {}

    def test_mismatch_rejected(self):
        block = block_of(REDUCTION)
        block.carried.clear()  # force the positional fallback
        block.live_out.append(block.live_out[0])  # unbalanced
        with pytest.raises(UnrollError, match="cannot infer"):
            infer_carried(block)

    def test_explicit_carried_map_preferred(self):
        block = block_of(REDUCTION)
        assert infer_carried(block) == block.carried


class TestEnlargeBlock:
    def test_factor_one_is_copy(self):
        block = block_of(STREAM)
        copy = enlarge_block(block, 1)
        assert len(copy) == len(block)
        assert copy is not block

    def test_factor_scales_length(self):
        block = block_of(STREAM)
        big = enlarge_block(block, 4)
        assert len(big) == 4 * len(block)

    def test_frequency_divided(self):
        block = block_of(STREAM)
        big = enlarge_block(block, 4)
        assert big.frequency == pytest.approx(block.frequency / 4)

    def test_result_verifies(self):
        for source in (REDUCTION, STREAM):
            big = enlarge_block(block_of(source), 3)
            verify_block(big)

    def test_affine_offsets_shift(self):
        block = block_of(STREAM)
        big = enlarge_block(block, 3)
        store_offsets = sorted(i.mem.offset for i in big.stores)
        assert store_offsets == [0, 1, 2]

    def test_fresh_registers_per_copy(self):
        block = block_of(STREAM)
        big = enlarge_block(block, 2)
        defs = [r for i in big for r in i.defs]
        assert len(defs) == len(set(defs))

    def test_reduction_spine_grows(self):
        """Carried values serialise the copies: DAG height grows."""
        block = block_of(REDUCTION)
        base_height = height_in_nodes(build_dag(block))
        big = enlarge_block(block, 4)
        assert height_in_nodes(build_dag(big)) >= base_height + 3

    def test_live_out_is_final_copy(self):
        block = block_of(REDUCTION)
        big = enlarge_block(block, 3)
        assert len(big.live_out) == 1
        final = big.live_out[0]
        defining = [i for i in big if final in i.defs]
        assert defining
        assert big.instructions.index(defining[-1]) >= 2 * len(block)

    def test_matches_frontend_unrolling_weight_profile(self):
        """IR-level enlargement lands in the same weight regime as the
        frontend's source-level unrolling."""
        from repro.core import balanced_weights

        # Compare without pointer-table loads: the frontend CSEs one
        # pointer load per block, whereas IR-level enlargement
        # replicates whatever instructions exist.
        frontend = compile_minif(
            REDUCTION.replace("freq 12", "freq 12 unroll 3"),
            pointer_loads=False,
        ).functions[0].blocks[0]
        base = compile_minif(REDUCTION, pointer_loads=False).functions[0].blocks[0]
        ir_level = enlarge_block(base, 3)
        w_frontend = sorted(balanced_weights(build_dag(frontend)).values())
        w_ir = sorted(balanced_weights(build_dag(ir_level)).values())
        assert len(w_frontend) == len(w_ir)
        assert abs(float(max(w_frontend)) - float(max(w_ir))) <= 3

    def test_bad_factor_rejected(self):
        with pytest.raises(UnrollError):
            enlarge_block(block_of(STREAM), 0)
