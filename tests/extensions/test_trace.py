"""Tests for trace scheduling (Section 6)."""

import pytest

from repro.analysis import DepKind
from repro.core import BalancedScheduler, TraditionalScheduler, balanced_weights
from repro.extensions.trace import (
    TraceError,
    compare_trace_vs_blocks,
    form_trace,
    schedule_trace,
    trace_dag,
)
from repro.ir import (
    BasicBlock,
    Function,
    Instruction,
    MemRef,
    Opcode,
    RegClass,
    VirtualReg,
    alu,
    load,
    store,
)
from repro.ir.cfg import CFG
from repro.machine import UNLIMITED
from repro.simulate import simulate_block


def hot_path_cfg():
    """entry -> body (0.95 hot) -> tail, with a cold error exit.

    Each hot block is load-then-use with no local padding, so
    block-by-block scheduling cannot hide anything, while the trace
    can interleave the three blocks' loads.
    """
    fn = Function("trace_demo")
    cfg = CFG(name="trace_demo", entry="b0", entry_frequency=50.0)

    regions = ("A", "B", "C")
    bases = {}
    blocks = []
    cond = fn.new_vreg(RegClass.FP)
    for index, region in enumerate(regions):
        block = BasicBlock(f"b{index}")
        base = fn.new_vreg(RegClass.INT)
        bases[region] = base
        block.live_in.append(base)
        value = fn.new_vreg(RegClass.FP)
        block.append(
            load(value, MemRef(region=region, base=base, offset=0))
        )
        result = fn.new_vreg(RegClass.FP)
        block.append(alu(Opcode.FADD, result, (value, value)))
        block.append(
            store(result, MemRef(region=region, base=base, offset=1))
        )
        if index == 0:
            block.live_in.append(cond)
        if index < len(regions) - 1:
            block.append(Instruction(Opcode.BRANCH, uses=(cond,)))
        blocks.append(block)
        cfg.add_block(block)

    cold = BasicBlock("cold")
    cold.append(alu(Opcode.ADD, fn.new_vreg(RegClass.INT), ()))
    cfg.add_block(cold)

    cfg.add_edge("b0", "b1", 0.95)
    cfg.add_edge("b0", "cold", 0.05)
    cfg.add_edge("b1", "b2", 0.95)
    cfg.add_edge("b1", "cold", 0.05)
    cfg.add_edge("cold", "b2", 1.0)
    cfg.propagate_frequencies()
    return cfg


class TestFormTrace:
    def test_hottest_path_selected(self):
        cfg = hot_path_cfg()
        trace = form_trace(cfg)
        assert trace.source_blocks == ["b0", "b1", "b2"]

    def test_side_exits_recorded(self):
        trace = form_trace(hot_path_cfg())
        assert len(trace.side_exits) == 2
        for index in trace.side_exits:
            assert trace.block[index].is_terminator

    def test_live_ins_accumulated(self):
        cfg = hot_path_cfg()
        trace = form_trace(cfg)
        # Bases of all three regions plus the branch condition.
        assert len(trace.block.live_in) == 4

    def test_frequency_is_entry_frequency(self):
        cfg = hot_path_cfg()
        trace = form_trace(cfg)
        assert trace.block.frequency == cfg.block("b0").frequency

    def test_non_edge_path_rejected(self):
        cfg = hot_path_cfg()
        with pytest.raises(TraceError, match="not a CFG edge"):
            form_trace(cfg, ["b0", "b2"])

    def test_empty_path_rejected(self):
        with pytest.raises(TraceError):
            form_trace(hot_path_cfg(), [])


class TestTraceDag:
    def test_stores_pinned_across_exits(self):
        trace = form_trace(hot_path_cfg())
        dag = trace_dag(trace)
        first_exit = trace.side_exits[0]
        later_stores = [
            v for v in dag.nodes()
            if v > first_exit and dag.instructions[v].is_store
        ]
        assert later_stores
        for v in later_stores:
            assert dag.edge_kind(first_exit, v) is not None

    def test_later_loads_free_to_hoist(self):
        trace = form_trace(hot_path_cfg())
        dag = trace_dag(trace)
        first_exit = trace.side_exits[0]
        later_loads = [
            v for v in dag.nodes()
            if v > first_exit and dag.instructions[v].is_load
        ]
        assert later_loads
        for v in later_loads:
            assert dag.edge_kind(first_exit, v) is None

    def test_earlier_instructions_pinned_above_exit(self):
        trace = form_trace(hot_path_cfg())
        dag = trace_dag(trace)
        first_exit = trace.side_exits[0]
        for earlier in range(first_exit):
            assert dag.edge_kind(earlier, first_exit) is not None

    def test_trace_weights_exceed_block_weights(self):
        """The point of the extension: more visible parallelism."""
        from repro.analysis import build_dag

        cfg = hot_path_cfg()
        trace = form_trace(cfg)
        block_max = max(
            max(balanced_weights(build_dag(cfg.block(n))).values())
            for n in trace.source_blocks
        )
        trace_weights = balanced_weights(trace_dag(trace))
        assert max(trace_weights.values()) > block_max


class TestScheduleTrace:
    def test_schedule_is_permutation(self):
        trace = form_trace(hot_path_cfg())
        result = schedule_trace(trace, BalancedScheduler())
        assert sorted(result.order) == list(range(len(trace.block)))

    def test_loads_hoist_across_exits(self):
        trace = form_trace(hot_path_cfg())
        result = schedule_trace(trace, BalancedScheduler())
        first_exit_position = result.order.index(trace.side_exits[0])
        load_positions = [
            result.order.index(v)
            for v in range(len(trace.block))
            if trace.block[v].is_load
        ]
        # At least one load from a later block sits above the exit.
        hoisted = [
            p for v, p in zip(
                (v for v in range(len(trace.block)) if trace.block[v].is_load),
                load_positions,
            )
            if v > trace.side_exits[0] and p < first_exit_position
        ]
        assert hoisted

    def test_trace_scheduling_hides_more_latency(self):
        """Hot-path runtime: the trace schedule beats block-by-block
        at a latency none of the tiny blocks can hide locally."""
        cfg = hot_path_cfg()

        def simulate(block):
            n = sum(1 for i in block if i.is_load)
            return simulate_block(block.instructions, [6] * n, UNLIMITED).cycles

        per_block, traced = compare_trace_vs_blocks(
            cfg, BalancedScheduler, simulate
        )
        assert traced < per_block

    def test_traditional_also_usable_on_traces(self):
        trace = form_trace(hot_path_cfg())
        result = schedule_trace(trace, TraditionalScheduler(2))
        assert sorted(result.order) == list(range(len(trace.block)))
