"""Tests for iterative modulo scheduling (Section 6)."""

import math

import pytest

from repro.core import BalancedScheduler, TraditionalScheduler
from repro.extensions.modulo import (
    ModuloSchedulingError,
    minimum_ii,
    modulo_schedule,
)
from repro.frontend import compile_minif
from repro.ir import BasicBlock

STREAM = """
program p
  array a[64], c[64]
  kernel k freq 1
    t1 = a[i] * a[i+1]
    c[i] = t1 + t1
  end
end
"""

DOT = """
program p
  array a[64], b[64]
  kernel k freq 1
    s = s + a[i] * b[i]
  end
end
"""

FILTER = """
program p
  array x[64]
  kernel k freq 1
    s = s * c0 + x[i]
  end
end
"""


def body_of(source):
    return compile_minif(source, pointer_loads=False).functions[0].blocks[0]


class TestMinimumII:
    def test_resource_bound_dominates_parallel_loop(self):
        body = body_of(STREAM)
        assert minimum_ii(body) == len(body)

    def test_issue_width_shrinks_resource_bound(self):
        body = body_of(STREAM)
        assert minimum_ii(body, issue_width=2) == math.ceil(len(body) / 2)

    def test_recurrence_floor(self):
        body = body_of(FILTER)
        # Resource bound (4 instructions) exceeds the 2-cycle
        # recurrence here, so MII is resource bound at width 1...
        assert minimum_ii(body) == len(body)
        # ...but at high width the recurrence takes over.
        assert minimum_ii(body, issue_width=8) == 2


class TestModuloSchedule:
    @pytest.mark.parametrize("source", [STREAM, DOT, FILTER])
    def test_achieves_resource_bound_at_unit_weights(self, source):
        """With W=1 weights every loop pipelines at II = n (single
        issue): one instruction per cycle, iterations back to back."""
        body = body_of(source)
        schedule = modulo_schedule(body, TraditionalScheduler(1))
        assert schedule.ii == len(body)
        schedule.validate()

    @pytest.mark.parametrize("source", [STREAM, DOT, FILTER])
    def test_balanced_weights_still_reach_resource_ii(self, source):
        """Software pipelining absorbs the balanced load weights into
        pipeline *depth* (more overlapped stages), not II."""
        body = body_of(source)
        schedule = modulo_schedule(body, BalancedScheduler())
        assert schedule.ii == len(body)
        assert schedule.stage_count >= 1

    def test_bigger_weights_mean_deeper_pipeline(self):
        body = body_of(DOT)
        shallow = modulo_schedule(body, TraditionalScheduler(1))
        deep = modulo_schedule(body, TraditionalScheduler(9))
        assert deep.stage_count > shallow.stage_count
        assert deep.ii == shallow.ii  # latency moves to depth, not II

    def test_superscalar_width_reduces_ii(self):
        body = body_of(STREAM)
        narrow = modulo_schedule(body, TraditionalScheduler(2), issue_width=1)
        wide = modulo_schedule(body, TraditionalScheduler(2), issue_width=2)
        assert wide.ii < narrow.ii
        wide.validate()

    def test_carried_edges_recorded_for_reductions(self):
        schedule = modulo_schedule(body_of(DOT), TraditionalScheduler(1))
        assert schedule.carried_edges
        for edge in schedule.carried_edges:
            assert edge.src in schedule.slots
            assert edge.dst in schedule.slots

    def test_modulo_resource_respected(self):
        schedule = modulo_schedule(body_of(DOT), BalancedScheduler())
        used = [slot % schedule.ii for slot in schedule.slots.values()]
        assert len(used) == len(set(used))  # one instruction per slot

    def test_empty_block_rejected(self):
        with pytest.raises(ModuloSchedulingError):
            modulo_schedule(BasicBlock("empty"), TraditionalScheduler(1))

    def test_format_mentions_ii_and_stages(self):
        schedule = modulo_schedule(body_of(FILTER), BalancedScheduler())
        text = schedule.format()
        assert f"II = {schedule.ii}" in text
        assert "stage" in text


class TestAgainstUnrollingThroughput:
    def test_ii_beats_or_matches_unrolled_throughput(self):
        """Modulo scheduling's II is the throughput target unrolling
        approaches asymptotically: II <= measured cycles/iteration of
        the balanced unrolled schedule (small tolerance for the fit)."""
        from repro.simulate import throughput

        for source in (DOT, FILTER):
            body = body_of(source)
            schedule = modulo_schedule(body, BalancedScheduler())
            measured = throughput(
                body, BalancedScheduler(), load_latency=6, factors=(4, 8, 12)
            )
            assert schedule.ii <= measured.cycles_per_iteration + 0.5
