"""Tests for the multi-cycle and known-latency extensions (Section 6)."""

from fractions import Fraction

import pytest

from repro.analysis import build_dag
from repro.core import BalancedScheduler, balanced_weights
from repro.extensions import (
    KnownLatencyScheduler,
    MultiCycleBalancedScheduler,
    second_access_same_line,
    uncertain_load_or_multicycle,
    with_fp_latency,
)
from repro.frontend import compile_minif
from repro.ir import Opcode
from repro.machine import UNLIMITED
from repro.simulate import simulate_block

SOURCE = """
program p
  array a[64], b[64], c[64]
  kernel k freq 1 unroll 2
    t1 = a[i] * b[i]
    t2 = t1 + a[i+1]
    c[i] = t2 / b[i+1]
  end
end
"""


def fresh_block():
    return compile_minif(SOURCE).functions[0].blocks[0]


class TestMultiCycle:
    def test_predicate_excludes_unit_fp(self):
        block = fresh_block()
        dag = build_dag(block)
        fp_nodes = [v for v in dag.nodes() if dag.instructions[v].is_fp]
        assert fp_nodes
        for v in fp_nodes:
            assert not uncertain_load_or_multicycle(dag, v)

    def test_predicate_includes_multicycle_fp(self):
        block = fresh_block()
        with_fp_latency(block.instructions, 4)
        dag = build_dag(block)
        fp_nodes = [v for v in dag.nodes() if dag.instructions[v].is_fp]
        for v in fp_nodes:
            assert uncertain_load_or_multicycle(dag, v)

    def test_fp_ops_receive_balanced_weights(self):
        block = fresh_block()
        with_fp_latency(block.instructions, 4)
        dag = build_dag(block)
        MultiCycleBalancedScheduler().assign_weights(dag)
        fp_nodes = [v for v in dag.nodes() if dag.instructions[v].is_fp]
        for v in fp_nodes:
            assert dag.weights[v] >= 1
            assert isinstance(dag.weights[v], Fraction)

    def test_schedules_remain_valid(self):
        block = fresh_block()
        with_fp_latency(block.instructions, 4)
        result = MultiCycleBalancedScheduler().schedule_block(block)
        assert sorted(result.order) == list(range(len(block)))

    def test_separates_fp_producers_from_consumers(self):
        """The extension's purpose: multi-cycle FP results get breathing
        room.  The mean producer->consumer distance over multi-cycle FP
        ops must not shrink relative to plain balanced scheduling."""

        def mean_fp_gap(block):
            position = {}
            for index, inst in enumerate(block.instructions):
                for reg in inst.defs:
                    position[reg] = (index, inst)
            gaps = []
            for index, inst in enumerate(block.instructions):
                for reg in inst.all_uses():
                    if reg in position:
                        def_index, producer = position[reg]
                        if producer.is_fp and producer.latency > 1:
                            gaps.append(index - def_index)
            return sum(gaps) / len(gaps) if gaps else 0.0

        base = fresh_block()
        with_fp_latency(base.instructions, 6)
        plain = BalancedScheduler().schedule_block(base).block
        extended = MultiCycleBalancedScheduler().schedule_block(base).block
        assert mean_fp_gap(extended) >= mean_fp_gap(plain)

    def test_with_fp_latency_validates(self):
        with pytest.raises(ValueError):
            with_fp_latency([], 0)


class TestKnownLatency:
    def test_oracle_detects_same_line_repeat(self):
        block = fresh_block()
        dag = build_dag(block)
        oracle = second_access_same_line(hit_latency=2, line_elements=4)
        scheduler = KnownLatencyScheduler(oracle)
        known = scheduler.known_loads(dag)
        # a[i+1] in copy 0 shares a line with a[i]; copy-1 references
        # repeat lines too.
        assert known
        for latency in known.values():
            assert latency == 2

    def test_known_loads_pinned_unknown_balanced(self):
        block = fresh_block()
        dag = build_dag(block)
        oracle = second_access_same_line(hit_latency=2, line_elements=4)
        scheduler = KnownLatencyScheduler(oracle)
        reference = balanced_weights(build_dag(block))
        scheduler.assign_weights(dag)
        known = scheduler.known_loads(dag)
        for node in dag.load_nodes():
            if node in known:
                assert dag.weights[node] == 2
            else:
                assert dag.weights[node] == reference[node]

    def test_never_oracle_equals_balanced(self):
        block = fresh_block()
        never = KnownLatencyScheduler(lambda dag, node: None)
        plain = BalancedScheduler()
        assert never.schedule_block(block).order == plain.schedule_block(
            fresh_block()
        ).order

    def test_gather_loads_never_known(self):
        source = """
program g
  array v[64], col[64]
  kernel k freq 1
    s = s + v[col[i]]
  end
end
"""
        block = compile_minif(source).functions[0].blocks[0]
        dag = build_dag(block)
        oracle = second_access_same_line()
        known = KnownLatencyScheduler(oracle).known_loads(dag)
        gather_nodes = [
            v for v in dag.load_nodes()
            if dag.instructions[v].mem.affine_coeff is None
        ]
        assert gather_nodes
        for node in gather_nodes:
            assert node not in known
