"""The acceptance invariant: stall histograms reconcile exactly.

A cell evaluated under observability must satisfy, from the metrics
registry alone:

* sum over the ``sim.load_stall_cycles`` and ``sim.other_stall_cycles``
  histograms == the ``sim.interlock_cycles`` counter, and
* ``sim.cycles`` == ``sim.instructions_issued`` + ``sim.interlock_cycles``
  (single-issue, non-blocking -- the paper's UNLIMITED model),

because the attribution replay is cross-checked against the batch
simulator run by run.  Nothing is sampled or bucketed, so the equality
is exact, not approximate.
"""

import pytest

from repro.experiments.common import ProgramEvaluator
from repro.machine.config import paper_system_rows
from repro.machine.processor import BLOCKING, MAX_8, UNLIMITED, delay_tracking
from repro.obs import recorder as obs
from repro.obs.metrics import MetricsRegistry, split_series_key
from repro.workloads.perfect import clear_cache, load_program


def _sum_counter(metrics, base):
    return sum(
        value
        for key, value in metrics.counters.items()
        if split_series_key(key)[0] == base
    )


def _sum_histogram_totals(metrics, *bases):
    return sum(
        MetricsRegistry.histogram_total(hist)
        for key, hist in metrics.histograms.items()
        if split_series_key(key)[0] in bases
    )


@pytest.fixture(scope="module")
def adm_cell_metrics():
    # A fresh Program object sidesteps the process-wide compilation
    # memo (keyed by program identity), so compile spans are recorded
    # even when earlier tests already evaluated ADM.
    clear_cache()
    row = paper_system_rows()[0]
    evaluator = ProgramEvaluator(load_program("ADM"), runs=3)
    with obs.recording() as rec:
        cell = evaluator.cell(row, UNLIMITED)
    return cell, rec


class TestStallReconciliation:
    def test_stall_histograms_cover_every_interlock_cycle(
        self, adm_cell_metrics
    ):
        _cell, rec = adm_cell_metrics
        interlocks = _sum_counter(rec.metrics, "sim.interlock_cycles")
        stalls = _sum_histogram_totals(
            rec.metrics, "sim.load_stall_cycles", "sim.other_stall_cycles"
        )
        assert interlocks > 0
        assert stalls == interlocks

    def test_cycles_decompose_into_issue_plus_interlock(
        self, adm_cell_metrics
    ):
        _cell, rec = adm_cell_metrics
        cycles = _sum_counter(rec.metrics, "sim.cycles")
        issued = _sum_counter(rec.metrics, "sim.instructions_issued")
        interlocks = _sum_counter(rec.metrics, "sim.interlock_cycles")
        assert cycles == issued + interlocks

    def test_no_attribution_skips_on_the_unlimited_model(
        self, adm_cell_metrics
    ):
        _cell, rec = adm_cell_metrics
        assert _sum_counter(rec.metrics, "sim.attribution_skipped") == 0

    def test_cell_numbers_unchanged_by_observation(self, adm_cell_metrics):
        """Observability must never perturb the science."""
        cell, _rec = adm_cell_metrics
        row = paper_system_rows()[0]
        bare = ProgramEvaluator(load_program("ADM"), runs=3).cell(
            row, UNLIMITED
        )
        assert bare.improvement.mean == cell.improvement.mean
        assert bare.traditional_interlock_pct == cell.traditional_interlock_pct
        assert bare.balanced_interlock_pct == cell.balanced_interlock_pct

    def test_ambient_cell_labels_reach_simulation_series(
        self, adm_cell_metrics
    ):
        _cell, rec = adm_cell_metrics
        series = rec.metrics.series("sim.load_stall_cycles")
        assert series
        for _key, labels in series:
            assert labels["program"] == "ADM"
            assert labels["policy"] in ("balanced", "traditional")
            assert "block" in labels and "load" in labels and "system" in labels


class TestAttributionSkip:
    def test_blocking_runs_are_counted_not_attributed(self):
        """`trace_block` models non-blocking loads only; on BLOCKING
        hardware the skip is counted instead of silently mis-attributed."""
        row = paper_system_rows()[0]
        evaluator = ProgramEvaluator(load_program("ADM"), runs=3)
        with obs.recording() as rec:
            evaluator.cell(row, BLOCKING)
        skipped = _sum_counter(rec.metrics, "sim.attribution_skipped")
        runs = _sum_counter(rec.metrics, "sim.runs")
        assert skipped == runs > 0
        assert rec.metrics.series("sim.load_stall_cycles") == []
        # The headline counters still reconcile at the top level.
        cycles = _sum_counter(rec.metrics, "sim.cycles")
        assert cycles > 0

    def test_delay_tracking_runs_are_counted_not_attributed(self):
        """A delay-tracking front end reorders issue, so the in-order
        replay cannot attribute its stalls even at width 1; the skip is
        counted under its own reason and the dedicated batch kernel
        shows up in the kernel counter."""
        row = paper_system_rows()[0]
        evaluator = ProgramEvaluator(load_program("ADM"), runs=3)
        with obs.recording() as rec:
            evaluator.cell(row, delay_tracking(8))
        skipped = _sum_counter(rec.metrics, "sim.attribution_skipped")
        runs = _sum_counter(rec.metrics, "sim.runs")
        assert skipped == runs > 0
        reasons = {
            labels["reason"]
            for _key, labels in rec.metrics.series("sim.attribution_skipped")
        }
        assert reasons == {"delay-tracking"}
        kernels = {
            labels["kernel"]
            for _key, labels in rec.metrics.series("sim.batch_kernel")
        }
        assert kernels == {"delaytrack"}
        assert rec.metrics.series("sim.load_stall_cycles") == []
        # The headline counters still come from the batch simulator.
        assert _sum_counter(rec.metrics, "sim.cycles") > 0

    def test_max8_is_single_issue_and_still_reconciles(self):
        """Finite load slots (MAX-8) stay attributable: the replay
        understands LOAD_SLOTS stalls, and totals still reconcile."""
        row = paper_system_rows()[0]
        evaluator = ProgramEvaluator(load_program("ADM"), runs=3)
        with obs.recording() as rec:
            evaluator.cell(row, MAX_8)
        assert _sum_counter(rec.metrics, "sim.attribution_skipped") == 0
        interlocks = _sum_counter(rec.metrics, "sim.interlock_cycles")
        stalls = _sum_histogram_totals(
            rec.metrics, "sim.load_stall_cycles", "sim.other_stall_cycles"
        )
        assert stalls == interlocks > 0


class TestPipelineSpans:
    def test_cell_records_the_full_phase_hierarchy(self, adm_cell_metrics):
        _cell, rec = adm_cell_metrics
        names = {span.name for span in rec.spans}
        for required in (
            "cell", "compile", "compile_block", "pass1", "dependence",
            "weights", "schedule", "regalloc", "pass2",
            "simulate_program", "simulate", "bootstrap",
        ):
            assert required in names, f"missing span {required!r}"

    def test_regalloc_metrics_recorded(self, adm_cell_metrics):
        _cell, rec = adm_cell_metrics
        assert _sum_counter(rec.metrics, "regalloc.blocks") > 0
        assert rec.metrics.series("regalloc.spill_instructions")

    def test_load_weights_observed_for_both_policies(self, adm_cell_metrics):
        _cell, rec = adm_cell_metrics
        policies = {
            labels.get("policy")
            for _key, labels in rec.metrics.series("sched.load_weight")
        }
        assert "balanced" in policies
        assert any(p and p.startswith("traditional") for p in policies)
