"""End-to-end tests for the observability CLI surface.

Covers `run --obs/--trace-out/--metrics-out`, `profile`, `explain`,
the `--programs` subset, and the -v/-q logging satellite.
"""

import json
import logging

import pytest

from repro.experiments.runner import _configure_logging, _usable_cores, main
from repro.obs.export import validate_chrome_trace
from repro.obs.metrics import split_series_key
from repro.workloads.perfect import clear_cache

MINIF = """
program obsdemo
  array a[64], b[64]
  kernel k freq 5
    t = a[i] * b[i]
    s = s + t
  end
end
"""


@pytest.fixture
def minif_file(tmp_path):
    path = tmp_path / "demo.mf"
    path.write_text(MINIF)
    return str(path)


def _run_table2(tmp_path, *extra):
    manifest = tmp_path / "manifest.jsonl"
    argv = [
        "run", "table2", "--quick", "--programs", "ADM",
        "--no-cache", "--manifest", str(manifest), *extra,
    ]
    rc = main(argv)
    cells = [
        json.loads(line)
        for line in manifest.read_text().splitlines()
        if json.loads(line).get("event") == "cell"
    ]
    return rc, cells


class TestRunWithObs:
    def test_obs_run_emits_trace_metrics_and_summary(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        clear_cache()  # so frontend lowering runs (and is traced) again
        rc, cells = _run_table2(
            tmp_path, "--obs",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "regenerated" in out
        assert "phase" in out and "self" in out  # phase summary header

        trace = json.loads(trace_path.read_text())
        assert validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"]}
        for required in (
            "frontend", "dependence", "schedule", "regalloc", "simulate",
        ):
            assert required in names

        metrics = json.loads(metrics_path.read_text())
        interlocks = sum(
            v for k, v in metrics["counters"].items()
            if split_series_key(k)[0] == "sim.interlock_cycles"
        )
        stall_total = sum(
            float(value) * count
            for key, hist in metrics["histograms"].items()
            if split_series_key(key)[0]
            in ("sim.load_stall_cycles", "sim.other_stall_cycles")
            for value, count in hist.items()
        )
        assert interlocks > 0
        assert stall_total == interlocks

        assert cells and all("metrics" in cell for cell in cells)
        for cell in cells:
            assert cell["metrics"]["counters"]["sim.interlock_cycles"] >= 0

    def test_trace_out_alone_implies_obs(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        rc, _cells = _run_table2(tmp_path, "--trace-out", str(trace_path))
        assert rc == 0
        assert trace_path.exists()

    def test_without_obs_manifest_stays_byte_compatible(
        self, tmp_path, capsys
    ):
        rc, cells = _run_table2(tmp_path)
        assert rc == 0
        assert cells and all("metrics" not in cell for cell in cells)
        out = capsys.readouterr().out
        assert "phase" not in out  # no summary table appended

    def test_unknown_program_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main([
                "run", "table2", "--quick", "--programs", "NOPE",
                "--no-cache", "--manifest", str(tmp_path / "m.jsonl"),
            ])

    def test_programs_rejected_for_non_table2(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "run", "table3", "--quick", "--programs", "ADM",
                "--no-cache", "--manifest", str(tmp_path / "m.jsonl"),
            ])


class TestProfile:
    def test_profile_reports_phases_and_hot_loads(self, capsys):
        rc = main([
            "profile", "table2", "--quick", "--programs", "ADM", "--top", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("profile: table2")
        assert "phase" in out
        assert "scheduler selection reasons:" in out
        assert "hottest loads" in out
        # System labels with commas survive the series-key round trip.
        assert "N(30,5)" in out


class TestExplain:
    def test_explain_diffs_the_two_policies(self, capsys):
        rc = main(["explain", "ADM", "--block", "vdiff"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "==== vdiff" in out
        assert "--- balanced" in out
        assert "+++ traditional W=2" in out
        assert "only-candidate" in out

    def test_explain_accepts_minif_files(self, minif_file, capsys):
        rc = main(["explain", minif_file])
        assert rc == 0
        assert "==== k" in capsys.readouterr().out

    def test_unknown_block_lists_choices(self, capsys):
        rc = main(["explain", "ADM", "--block", "nope"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "no block named" in err and "vdiff" in err

    def test_unknown_program_lists_suite(self, capsys):
        with pytest.raises(SystemExit):
            main(["explain", "not-a-program"])
        assert "ADM" in capsys.readouterr().err


class TestVerbosity:
    @pytest.fixture(autouse=True)
    def _restore_level(self):
        logger = logging.getLogger("repro")
        before = logger.level
        yield
        logger.setLevel(before)

    def test_levels_follow_the_flag_counts(self):
        logger = logging.getLogger("repro")
        _configure_logging(0, 0)
        assert logger.level == logging.WARNING
        _configure_logging(1, 0)
        assert logger.level == logging.INFO
        _configure_logging(2, 0)
        assert logger.level == logging.DEBUG
        _configure_logging(0, 1)
        assert logger.level == logging.ERROR
        _configure_logging(5, 0)  # clamped
        assert logger.level == logging.DEBUG

    def test_handler_installed_once(self):
        _configure_logging(0, 0)
        _configure_logging(1, 0)
        handlers = [
            h for h in logging.getLogger("repro").handlers
            if getattr(h, "_repro_cli", False)
        ]
        assert len(handlers) == 1

    def test_verbosity_flags_compose_with_bare_shorthand(self, capsys):
        assert main(["-v", "figure2"]) == 0
        assert "regenerated" in capsys.readouterr().out

    def test_jobs_clamp_goes_through_logging(self, tmp_path, caplog):
        cores = _usable_cores()
        with caplog.at_level(logging.WARNING, logger="repro"):
            rc = main([
                "run", "figure2", "--jobs", str(cores + 1),
                "--no-cache", "--manifest", str(tmp_path / "m.jsonl"),
            ])
        assert rc == 0
        assert any("clamped" in record.message for record in caplog.records)
