"""Golden-file and schema tests for the obs exporters.

The golden scenario pins the recorder clock (1000 ns per reading), so
both the Chrome trace JSON and the phase summary are byte-deterministic
-- any drift in the export format shows up as a diff against the files
in ``tests/obs/golden/``.  To regenerate after an intentional format
change::

    REGEN_OBS_GOLDENS=1 PYTHONPATH=src python -m pytest tests/obs/test_export.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.obs.export import (
    chrome_trace,
    metrics_json,
    phase_summary,
    prometheus_text,
    validate_chrome_trace,
    validate_prometheus_text,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Recorder

GOLDEN_DIR = Path(__file__).parent / "golden"


def _counting_clock(step=1000):
    state = {"t": 0}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


def golden_recorder() -> Recorder:
    """A miniature pipeline's worth of spans under a pinned clock."""
    rec = Recorder(clock=_counting_clock())
    with rec.span("compile_block", block="b0", policy="balanced"):
        with rec.span("pass1"):
            with rec.span("dependence", block="b0"):
                pass
            with rec.span("weights", policy="balanced"):
                pass
            with rec.span("schedule", policy="balanced"):
                pass
        with rec.span("regalloc"):
            pass
    with rec.span("simulate", block="b0", runs=3):
        pass
    return rec


def _check_golden(name: str, text: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REGEN_OBS_GOLDENS"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    assert path.exists(), f"golden file missing: {path}"
    assert text == path.read_text(), (
        f"{name} drifted from its golden copy; regenerate with "
        "REGEN_OBS_GOLDENS=1 if the change is intentional"
    )


class TestChromeTraceGolden:
    def test_trace_file_is_byte_identical(self, tmp_path):
        out = write_chrome_trace(tmp_path / "t.json", golden_recorder())
        _check_golden("chrome_trace.json", out.read_text())

    def test_trace_validates_cleanly(self):
        assert validate_chrome_trace(chrome_trace(golden_recorder())) == []

    def test_events_in_span_open_order_after_metadata(self):
        events = chrome_trace(golden_recorder())["traceEvents"]
        assert events[0]["ph"] == "M"
        names = [e["name"] for e in events[1:]]
        assert names == [
            "compile_block", "pass1", "dependence", "weights",
            "schedule", "regalloc", "simulate",
        ]
        cats = {e["name"]: e["cat"] for e in events[1:]}
        assert cats["dependence"] == "compile_block/pass1"
        assert cats["compile_block"] == "root"

    def test_span_args_become_event_args(self):
        events = chrome_trace(golden_recorder())["traceEvents"]
        sim = next(e for e in events if e["name"] == "simulate")
        assert sim["args"] == {"block": "b0", "runs": 3}


class TestValidator:
    def test_rejects_non_objects(self):
        assert validate_chrome_trace([]) == ["trace is not a JSON object"]
        assert validate_chrome_trace({"nope": 1}) == [
            "traceEvents is missing or not a list"
        ]

    def test_flags_bad_events(self):
        bad = {
            "traceEvents": [
                {"name": "", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 1},
                {"name": "ok", "ph": "Z", "pid": 1, "tid": 1},
                {"name": "ok", "ph": "X", "pid": "1", "tid": 1,
                 "ts": -5, "dur": 1},
                "not-an-event",
            ]
        }
        problems = validate_chrome_trace(bad)
        assert any("missing event name" in p for p in problems)
        assert any("unknown phase" in p for p in problems)
        assert any("pid must be an integer" in p for p in problems)
        assert any("ts must be a non-negative number" in p for p in problems)
        assert any("not an object" in p for p in problems)

    def test_empty_trace_is_flagged(self):
        assert validate_chrome_trace({"traceEvents": []}) == [
            "traceEvents is empty"
        ]


class TestPhaseSummaryGolden:
    def test_summary_is_byte_identical(self):
        _check_golden("phase_summary.txt", phase_summary(golden_recorder()))

    def test_self_time_subtracts_direct_children(self):
        text = phase_summary(golden_recorder())
        lines = text.splitlines()
        pass1 = next(line for line in lines if line.lstrip().startswith("pass1"))
        # Each clock reading advances 1 tick (= 0.001ms): every leaf
        # child lasts 1 tick, so pass1's 7-tick total leaves 4 ticks of
        # self time after subtracting its three 1-tick children.
        assert "0.007ms" in pass1
        assert "0.004ms" in pass1

    def test_empty_recorder_renders_placeholder(self):
        rec = Recorder(clock=_counting_clock())
        assert "(no spans recorded)" in phase_summary(rec)


class TestPrometheusValidator:
    """The /metrics schema gate, exercised on hand-broken expositions.

    The service tests only ever feed it *valid* output; these are the
    negative cases that prove the gate can actually fail."""

    def test_real_registry_with_exemplar_is_valid(self):
        m = MetricsRegistry()
        m.inc("service.requests", endpoint="simulate", status="200")
        m.observe(
            "service.request_ms", 12.5,
            exemplar={"trace_id": "ab" * 16},
            endpoint="simulate",
        )
        text = prometheus_text(m)
        assert validate_prometheus_text(text) == []
        assert f'# {{trace_id="{"ab" * 16}"}} 12.5' in text

    def test_bad_exemplar_syntax_is_flagged(self):
        text = (
            "# TYPE m histogram\n"
            'm_bucket{le="1"} 1 # {trace_id=} 0.5\n'  # empty label value
        )
        problems = validate_prometheus_text(text)
        assert any("malformed sample" in p for p in problems)

    def test_exemplar_on_non_bucket_sample_is_flagged(self):
        text = (
            "# TYPE m counter\n"
            'm 3 # {trace_id="abcd"} 3\n'
        )
        problems = validate_prometheus_text(text)
        assert any("exemplar on non-bucket sample m" in p for p in problems)

    def test_non_monotone_bucket_counts_are_flagged(self):
        text = (
            "# TYPE m histogram\n"
            'm_bucket{le="1"} 5\n'
            'm_bucket{le="2"} 3\n'  # cumulative count went *down*
            'm_bucket{le="+Inf"} 5\n'
            "m_sum 7\n"
            "m_count 5\n"
        )
        problems = validate_prometheus_text(text)
        assert any("non-monotone bucket counts" in p for p in problems)

    def test_monotone_buckets_compare_le_numerically(self):
        # le="10" sorts before le="2" as a string; the validator must
        # order buckets numerically or this valid series would fail.
        text = (
            "# TYPE m histogram\n"
            'm_bucket{le="2"} 1\n'
            'm_bucket{le="10"} 4\n'
            'm_bucket{le="+Inf"} 4\n'
            "m_sum 42\n"
            "m_count 4\n"
        )
        assert validate_prometheus_text(text) == []

    def test_unescaped_label_value_is_flagged(self):
        text = (
            "# TYPE m counter\n"
            'm{path="say "hi""} 1\n'  # unescaped inner quotes
        )
        problems = validate_prometheus_text(text)
        assert any("malformed sample" in p for p in problems)

    def test_escaped_label_value_is_valid(self):
        m = MetricsRegistry()
        m.inc("m", path='say "hi"\nback\\slash')
        assert validate_prometheus_text(prometheus_text(m)) == []

    def test_bucket_without_le_label_is_flagged(self):
        text = (
            "# TYPE m histogram\n"
            'm_bucket{other="x"} 1\n'
        )
        problems = validate_prometheus_text(text)
        assert any("without an 'le' label" in p for p in problems)

    def test_undeclared_sample_is_flagged(self):
        problems = validate_prometheus_text("mystery 1\n")
        assert any("no TYPE declaration" in p for p in problems)


class TestMetricsExport:
    def test_metrics_json_sorted_and_stringified(self, tmp_path):
        m = MetricsRegistry()
        m.inc("b.counter", 2)
        m.inc("a.counter", 1)
        m.set_gauge("g", 4)
        m.observe_many("h", [10, 2, 10])
        data = metrics_json(m)
        assert list(data["counters"]) == ["a.counter", "b.counter"]
        assert data["histograms"]["h"] == {"2": 1, "10": 2}
        out = write_metrics(tmp_path / "m.json", m)
        assert json.loads(out.read_text()) == data
