"""Tests for the scheduler decision log and its instrumentation.

The load-bearing property is *equivalence*: scheduling with the
decision-logging selection path must pick exactly the same instruction
at every step as the bare fast path, on real workloads.
"""

import pytest

from repro.core.balanced import BalancedScheduler
from repro.core.traditional import TraditionalScheduler
from repro.obs import recorder as obs
from repro.obs.decisions import Candidate, Decision, DecisionLog
from repro.workloads.perfect import load_program, program_names

REASONS = ("only-candidate", "priority", "tie-break:", "discovery-order")


def _schedule_orders(policy_factory, block):
    """The block's instruction order with obs off vs. obs+decisions on."""
    plain = policy_factory().schedule_block(block)
    with obs.recording(decisions=True) as rec:
        observed = policy_factory().schedule_block(block)
    return plain, observed, rec


class TestObservedSelectionEquivalence:
    @pytest.mark.parametrize("name", program_names())
    def test_observed_path_schedules_identically(self, name):
        """`_select_observed` (via `_explain_selection`) and the fast
        `_select_index` agree on every step of every suite block, for
        both policies."""
        program = load_program(name)
        for function in program:
            for block in function:
                for factory in (
                    BalancedScheduler,
                    lambda: TraditionalScheduler(2),
                ):
                    plain, observed, _rec = _schedule_orders(factory, block)
                    assert [
                        str(i) for i in plain.block.instructions
                    ] == [str(i) for i in observed.block.instructions]

    def test_every_decision_has_a_known_reason(self):
        block = next(iter(next(iter(load_program("MDG")))))
        with obs.recording(decisions=True) as rec:
            BalancedScheduler().schedule_block(block)
        assert len(rec.decisions) > 0
        for entry in rec.decisions.entries:
            assert entry.reason.startswith(REASONS)
            chosen_nodes = [c.node for c in entry.candidates]
            assert entry.chosen in chosen_nodes

    def test_single_candidate_steps_say_so(self):
        block = next(iter(next(iter(load_program("MDG")))))
        with obs.recording(decisions=True) as rec:
            BalancedScheduler().schedule_block(block)
        for entry in rec.decisions.entries:
            if len(entry.candidates) == 1:
                assert entry.reason == "only-candidate"

    def test_metrics_recorded_without_decision_log(self):
        block = next(iter(next(iter(load_program("MDG")))))
        with obs.recording() as rec:  # decisions NOT requested
            BalancedScheduler().schedule_block(block)
        assert rec.decisions is None
        reasons = rec.metrics.series("sched.select_reason")
        assert reasons, "selection metrics must not depend on the log"
        sizes = rec.metrics.series("sched.ready_size")
        assert sizes


class TestDecisionLog:
    def _log(self, entries):
        log = DecisionLog()
        for entry in entries:
            log.record(entry)
        return log

    def _decision(self, block="b0", step=0, chosen=1, reason="priority"):
        return Decision(
            block=block,
            step=step,
            time=str(step),
            chosen=chosen,
            reason=reason,
            candidates=(
                Candidate(node=1, priority="3", text="load r1, a[0]"),
                Candidate(node=2, priority="2", text="add r3, r1, r2"),
            ),
        )

    def test_counts_by_reason(self):
        log = self._log(
            [
                self._decision(step=0, reason="priority"),
                self._decision(step=1, reason="priority"),
                self._decision(step=2, reason="only-candidate"),
            ]
        )
        assert log.counts_by_reason() == {"only-candidate": 1, "priority": 2}

    def test_blocks_in_first_appearance_order(self):
        log = self._log(
            [
                self._decision(block="b1", step=0),
                self._decision(block="b0", step=1),
                self._decision(block="b1", step=2),
            ]
        )
        assert log.blocks() == ["b1", "b0"]
        assert len(log.for_block("b1")) == 2

    def test_render_marks_the_winner(self):
        lines = self._log([self._decision()]).render()
        assert lines[0] == "== block b0 =="
        winner = [line for line in lines if line.lstrip().startswith("*")]
        assert len(winner) == 1
        assert "#1" in winner[0]

    def test_identical_logs_diff_empty(self):
        a = self._log([self._decision()])
        b = self._log([self._decision()])
        assert DecisionLog.diff(a, b) == []

    def test_differing_logs_produce_a_unified_diff(self):
        a = self._log([self._decision(chosen=1, reason="priority")])
        b = self._log([self._decision(chosen=2, reason="tie-break:x")])
        diff = DecisionLog.diff(a, b, "balanced", "traditional")
        assert diff[0] == "--- balanced"
        assert diff[1] == "+++ traditional"
        assert any(line.startswith("-step") for line in diff)
        assert any(line.startswith("+step") for line in diff)

    def test_real_policies_diff_on_a_suite_block(self):
        """The `explain` payload: balanced and traditional disagree
        somewhere on MDG (if they never did, the paper had no story)."""
        program = load_program("MDG")
        logs = {}
        for tag, policy in (
            ("balanced", BalancedScheduler()),
            ("traditional", TraditionalScheduler(2)),
        ):
            with obs.recording(decisions=True) as rec:
                for function in program:
                    for block in function:
                        policy.schedule_block(block)
            logs[tag] = rec.decisions
        assert DecisionLog.diff(logs["balanced"], logs["traditional"])
