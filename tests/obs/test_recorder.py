"""Tests for the span recorder and the module-global switch."""

import pickle

from repro.obs import recorder as obs


def _counting_clock(step=1000):
    state = {"t": 0}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


class TestDisabledMode:
    def test_disabled_by_default(self):
        assert obs.get() is None
        assert not obs.enabled()

    def test_span_is_the_shared_null_object(self):
        assert obs.span("anything", block="b0") is obs.NULL_SPAN
        # Reusable and nestable with no state.
        with obs.span("a"):
            with obs.span("b", x=1):
                pass

    def test_null_span_swallows_nothing(self):
        try:
            with obs.span("a"):
                raise ValueError("propagates")
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("exception must propagate")


class TestRecording:
    def test_spans_capture_path_depth_and_order(self):
        with obs.recording(clock=_counting_clock()) as rec:
            with rec.span("outer", block="b0"):
                with rec.span("inner", policy="balanced"):
                    pass
            with rec.span("after"):
                pass
        inner, outer, after = rec.spans
        assert inner.path == ("outer", "inner")
        assert outer.path == ("outer",)
        assert after.path == ("after",)
        assert (outer.index, inner.index, after.index) == (0, 1, 2)
        assert (outer.depth, inner.depth, after.depth) == (0, 1, 0)
        assert inner.args_dict == {"policy": "balanced"}
        # Pinned clock: durations are exact multiples of the step.
        assert outer.duration_ns == 3000
        assert inner.duration_ns == 1000

    def test_module_level_span_records_when_enabled(self):
        with obs.recording() as rec:
            with obs.span("phase", k="v"):
                pass
        assert [s.name for s in rec.spans] == ["phase"]
        assert rec.spans[0].args_dict == {"k": "v"}

    def test_context_merges_active_span_args_innermost_wins(self):
        with obs.recording() as rec:
            with rec.span("cell", block="outer", program="ADM"):
                with rec.span("sim", block="inner"):
                    assert rec.context() == {
                        "block": "inner",
                        "program": "ADM",
                    }
                assert rec.context() == {"block": "outer", "program": "ADM"}
            assert rec.context() == {}

    def test_recording_restores_previous_recorder(self):
        outer = obs.enable()
        try:
            with obs.recording() as inner:
                assert obs.get() is inner
            assert obs.get() is outer
        finally:
            obs.disable()
        assert obs.get() is None

    def test_decisions_off_unless_requested(self):
        with obs.recording() as rec:
            assert rec.decisions is None
        with obs.recording(decisions=True) as rec:
            assert rec.decisions is not None

    def test_span_events_pickle(self):
        # Spans cross no process boundary today, but events are frozen
        # value objects and should stay picklable.
        with obs.recording(clock=_counting_clock()) as rec:
            with rec.span("a", x=1):
                pass
        event = rec.spans[0]
        assert pickle.loads(pickle.dumps(event)) == event
