"""Tests for the metrics registry and the series-key codec."""

import pickle

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    series_key,
    split_series_key,
    summarize_delta,
)


class TestSeriesKey:
    def test_no_labels_is_the_bare_name(self):
        assert series_key("sim.cycles", {}) == "sim.cycles"
        assert split_series_key("sim.cycles") == ("sim.cycles", {})

    def test_labels_sorted_deterministically(self):
        a = series_key("x", {"b": 1, "a": 2})
        b = series_key("x", {"a": 2, "b": 1})
        assert a == b == "x{a=2,b=1}"

    @pytest.mark.parametrize(
        "labels",
        [
            {"block": "vdiff", "load": 3},
            {"system": "N(30,5) @ 30"},  # comma inside a value
            {"weird": "a=b,c\\d"},       # every syntax char at once
            {"empty": ""},
        ],
    )
    def test_round_trip(self, labels):
        key = series_key("sim.load_stall_cycles", labels)
        name, back = split_series_key(key)
        assert name == "sim.load_stall_cycles"
        assert back == {str(k): str(v) for k, v in labels.items()}

    def test_non_key_strings_pass_through(self):
        assert split_series_key("plain") == ("plain", {})
        assert split_series_key("trailing{") == ("trailing{", {})


class TestRegistry:
    def test_counters_accumulate(self):
        m = MetricsRegistry()
        m.inc("sched.steps", 2, block="b0")
        m.inc("sched.steps", 3, block="b0")
        m.inc("sched.steps", 1, block="b1")
        assert m.counters["sched.steps{block=b0}"] == 5
        assert m.counters["sched.steps{block=b1}"] == 1

    def test_gauges_last_write_wins(self):
        m = MetricsRegistry()
        m.set_gauge("sim.issue_width", 1, processor="UNLIMITED")
        m.set_gauge("sim.issue_width", 8, processor="UNLIMITED")
        assert m.gauges["sim.issue_width{processor=UNLIMITED}"] == 8

    def test_histograms_are_exact(self):
        m = MetricsRegistry()
        m.observe("stall", 5)
        m.observe("stall", 5)
        m.observe_many("stall", [2, 5, 9])
        hist = m.histograms["stall"]
        assert hist == {5: 3, 2: 1, 9: 1}
        assert MetricsRegistry.histogram_count(hist) == 5
        assert MetricsRegistry.histogram_total(hist) == 5 * 3 + 2 + 9

    def test_series_lists_every_label_set(self):
        m = MetricsRegistry()
        m.inc("x", 1, a="1")
        m.observe("x", 2, a="2")
        m.set_gauge("y", 3)
        found = m.series("x")
        assert [labels for _key, labels in found] == [{"a": "1"}, {"a": "2"}]
        assert m.series("missing") == []


class TestSnapshotDeltaMerge:
    def test_delta_contains_only_what_changed(self):
        m = MetricsRegistry()
        m.inc("a", 5)
        m.observe("h", 1)
        before = m.snapshot()
        m.inc("a", 2)
        m.inc("b", 1)
        m.observe("h", 1)
        m.observe("h", 4)
        m.set_gauge("g", 7)
        delta = MetricsRegistry.delta(before, m.snapshot())
        assert delta["counters"] == {"a": 2, "b": 1}
        assert delta["histograms"] == {"h": {1: 1, 4: 1}}
        assert delta["gauges"] == {"g": 7}

    def test_unchanged_snapshot_gives_empty_delta(self):
        m = MetricsRegistry()
        m.inc("a", 5)
        snap = m.snapshot()
        delta = MetricsRegistry.delta(snap, m.snapshot())
        assert delta == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_merge_is_addition(self):
        parent = MetricsRegistry()
        parent.inc("a", 1)
        parent.observe("h", 2)
        parent.merge({"counters": {"a": 4}, "histograms": {"h": {2: 1, 3: 2}}})
        assert parent.counters["a"] == 5
        assert parent.histograms["h"] == {2: 2, 3: 2}

    def test_delta_survives_pickling(self):
        # The worker -> parent pool boundary moves deltas by pickle.
        m = MetricsRegistry()
        before = m.snapshot()
        m.inc("a", 1, block="b0")
        m.observe("h", 9, load=3)
        delta = MetricsRegistry.delta(before, m.snapshot())
        assert pickle.loads(pickle.dumps(delta)) == delta


class TestSummarizeDelta:
    def test_collapses_labels_by_base_name(self):
        m = MetricsRegistry()
        before = m.snapshot()
        m.inc("sim.cycles", 10, block="b0")
        m.inc("sim.cycles", 20, block="b1")
        m.observe("sim.load_stall_cycles", 5, load=0)
        m.observe("sim.load_stall_cycles", 7, load=1)
        delta = MetricsRegistry.delta(before, m.snapshot())
        summary = summarize_delta(delta)
        assert summary["counters"] == {"sim.cycles": 30}
        assert summary["histograms"] == {
            "sim.load_stall_cycles": {"count": 2, "total": 12}
        }

    def test_empty_delta_summarises_to_empty_dict(self):
        assert summarize_delta(
            {"counters": {}, "gauges": {}, "histograms": {}}
        ) == {}
