"""Tests for request-scoped trace contexts and the trace store.

The wire-format half (``parse_traceparent``) follows the W3C Trace
Context rules the service relies on: malformed, all-zero and
reserved-version headers must fall back to a fresh context rather than
failing the request.  The store half is the bounded ring behind
``GET /debug/requests`` and ``GET /debug/trace/<id>``.
"""

import pytest

from repro.obs import requesttrace
from repro.obs.export import validate_chrome_trace
from repro.obs.requesttrace import (
    RequestTraceStore,
    TraceContext,
    fragment,
    new_context,
    parse_traceparent,
)

TRACE = "0af7651916cd43dd8448eb211c80319c"
SPAN = "b7ad6b7169203331"


class TestParseTraceparent:
    def test_valid_header_keeps_trace_and_reparents(self):
        ctx = parse_traceparent(f"00-{TRACE}-{SPAN}-01")
        assert ctx.trace_id == TRACE
        assert ctx.parent_id == SPAN
        assert ctx.span_id != SPAN, "the server mints its own span"
        assert len(ctx.span_id) == 16
        assert ctx.sampled

    def test_unsampled_flag(self):
        ctx = parse_traceparent(f"00-{TRACE}-{SPAN}-00")
        assert not ctx.sampled
        assert ctx.traceparent().endswith("-00")

    def test_future_version_is_accepted(self):
        assert parse_traceparent(f"cc-{TRACE}-{SPAN}-01") is not None

    def test_case_and_whitespace_are_normalised(self):
        ctx = parse_traceparent(f"  00-{TRACE.upper()}-{SPAN}-01 ")
        assert ctx is not None and ctx.trace_id == TRACE

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "not-a-traceparent",
            f"00-{TRACE}-{SPAN}",  # missing flags
            f"00-{TRACE[:-1]}-{SPAN}-01",  # short trace id
            f"00-{TRACE}xx-{SPAN}-01",  # non-hex
            f"ff-{TRACE}-{SPAN}-01",  # reserved version
            f"00-{'0' * 32}-{SPAN}-01",  # all-zero trace id
            f"00-{TRACE}-{'0' * 16}-01",  # all-zero span id
        ],
    )
    def test_invalid_headers_return_none(self, header):
        assert parse_traceparent(header) is None

    def test_roundtrip_through_the_header(self):
        ctx = new_context()
        again = parse_traceparent(ctx.traceparent())
        assert again.trace_id == ctx.trace_id
        assert again.parent_id == ctx.span_id


class TestRingBuffer:
    def _begin(self, store, trace_id, route="simulate"):
        ctx = TraceContext(trace_id=trace_id, span_id="ab" * 8)
        store.begin(ctx, route)
        return ctx

    def test_capacity_evicts_oldest(self):
        store = RequestTraceStore(capacity=2)
        for trace_id in ("aa" * 16, "bb" * 16, "cc" * 16):
            self._begin(store, trace_id)
        assert len(store) == 2
        assert store.trace("aa" * 16) is None, "oldest evicted"
        assert store.trace("cc" * 16) is not None

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            RequestTraceStore(capacity=0)

    def test_fragments_for_unknown_traces_are_dropped(self):
        store = RequestTraceStore(capacity=4)
        self._begin(store, "aa" * 16)
        store.add_fragments(
            [fragment("ee" * 16, "ghost", start_ns=0, dur_ns=1)]
        )
        (record,) = store.recent()
        assert record["spans"] == 0

    def test_recent_is_newest_first_without_fragments(self):
        store = RequestTraceStore(capacity=4)
        self._begin(store, "aa" * 16, route="compile")
        ctx = self._begin(store, "bb" * 16, route="simulate")
        store.add_fragments(
            [fragment(ctx.trace_id, "cell", start_ns=10, dur_ns=5)]
        )
        store.note_timing(ctx.trace_id, "pool", 1.25)
        store.note_timing(ctx.trace_id, "pool", 0.25)
        store.note_cell(ctx.trace_id, "k1")
        store.note_cell(ctx.trace_id, "k1")  # deduplicated
        store.mark(ctx.trace_id, "pool_downgrade", True)
        store.finish(ctx.trace_id, 200, 12.3456)
        newest, oldest = store.recent()
        assert [r["route"] for r in (newest, oldest)] == [
            "simulate", "compile",
        ]
        assert "fragments" not in newest
        assert newest["spans"] == 1
        assert newest["timings_ms"] == {"pool": 1.5}
        assert newest["cell_keys"] == ["k1"]
        assert newest["pool_downgrade"] is True
        assert newest["status"] == 200
        assert newest["duration_ms"] == 12.346


class TestTraceAssembly:
    def test_multi_process_chrome_trace(self):
        store = RequestTraceStore()
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        store.begin(ctx, "simulate")
        base = 1_000_000_000
        store.add_fragments([
            fragment(ctx.trace_id, "evaluate_cell ADM",
                     start_ns=base + 2000, dur_ns=1000, pid=4242),
            fragment(ctx.trace_id, "request /simulate",
                     start_ns=base, dur_ns=5000, pid=1111),
        ])
        trace = store.trace(ctx.trace_id)
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        names = {e["pid"]: e["args"]["name"] for e in meta}
        assert names[4242] == "balanced-sched pool worker"
        # Spans come back sorted by start time, on a shared timeline.
        assert [e["name"] for e in spans] == [
            "request /simulate", "evaluate_cell ADM",
        ]
        assert spans[1]["ts"] - spans[0]["ts"] == pytest.approx(2.0)
        assert trace["otherData"]["trace_id"] == ctx.trace_id

    def test_unknown_trace_is_none(self):
        assert RequestTraceStore().trace("ff" * 16) is None


class TestModuleSink:
    def test_install_uninstall_and_forwarding(self):
        store = RequestTraceStore()
        assert requesttrace.active() is None
        try:
            requesttrace.install(store)
            assert requesttrace.active() is store
            ctx = new_context()
            store.begin(ctx, "simulate")
            requesttrace.record_fragments(
                [fragment(ctx.trace_id, "cell", start_ns=0, dur_ns=1)]
            )
            (record,) = store.recent()
            assert record["spans"] == 1
            # Uninstalling some *other* store must not unhook this one.
            requesttrace.uninstall(RequestTraceStore())
            assert requesttrace.active() is store
        finally:
            requesttrace.uninstall(store)
        assert requesttrace.active() is None
        # With no sink, forwarding is a silent no-op.
        requesttrace.record_fragments(
            [fragment("aa" * 16, "cell", start_ns=0, dur_ns=1)]
        )
