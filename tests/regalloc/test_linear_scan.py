"""Tests for the linear-scan register allocator."""

import numpy as np
import pytest

from repro.core import BalancedScheduler
from repro.ir import (
    BasicBlock,
    MemRef,
    Opcode,
    PhysReg,
    RegClass,
    VirtualReg,
    alu,
    load,
    store,
    verify_block,
)
from repro.regalloc import LinearScanAllocator, RegisterFile, allocate_block
from repro.workloads import random_block

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)


def chain_block(n):
    """n loads, each immediately consumed: pressure stays tiny."""
    block = BasicBlock("chain")
    for k in range(n):
        reg = VirtualReg(2 * k, RegClass.FP)
        block.append(load(reg, A.displaced(k)))
        block.append(store(reg, A.displaced(100 + k)))
    return block


def wide_block(n):
    """n loads all live simultaneously: consumed pairwise at the end,
    so every loaded value stays live until the combining tree."""
    block = BasicBlock("wide")
    regs = [VirtualReg(k, RegClass.FP) for k in range(n)]
    for k, reg in enumerate(regs):
        block.append(load(reg, A.displaced(k)))
    next_index = n
    while len(regs) > 1:
        paired = []
        for a, b in zip(regs[0::2], regs[1::2]):
            acc = VirtualReg(next_index, RegClass.FP)
            next_index += 1
            block.append(alu(Opcode.FADD, acc, (a, b)))
            paired.append(acc)
        if len(regs) % 2:
            paired.append(regs[-1])
        regs = paired
    block.append(store(regs[0], A.displaced(99)))
    return block


class TestAllocation:
    def test_low_pressure_no_spills(self):
        result = allocate_block(chain_block(10), RegisterFile(n_int=4, n_fp=4))
        assert result.stats.total == 0
        assert not result.spilled

    def test_all_registers_physical_after_rewrite(self):
        result = allocate_block(chain_block(6))
        for inst in result.block:
            for reg in inst.all_regs():
                assert isinstance(reg, PhysReg)

    def test_high_pressure_spills(self):
        result = allocate_block(wide_block(8), RegisterFile(n_int=4, n_fp=4))
        assert result.stats.total > 0
        assert result.spilled

    def test_spill_instructions_tagged(self):
        result = allocate_block(wide_block(8), RegisterFile(n_int=4, n_fp=4))
        tagged = [i for i in result.block if i.is_spill]
        assert len(tagged) == result.stats.total

    def test_spill_count_store_plus_reloads(self):
        """Each spilled def stores once and reloads once per use."""
        result = allocate_block(wide_block(8), RegisterFile(n_int=4, n_fp=4))
        stores = sum(1 for i in result.block if i.is_spill and i.is_store)
        loads = sum(1 for i in result.block if i.is_spill and i.is_load)
        assert stores == result.stats.stores
        assert loads == result.stats.loads
        assert stores >= len(result.spilled) - 1  # live-ins reload only

    def test_register_classes_respected(self, saxpy_block):
        result = allocate_block(saxpy_block)
        for inst in result.block:
            if inst.opcode in (Opcode.FADD, Opcode.FMUL):
                for reg in inst.defs:
                    assert reg.rclass is RegClass.FP

    def test_no_conflicting_assignments(self, rng):
        """Two simultaneously-live values never share a register."""
        from repro.analysis import live_intervals

        for _ in range(10):
            block = random_block(rng, n_instructions=24)
            result = allocate_block(block, RegisterFile(n_int=6, n_fp=6))
            intervals = live_intervals(
                block.instructions, block.live_in, block.live_out
            )
            assigned = [
                (reg, phys)
                for reg, phys in result.assigned.items()
                if reg in intervals
            ]
            for index, (reg_a, phys_a) in enumerate(assigned):
                for reg_b, phys_b in assigned[index + 1:]:
                    if phys_a == phys_b:
                        assert not intervals[reg_a].overlaps(intervals[reg_b])

    def test_semantics_preserved_modulo_spills(self, saxpy_block):
        """Non-spill instructions appear in order with same opcodes."""
        result = allocate_block(saxpy_block)
        original_ops = [i.opcode for i in saxpy_block]
        surviving_ops = [i.opcode for i in result.block if not i.is_spill]
        assert surviving_ops == original_ops

    def test_rewritten_block_verifies(self, rng):
        for _ in range(10):
            block = random_block(rng, n_instructions=18)
            result = allocate_block(block, RegisterFile(n_int=5, n_fp=5))
            verify_block(result.block, strict_defs=False)


class TestEvictionHeuristic:
    def test_furthest_end_interval_spilled(self):
        """A long-lived value loses its register to short-lived ones."""
        block = BasicBlock("evict")
        long_lived = VirtualReg(0, RegClass.FP)
        block.append(load(long_lived, A))
        for k in range(4):
            reg = VirtualReg(1 + k, RegClass.FP)
            block.append(load(reg, A.displaced(1 + k)))
            block.append(store(reg, A.displaced(50 + k)))
        block.append(store(long_lived, A.displaced(99)))
        result = allocate_block(block, RegisterFile(n_int=2, n_fp=1))
        assert long_lived in result.spilled
