"""Tests for the Chaitin/Briggs graph-coloring allocator."""

import numpy as np
import pytest

from repro.analysis import live_intervals
from repro.analysis.equivalence import block_effect
from repro.core import BalancedScheduler, compile_block
from repro.ir import (
    BasicBlock,
    MemRef,
    Opcode,
    PhysReg,
    RegClass,
    VirtualReg,
    alu,
    load,
    store,
    verify_block,
)
from repro.regalloc import (
    ChaitinAllocator,
    LinearScanAllocator,
    RegisterFile,
    allocate_block_chaitin,
)
from repro.workloads import random_block

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)


def chain_block(n):
    block = BasicBlock("chain")
    for k in range(n):
        reg = VirtualReg(2 * k, RegClass.FP)
        block.append(load(reg, A.displaced(k)))
        block.append(store(reg, A.displaced(100 + k)))
    return block


class TestColoring:
    def test_low_pressure_no_spills(self):
        result = allocate_block_chaitin(
            chain_block(8), RegisterFile(n_int=4, n_fp=4)
        )
        assert result.stats.total == 0

    def test_all_physical_after_rewrite(self):
        result = allocate_block_chaitin(chain_block(5))
        for inst in result.block:
            for reg in inst.all_regs():
                assert isinstance(reg, PhysReg)

    def test_no_conflicting_colors(self, rng):
        """Overlapping intervals never share a register."""
        for _ in range(10):
            block = random_block(rng, n_instructions=22)
            result = allocate_block_chaitin(block, RegisterFile(n_int=6, n_fp=6))
            intervals = live_intervals(
                block.instructions, block.live_in, block.live_out
            )
            assigned = [
                (reg, phys) for reg, phys in result.assigned.items()
                if reg in intervals
            ]
            for index, (reg_a, phys_a) in enumerate(assigned):
                for reg_b, phys_b in assigned[index + 1:]:
                    if phys_a == phys_b:
                        assert not intervals[reg_a].overlaps(intervals[reg_b])

    def test_spills_under_pressure(self, rng):
        block = random_block(rng, n_instructions=30, store_probability=0.05)
        result = allocate_block_chaitin(block, RegisterFile(n_int=3, n_fp=3))
        assert result.stats.total > 0

    def test_deterministic(self, rng):
        block = random_block(rng, n_instructions=20)
        first = allocate_block_chaitin(block)
        second = allocate_block_chaitin(block)
        assert first.assigned == second.assigned
        assert first.spilled == second.spilled

    def test_rewritten_block_verifies(self, rng):
        for _ in range(8):
            block = random_block(rng, n_instructions=18)
            result = allocate_block_chaitin(block, RegisterFile(n_int=5, n_fp=5))
            verify_block(result.block, strict_defs=False)


class TestSemantics:
    def test_store_effects_preserved(self, rng):
        for _ in range(10):
            block = random_block(rng, n_instructions=18)
            result = allocate_block_chaitin(block, RegisterFile(n_int=5, n_fp=5))
            assert (
                block_effect(block).store_multiset()
                == block_effect(result.block).store_multiset()
            )

    def test_pipeline_accepts_chaitin(self, reduction_block):
        compiled = compile_block(
            reduction_block, BalancedScheduler(), allocator=ChaitinAllocator()
        )
        assert compiled.allocation is not None
        verify_block(compiled.final, strict_defs=False)


class TestSpillCharacter:
    def test_spill_choice_differs_from_linear_scan(self):
        """The allocators' characters differ: Chaitin spills by
        cost/degree, linear scan by furthest end.  On the deep-tree
        suite program they pick measurably different spill sets."""
        from repro.core import TraditionalScheduler, compile_program
        from repro.workloads import load_program

        program = load_program("BDNA")
        linear = compile_program(program, TraditionalScheduler(2))
        chaitin = compile_program(
            program, TraditionalScheduler(2), allocator=ChaitinAllocator()
        )
        assert linear.spill_percentage != chaitin.spill_percentage

    def test_cost_metric_prefers_cheap_long_ranges(self):
        """A long, rarely-used range must be chosen over a short,
        hot range when the graph is stuck."""
        block = BasicBlock("b")
        cold = VirtualReg(0, RegClass.FP)
        block.append(load(cold, A))
        hot_regs = []
        for k in range(3):
            reg = VirtualReg(1 + k, RegClass.FP)
            block.append(load(reg, A.displaced(1 + k)))
            hot_regs.append(reg)
        # Hot values used repeatedly while cold stays live.
        acc = hot_regs[0]
        for k in range(4):
            fresh = VirtualReg(10 + k, RegClass.FP)
            block.append(
                alu(Opcode.FADD, fresh, (acc, hot_regs[k % 3]))
            )
            acc = fresh
        block.append(store(acc, A.displaced(50)))
        block.append(store(cold, A.displaced(99)))
        result = allocate_block_chaitin(block, RegisterFile(n_int=2, n_fp=2))
        assert cold in result.spilled
