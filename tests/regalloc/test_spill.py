"""Tests for spill-code insertion and the FIFO spill pool."""

import pytest

from repro.analysis.alias import SPILL_REGION_PREFIX
from repro.ir import (
    BasicBlock,
    MemRef,
    Opcode,
    PhysReg,
    RegClass,
    VirtualReg,
    alu,
    load,
    store,
)
from repro.regalloc import RegisterFile, SpillRewriter, allocate_block
from repro.regalloc.spill import _Pool

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)


class TestPool:
    def test_fifo_rotates(self):
        regs = [PhysReg(10 + k, RegClass.FP, is_spill_pool=True) for k in range(3)]
        pool = _Pool(regs, fifo=True)
        taken = [pool.take(set()) for _ in range(6)]
        assert taken == regs + regs  # round robin

    def test_fixed_order_reuses_first(self):
        regs = [PhysReg(10 + k, RegClass.FP, is_spill_pool=True) for k in range(3)]
        pool = _Pool(regs, fifo=False)
        assert pool.take(set()) == regs[0]
        assert pool.take(set()) == regs[0]

    def test_banned_registers_skipped(self):
        regs = [PhysReg(10 + k, RegClass.FP, is_spill_pool=True) for k in range(2)]
        pool = _Pool(regs, fifo=False)
        assert pool.take({regs[0]}) == regs[1]

    def test_exhaustion_raises(self):
        regs = [PhysReg(10, RegClass.FP, is_spill_pool=True)]
        pool = _Pool(regs, fifo=True)
        with pytest.raises(RuntimeError, match="exhausted"):
            pool.take({regs[0]})

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            _Pool([], fifo=True)


class TestRewriter:
    def _spilled_block(self):
        """v0 spilled; v1 assigned."""
        block = BasicBlock("b")
        v0 = VirtualReg(0, RegClass.FP)
        v1 = VirtualReg(1, RegClass.FP)
        block.append(load(v0, A))
        block.append(alu(Opcode.FADD, v1, (v0, v0)))
        block.append(store(v1, A.displaced(1)))
        return block, v0, v1

    def test_store_after_def_and_reload_before_use(self):
        block, v0, v1 = self._spilled_block()
        rf = RegisterFile(n_int=2, n_fp=2)
        rewriter = SpillRewriter(
            rf, assigned={v1: PhysReg(0, RegClass.FP)}, spilled={v0}, live_in=set()
        )
        out = rewriter.rewrite(block)
        ops = [(i.opcode, i.tag) for i in out]
        # load A; spill store; spill reload; fadd; store
        assert ops[1] == (Opcode.STORE, "spill")
        assert ops[2] == (Opcode.LOAD, "spill")
        assert rewriter.stats.stores == 1
        assert rewriter.stats.loads == 1

    def test_spill_slots_in_private_region(self):
        block, v0, v1 = self._spilled_block()
        rf = RegisterFile(n_int=2, n_fp=2)
        rewriter = SpillRewriter(
            rf, assigned={v1: PhysReg(0, RegClass.FP)}, spilled={v0}, live_in=set()
        )
        out = rewriter.rewrite(block)
        for inst in out:
            if inst.is_spill:
                assert inst.mem.region.startswith(SPILL_REGION_PREFIX)

    def test_double_use_reloads_once(self):
        block, v0, v1 = self._spilled_block()
        rf = RegisterFile(n_int=2, n_fp=2)
        rewriter = SpillRewriter(
            rf, assigned={v1: PhysReg(0, RegClass.FP)}, spilled={v0}, live_in=set()
        )
        rewriter.rewrite(block)
        # v0 is used twice by the fadd but reloaded once for it.
        assert rewriter.stats.loads == 1

    def test_live_in_spill_reloads_without_store(self):
        reg = VirtualReg(0, RegClass.FP)
        block = BasicBlock("b", live_in=[reg])
        block.append(store(reg, A))
        rf = RegisterFile(n_int=2, n_fp=2)
        rewriter = SpillRewriter(rf, assigned={}, spilled={reg}, live_in={reg})
        out = rewriter.rewrite(block)
        assert rewriter.stats.loads == 1
        assert rewriter.stats.stores == 0
        assert out[0].is_spill and out[0].is_load
        assert "_home" in out[0].mem.region

    def test_distinct_slots_per_value(self):
        v0 = VirtualReg(0, RegClass.FP)
        v1 = VirtualReg(1, RegClass.FP)
        block = BasicBlock("b")
        block.append(load(v0, A))
        block.append(load(v1, A.displaced(1)))
        block.append(store(v0, A.displaced(2)))
        block.append(store(v1, A.displaced(3)))
        rf = RegisterFile(n_int=2, n_fp=2)
        rewriter = SpillRewriter(rf, assigned={}, spilled={v0, v1}, live_in=set())
        out = rewriter.rewrite(block)
        slots = {
            inst.mem.offset
            for inst in out
            if inst.is_spill and inst.is_store
        }
        assert len(slots) == 2


class TestPoolConfiguration:
    def test_enlarged_pool_is_base_plus_two(self):
        assert RegisterFile(base_pool=2, enlarged_pool=True).pool_size == 4
        assert RegisterFile(base_pool=2, enlarged_pool=False).pool_size == 2

    def test_pool_registers_flagged(self):
        rf = RegisterFile()
        for reg in rf.spill_pool(RegClass.FP):
            assert reg.is_spill_pool
        for reg in rf.allocatable(RegClass.FP):
            assert not reg.is_spill_pool

    def test_pool_disjoint_from_allocatable(self):
        rf = RegisterFile()
        pool = set(rf.spill_pool(RegClass.INT))
        allocatable = set(rf.allocatable(RegClass.INT))
        assert not pool & allocatable

    def test_fifo_spreads_pool_usage(self):
        """With FIFO, consecutive reloads use different pool registers."""
        block = BasicBlock("b")
        regs = [VirtualReg(k, RegClass.FP) for k in range(6)]
        for k, reg in enumerate(regs):
            block.append(load(reg, A.displaced(k)))
        acc = regs[0]
        for index, reg in enumerate(regs[1:]):
            fresh = VirtualReg(99 + index, RegClass.FP)
            block.append(alu(Opcode.FADD, fresh, (acc, reg)))
            acc = fresh
        block.append(store(acc, A.displaced(9)))

        fifo = allocate_block(block, RegisterFile(n_int=2, n_fp=2, fifo_pool=True))
        fixed = allocate_block(block, RegisterFile(n_int=2, n_fp=2, fifo_pool=False))

        def pool_sequence(result):
            return [
                inst.defs[0]
                for inst in result.block
                if inst.is_spill and inst.is_load
            ]

        fifo_seq = pool_sequence(fifo)
        fixed_seq = pool_sequence(fixed)
        assert len(set(fifo_seq)) > 1
        # Fixed-order reuses the earliest free register more often.
        assert len(set(fifo_seq)) >= len(set(fixed_seq))
