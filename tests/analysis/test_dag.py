"""Unit tests for the CodeDAG structure."""

from fractions import Fraction

import pytest

from repro.analysis import CodeDAG, DepKind
from repro.ir import MemRef, Opcode, VirtualReg, alu, load

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)


def three_node_dag():
    instrs = [
        load(VirtualReg(0), A),
        alu(Opcode.ADD, VirtualReg(1), (VirtualReg(0),)),
        alu(Opcode.ADD, VirtualReg(2), (VirtualReg(1),)),
    ]
    dag = CodeDAG(instrs)
    dag.add_edge(0, 1, DepKind.TRUE)
    dag.add_edge(1, 2, DepKind.TRUE)
    return dag


class TestStructure:
    def test_roots_and_leaves(self):
        dag = three_node_dag()
        assert dag.roots() == [0]
        assert dag.leaves() == [2]

    def test_successors_predecessors(self):
        dag = three_node_dag()
        assert dag.successors(0) == [1]
        assert dag.predecessors(2) == [1]
        assert dag.predecessors(0) == []

    def test_edge_count(self):
        assert three_node_dag().edge_count() == 2

    def test_backward_edge_rejected(self):
        dag = three_node_dag()
        with pytest.raises(ValueError, match="backwards"):
            dag.add_edge(2, 1, DepKind.TRUE)

    def test_self_edge_rejected(self):
        dag = three_node_dag()
        with pytest.raises(ValueError, match="self edge"):
            dag.add_edge(1, 1, DepKind.TRUE)

    def test_out_of_range_rejected(self):
        dag = three_node_dag()
        with pytest.raises(IndexError):
            dag.add_edge(0, 9, DepKind.TRUE)

    def test_true_edge_dominates(self):
        dag = three_node_dag()
        dag.add_edge(0, 2, DepKind.ANTI)
        dag.add_edge(0, 2, DepKind.TRUE)
        assert dag.edge_kind(0, 2) is DepKind.TRUE
        # A later weaker edge must not displace a TRUE edge.
        dag.add_edge(0, 2, DepKind.OUTPUT)
        assert dag.edge_kind(0, 2) is DepKind.TRUE

    def test_check_acyclic(self):
        three_node_dag().check_acyclic()


class TestLoadsAndWeights:
    def test_load_nodes(self):
        dag = three_node_dag()
        assert dag.load_nodes() == [0]
        assert dag.is_load(0) and not dag.is_load(1)

    def test_default_weights_are_latencies(self):
        dag = three_node_dag()
        assert dag.weights == [1, 1, 1]

    def test_set_load_weights(self):
        dag = three_node_dag()
        dag.set_load_weights({0: Fraction(7, 2)})
        assert dag.weights[0] == Fraction(7, 2)

    def test_set_load_weights_rejects_non_load(self):
        dag = three_node_dag()
        with pytest.raises(ValueError, match="not a load"):
            dag.set_load_weights({1: Fraction(2)})

    def test_edge_latency_true_vs_order(self):
        dag = three_node_dag()
        dag.add_edge(0, 2, DepKind.ANTI)
        dag.set_weight(0, Fraction(5))
        assert dag.edge_latency(0, 1) == Fraction(5)
        assert dag.edge_latency(0, 2) == 1  # ANTI orders only
        with pytest.raises(KeyError):
            dag.edge_latency(2, 0)


class TestDot:
    def test_to_dot_mentions_every_node(self):
        dag = three_node_dag()
        dot = dag.to_dot()
        for v in range(3):
            assert f"n{v}" in dot
        assert "digraph" in dot
