"""Tests for per-edge latency labels (paper footnote 1: i860-style
machines where latency differs among a node's successors)."""

from fractions import Fraction

import pytest

from repro.analysis.critical_path import priorities, priorities_edge_labelled
from repro.analysis.dag import CodeDAG, DepKind
from repro.core import schedule_dag
from repro.ir import MemRef, Opcode, VirtualReg, alu, load

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)


def fan_out_dag():
    """One load feeding two consumers (the i860 case: different
    latencies to different successors)."""
    producer_dst = VirtualReg(0)
    instrs = [
        load(producer_dst, A),
        alu(Opcode.ADD, VirtualReg(1), (producer_dst,)),
        alu(Opcode.ADD, VirtualReg(2), (producer_dst,)),
    ]
    dag = CodeDAG(instrs)
    dag.add_edge(0, 1, DepKind.TRUE)
    dag.add_edge(0, 2, DepKind.TRUE)
    return dag


class TestEdgeLabels:
    def test_default_latency_is_node_weight(self):
        dag = fan_out_dag()
        dag.set_weight(0, Fraction(4))
        assert dag.edge_latency(0, 1) == Fraction(4)
        assert dag.edge_latency(0, 2) == Fraction(4)

    def test_label_overrides_one_successor(self):
        dag = fan_out_dag()
        dag.set_weight(0, Fraction(4))
        dag.set_edge_latency(0, 2, 7)
        assert dag.edge_latency(0, 1) == Fraction(4)
        assert dag.edge_latency(0, 2) == 7

    def test_label_requires_existing_edge(self):
        dag = fan_out_dag()
        with pytest.raises(KeyError):
            dag.set_edge_latency(1, 2, 3)

    def test_scheduler_honours_labels(self):
        """A labelled 6-cycle edge stretches the schedule even though
        the producer's node weight is 1."""
        dag = fan_out_dag()
        dag.set_edge_latency(0, 2, 6)
        result = schedule_dag(dag)
        assert result.noop_span >= 4  # starved while edge latency elapses

    def test_labels_affect_edge_labelled_priorities_only(self):
        dag = fan_out_dag()
        dag.set_edge_latency(0, 2, 9)
        plain = priorities(dag)
        labelled = priorities_edge_labelled(dag)
        assert plain[0] == 2          # node-weight view unchanged
        assert labelled[0] == 10      # 9 (edge) + 1 (leaf)


class TestEdgeLabelledPriorities:
    def test_equals_plain_without_labels(self):
        dag = fan_out_dag()
        dag.set_weight(0, Fraction(3))
        assert priorities_edge_labelled(dag) == priorities(dag)

    def test_anti_edge_costs_one_slot(self):
        instrs = [
            load(VirtualReg(0), A),
            load(VirtualReg(0), A.displaced(1)),
        ]
        dag = CodeDAG(instrs)
        dag.add_edge(0, 1, DepKind.OUTPUT)
        dag.set_weight(0, Fraction(9))
        labelled = priorities_edge_labelled(dag)
        assert labelled[0] == 9  # max(own weight 9, 1 + 1)
