"""Unit tests for the alias models (Section 4.2 semantics)."""

from repro.analysis import AliasModel, may_alias, must_alias
from repro.analysis.alias import SPILL_REGION_PREFIX
from repro.ir import MemRef, VirtualReg

BASE = VirtualReg(0)
OTHER = VirtualReg(1)


def ref(region="A", base=BASE, offset=0, coeff=1):
    return MemRef(region=region, base=base, offset=offset, affine_coeff=coeff)


class TestSameRegion:
    def test_same_offset_aliases(self):
        assert may_alias(ref(offset=2), ref(offset=2), AliasModel.FORTRAN)
        assert may_alias(ref(offset=2), ref(offset=2), AliasModel.C_CONSERVATIVE)

    def test_distinct_constant_offsets_disambiguated(self):
        for model in AliasModel:
            assert not may_alias(ref(offset=1), ref(offset=2), model)

    def test_different_base_conservative(self):
        assert may_alias(ref(base=BASE), ref(base=OTHER))

    def test_different_coeff_conservative(self):
        assert may_alias(ref(coeff=1), ref(coeff=2))

    def test_unknown_coeff_conservative(self):
        assert may_alias(ref(coeff=None), ref(coeff=None))
        assert may_alias(ref(coeff=None, offset=0), ref(coeff=1, offset=5))


class TestCrossRegion:
    def test_fortran_regions_never_alias(self):
        assert not may_alias(ref("A"), ref("B"), AliasModel.FORTRAN)

    def test_c_regions_may_alias(self):
        assert may_alias(ref("A"), ref("B"), AliasModel.C_CONSERVATIVE)

    def test_spill_slots_never_alias_user_memory(self):
        spill = ref(SPILL_REGION_PREFIX, base=None, coeff=0)
        user = ref("A")
        assert not may_alias(spill, user, AliasModel.C_CONSERVATIVE)
        assert not may_alias(user, spill, AliasModel.C_CONSERVATIVE)

    def test_distinct_spill_slots_disambiguated(self):
        a = ref(SPILL_REGION_PREFIX, base=None, offset=0, coeff=0)
        b = ref(SPILL_REGION_PREFIX, base=None, offset=1, coeff=0)
        assert not may_alias(a, b)
        assert may_alias(a, a)


class TestMustAlias:
    def test_identical_references(self):
        assert must_alias(ref(offset=3), ref(offset=3))

    def test_differs_on_any_component(self):
        assert not must_alias(ref(offset=3), ref(offset=4))
        assert not must_alias(ref("A"), ref("B"))
        assert not must_alias(ref(base=BASE), ref(base=OTHER))

    def test_must_implies_may(self):
        a, b = ref(offset=5), ref(offset=5)
        assert must_alias(a, b)
        assert may_alias(a, b)
