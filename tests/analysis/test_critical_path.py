"""Unit tests for critical-path metrics and scheduler priorities."""

from fractions import Fraction

from repro.analysis import (
    build_dag,
    critical_path_length,
    height_in_nodes,
    parallelism_estimate,
    priorities,
)
from repro.analysis.dag import CodeDAG, DepKind
from repro.ir import Opcode, VirtualReg, alu


def chain(n, weights=None):
    instrs = [alu(Opcode.ADD, VirtualReg(100 + k), ()) for k in range(n)]
    dag = CodeDAG(instrs)
    for k in range(n - 1):
        dag.add_edge(k, k + 1, DepKind.TRUE)
    if weights:
        for k, w in enumerate(weights):
            dag.set_weight(k, w)
    return dag


class TestPriorities:
    def test_leaf_priority_is_weight(self):
        dag = chain(3)
        assert priorities(dag)[2] == 1

    def test_priority_accumulates_along_chain(self):
        dag = chain(3)
        assert priorities(dag) == [3, 2, 1]

    def test_weights_enter_priorities(self):
        dag = chain(3, weights=[Fraction(5), 1, 1])
        assert priorities(dag) == [Fraction(7), 2, 1]

    def test_figure1_priorities(self, figure1):
        """With balanced weight 3 on the loads, L0's priority is 7."""
        block, labels = figure1
        dag = build_dag(block)
        inverse = {v: k for k, v in labels.items()}
        dag.set_weight(inverse["L0"], Fraction(3))
        dag.set_weight(inverse["L1"], Fraction(3))
        prios = priorities(dag)
        assert prios[inverse["L0"]] == 7
        assert prios[inverse["L1"]] == 4
        assert prios[inverse["X4"]] == 1

    def test_max_over_successors_not_sum(self):
        dag = chain(2)
        # Add a second, shorter successor of node 0.
        from repro.ir import alu as mk

        instrs = list(dag.instructions) + [mk(Opcode.ADD, VirtualReg(200), ())]
        wide = CodeDAG(instrs)
        wide.add_edge(0, 1, DepKind.TRUE)
        wide.add_edge(0, 2, DepKind.TRUE)
        assert priorities(wide)[0] == 2  # 1 + max(1, 1), not 1 + 2


class TestCriticalPath:
    def test_chain_length(self):
        assert critical_path_length(chain(4)) == 4

    def test_empty(self):
        assert critical_path_length(CodeDAG([])) == 0

    def test_height_in_nodes(self):
        assert height_in_nodes(chain(4)) == 4
        assert height_in_nodes(CodeDAG([])) == 0


class TestParallelism:
    def test_chain_has_no_parallelism(self):
        assert parallelism_estimate(chain(5)) == 1.0

    def test_independent_nodes_fully_parallel(self):
        instrs = [alu(Opcode.ADD, VirtualReg(100 + k), ()) for k in range(6)]
        assert parallelism_estimate(CodeDAG(instrs)) == 6.0

    def test_empty(self):
        assert parallelism_estimate(CodeDAG([])) == 0.0
