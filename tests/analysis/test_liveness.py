"""Unit tests for live intervals and pressure."""

import pytest

from repro.analysis import live_intervals, max_pressure, pressure_profile
from repro.ir import (
    BasicBlock,
    MemRef,
    Opcode,
    RegClass,
    VirtualReg,
    alu,
    load,
    store,
)

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)


def block_with_chain():
    """v0 = load; v1 = add v0; store v1."""
    block = BasicBlock("b")
    block.append(load(VirtualReg(0, RegClass.FP), A))
    block.append(
        alu(Opcode.FADD, VirtualReg(1, RegClass.FP), (VirtualReg(0, RegClass.FP),))
    )
    block.append(store(VirtualReg(1, RegClass.FP), A.displaced(1)))
    return block


class TestLiveIntervals:
    def test_def_use_extents(self):
        intervals = live_intervals(block_with_chain().instructions)
        v0 = intervals[VirtualReg(0, RegClass.FP)]
        assert v0.start == 0
        assert v0.end == 2  # one past last use
        assert v0.uses == [1]

    def test_live_in_starts_before_block(self):
        reg = VirtualReg(5, RegClass.FP)
        block = BasicBlock("b", live_in=[reg])
        block.append(alu(Opcode.FADD, VirtualReg(6, RegClass.FP), (reg,)))
        intervals = live_intervals(block.instructions, live_in=[reg])
        assert intervals[reg].start == -1
        assert intervals[reg].end == 1

    def test_live_out_extends_past_block(self):
        block = block_with_chain()
        reg = VirtualReg(1, RegClass.FP)
        intervals = live_intervals(block.instructions, live_out=[reg])
        assert intervals[reg].live_out
        assert intervals[reg].end == len(block) + 1

    def test_use_without_def_treated_as_live_in(self):
        block = BasicBlock("b")
        block.append(
            alu(Opcode.FADD, VirtualReg(1, RegClass.FP), (VirtualReg(0, RegClass.FP),))
        )
        intervals = live_intervals(block.instructions)
        assert intervals[VirtualReg(0, RegClass.FP)].start == -1

    def test_overlap(self):
        intervals = live_intervals(block_with_chain().instructions)
        v0 = intervals[VirtualReg(0, RegClass.FP)]
        v1 = intervals[VirtualReg(1, RegClass.FP)]
        assert v0.overlaps(v1)

    def test_merged_interval_on_redefinition(self):
        block = BasicBlock("b")
        reg = VirtualReg(0, RegClass.FP)
        block.append(load(reg, A))
        block.append(store(reg, A.displaced(1)))
        block.append(load(reg, A.displaced(2)))
        block.append(store(reg, A.displaced(3)))
        intervals = live_intervals(block.instructions)
        assert intervals[reg].start == 0
        assert intervals[reg].end == 4


class TestPressure:
    def test_chain_pressure_is_one_ish(self):
        block = block_with_chain()
        assert max_pressure(block.instructions, RegClass.FP) <= 2

    def test_parallel_values_add_up(self):
        block = BasicBlock("b")
        regs = [VirtualReg(k, RegClass.FP) for k in range(5)]
        for k, reg in enumerate(regs):
            block.append(load(reg, A.displaced(k)))
        consumer = alu(Opcode.FADD, VirtualReg(9, RegClass.FP), tuple(regs))
        block.append(consumer)
        # Five loaded values plus the consumer's own result overlap at
        # the consuming instruction.
        assert max_pressure(block.instructions, RegClass.FP) == 6

    def test_class_filter(self):
        block = BasicBlock("b")
        block.append(load(VirtualReg(0, RegClass.INT), A))
        block.append(load(VirtualReg(1, RegClass.FP), A.displaced(1)))
        block.append(
            alu(
                Opcode.ADD,
                VirtualReg(2, RegClass.INT),
                (VirtualReg(0, RegClass.INT),),
            )
        )
        block.append(
            alu(
                Opcode.FADD,
                VirtualReg(3, RegClass.FP),
                (VirtualReg(1, RegClass.FP),),
            )
        )
        assert max_pressure(block.instructions, RegClass.INT) >= 1
        assert max_pressure(block.instructions, RegClass.FP) >= 1
        assert max_pressure(block.instructions) >= max_pressure(
            block.instructions, RegClass.FP
        )

    def test_profile_length(self):
        block = block_with_chain()
        profile = pressure_profile(block.instructions)
        assert len(profile) == len(block)

    def test_empty_block(self):
        assert max_pressure([]) == 0
