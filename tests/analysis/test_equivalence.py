"""Tests for the translation validator (symbolic block equivalence)."""

import numpy as np
import pytest

from repro.analysis import AliasModel, build_dag
from repro.analysis.equivalence import (
    EquivalenceError,
    assert_equivalent,
    block_effect,
    equivalent,
)
from repro.core import BalancedScheduler, TraditionalScheduler, compile_block
from repro.ir import (
    BasicBlock,
    MemRef,
    Opcode,
    RegClass,
    VirtualReg,
    alu,
    load,
    store,
)
from repro.regalloc import RegisterFile
from repro.workloads import random_block

A = MemRef(region="A", base=None, offset=0, affine_coeff=0)


def swap_block():
    """Two independent load/store pairs -- safely reorderable."""
    block = BasicBlock("b")
    v0 = VirtualReg(0, RegClass.FP)
    v1 = VirtualReg(1, RegClass.FP)
    block.append(load(v0, A))
    block.append(store(v0, A.displaced(10)))
    block.append(load(v1, A.displaced(1)))
    block.append(store(v1, A.displaced(11)))
    return block


class TestBlockEffect:
    def test_store_events_capture_value_flow(self):
        effect = block_effect(swap_block())
        assert len(effect.stores) == 2
        values = {e.value for e in effect.stores}
        assert len(values) == 2  # two distinct loaded values

    def test_live_out_values(self):
        block = swap_block()
        block.live_out.append(VirtualReg(1, RegClass.FP))
        effect = block_effect(block)
        assert len(effect.live_out) == 1
        assert effect.live_out[0][0] == "load"

    def test_load_version_counts_aliasing_stores(self):
        block = BasicBlock("b", live_in=[VirtualReg(9, RegClass.FP)])
        block.append(store(VirtualReg(9, RegClass.FP), A))
        block.append(load(VirtualReg(0, RegClass.FP), A))
        effect = block_effect(block)
        # The load's value is the post-store version.
        assert block_effect(block).stores[0].version == 0

    def test_spill_traffic_invisible(self):
        from repro.analysis.alias import SPILL_REGION_PREFIX

        block = swap_block()
        spill = MemRef(region=SPILL_REGION_PREFIX, base=None, offset=0, affine_coeff=0)
        with_spill = BasicBlock("b2")
        v0 = VirtualReg(0, RegClass.FP)
        v2 = VirtualReg(2, RegClass.FP)
        with_spill.append(load(v0, A))
        with_spill.append(store(v0, spill, tag="spill"))
        with_spill.append(load(v2, spill, tag="spill"))
        with_spill.append(store(v2, A.displaced(10)))
        v1 = VirtualReg(1, RegClass.FP)
        with_spill.append(load(v1, A.displaced(1)))
        with_spill.append(store(v1, A.displaced(11)))
        assert equivalent(swap_block(), with_spill)


class TestEquivalence:
    def test_identical_blocks(self):
        assert equivalent(swap_block(), swap_block())

    def test_reordered_independent_pairs(self):
        block = swap_block()
        reordered = block.replaced(
            [block[2], block[3], block[0], block[1]]
        )
        assert equivalent(block, reordered)

    def test_changed_store_value_detected(self):
        block = swap_block()
        broken = block.replaced(list(block.instructions))
        # Store the wrong register into the second slot.
        broken.instructions[3] = store(
            VirtualReg(0, RegClass.FP), A.displaced(11)
        )
        assert not equivalent(block, broken)

    def test_dropped_store_detected(self):
        block = swap_block()
        broken = block.replaced(block.instructions[:-1])
        assert not equivalent(block, broken)

    def test_changed_address_detected(self):
        block = swap_block()
        broken = block.replaced(list(block.instructions))
        broken.instructions[1] = store(VirtualReg(0, RegClass.FP), A.displaced(12))
        assert not equivalent(block, broken)

    def test_swapped_aliasing_stores_detected(self):
        """Two stores to the same location must keep their order."""
        base = BasicBlock("b", live_in=[VirtualReg(8, RegClass.FP),
                                        VirtualReg(9, RegClass.FP)])
        base.append(store(VirtualReg(8, RegClass.FP), A))
        base.append(store(VirtualReg(9, RegClass.FP), A))
        swapped = base.replaced([base[1], base[0]])
        assert not equivalent(base, swapped)

    def test_assert_form_raises_with_diagnosis(self):
        block = swap_block()
        broken = block.replaced(block.instructions[:-1])
        with pytest.raises(EquivalenceError, match="store effects differ"):
            assert_equivalent(block, broken)


class TestSchedulingPreservesSemantics:
    @pytest.mark.parametrize("policy_factory", [
        lambda: BalancedScheduler(),
        lambda: TraditionalScheduler(2),
        lambda: TraditionalScheduler(30),
    ])
    def test_suite_blocks(self, policy_factory):
        from repro.workloads import load_program

        for name in ("MDG", "TRACK", "FLO52Q"):
            for block in load_program(name).all_blocks():
                scheduled = policy_factory().schedule_block(block).block
                assert_equivalent(block, scheduled)

    def test_random_blocks_schedule_equivalence(self, rng):
        for _ in range(25):
            block = random_block(rng, n_instructions=24)
            scheduled = BalancedScheduler().schedule_block(block).block
            assert_equivalent(block, scheduled)

    def test_random_blocks_full_pipeline_equivalence(self, rng):
        """Scheduling + register allocation + rescheduling preserves
        the block's memory effect (generous file: live-ins stay in
        registers, so live-out symbols remain comparable)."""
        roomy = RegisterFile(n_int=24, n_fp=24)
        for _ in range(15):
            block = random_block(rng, n_instructions=20)
            compiled = compile_block(
                block, BalancedScheduler(), register_file=roomy
            )
            effect_before = block_effect(block)
            effect_after = block_effect(compiled.final)
            assert (
                effect_before.store_multiset() == effect_after.store_multiset()
            )

    def test_pipeline_with_spills_preserves_stores(self, reduction_block):
        tight = RegisterFile(n_int=6, n_fp=4)
        compiled = compile_block(
            reduction_block, TraditionalScheduler(30), register_file=tight
        )
        assert compiled.spill_count > 0
        before = block_effect(reduction_block).store_multiset()
        after = block_effect(compiled.final).store_multiset()
        assert before == after
