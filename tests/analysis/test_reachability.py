"""Unit and property tests for transitive closures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    bits,
    closures,
    independent_mask,
    predecessor_closure,
    reachable,
    successor_closure,
)
from repro.analysis.dag import CodeDAG, DepKind
from repro.workloads import random_dag


def chain_dag(n=4):
    import repro.ir as ir

    instrs = [
        ir.alu(ir.Opcode.ADD, ir.VirtualReg(100 + k), ()) for k in range(n)
    ]
    dag = CodeDAG(instrs)
    for k in range(n - 1):
        dag.add_edge(k, k + 1, DepKind.TRUE)
    return dag


class TestClosures:
    def test_chain_successor_closure(self):
        masks = successor_closure(chain_dag(4))
        assert masks[0] == 0b1110
        assert masks[3] == 0

    def test_chain_predecessor_closure(self):
        masks = predecessor_closure(chain_dag(4))
        assert masks[0] == 0
        assert masks[3] == 0b0111

    def test_closures_pair(self):
        dag = chain_dag(3)
        preds, succs = closures(dag)
        assert preds == predecessor_closure(dag)
        assert succs == successor_closure(dag)

    def test_reachable(self):
        dag = chain_dag(3)
        assert reachable(dag, 0, 2)
        assert reachable(dag, 1, 1)
        assert not reachable(dag, 2, 0)

    @given(st.integers(0, 4000))
    @settings(max_examples=60)
    def test_closures_agree_with_bfs(self, seed):
        rng = np.random.default_rng(seed)
        dag = random_dag(rng, n_nodes=10, edge_probability=0.3)
        succ_masks = successor_closure(dag)
        pred_masks = predecessor_closure(dag)
        for start in dag.nodes():
            seen = set()
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for nxt in dag.successors(node):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            assert succ_masks[start] == sum(1 << s for s in seen)
            for s in seen:
                assert pred_masks[s] >> start & 1


class TestIndependentMask:
    def test_excludes_self_and_relatives(self):
        dag = chain_dag(4)
        preds, succs = closures(dag)
        # Node 1's relatives are 0 (pred) and 2, 3 (succs): nothing left.
        assert independent_mask(dag, 1, preds, succs) == 0

    def test_independent_nodes_survive(self):
        dag = chain_dag(2)
        # Add two disconnected nodes.
        import repro.ir as ir

        instrs = list(dag.instructions) + [
            ir.alu(ir.Opcode.ADD, ir.VirtualReg(200), ()),
            ir.alu(ir.Opcode.ADD, ir.VirtualReg(201), ()),
        ]
        bigger = CodeDAG(instrs)
        bigger.add_edge(0, 1, DepKind.TRUE)
        preds, succs = closures(bigger)
        assert independent_mask(bigger, 0, preds, succs) == 0b1100


def test_bits_enumerates_ascending():
    assert list(bits(0b101001)) == [0, 3, 5]
    assert list(bits(0)) == []
