"""Unit and property tests for transitive closures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    bits,
    closures,
    independent_mask,
    predecessor_closure,
    reachable,
    successor_closure,
)
from repro.analysis.dag import CodeDAG, DepKind
from repro.workloads import random_dag


def chain_dag(n=4):
    import repro.ir as ir

    instrs = [
        ir.alu(ir.Opcode.ADD, ir.VirtualReg(100 + k), ()) for k in range(n)
    ]
    dag = CodeDAG(instrs)
    for k in range(n - 1):
        dag.add_edge(k, k + 1, DepKind.TRUE)
    return dag


class TestClosures:
    def test_chain_successor_closure(self):
        masks = successor_closure(chain_dag(4))
        assert masks[0] == 0b1110
        assert masks[3] == 0

    def test_chain_predecessor_closure(self):
        masks = predecessor_closure(chain_dag(4))
        assert masks[0] == 0
        assert masks[3] == 0b0111

    def test_closures_pair(self):
        dag = chain_dag(3)
        preds, succs = closures(dag)
        assert preds == predecessor_closure(dag)
        assert succs == successor_closure(dag)

    def test_reachable(self):
        dag = chain_dag(3)
        assert reachable(dag, 0, 2)
        assert reachable(dag, 1, 1)
        assert not reachable(dag, 2, 0)

    @given(st.integers(0, 4000))
    @settings(max_examples=60)
    def test_closures_agree_with_bfs(self, seed):
        rng = np.random.default_rng(seed)
        dag = random_dag(rng, n_nodes=10, edge_probability=0.3)
        succ_masks = successor_closure(dag)
        pred_masks = predecessor_closure(dag)
        for start in dag.nodes():
            seen = set()
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for nxt in dag.successors(node):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            assert succ_masks[start] == sum(1 << s for s in seen)
            for s in seen:
                assert pred_masks[s] >> start & 1


class TestIndependentMask:
    def test_excludes_self_and_relatives(self):
        dag = chain_dag(4)
        preds, succs = closures(dag)
        # Node 1's relatives are 0 (pred) and 2, 3 (succs): nothing left.
        assert independent_mask(dag, 1, preds, succs) == 0

    def test_independent_nodes_survive(self):
        dag = chain_dag(2)
        # Add two disconnected nodes.
        import repro.ir as ir

        instrs = list(dag.instructions) + [
            ir.alu(ir.Opcode.ADD, ir.VirtualReg(200), ()),
            ir.alu(ir.Opcode.ADD, ir.VirtualReg(201), ()),
        ]
        bigger = CodeDAG(instrs)
        bigger.add_edge(0, 1, DepKind.TRUE)
        preds, succs = closures(bigger)
        assert independent_mask(bigger, 0, preds, succs) == 0b1100


def test_bits_enumerates_ascending():
    assert list(bits(0b101001)) == [0, 3, 5]
    assert list(bits(0)) == []


class TestClosureMatrix:
    """The uint64 matrices agree row-for-row with the bigint closures."""

    def _assert_matches(self, dag):
        from repro.analysis.reachability import (
            closure_matrix,
            independent_matrix,
            mask_from_words,
            mask_member_array,
        )

        preds, succs = closures(dag)
        pred_m, succ_m = closure_matrix(dag)
        ind_m = independent_matrix(dag, pred_m, succ_m)
        for v in dag.nodes():
            assert mask_from_words(pred_m[v].tobytes()) == preds[v]
            assert mask_from_words(succ_m[v].tobytes()) == succs[v]
            expected = independent_mask(dag, v, preds, succs)
            assert mask_from_words(ind_m[v].tobytes()) == expected
            member = mask_member_array(expected, len(dag))
            assert sum(1 << int(i) for i in np.flatnonzero(member)) == expected

    def test_chain(self):
        self._assert_matches(chain_dag(5))

    def test_random_dags(self, rng):
        for _ in range(15):
            dag = random_dag(rng, n_nodes=30, edge_probability=0.15)
            self._assert_matches(dag)

    def test_wide_dag_crosses_word_boundary(self, rng):
        """More than 64 nodes forces multi-word rows and a clean tail."""
        dag = random_dag(rng, n_nodes=70, edge_probability=0.08)
        self._assert_matches(dag)

    def test_tail_bits_cleared_so_rows_compare_equal(self, rng):
        """Structurally equal G_ind sets must be byte-equal rows --
        the weights memoisation keys on ``row.tobytes()``."""
        from repro.analysis.reachability import (
            closure_matrix,
            independent_matrix,
        )

        dag = chain_dag(3)
        pred_m, succ_m = closure_matrix(dag)
        ind_m = independent_matrix(dag, pred_m, succ_m)
        # Every row of a pure chain is empty -- all three byte-equal.
        assert ind_m[0].tobytes() == ind_m[1].tobytes() == ind_m[2].tobytes()
