"""Unit tests for connected components and Chances computation."""

import numpy as np
import pytest

from repro.analysis import (
    build_dag,
    component_loads,
    connected_components,
    longest_load_path,
    longest_path_unionfind,
)
from repro.analysis.dag import CodeDAG, DepKind
from repro.ir import MemRef, Opcode, VirtualReg, alu, load
from repro.workloads import figure7_block, random_dag


def mixed_dag():
    """load -> op -> load chain plus an isolated op."""
    A = MemRef(region="A", base=None, offset=0, affine_coeff=0)
    instrs = [
        load(VirtualReg(0), A),
        alu(Opcode.ADD, VirtualReg(1), (VirtualReg(0),)),
        load(VirtualReg(2), A.displaced(1)),
        alu(Opcode.ADD, VirtualReg(3), ()),
    ]
    dag = CodeDAG(instrs)
    dag.add_edge(0, 1, DepKind.TRUE)
    dag.add_edge(1, 2, DepKind.TRUE)
    return dag


class TestConnectedComponents:
    def test_full_mask_single_component(self):
        dag = mixed_dag()
        masks = dag.undirected_neighbor_masks()
        comps = connected_components(dag, 0b1111, masks)
        assert sorted(comps) == [0b0111, 0b1000]

    def test_subset_mask_splits_chain(self):
        dag = mixed_dag()
        masks = dag.undirected_neighbor_masks()
        # Removing the middle op disconnects the two loads.
        comps = connected_components(dag, 0b0101, masks)
        assert sorted(comps) == [0b0001, 0b0100]

    def test_empty_mask(self):
        dag = mixed_dag()
        assert connected_components(dag, 0, dag.undirected_neighbor_masks()) == []


class TestLongestLoadPath:
    def test_chain_counts_loads_not_nodes(self):
        dag = mixed_dag()
        # Component {load, op, load}: path has 3 nodes but 2 loads.
        assert longest_load_path(dag, 0b0111) == 2

    def test_no_loads(self):
        dag = mixed_dag()
        assert longest_load_path(dag, 0b1000) == 0

    def test_single_load(self):
        dag = mixed_dag()
        assert longest_load_path(dag, 0b0001) == 1

    def test_figure7_second_component(self):
        """The paper: for i = X1 the loaded component has Chances = 3."""
        block, labels = figure7_block()
        dag = build_dag(block)
        inverse = {v: k for k, v in labels.items()}
        component = sum(
            1 << inverse[name] for name in ("L3", "L4", "L5", "L6")
        )
        assert longest_load_path(dag, component) == 3


class TestComponentLoads:
    def test_lists_only_loads(self):
        dag = mixed_dag()
        assert component_loads(dag, 0b0111) == [0, 2]
        assert component_loads(dag, 0b1000) == []


class TestUnionFindVariant:
    def test_matches_node_path_length(self):
        dag = mixed_dag()
        lengths = longest_path_unionfind(dag, 0b0111)
        # Longest path in *nodes* is 3 for every member of the chain.
        assert lengths == {0: 3, 1: 3, 2: 3}

    def test_diverges_from_load_count_on_mixed_paths(self):
        """The paper's O(n alpha n) scheme counts nodes; the definition
        counts loads.  They agree on all-load paths and diverge here."""
        dag = mixed_dag()
        assert longest_load_path(dag, 0b0111) == 2
        assert longest_path_unionfind(dag, 0b0111)[0] == 3

    def test_agrees_on_pure_load_components(self):
        block, labels = figure7_block()
        dag = build_dag(block)
        inverse = {v: k for k, v in labels.items()}
        component = sum(1 << inverse[n] for n in ("L3", "L4", "L5", "L6"))
        uf_lengths = longest_path_unionfind(dag, component)
        assert set(uf_lengths.values()) == {3}
        assert longest_load_path(dag, component) == 3

    def test_empty_mask(self):
        dag = mixed_dag()
        assert longest_path_unionfind(dag, 0) == {}


def test_random_components_partition_mask(rng):
    for _ in range(20):
        dag = random_dag(rng, n_nodes=14, edge_probability=0.25)
        masks = dag.undirected_neighbor_masks()
        full = (1 << len(dag)) - 1
        comps = connected_components(dag, full, masks)
        union = 0
        for comp in comps:
            assert union & comp == 0  # disjoint
            union |= comp
        assert union == full  # covering


class TestBatchedWeightedPaths:
    """The vectorised Chances DP agrees with the per-mask DP."""

    def _oracle_paths(self, dag, mask):
        """Per-node longest weighted path ending at the node (the
        scalar DP from longest_load_path, kept per node)."""
        from repro.analysis.reachability import bits

        best = {}
        for v in bits(mask):
            through = 0
            for p in dag.predecessors(v):
                if mask >> p & 1 and best.get(p, 0) > through:
                    through = best[p]
            best[v] = through + (1 if dag.is_load(v) else 0)
        return best

    def _assert_matches(self, dag, masks):
        from repro.analysis.components import batched_weighted_paths
        from repro.analysis.reachability import mask_member_array

        n = len(dag)
        member = np.stack(
            [mask_member_array(m, n) for m in masks], axis=1
        )
        weighted = [1 if dag.is_load(v) else 0 for v in range(n)]
        pred_lists = [list(dag._pred[v]) for v in range(n)]
        paths = batched_weighted_paths(pred_lists, member, weighted)
        for column, mask in enumerate(masks):
            oracle = self._oracle_paths(dag, mask)
            for v in range(n):
                assert paths[v, column] == oracle.get(v, 0)
            if mask:
                assert paths[:, column].max() == longest_load_path(dag, mask)

    def test_mixed_dag_submasks(self):
        dag = mixed_dag()
        self._assert_matches(dag, [0b1111, 0b0111, 0b0101, 0b1000, 0])

    def test_random_dags_random_masks(self, rng):
        for _ in range(10):
            dag = random_dag(rng, n_nodes=24, edge_probability=0.2)
            full = (1 << len(dag)) - 1
            masks = [full] + [
                int(rng.integers(0, full, endpoint=True)) for _ in range(6)
            ]
            self._assert_matches(dag, masks)

    def test_max_over_members_matches_chances(self, rng):
        """Column maxima are exactly Figure 6's Chances values."""
        dag = random_dag(rng, n_nodes=40, edge_probability=0.12)
        full = (1 << len(dag)) - 1
        masks = [int(rng.integers(1, full)) | 1 for _ in range(8)]
        self._assert_matches(dag, masks)
