"""Unit and property tests for the union-find structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import DisjointSets, LevelUnionFind, NamedDisjointSets


class TestDisjointSets:
    def test_initial_singletons(self):
        ds = DisjointSets(4)
        assert len({ds.find(i) for i in range(4)}) == 4

    def test_union_connects(self):
        ds = DisjointSets(4)
        ds.union(0, 1)
        ds.union(2, 3)
        assert ds.connected(0, 1)
        assert ds.connected(2, 3)
        assert not ds.connected(1, 2)

    def test_union_is_idempotent(self):
        ds = DisjointSets(3)
        root1 = ds.union(0, 1)
        root2 = ds.union(0, 1)
        assert root1 == root2

    def test_add(self):
        ds = DisjointSets(2)
        new = ds.add()
        assert new == 2
        assert not ds.connected(0, new)

    def test_groups(self):
        ds = DisjointSets(5)
        ds.union(0, 1)
        ds.union(1, 2)
        groups = sorted(sorted(g) for g in ds.groups().values())
        assert groups == [[0, 1, 2], [3], [4]]

    @given(
        st.lists(
            st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60
        )
    )
    @settings(max_examples=50)
    def test_matches_naive_partition(self, unions):
        """Union-find connectivity equals a naive partition refinement."""
        ds = DisjointSets(20)
        partition = [{i} for i in range(20)]
        index = list(range(20))
        for a, b in unions:
            ds.union(a, b)
            if index[a] != index[b]:
                ia, ib = index[a], index[b]
                partition[ia] |= partition[ib]
                for member in partition[ib]:
                    index[member] = ia
                partition[ib] = set()
        for a in range(20):
            for b in range(a + 1, 20):
                assert ds.connected(a, b) == (index[a] == index[b])


class TestLevelUnionFind:
    def test_tracks_min_max_levels(self):
        # Levels as in a 4-node chain: 3 -> 2 -> 1 -> 0.
        uf = LevelUnionFind([3, 2, 1, 0])
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.path_length(0) == 4

    def test_separate_components_independent(self):
        uf = LevelUnionFind([2, 1, 0, 1, 0])
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        assert uf.path_length(0) == 3
        assert uf.path_length(3) == 2

    def test_singleton_length_one(self):
        uf = LevelUnionFind([5])
        assert uf.path_length(0) == 1


class TestNamedDisjointSets:
    def test_arbitrary_keys(self):
        ds = NamedDisjointSets()
        ds.union("a", "b")
        ds.union("c", "d")
        assert ds.connected("a", "b")
        assert not ds.connected("a", "c")

    def test_unknown_keys_connected_iff_equal(self):
        ds = NamedDisjointSets()
        assert ds.connected("x", "x")
        assert not ds.connected("x", "y")

    def test_groups(self):
        ds = NamedDisjointSets()
        ds.union("a", "b")
        ds.union("b", "c")
        groups = ds.groups()
        assert sorted(map(sorted, groups)) == [["a", "b", "c"]]
