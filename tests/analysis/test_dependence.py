"""Unit tests for dependence-DAG construction."""

import numpy as np
import pytest

from repro.analysis import AliasModel, DepKind, build_dag, dependence_summary
from repro.ir import (
    BasicBlock,
    Instruction,
    MemRef,
    Opcode,
    VirtualReg,
    alu,
    load,
    store,
)
from repro.workloads import random_block


def ref(region="A", offset=0, base=None, coeff=0):
    return MemRef(region=region, base=base, offset=offset, affine_coeff=coeff)


class TestRegisterDependences:
    def test_true_dependence(self):
        block = BasicBlock("b")
        block.append(load(VirtualReg(0), ref()))
        block.append(alu(Opcode.ADD, VirtualReg(1), (VirtualReg(0),)))
        dag = build_dag(block)
        assert dag.edge_kind(0, 1) is DepKind.TRUE

    def test_true_dependence_through_mem_base(self):
        block = BasicBlock("b")
        block.append(load(VirtualReg(0), ref("P")))
        block.append(
            load(VirtualReg(1), MemRef("A", base=VirtualReg(0), offset=0))
        )
        dag = build_dag(block)
        assert dag.edge_kind(0, 1) is DepKind.TRUE

    def test_anti_dependence(self):
        block = BasicBlock("b", live_in=[VirtualReg(0)])
        block.append(alu(Opcode.ADD, VirtualReg(1), (VirtualReg(0),)))
        block.append(load(VirtualReg(0), ref()))  # redefines v0
        dag = build_dag(block)
        assert dag.edge_kind(0, 1) is DepKind.ANTI

    def test_output_dependence(self):
        block = BasicBlock("b")
        block.append(load(VirtualReg(0), ref(offset=0)))
        block.append(load(VirtualReg(0), ref(offset=1)))
        dag = build_dag(block)
        assert dag.edge_kind(0, 1) is DepKind.OUTPUT


class TestMemoryDependences:
    def test_store_load_same_location(self):
        block = BasicBlock("b", live_in=[VirtualReg(9)])
        block.append(store(VirtualReg(9), ref(offset=0)))
        block.append(load(VirtualReg(0), ref(offset=0)))
        dag = build_dag(block)
        assert dag.edge_kind(0, 1) is DepKind.MEM_TRUE

    def test_load_store_anti(self):
        block = BasicBlock("b", live_in=[VirtualReg(9)])
        block.append(load(VirtualReg(0), ref(offset=0)))
        block.append(store(VirtualReg(9), ref(offset=0)))
        dag = build_dag(block)
        assert dag.edge_kind(0, 1) is DepKind.MEM_ANTI

    def test_store_store_output(self):
        block = BasicBlock("b", live_in=[VirtualReg(9)])
        block.append(store(VirtualReg(9), ref(offset=0)))
        block.append(store(VirtualReg(9), ref(offset=0)))
        dag = build_dag(block)
        assert dag.edge_kind(0, 1) is DepKind.MEM_OUTPUT

    def test_loads_never_conflict(self):
        block = BasicBlock("b")
        block.append(load(VirtualReg(0), ref(offset=0)))
        block.append(load(VirtualReg(1), ref(offset=0)))
        dag = build_dag(block)
        assert dag.edge_kind(0, 1) is None

    def test_disambiguated_offsets_no_edge(self):
        block = BasicBlock("b", live_in=[VirtualReg(9)])
        block.append(store(VirtualReg(9), ref(offset=0)))
        block.append(load(VirtualReg(0), ref(offset=1)))
        dag = build_dag(block)
        assert dag.edge_kind(0, 1) is None

    def test_alias_model_changes_cross_region_edges(self):
        block = BasicBlock("b", live_in=[VirtualReg(9)])
        block.append(store(VirtualReg(9), ref("A", offset=0)))
        block.append(load(VirtualReg(0), ref("B", offset=0)))
        fortran = build_dag(block, alias_model=AliasModel.FORTRAN)
        c_model = build_dag(block, alias_model=AliasModel.C_CONSERVATIVE)
        assert fortran.edge_kind(0, 1) is None
        assert c_model.edge_kind(0, 1) is DepKind.MEM_TRUE

    def test_fortran_exposes_more_parallelism(self, rng):
        """The Section 4.2 transformation: FORTRAN DAGs have <= edges."""
        for _ in range(10):
            block = random_block(rng, n_instructions=20)
            fortran = build_dag(block, alias_model=AliasModel.FORTRAN)
            c_model = build_dag(block, alias_model=AliasModel.C_CONSERVATIVE)
            assert fortran.edge_count() <= c_model.edge_count()


class TestControl:
    def test_terminator_serialized(self):
        block = BasicBlock("b")
        block.append(load(VirtualReg(0), ref()))
        block.append(load(VirtualReg(1), ref("B")))
        block.append(Instruction(Opcode.RET))
        dag = build_dag(block)
        assert dag.edge_kind(0, 2) is not None
        assert dag.edge_kind(1, 2) is not None

    def test_terminator_serialization_optional(self):
        block = BasicBlock("b")
        block.append(load(VirtualReg(0), ref()))
        block.append(Instruction(Opcode.RET))
        dag = build_dag(block, serialize_terminator=False)
        assert dag.edge_kind(0, 1) is None


def test_dependence_summary_counts(saxpy_block):
    dag = build_dag(saxpy_block)
    summary = dependence_summary(dag)
    assert summary.get("true", 0) > 0
    assert sum(summary.values()) == dag.edge_count()


def test_edges_always_forward(rng):
    for _ in range(10):
        block = random_block(rng, n_instructions=25)
        build_dag(block).check_acyclic()
