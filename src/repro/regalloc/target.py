"""Machine register-file description.

The allocatable registers per class are the knob that produces the
register-pressure regimes of the paper's evaluation (their MIPS target
exposed ~20 allocatable integer and FP registers after reserving
ABI/assembler registers; we default to a comparable figure).

The *spill pool* models GCC's behaviour described in Section 4.1:
"when adding spill instructions, the GCC compiler always uses register
numbers selected from a small pool of spill registers."  The paper
improves scheduling by "increasing the size of GCC's spill register
pool by two and implementing a FIFO queue-like ordering of the
registers in the pool"; both the enlargement and the FIFO ordering are
configuration switches here so the ablation benchmark can measure
their effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..ir.operands import PhysReg, RegClass

#: GCC's historic spill pool size for the MIPS port (the baseline the
#: paper's "+2" improvement is measured against).
BASE_SPILL_POOL = 2


@dataclass(frozen=True)
class RegisterFile:
    """Allocatable registers and spill-pool configuration.

    ``n_int`` / ``n_fp`` count the registers available to the
    allocator for program values, *excluding* the spill pool.
    ``enlarged_pool`` applies the paper's +2 enlargement;
    ``fifo_pool`` selects FIFO (round-robin) pool reuse rather than
    always grabbing the lowest-numbered free pool register.
    """

    n_int: int = 10
    n_fp: int = 12
    base_pool: int = BASE_SPILL_POOL
    enlarged_pool: bool = True
    fifo_pool: bool = True

    @property
    def pool_size(self) -> int:
        return self.base_pool + (2 if self.enlarged_pool else 0)

    def allocatable(self, rclass: RegClass) -> List[PhysReg]:
        """The ordinary (non-pool) physical registers of a class."""
        count = self.n_int if rclass is RegClass.INT else self.n_fp
        return [PhysReg(i, rclass) for i in range(count)]

    def spill_pool(self, rclass: RegClass) -> List[PhysReg]:
        """The dedicated spill-pool registers of a class.

        Pool registers are numbered after the allocatable ones and
        flagged, so schedules and statistics can distinguish them.
        """
        count = self.n_int if rclass is RegClass.INT else self.n_fp
        return [
            PhysReg(count + i, rclass, is_spill_pool=True)
            for i in range(self.pool_size)
        ]

    def capacity(self, rclass: RegClass) -> int:
        return self.n_int if rclass is RegClass.INT else self.n_fp


#: The register file used by the paper-reproduction experiments.
DEFAULT_REGISTER_FILE = RegisterFile()

#: A deliberately tight register file (stress / QCD2-like pressure).
TIGHT_REGISTER_FILE = RegisterFile(n_int=7, n_fp=8)

#: GCC's unimproved configuration (ablation baseline): small pool,
#: lowest-numbered-first reuse.
UNIMPROVED_REGISTER_FILE = RegisterFile(enlarged_pool=False, fifo_pool=False)
