"""Linear-scan register allocation over the scheduled instruction order.

The paper's pipeline (Section 4.1) is: schedule, register-allocate
(which "may add spill code and/or copy instructions"), then schedule
again to "integrate these additional instructions into the final
schedule".  This module implements the middle stage for straight-line
blocks: a classic linear-scan over the live intervals of the scheduled
order, with furthest-end spilling, followed by spill-code insertion
through :class:`repro.regalloc.spill.SpillRewriter`.

The mechanism the paper's results hinge on falls out naturally: the
further a scheduler separates loads from their uses, the longer the
load live ranges, the higher the pressure on the register file, and
the more spill code appears (Tables 3-5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.liveness import LiveInterval, live_intervals
from ..ir.block import BasicBlock
from ..ir.operands import PhysReg, RegClass, Register, VirtualReg
from ..obs import recorder as _obs
from .spill import SpillRewriter, SpillStats
from .target import DEFAULT_REGISTER_FILE, RegisterFile


@dataclass
class AllocationResult:
    """Outcome of allocating one block."""

    block: BasicBlock
    assigned: Dict[VirtualReg, PhysReg]
    spilled: Set[VirtualReg]
    stats: SpillStats

    @property
    def spill_instruction_count(self) -> int:
        return self.stats.total


class LinearScanAllocator:
    """Block-local linear scan with furthest-end spill choice."""

    def __init__(self, register_file: RegisterFile = DEFAULT_REGISTER_FILE):
        self.register_file = register_file

    # ------------------------------------------------------------------
    def allocate(self, block: BasicBlock) -> AllocationResult:
        """Allocate ``block``; returns the rewritten physical-register
        block plus the assignment and spill statistics."""
        intervals = {
            reg: interval
            for reg, interval in live_intervals(
                block.instructions, block.live_in, block.live_out
            ).items()
            if isinstance(reg, VirtualReg)
        }

        assigned: Dict[VirtualReg, PhysReg] = {}
        spilled: Set[VirtualReg] = set()
        for rclass in RegClass:
            class_intervals = [
                iv for iv in intervals.values() if iv.reg.rclass is rclass
            ]
            self._scan_class(rclass, class_intervals, assigned, spilled)

        rewriter = SpillRewriter(
            self.register_file, assigned, spilled,
            list(block.live_in), list(block.live_out),
        )
        rewritten = rewriter.rewrite(block)

        rec = _obs.get()
        if rec is not None:
            label = str(rec.context().get("block", block.name))
            rec.metrics.inc("regalloc.blocks", 1)
            rec.metrics.inc(
                "regalloc.assigned_registers", len(assigned), block=label
            )
            rec.metrics.inc(
                "regalloc.spilled_registers", len(spilled), block=label
            )
            rec.metrics.inc(
                "regalloc.spill_instructions",
                rewriter.stats.total,
                block=label,
            )

        return AllocationResult(
            block=rewritten,
            assigned=assigned,
            spilled=spilled,
            stats=rewriter.stats,
        )

    # ------------------------------------------------------------------
    def _scan_class(
        self,
        rclass: RegClass,
        class_intervals: List[LiveInterval],
        assigned: Dict[VirtualReg, PhysReg],
        spilled: Set[VirtualReg],
    ) -> None:
        free: List[PhysReg] = list(reversed(self.register_file.allocatable(rclass)))
        #: (end, reg) pairs currently holding a physical register.
        active: List[LiveInterval] = []

        for interval in sorted(class_intervals, key=lambda iv: (iv.start, iv.end)):
            self._expire(active, interval.start, free, assigned)
            if free:
                assigned[interval.reg] = free.pop()
                active.append(interval)
                active.sort(key=lambda iv: iv.end)
                continue
            # No free register: evict the active interval that ends
            # last if it outlives the new one, else spill the new one.
            victim = active[-1] if active else None
            if victim is not None and victim.end > interval.end:
                reg = assigned.pop(victim.reg)  # type: ignore[arg-type]
                spilled.add(victim.reg)  # type: ignore[arg-type]
                active.pop()
                assigned[interval.reg] = reg
                active.append(interval)
                active.sort(key=lambda iv: iv.end)
            else:
                spilled.add(interval.reg)

    @staticmethod
    def _expire(
        active: List[LiveInterval],
        position: int,
        free: List[PhysReg],
        assigned: Dict[VirtualReg, PhysReg],
    ) -> None:
        while active and active[0].end <= position:
            expired = active.pop(0)
            free.append(assigned[expired.reg])  # type: ignore[index]


def allocate_block(
    block: BasicBlock, register_file: RegisterFile = DEFAULT_REGISTER_FILE
) -> AllocationResult:
    """One-shot convenience wrapper."""
    return LinearScanAllocator(register_file).allocate(block)
