"""Register allocation substrate (linear scan + FIFO spill pool)."""

from .chaitin import ChaitinAllocator, allocate_block_chaitin
from .linear_scan import AllocationResult, LinearScanAllocator, allocate_block
from .spill import (
    SPILL_HOME_REGION,
    SPILL_OUT_REGION,
    SpillRewriter,
    SpillStats,
)
from .target import (
    BASE_SPILL_POOL,
    DEFAULT_REGISTER_FILE,
    RegisterFile,
    TIGHT_REGISTER_FILE,
    UNIMPROVED_REGISTER_FILE,
)

__all__ = [
    "AllocationResult",
    "ChaitinAllocator",
    "allocate_block_chaitin",
    "LinearScanAllocator",
    "allocate_block",
    "SPILL_HOME_REGION",
    "SPILL_OUT_REGION",
    "SpillRewriter",
    "SpillStats",
    "BASE_SPILL_POOL",
    "DEFAULT_REGISTER_FILE",
    "RegisterFile",
    "TIGHT_REGISTER_FILE",
    "UNIMPROVED_REGISTER_FILE",
]
