"""Spill-code insertion with a FIFO spill-register pool.

Spilled values live in compiler-private stack slots (region
``__spill``); every use is preceded by a reload and every definition is
followed by a store, both tagged ``"spill"`` -- matching the paper's
accounting: "A spill instruction is defined to be any instruction that
is inserted by the register allocator" (Table 4).

Reloads and stores borrow registers from the dedicated spill pool.
With ``fifo_pool`` enabled the pool is cycled round-robin ("a FIFO
queue-like ordering of the registers in the pool", Section 4.1), which
spaces out reuse of any one pool register and so leaves the second
scheduling pass freedom to overlap spill code with other instructions.
Without it, the lowest-numbered pool register is always grabbed first
-- GCC's unimproved behaviour -- chaining every reload through the
same register.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set

from ..analysis.alias import SPILL_REGION_PREFIX
from ..ir.block import BasicBlock
from ..ir.instructions import Instruction, load as make_load, store as make_store
from ..ir.operands import MemRef, PhysReg, RegClass, Register, VirtualReg
from .target import RegisterFile

#: Home slots of spilled live-in values; indexed by live-in position.
#: Part of the allocator's public contract -- the translation validator
#: and the legality oracle resolve reloads from this region to the
#: corresponding live-in value.
SPILL_HOME_REGION = f"{SPILL_REGION_PREFIX}_home"

#: Home slots of spilled live-*out* values; indexed by live-out
#: position.  A spilled live-out keeps its virtual register as a
#: placeholder in ``live_out`` (no physical register ever holds it),
#: so the slot position is the only way a consumer -- or a validator
#: -- can locate the value at block exit.  Spilled live-ins keep their
#: live-in home slot (it is updated on every redefinition), so this
#: region is used only for block-defined live-outs.
SPILL_OUT_REGION = f"{SPILL_REGION_PREFIX}_out"


@dataclass
class SpillStats:
    """Counts of allocator-inserted instructions."""

    loads: int = 0
    stores: int = 0
    slots: int = 0

    @property
    def total(self) -> int:
        return self.loads + self.stores


class _Pool:
    """One class's spill-register pool with FIFO or fixed-order reuse."""

    def __init__(self, registers: Sequence[PhysReg], fifo: bool):
        if not registers:
            raise ValueError("spill pool must contain at least one register")
        self._fifo = fifo
        self._queue: Deque[PhysReg] = deque(registers)

    def take(self, banned: Set[PhysReg]) -> PhysReg:
        """Borrow a pool register not in ``banned`` (same instruction)."""
        if self._fifo:
            for _ in range(len(self._queue)):
                reg = self._queue.popleft()
                self._queue.append(reg)
                if reg not in banned:
                    return reg
        else:
            for reg in self._queue:
                if reg not in banned:
                    return reg
        raise RuntimeError(
            "spill pool exhausted within a single instruction; "
            "increase RegisterFile.base_pool"
        )


class SpillRewriter:
    """Rewrites a block, substituting assigned registers and inserting
    spill code for the rest."""

    def __init__(
        self,
        register_file: RegisterFile,
        assigned: Dict[VirtualReg, PhysReg],
        spilled: Set[VirtualReg],
        live_in: Sequence[Register],
        live_out: Sequence[Register] = (),
    ):
        self.register_file = register_file
        self.assigned = dict(assigned)
        self.spilled = set(spilled)
        self.live_in = set(live_in)
        self.live_out = set(live_out)
        #: Position of each live-in register: a spilled live-in reloads
        #: from home slot = its live-in index, which keeps its symbolic
        #: identity recoverable (see repro.analysis.equivalence).
        self.live_in_order: Dict[Register, int] = {
            reg: index for index, reg in enumerate(live_in)
        }
        #: Likewise for live-outs: a spilled live-out's value ends its
        #: life in the out-slot at its live-out index.
        self.live_out_order: Dict[Register, int] = {
            reg: index for index, reg in enumerate(live_out)
        }
        #: *Every* position each register occupies.  A register may
        #: appear at several live-in/live-out positions (two source
        #: scalars carried by one value, e.g. after ``s0 = s2``); a
        #: spilled definition must then land in the slot at each
        #: position, or the value is unrecoverable at the positions the
        #: single store skipped.
        self.live_in_positions: Dict[Register, List[int]] = {}
        for index, reg in enumerate(live_in):
            self.live_in_positions.setdefault(reg, []).append(index)
        self.live_out_positions: Dict[Register, List[int]] = {}
        for index, reg in enumerate(live_out):
            self.live_out_positions.setdefault(reg, []).append(index)
        self._slots: Dict[VirtualReg, int] = {}
        self._pools = {
            rclass: _Pool(register_file.spill_pool(rclass), register_file.fifo_pool)
            for rclass in RegClass
        }
        self.stats = SpillStats()

    # ------------------------------------------------------------------
    def _slot(self, reg: VirtualReg) -> MemRef:
        # Live-in values reload from their caller-visible home slot
        # (indexed by live-in position) and live-out values land in
        # their caller-visible out slot (indexed by live-out position);
        # block-local values use sequentially assigned private slots.
        # Distinct offsets in one region are provably disjoint under
        # the alias model.
        if reg in self.live_in:
            return MemRef(
                region=SPILL_HOME_REGION,
                base=None,
                offset=self.live_in_order[reg],
                affine_coeff=0,
            )
        if reg in self.live_out:
            return MemRef(
                region=SPILL_OUT_REGION,
                base=None,
                offset=self.live_out_order[reg],
                affine_coeff=0,
            )
        if reg not in self._slots:
            self._slots[reg] = len(self._slots)
            self.stats.slots += 1
        return MemRef(
            region=SPILL_REGION_PREFIX,
            base=None,
            offset=self._slots[reg],
            affine_coeff=0,
        )

    def _def_slots(self, reg: VirtualReg) -> List[MemRef]:
        """Every slot a spilled definition of ``reg`` must be stored to.

        Usually one slot (the reload slot :meth:`_slot` names), but a
        register occupying several live-in or live-out positions owns
        the slot at *each* of them -- a consumer (or validator) resolves
        the value by position, so every position's slot must hold it.
        """
        if reg in self.live_in:
            positions = self.live_in_positions[reg]
            region = SPILL_HOME_REGION
        elif reg in self.live_out:
            positions = self.live_out_positions[reg]
            region = SPILL_OUT_REGION
        else:
            return [self._slot(reg)]
        return [
            MemRef(region=region, base=None, offset=index, affine_coeff=0)
            for index in positions
        ]

    def _substitute(self, reg: Register, reloads: Dict[VirtualReg, PhysReg]) -> Register:
        if isinstance(reg, PhysReg):
            return reg
        if reg in self.assigned:
            return self.assigned[reg]
        if reg in reloads:
            return reloads[reg]
        raise KeyError(f"register {reg} neither assigned nor reloaded")

    # ------------------------------------------------------------------
    def rewrite(self, block: BasicBlock) -> BasicBlock:
        """Produce the physical-register block with spill code inserted."""
        out: List[Instruction] = []
        for inst in block.instructions:
            banned: Set[PhysReg] = set()
            reloads: Dict[VirtualReg, PhysReg] = {}

            # Reload every spilled register this instruction reads.
            for reg in inst.all_uses():
                if isinstance(reg, VirtualReg) and reg in self.spilled and reg not in reloads:
                    pool_reg = self._pools[reg.rclass].take(banned)
                    banned.add(pool_reg)
                    out.append(make_load(pool_reg, self._slot(reg), tag="spill"))
                    self.stats.loads += 1
                    reloads[reg] = pool_reg

            new_uses = tuple(self._substitute(r, reloads) for r in inst.uses)
            mem_base: Optional[Register] = None
            if inst.mem is not None and inst.mem.base is not None:
                mem_base = self._substitute(inst.mem.base, reloads)

            # Spilled definitions land in a pool register, then store.
            stores_after: List[Instruction] = []
            new_defs: List[Register] = []
            for reg in inst.defs:
                if isinstance(reg, VirtualReg) and reg in self.spilled:
                    pool_reg = self._pools[reg.rclass].take(banned)
                    banned.add(pool_reg)
                    new_defs.append(pool_reg)
                    for slot in self._def_slots(reg):
                        stores_after.append(
                            make_store(pool_reg, slot, tag="spill")
                        )
                        self.stats.stores += 1
                else:
                    new_defs.append(self._substitute(reg, reloads))

            out.append(inst.with_registers(new_defs, new_uses, mem_base))
            out.extend(stores_after)

        rewritten = block.replaced(out)
        # Preserve live-in/live-out *positions*: an assigned register
        # maps to its physical register; a spilled register keeps its
        # virtual register as a placeholder (its value sits in memory
        # -- the home/out spill slot at the same index -- not in a
        # register).  Positional stability is what lets the translation
        # validator identify these values across allocation.
        rewritten.live_in = [self.assigned.get(r, r) for r in block.live_in]
        rewritten.live_out = [self.assigned.get(r, r) for r in block.live_out]
        return rewritten
