"""Chaitin/Briggs-style graph-coloring register allocation.

The paper's numbers came from GCC's allocator, whose spill decisions
differ in character from a pressure-optimal linear scan: it colors an
interference graph and, when stuck, spills the node with the lowest
*spill cost per interference degree* -- which on compact schedules can
evict short, frequently-used ranges that linear scan would never
touch.  This allocator provides that second data point, and the
allocator ablation measures how much of Table 4's shape is an
allocator artefact (see EXPERIMENTS.md).

For straight-line code live ranges are intervals, so the interference
graph is an interval graph; we still run the general Chaitin/Briggs
machinery (simplify below K, optimistic spill candidates, coloring on
unwind) because its *spill choices* -- not its coloring power -- are
what we are modelling.  Spill code insertion reuses
:class:`repro.regalloc.spill.SpillRewriter`, so spill accounting is
identical across allocators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.liveness import LiveInterval, live_intervals
from ..ir.block import BasicBlock
from ..ir.operands import PhysReg, RegClass, VirtualReg
from .linear_scan import AllocationResult
from .spill import SpillRewriter
from .target import DEFAULT_REGISTER_FILE, RegisterFile


@dataclass
class _Node:
    """One virtual register in the interference graph."""

    reg: VirtualReg
    interval: LiveInterval
    neighbors: Set[VirtualReg]

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    def spill_cost(self) -> float:
        """Chaitin's classic metric: uses per unit of live range.

        A short range with many uses is expensive to spill (every use
        becomes a reload); a long, sparsely used range is cheap.
        """
        accesses = len(self.interval.uses) + 1  # +1 for the def/store
        length = max(self.interval.length, 1)
        return accesses / length


class ChaitinAllocator:
    """Graph-coloring allocation with lowest-cost/degree spilling."""

    def __init__(self, register_file: RegisterFile = DEFAULT_REGISTER_FILE):
        self.register_file = register_file

    # ------------------------------------------------------------------
    def allocate(self, block: BasicBlock) -> AllocationResult:
        intervals = {
            reg: interval
            for reg, interval in live_intervals(
                block.instructions, block.live_in, block.live_out
            ).items()
            if isinstance(reg, VirtualReg)
        }

        assigned: Dict[VirtualReg, PhysReg] = {}
        spilled: Set[VirtualReg] = set()
        for rclass in RegClass:
            class_nodes = self._build_graph(
                [iv for iv in intervals.values() if iv.reg.rclass is rclass]
            )
            colors = self.register_file.allocatable(rclass)
            self._color_class(class_nodes, colors, assigned, spilled)

        rewriter = SpillRewriter(
            self.register_file, assigned, spilled,
            list(block.live_in), list(block.live_out),
        )
        rewritten = rewriter.rewrite(block)
        return AllocationResult(
            block=rewritten,
            assigned=assigned,
            spilled=spilled,
            stats=rewriter.stats,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _build_graph(class_intervals: List[LiveInterval]) -> Dict[VirtualReg, _Node]:
        nodes: Dict[VirtualReg, _Node] = {
            iv.reg: _Node(reg=iv.reg, interval=iv, neighbors=set())  # type: ignore[arg-type]
            for iv in class_intervals
        }
        items = list(nodes.values())
        for index, a in enumerate(items):
            for b in items[index + 1:]:
                if a.interval.overlaps(b.interval):
                    a.neighbors.add(b.reg)
                    b.neighbors.add(a.reg)
        return nodes

    def _color_class(
        self,
        nodes: Dict[VirtualReg, _Node],
        colors: List[PhysReg],
        assigned: Dict[VirtualReg, PhysReg],
        spilled: Set[VirtualReg],
    ) -> None:
        k = len(colors)
        remaining: Dict[VirtualReg, Set[VirtualReg]] = {
            reg: set(node.neighbors) for reg, node in nodes.items()
        }
        stack: List[Tuple[VirtualReg, bool]] = []  # (reg, is_spill_candidate)

        while remaining:
            trivial = [
                reg for reg, neighbors in remaining.items()
                if len(neighbors) < k
            ]
            if trivial:
                # Deterministic order: lowest degree, then reg identity.
                reg = min(
                    trivial,
                    key=lambda r: (len(remaining[r]), r.rclass.value, r.index),
                )
                stack.append((reg, False))
            else:
                # Blocked: pick Chaitin's lowest cost/degree candidate
                # and push it optimistically (Briggs).
                reg = min(
                    remaining,
                    key=lambda r: (
                        nodes[r].spill_cost() / max(len(remaining[r]), 1),
                        r.rclass.value,
                        r.index,
                    ),
                )
                stack.append((reg, True))
            for neighbors in remaining.values():
                neighbors.discard(reg)
            del remaining[reg]

        # Unwind: color if possible; a stuck spill candidate spills.
        while stack:
            reg, _candidate = stack.pop()
            taken = {
                assigned[n]
                for n in nodes[reg].neighbors
                if n in assigned
            }
            available = [c for c in colors if c not in taken]
            if available:
                assigned[reg] = available[0]
            else:
                spilled.add(reg)


def allocate_block_chaitin(
    block: BasicBlock, register_file: RegisterFile = DEFAULT_REGISTER_FILE
) -> AllocationResult:
    """One-shot convenience wrapper."""
    return ChaitinAllocator(register_file).allocate(block)
