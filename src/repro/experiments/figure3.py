"""Figure 3: interlocks of the three schedules across memory latencies.

"The chart shows that, for latencies in the range of 2-4, the balanced
schedules are faster than both the greedy and lazy traditional
schedules illustrated in Figure 2.  Outside this range the balanced
and traditional schedules perform equivalently."

We sweep fixed latencies 1..6 over the three schedules of Figure 2 and
report interlock counts; the claim above is checked structurally by
:meth:`Figure3Result.matches_paper_claim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core.balanced import BalancedScheduler
from ..core.scheduler import Direction
from ..core.traditional import TraditionalScheduler
from ..machine.processor import UNLIMITED, ProcessorModel
from ..simulate.simulator import interlock_sweep
from ..workloads.paper_dags import figure1_block

DEFAULT_LATENCIES = tuple(range(1, 7))


@dataclass
class Figure3Result:
    """Interlock counts per schedule per latency."""

    latencies: List[int]
    interlocks: Dict[str, List[int]]  # schedule name -> counts

    def matches_paper_claim(self) -> bool:
        """Balanced strictly better in 2..4, never worse elsewhere."""
        greedy = self.interlocks["greedy_w5"]
        lazy = self.interlocks["lazy_w1"]
        balanced = self.interlocks["balanced"]
        for index, latency in enumerate(self.latencies):
            if 2 <= latency <= 4:
                if not (
                    balanced[index] < greedy[index]
                    and balanced[index] < lazy[index]
                ):
                    return False
            else:
                if balanced[index] > greedy[index] or balanced[index] > lazy[index]:
                    return False
        return True

    def format(self) -> str:
        lines = [
            "Figure 3: interlocks vs. actual memory latency (Figure 1 DAG)",
            "",
            "  latency : " + " ".join(f"{l:4d}" for l in self.latencies),
        ]
        for name, counts in self.interlocks.items():
            lines.append(
                f"  {name:9s}: " + " ".join(f"{c:4d}" for c in counts)
            )
        claim = "holds" if self.matches_paper_claim() else "VIOLATED"
        lines.append("")
        lines.append(
            f"  paper claim (balanced wins at 2-4, ties elsewhere): {claim}"
        )
        return "\n".join(lines)


def run_figure3(
    latencies: Sequence[int] = DEFAULT_LATENCIES,
    processor: ProcessorModel = UNLIMITED,
) -> Figure3Result:
    """Build the three Figure 2 schedules and sweep latencies."""
    block, _ = figure1_block()
    top_down = Direction.TOP_DOWN
    schedules = {
        "greedy_w5": TraditionalScheduler(5, direction=top_down)
        .schedule_block(block)
        .block,
        "lazy_w1": TraditionalScheduler(1, direction=top_down)
        .schedule_block(block)
        .block,
        "balanced": BalancedScheduler(direction=top_down)
        .schedule_block(block)
        .block,
    }
    interlocks = {
        name: interlock_sweep(scheduled, latencies, processor)
        for name, scheduled in schedules.items()
    }
    return Figure3Result(latencies=list(latencies), interlocks=interlocks)
