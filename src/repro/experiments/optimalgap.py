"""Optimality-gap report: how far from optimal are the list schedulers?

For every block of the paper suite, the branch-and-bound backend
(:mod:`repro.core.optimal`) computes the exact minimum completion time
under the paper's two fixed-latency memory models -- *optimistic* (all
loads hit, W=2) and *pessimistic* (all loads miss, W=5), the endpoints
of the canonical L80(2,5) cache -- and the report compares the
balanced and traditional list schedules against that ground truth.
A second section sweeps an ε-constraint on the peak live-register
count (pessimistic model) and prints each block's latency-vs-pressure
Pareto front, quantifying what the schedulers' extra parallelism costs
in registers.

Every optimal schedule is re-validated by the independent legality
oracle (:mod:`repro.verify.oracle`); the report counts violations (the
CI smoke gate requires zero).  All numbers are deterministic: the
search budget is an expansion count, not wall-clock, so the rendered
report is byte-stable across machines and committed under
``results/optimal_gap.txt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.dependence import build_dag
from ..core.balanced import BalancedScheduler
from ..core.optimal import (
    DEFAULT_NODE_BUDGET,
    OptimalScheduler,
    max_live_registers,
    optimize_order,
    schedule_cost,
)
from ..core.traditional import TraditionalScheduler
from ..verify.oracle import check_schedule
from ..workloads.perfect import load_program, program_names

#: The two fixed-latency models: the endpoints of the paper's L80(2,5)
#: cache (hit time and miss time).
MODELS: Tuple[Tuple[str, int], ...] = (
    ("optimistic", 2),
    ("pessimistic", 5),
)

#: Blocks at or below this size count toward the certified-coverage
#: target (the suite has no larger blocks today; the guard matters for
#: future workloads).
CERTIFIED_SIZE_LIMIT = 64


@dataclass(frozen=True)
class GapRow:
    """One (block, model) comparison against the exact optimum."""

    program: str
    block: str
    instructions: int
    model: str
    load_latency: int
    optimal_cost: int
    lower_bound: int
    certified: bool
    expanded: int
    balanced_cost: int
    traditional_cost: int
    oracle_violations: int

    @staticmethod
    def _gap_pct(cost: int, optimal: int) -> float:
        if optimal <= 0:
            return 0.0
        return (cost / optimal - 1.0) * 100.0

    @property
    def balanced_gap_pct(self) -> float:
        return self._gap_pct(self.balanced_cost, self.optimal_cost)

    @property
    def traditional_gap_pct(self) -> float:
        return self._gap_pct(self.traditional_cost, self.optimal_cost)


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated (peak live registers, completion cycles) pair."""

    max_live: int
    cost: int
    certified: bool


@dataclass(frozen=True)
class ParetoFront:
    """ε-constraint sweep for one block (pessimistic model)."""

    program: str
    block: str
    instructions: int
    load_latency: int
    points: Tuple[ParetoPoint, ...]


@dataclass
class OptimalGapReport:
    """All gap rows plus (optionally) the per-block Pareto fronts."""

    rows: List[GapRow]
    fronts: List[ParetoFront] = field(default_factory=list)
    node_budget: int = DEFAULT_NODE_BUDGET

    # ------------------------------------------------------------------
    def certified_fraction(self, size_limit: int = CERTIFIED_SIZE_LIMIT) -> float:
        eligible = [r for r in self.rows if r.instructions <= size_limit]
        if not eligible:
            return 1.0
        return sum(r.certified for r in eligible) / len(eligible)

    @property
    def oracle_violations(self) -> int:
        return sum(r.oracle_violations for r in self.rows)

    # ------------------------------------------------------------------
    def format(self) -> str:
        lines = [
            "Optimal-schedule report: per-block optimality gap "
            "(single-issue, UNLIMITED)",
            f"  branch-and-bound budget: {self.node_budget} expansions/block",
            "",
        ]
        for model, latency in MODELS:
            model_rows = [r for r in self.rows if r.model == model]
            if not model_rows:
                continue
            lines.append(
                f"  model {model} (every load takes W={latency} cycles):"
            )
            header = (
                f"  {'program':8s}{'block':>10s}{'n':>5s}{'optimal':>9s}"
                f"{'status':>11s}{'balanced':>10s}{'gap%':>7s}"
                f"{'trad':>7s}{'gap%':>7s}"
            )
            lines.append(header)
            lines.append("  " + "-" * (len(header) - 2))
            for r in model_rows:
                status = (
                    "certified" if r.certified else f"lb={r.lower_bound}"
                )
                lines.append(
                    f"  {r.program:8s}{r.block:>10s}{r.instructions:>5d}"
                    f"{r.optimal_cost:>9d}{status:>11s}"
                    f"{r.balanced_cost:>10d}{r.balanced_gap_pct:>7.1f}"
                    f"{r.traditional_cost:>7d}{r.traditional_gap_pct:>7.1f}"
                )
            n = len(model_rows)
            certified = sum(r.certified for r in model_rows)
            mean_bal = sum(r.balanced_gap_pct for r in model_rows) / n
            mean_trad = sum(r.traditional_gap_pct for r in model_rows) / n
            lines.append(
                f"  certified {certified}/{n} blocks"
                f"  mean gap: balanced {mean_bal:.1f}%"
                f"  traditional {mean_trad:.1f}%"
            )
            lines.append("")
        lines.append(
            f"  oracle violations across all optimal schedules: "
            f"{self.oracle_violations}"
        )
        if self.fronts:
            lines.append("")
            lines.append(
                "  Pareto fronts, pessimistic model: "
                "(peak live registers -> optimal cycles)"
            )
            for front in self.fronts:
                points = "  ".join(
                    f"({p.max_live} -> {p.cost}{'' if p.certified else '*'})"
                    for p in front.points
                )
                label = f"{front.program}/{front.block}"
                lines.append(f"    {label:18s} {points}")
            if any(not p.certified for f in self.fronts for p in f.points):
                lines.append("    (* = best-effort, budget exhausted)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _pareto_front(
    dag, block, load_latency: int, node_budget: int
) -> Tuple[ParetoPoint, ...]:
    """ε-constraint sweep: solve unconstrained, then repeatedly demand
    one register less than the last schedule actually used, until no
    schedule fits.  Each solve minimises cycles under the cap, so the
    collected (pressure, cycles) pairs trace the exact trade-off."""
    points: List[ParetoPoint] = []
    cap: Optional[int] = None
    while True:
        search = optimize_order(
            dag,
            load_latency,
            max_live=cap,
            live_in=block.live_in,
            live_out=block.live_out,
            node_budget=node_budget,
        )
        if not search.feasible or not search.order:
            break
        achieved = max_live_registers(
            dag, search.order, block.live_in, block.live_out
        )
        points.append(ParetoPoint(achieved, search.cost, search.certified))
        cap = achieved - 1
        if cap < 0:
            break
    # Drop dominated entries (a budget-limited solve can return a
    # schedule no better than a lower-pressure neighbour).
    front: List[ParetoPoint] = []
    for p in points:
        if front and p.cost <= front[-1].cost:
            front.pop()
        front.append(p)
    return tuple(front)


def run_optimal_gap(
    programs: Optional[Sequence[str]] = None,
    node_budget: int = DEFAULT_NODE_BUDGET,
    pareto: bool = True,
) -> OptimalGapReport:
    """Compute the optimality-gap report over the paper suite.

    ``programs`` restricts to a subset (CI smoke uses one program);
    ``node_budget`` is the per-solve expansion budget; ``pareto=False``
    skips the ε-constraint sweeps (they dominate the runtime).
    """
    names = list(programs) if programs is not None else program_names()
    rows: List[GapRow] = []
    fronts: List[ParetoFront] = []
    for name in names:
        program = load_program(name)
        for block in program.all_blocks():
            if not block.instructions:
                continue
            dag = build_dag(block)
            balanced_order = BalancedScheduler().schedule_dag(dag, block).order
            for model, latency in MODELS:
                traditional_order = TraditionalScheduler(latency).schedule_dag(
                    dag, block
                ).order
                policy = OptimalScheduler(latency, node_budget=node_budget)
                result = policy.schedule_dag(dag, block)
                violations = check_schedule(block, result.block)
                rows.append(
                    GapRow(
                        program=name,
                        block=block.name,
                        instructions=len(block.instructions),
                        model=model,
                        load_latency=latency,
                        optimal_cost=result.cost,
                        lower_bound=result.lower_bound,
                        certified=result.certified,
                        expanded=result.expanded,
                        balanced_cost=schedule_cost(
                            dag, balanced_order, latency
                        ),
                        traditional_cost=schedule_cost(
                            dag, traditional_order, latency
                        ),
                        oracle_violations=len(violations),
                    )
                )
            if pareto:
                _, pess_latency = MODELS[-1]
                fronts.append(
                    ParetoFront(
                        program=name,
                        block=block.name,
                        instructions=len(block.instructions),
                        load_latency=pess_latency,
                        points=_pareto_front(
                            dag, block, pess_latency, node_budget
                        ),
                    )
                )
    # Model-major presentation: all optimistic rows, then pessimistic.
    rows.sort(key=lambda r: ([m for m, _w in MODELS].index(r.model),))
    return OptimalGapReport(rows=rows, fronts=fronts, node_budget=node_budget)
