"""Figures 1/2 and 4/5: the worked example schedules.

Reproduces, exactly, the schedules the paper prints:

* Figure 2a -- traditional, W=5 ("greedy"): ``L0 X0 X1 X2 X3 L1 X4``
* Figure 2b -- traditional, W=1 ("lazy"):   ``L0 L1 X0 X1 X2 X3 X4``
* Figure 2c -- balanced (weights = 3):      ``L0 X0 X1 L1 X2 X3 X4``
* Figure 5  -- balanced on the parallel-loads DAG (weights = 6):
  ``L0 L1 X0 X1 X2 X3 X4``

The illustrated schedules are what a forward (top-down) scheduler
emits, so this experiment runs the shared list scheduler in its
top-down direction (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List

from ..analysis.dependence import build_dag
from ..core.balanced import BalancedScheduler
from ..core.scheduler import Direction
from ..core.traditional import TraditionalScheduler
from ..core.weights import balanced_weights
from ..workloads.paper_dags import figure1_block, figure4_block, label_order

#: The schedules as printed in the paper.
PAPER_SCHEDULES: Dict[str, List[str]] = {
    "figure2a_greedy_w5": ["L0", "X0", "X1", "X2", "X3", "L1", "X4"],
    "figure2b_lazy_w1": ["L0", "L1", "X0", "X1", "X2", "X3", "X4"],
    "figure2c_balanced": ["L0", "X0", "X1", "L1", "X2", "X3", "X4"],
    "figure5_balanced": ["L0", "L1", "X0", "X1", "X2", "X3", "X4"],
}

#: The load weights the paper derives for the two example DAGs.
PAPER_WEIGHTS: Dict[str, Fraction] = {
    "figure1": Fraction(3),
    "figure4": Fraction(6),
}


@dataclass
class Figure2Result:
    """All four worked schedules plus the derived load weights."""

    schedules: Dict[str, List[str]]
    weights: Dict[str, Dict[str, Fraction]]

    def matches_paper(self) -> bool:
        """True when every schedule equals the printed one."""
        return all(
            self.schedules[name] == expected
            for name, expected in PAPER_SCHEDULES.items()
        )

    def format(self) -> str:
        lines = ["Figures 2 and 5: worked example schedules", ""]
        for name, expected in PAPER_SCHEDULES.items():
            got = self.schedules[name]
            status = "match" if got == expected else f"MISMATCH (paper: {expected})"
            lines.append(f"  {name:24s} {' '.join(got):30s} [{status}]")
        lines.append("")
        for figure, per_load in self.weights.items():
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(per_load.items()))
            lines.append(f"  {figure} balanced weights: {rendered}")
        return "\n".join(lines)


def run_figure2() -> Figure2Result:
    """Generate the four schedules and both weight sets."""
    block1, labels1 = figure1_block()
    block4, labels4 = figure4_block()
    top_down = Direction.TOP_DOWN

    schedules = {
        "figure2a_greedy_w5": label_order(
            labels1,
            TraditionalScheduler(5, direction=top_down).schedule_block(block1).order,
        ),
        "figure2b_lazy_w1": label_order(
            labels1,
            TraditionalScheduler(1, direction=top_down).schedule_block(block1).order,
        ),
        "figure2c_balanced": label_order(
            labels1,
            BalancedScheduler(direction=top_down).schedule_block(block1).order,
        ),
        "figure5_balanced": label_order(
            labels4,
            BalancedScheduler(direction=top_down).schedule_block(block4).order,
        ),
    }

    weights = {}
    for figure, (block, labels) in (
        ("figure1", (block1, labels1)),
        ("figure4", (block4, labels4)),
    ):
        per_load = balanced_weights(build_dag(block))
        weights[figure] = {labels[node]: w for node, w in per_load.items()}

    return Figure2Result(schedules=schedules, weights=weights)
