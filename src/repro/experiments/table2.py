"""Table 2: percent improvement of balanced scheduling, UNLIMITED model.

17 system rows (cache configurations at both hit-time and effective
optimistic latencies, seven network configurations at their means, the
mixed model at both) x the eight Perfect Club stand-ins, plus the row
mean -- exactly the layout of the paper's Table 2.

Shape targets (checked by :meth:`Table2Result.shape_report` and the
test suite):

* positive mean improvement on every row except N(30,5);
* improvement grows with latency *uncertainty*: lower hit rate, larger
  miss penalty, larger sigma;
* the mixed model at optimistic latency 2 shows the largest gains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..machine.config import SystemRow, paper_system_rows
from ..machine.processor import ProcessorModel, UNLIMITED
from ..simulate.rng import DEFAULT_SEED
from ..workloads.perfect import program_names
from .common import CellResult, CellSpec, evaluate_cells

#: Row means of the paper's Table 2 (for side-by-side reporting).
PAPER_TABLE2_MEANS: Dict[str, float] = {
    "L80(2,5) @ 2": 8.3,
    "L80(2,5) @ 2.6": 6.9,
    "L80(2,10) @ 2": 12.9,
    "L80(2,10) @ 3.6": 10.5,
    "L95(2,5) @ 2": 6.0,
    "L95(2,5) @ 2.15": 5.1,
    "L95(2,10) @ 2": 7.3,
    "L95(2,10) @ 2.4": 6.6,
    "N(2,2) @ 2": 10.4,
    "N(3,2) @ 3": 8.9,
    "N(5,2) @ 5": 7.7,
    "N(2,5) @ 2": 18.1,
    "N(3,5) @ 3": 15.8,
    "N(5,5) @ 5": 12.4,
    "N(30,5) @ 30": 3.0,
    "L80-N(30,5) @ 2": 18.2,
    "L80-N(30,5) @ 7.6": 9.6,
}


@dataclass
class Table2Row:
    """One system row: per-program improvements plus the mean."""

    system: SystemRow
    cells: Dict[str, CellResult]

    @property
    def improvements(self) -> Dict[str, float]:
        return {name: cell.imp_pct for name, cell in self.cells.items()}

    @property
    def mean(self) -> float:
        values = [cell.imp_pct for cell in self.cells.values()]
        return sum(values) / len(values)


@dataclass
class Table2Result:
    """The full table."""

    rows: List[Table2Row]
    processor: ProcessorModel

    def row(self, label: str) -> Table2Row:
        for candidate in self.rows:
            if candidate.system.label == label:
                return candidate
        raise KeyError(label)

    def mean_of_means(self) -> float:
        return sum(r.mean for r in self.rows) / len(self.rows)

    # ------------------------------------------------------------------
    def shape_report(self) -> Dict[str, bool]:
        """The paper's qualitative claims, evaluated on this run."""
        means = {r.system.label: r.mean for r in self.rows}
        return {
            "all rows positive except N(30,5)": all(
                m > 0 for label, m in means.items() if "N(30,5) @ 30" not in label
            ),
            "lower hit rate helps (L80 > L95 at 2,5)": means["L80(2,5) @ 2"]
            > means["L95(2,5) @ 2"],
            "bigger miss penalty helps (ml=10 > ml=5)": means["L80(2,10) @ 2"]
            > means["L80(2,5) @ 2"],
            "bigger sigma helps (N(2,5) > N(2,2))": means["N(2,5) @ 2"]
            > means["N(2,2) @ 2"],
            "N(30,5) is among the two weakest rows": means["N(30,5) @ 30"]
            <= sorted(means.values())[1],
            "mixed @ 2 is in the top half of rows": means["L80-N(30,5) @ 2"]
            >= sorted(means.values())[len(means) // 2],
        }

    def format(self) -> str:
        # Use the programs actually evaluated (run_table2 may have been
        # given a subset), in suite order.
        present = set(self.rows[0].cells) if self.rows else set()
        names = [n for n in program_names() if n in present]
        header = f"  {'system':22s}" + "".join(f"{n:>8s}" for n in names)
        header += f"{'mean':>8s}{'paper':>8s}"
        lines = [
            f"Table 2: % improvement, processor model {self.processor.name}",
            "",
            header,
            "  " + "-" * (len(header) - 2),
        ]
        group = None
        for row in self.rows:
            if row.system.group != group:
                group = row.system.group
                lines.append(f"  -- {group}")
            cells = "".join(f"{row.cells[n].imp_pct:8.1f}" for n in names)
            paper = PAPER_TABLE2_MEANS.get(row.system.label)
            paper_text = f"{paper:8.1f}" if paper is not None else " " * 8
            lines.append(
                f"  {row.system.label:22s}{cells}{row.mean:8.1f}{paper_text}"
            )
        lines.append("")
        lines.append("  shape checks:")
        for claim, holds in self.shape_report().items():
            lines.append(f"    [{'ok' if holds else 'FAIL'}] {claim}")
        return "\n".join(lines)


def run_table2(
    processor: ProcessorModel = UNLIMITED,
    seed: int = DEFAULT_SEED,
    runs: int = 30,
    programs: Optional[List[str]] = None,
    jobs: int = 1,
    cache=None,
    manifest=None,
    resume: Optional[bool] = None,
) -> Table2Result:
    """Evaluate the full Table 2 grid (or a subset of programs).

    ``jobs`` fans the cells out over a process pool; results are
    bit-identical for any value (all random streams are string-keyed).
    ``cache``/``manifest``/``resume`` checkpoint and log the run (they
    default to the ambient engine session); a resumed run replays
    finished cells from the store and is byte-identical to an
    uninterrupted one.
    """
    names = programs if programs is not None else program_names()
    systems = paper_system_rows()
    # Program-major order: workers see long runs of one program, so
    # each compiles it (at most) once.
    specs = [
        CellSpec(
            program=name, system=system, processor=processor,
            seed=seed, runs=runs,
        )
        for name in names
        for system in systems
    ]
    results = evaluate_cells(
        specs, jobs=jobs, cache=cache, manifest=manifest, resume=resume
    )
    by_key = {
        (spec.program, spec.system.label): cell
        for spec, cell in zip(specs, results)
    }
    rows = [
        Table2Row(
            system=system,
            cells={name: by_key[(name, system.label)] for name in names},
        )
        for system in systems
    ]
    return Table2Result(rows=rows, processor=processor)
