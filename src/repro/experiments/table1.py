"""Table 1: the worked weight computation for the Figure 7 DAG.

The experiment regenerates the full contribution matrix -- how much
each instruction adds to each load's weight -- and compares every cell
against the values printed in the paper.  The printed *totals* for
L3..L6 are internally inconsistent with the printed cells (each is
exactly 1/6 below the sum of its own row); we match the cells and
report totals computed from them.  DESIGN.md documents the erratum.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Tuple

from ..analysis.dependence import build_dag
from ..core.weights import balanced_weights, contribution_matrix
from ..workloads.paper_dags import figure7_block

#: Off-diagonal cells of the paper's Table 1 (zero cells omitted):
#: ``(load, contributor) -> contribution``.
PAPER_TABLE1_CELLS: Dict[Tuple[str, str], Fraction] = {
    # L1 receives 1 from every other instruction.
    **{("L1", other): Fraction(1) for other in
       ("L2", "L3", "L4", "L5", "L6", "X1", "X2", "X3", "X4")},
    # L2..L6 each receive 1/4 from L1.
    **{(load, "L1"): Fraction(1, 4) for load in ("L2", "L3", "L4", "L5", "L6")},
    # X1..X4 contribute 1/3 to each of L3..L6.
    **{(load, x): Fraction(1, 3)
       for load in ("L3", "L4", "L5", "L6")
       for x in ("X1", "X2", "X3", "X4")},
    # L5 and L6 contribute 1 each to L4; L4 contributes 1/2 to L5, L6.
    ("L4", "L5"): Fraction(1),
    ("L4", "L6"): Fraction(1),
    ("L5", "L4"): Fraction(1, 2),
    ("L6", "L4"): Fraction(1, 2),
}

#: Totals as printed in the paper ("1 plus the sum of the weight
#: contribution of each instruction").  L3..L6 are the erratum rows.
PAPER_TABLE1_TOTALS: Dict[str, Fraction] = {
    "L1": Fraction(10),
    "L2": Fraction(5, 4),
    "L3": Fraction(29, 12),   # printed 2 5/12; cells sum to 2 7/12
    "L4": Fraction(53, 12),   # printed 4 5/12; cells sum to 4 7/12
    "L5": Fraction(35, 12),   # printed 2 11/12; cells sum to 3 1/12
    "L6": Fraction(35, 12),
}


@dataclass
class Table1Result:
    """Contribution matrix keyed by paper instruction names."""

    matrix: Dict[str, Dict[str, Fraction]]
    weights: Dict[str, Fraction]

    def cell_mismatches(self) -> List[str]:
        """Cells that differ from the printed table (expected: none)."""
        problems = []
        for load, row in self.matrix.items():
            for contributor, value in row.items():
                expected = PAPER_TABLE1_CELLS.get((load, contributor), Fraction(0))
                if value != expected:
                    problems.append(
                        f"{load} <- {contributor}: got {value}, paper {expected}"
                    )
        return problems

    def format(self) -> str:
        loads = sorted(self.matrix)
        columns = sorted(
            {c for row in self.matrix.values() for c in row},
            key=lambda name: (name[0] != "L", name),
        )
        header = "  load | " + " ".join(f"{c:>6s}" for c in columns) + " | weight"
        lines = [
            "Table 1: weight contributions for the Figure 7 DAG",
            "",
            header,
            "  " + "-" * (len(header) - 2),
        ]
        for load in loads:
            row = self.matrix[load]
            cells = " ".join(
                f"{str(row.get(c, Fraction(0))):>6s}" for c in columns
            )
            lines.append(f"  {load:4s} | {cells} | {self.weights[load]}")
        mismatches = self.cell_mismatches()
        lines.append("")
        if mismatches:
            lines.append("  CELL MISMATCHES:")
            lines.extend(f"    {m}" for m in mismatches)
        else:
            lines.append("  every off-diagonal cell matches the paper exactly")
            lines.append(
                "  (totals computed from cells; the paper's printed totals for"
            )
            lines.append(
                "   L3..L6 are 1/6 lower than its own cells -- see DESIGN.md)"
            )
        return "\n".join(lines)


def run_table1(manifest=None) -> Table1Result:
    """Regenerate Table 1 from the reconstructed Figure 7 DAG.

    Purely symbolic (exact Fractions, no simulation or compilation),
    so there is nothing to checkpoint; the computation is still logged
    to the run ``manifest`` (ambient session by default) so `run all`
    manifests account for every experiment uniformly.
    """
    import os
    import time

    from .cache import object_key
    from .common import current_session

    if manifest is None:
        manifest = current_session().manifest
    start = time.perf_counter()
    block, labels = figure7_block()
    dag = build_dag(block)
    raw_matrix = contribution_matrix(dag)
    raw_weights = balanced_weights(dag)

    matrix = {
        labels[load]: {
            labels[contributor]: value
            for contributor, value in row.items()
            if value != 0
        }
        for load, row in raw_matrix.items()
    }
    weights = {labels[load]: value for load, value in raw_weights.items()}
    if manifest is not None:
        manifest.record_cell(
            key=object_key("table1"), program="figure7", system="table1",
            processor="-", wall_s=time.perf_counter() - start,
            worker=os.getpid(), cache="miss",
        )
    return Table1Result(matrix=matrix, weights=weights)
