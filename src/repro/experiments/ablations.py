"""Ablation studies for the design choices DESIGN.md calls out.

1. **Non-blocking loads** (Section 1's motivation): on conventional
   stall-on-load hardware no schedule can hide latency, so balanced
   scheduling's advantage collapses to noise; non-blocking loads are
   the enabling hardware feature.
2. **Average-weight variant** (Section 3's rejected alternative): one
   block-average weight per load instead of per-load weights.
3. **Scheduler direction**: the paper's bottom-up versus the forward
   scheduler that matches its illustrated figures.
4. **Spill pool** (Section 4.1's improvement): enlarged FIFO pool
   versus GCC's small fixed-order pool, on a spill-heavy program.
5. **Alias model** (Section 4.2's transformation): FORTRAN no-alias
   semantics versus f2c's conservative C aliasing.
6. **Superscalar issue width** (Section 6 extension).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..analysis.alias import AliasModel
from ..core.balanced import AverageWeightScheduler, BalancedScheduler
from ..core.pipeline import compile_program
from ..core.scheduler import Direction
from ..core.traditional import TraditionalScheduler
from ..machine.config import system_row
from ..machine.processor import BLOCKING, UNLIMITED, superscalar
from ..regalloc.target import (
    DEFAULT_REGISTER_FILE,
    UNIMPROVED_REGISTER_FILE,
    RegisterFile,
)
from ..simulate.program import simulate_program
from ..simulate.rng import DEFAULT_SEED, spawn
from ..simulate.stats import percentage_improvement, program_bootstrap_runtimes
from ..workloads.perfect import load_program

#: Representative systems for the ablations: one cache, one noisy
#: network, the mixed model.
ABLATION_SYSTEMS = (
    ("L80(2,10)", 2),
    ("N(2,5)", 2),
    ("L80-N(30,5)", 2),
)


def _runtime_boot(program, policy, system, seed_key, register_file=DEFAULT_REGISTER_FILE,
                  alias_model=AliasModel.FORTRAN, runs=30):
    """Compile under ``policy`` and bootstrap program runtimes."""
    compiled = compile_program(
        program, policy, register_file=register_file, alias_model=alias_model
    )
    rng = spawn("ablation-sim", *seed_key)
    sampled = simulate_program(
        compiled.final_blocks, UNLIMITED, system.memory, rng, runs=runs
    )
    boot_rng = spawn("ablation-boot", *seed_key)
    return program_bootstrap_runtimes(sampled, boot_rng), compiled


@dataclass
class AblationResult:
    """Name -> {configuration -> % improvement over the baseline}."""

    tables: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def format(self) -> str:
        lines = ["Ablation studies", ""]
        for name, table in self.tables.items():
            lines.append(f"  == {name}")
            for configuration, value in table.items():
                if "cycles" in configuration or "stages" in configuration:
                    lines.append(f"     {configuration:44s} {value:8.1f}")
                else:
                    lines.append(f"     {configuration:44s} {value:+7.1f}%")
            lines.append("")
        return "\n".join(lines)


def run_average_weight_ablation(program_name: str = "MDG") -> Dict[str, float]:
    """Balanced and average-weight improvement over traditional."""
    program = load_program(program_name)
    out: Dict[str, float] = {}
    for mem, latency in ABLATION_SYSTEMS:
        system = system_row(mem, latency)
        key = (program_name, mem, f"{latency:g}")
        trad_boot, _ = _runtime_boot(
            program, TraditionalScheduler(latency), system, key + ("trad",)
        )
        bal_boot, _ = _runtime_boot(
            program, BalancedScheduler(), system, key + ("bal",)
        )
        avg_boot, _ = _runtime_boot(
            program, AverageWeightScheduler(), system, key + ("avg",)
        )
        out[f"balanced vs traditional @ {system.label}"] = percentage_improvement(
            trad_boot, bal_boot
        ).mean
        out[f"average-weight vs traditional @ {system.label}"] = (
            percentage_improvement(trad_boot, avg_boot).mean
        )
    return out


def run_direction_ablation(program_name: str = "MDG") -> Dict[str, float]:
    """Balanced-over-traditional improvement per scheduler direction."""
    program = load_program(program_name)
    out: Dict[str, float] = {}
    for direction in Direction:
        for mem, latency in ABLATION_SYSTEMS[:2]:
            system = system_row(mem, latency)
            key = (program_name, mem, f"{latency:g}", direction.value)
            trad_boot, _ = _runtime_boot(
                program,
                TraditionalScheduler(latency, direction=direction),
                system,
                key + ("trad",),
            )
            bal_boot, _ = _runtime_boot(
                program,
                BalancedScheduler(direction=direction),
                system,
                key + ("bal",),
            )
            out[
                f"{direction.value} balanced vs traditional @ {system.label}"
            ] = percentage_improvement(trad_boot, bal_boot).mean
    return out


def run_spill_pool_ablation(program_name: str = "QCD2") -> Dict[str, float]:
    """The Section 4.1 spill-pool improvement, on a spill-heavy program.

    Reports balanced-over-traditional improvement with the enlarged
    FIFO pool versus GCC's unimproved pool.
    """
    program = load_program(program_name)
    out: Dict[str, float] = {}
    configurations = (
        ("enlarged FIFO pool (paper)", DEFAULT_REGISTER_FILE),
        ("small fixed-order pool (GCC)", UNIMPROVED_REGISTER_FILE),
    )
    mem, latency = ABLATION_SYSTEMS[1]
    system = system_row(mem, latency)
    for label, register_file in configurations:
        key = (program_name, mem, f"{latency:g}", label)
        trad_boot, trad_comp = _runtime_boot(
            program,
            TraditionalScheduler(latency),
            system,
            key + ("trad",),
            register_file=register_file,
        )
        bal_boot, bal_comp = _runtime_boot(
            program,
            BalancedScheduler(),
            system,
            key + ("bal",),
            register_file=register_file,
        )
        out[f"{label}: balanced vs traditional @ {system.label}"] = (
            percentage_improvement(trad_boot, bal_boot).mean
        )
        out[f"{label}: balanced spill %"] = bal_comp.spill_percentage
    return out


def run_alias_ablation(program_name: str = "MDG") -> Dict[str, float]:
    """Section 4.2: FORTRAN no-alias semantics vs conservative C."""
    program = load_program(program_name)
    out: Dict[str, float] = {}
    mem, latency = ABLATION_SYSTEMS[0]
    system = system_row(mem, latency)
    for model in (AliasModel.FORTRAN, AliasModel.C_CONSERVATIVE):
        key = (program_name, mem, f"{latency:g}", model.value)
        trad_boot, _ = _runtime_boot(
            program,
            TraditionalScheduler(latency),
            system,
            key + ("trad",),
            alias_model=model,
        )
        bal_boot, _ = _runtime_boot(
            program, BalancedScheduler(), system, key + ("bal",), alias_model=model
        )
        out[
            f"{model.value} aliasing: balanced vs traditional @ {system.label}"
        ] = percentage_improvement(trad_boot, bal_boot).mean
    return out


def run_superscalar_ablation(program_name: str = "MDG") -> Dict[str, float]:
    """Section 6 extension: balanced improvement vs issue width."""
    program = load_program(program_name)
    out: Dict[str, float] = {}
    mem, latency = ABLATION_SYSTEMS[1]
    system = system_row(mem, latency)
    for width in (1, 2, 4):
        # ``superscalar(1)`` is semantically UNLIMITED (the simulators
        # dispatch on issue_width, nothing here keys on the name), so
        # no width-1 special case is needed now that the batch
        # simulator runs every width natively.
        processor = superscalar(width)
        trad = compile_program(program, TraditionalScheduler(latency))
        bal = compile_program(program, BalancedScheduler())
        key = (program_name, mem, f"{latency:g}", f"w{width}")
        trad_runs = simulate_program(
            trad.final_blocks, processor, system.memory, spawn("ss", *key, "t")
        )
        bal_runs = simulate_program(
            bal.final_blocks, processor, system.memory, spawn("ss", *key, "b")
        )
        t_boot = program_bootstrap_runtimes(trad_runs, spawn("ssb", *key, "t"))
        b_boot = program_bootstrap_runtimes(bal_runs, spawn("ssb", *key, "b"))
        out[f"issue width {width}: balanced vs traditional @ {system.label}"] = (
            percentage_improvement(t_boot, b_boot).mean
        )
    return out


def run_blocking_ablation(program_name: str = "MDG") -> Dict[str, float]:
    """Section 1's motivation: with conventional blocking loads no
    schedule can hide latency, so balanced scheduling's advantage
    should vanish; non-blocking hardware is what makes it matter."""
    program = load_program(program_name)
    out: Dict[str, float] = {}
    mem, latency = ABLATION_SYSTEMS[1]
    system = system_row(mem, latency)
    trad = compile_program(program, TraditionalScheduler(latency))
    bal = compile_program(program, BalancedScheduler())
    for processor in (UNLIMITED, BLOCKING):
        key = (program_name, mem, f"{latency:g}", processor.name)
        trad_runs = simulate_program(
            trad.final_blocks, processor, system.memory, spawn("blk", *key, "t")
        )
        bal_runs = simulate_program(
            bal.final_blocks, processor, system.memory, spawn("blk", *key, "b")
        )
        t_boot = program_bootstrap_runtimes(trad_runs, spawn("blkb", *key, "t"))
        b_boot = program_bootstrap_runtimes(bal_runs, spawn("blkb", *key, "b"))
        out[
            f"{processor.name}: balanced vs traditional @ {system.label}"
        ] = percentage_improvement(t_boot, b_boot).mean
    return out


def run_allocator_ablation(program_name: str = "BDNA") -> Dict[str, float]:
    """How much of Table 4's shape is an allocator artefact?

    Spill percentages for balanced vs traditional(2) vs traditional(30)
    under the pressure-optimal linear scan and under Chaitin-style
    cost/degree coloring (closer in character to GCC's allocator).
    """
    from ..regalloc.chaitin import ChaitinAllocator
    from ..regalloc.linear_scan import LinearScanAllocator

    program = load_program(program_name)
    out: Dict[str, float] = {}
    for label, factory in (
        ("linear scan", LinearScanAllocator),
        ("chaitin cost/degree", ChaitinAllocator),
    ):
        for policy_label, policy in (
            ("balanced", BalancedScheduler()),
            ("traditional W=2", TraditionalScheduler(2)),
            ("traditional W=30", TraditionalScheduler(30)),
        ):
            compiled = compile_program(
                program, policy, allocator=factory(DEFAULT_REGISTER_FILE)
            )
            out[f"{label}: {policy_label} spill %"] = compiled.spill_percentage
    return out


def run_trace_ablation(latency: int = 6) -> Dict[str, float]:
    """Section 6: trace scheduling on the hot-path demo CFG.

    Reports hot-path cycles at a fixed ``latency`` for block-by-block
    versus trace scheduling, under both policies, plus the percentage
    the trace saves for balanced scheduling.
    """
    from ..extensions.trace import compare_trace_vs_blocks
    from ..simulate.simulator import simulate_block
    from ..workloads.cfg_demo import hot_path_cfg

    def cycles(block):
        n_loads = sum(1 for i in block if i.is_load)
        return simulate_block(
            block.instructions, [latency] * n_loads, UNLIMITED
        ).cycles

    out: Dict[str, float] = {}
    for label, factory in (
        ("balanced", BalancedScheduler),
        ("traditional W=2", lambda: TraditionalScheduler(2)),
    ):
        per_block, traced = compare_trace_vs_blocks(
            hot_path_cfg(), factory, cycles
        )
        out[f"{label}: block-by-block cycles @ latency {latency}"] = per_block
        out[f"{label}: trace cycles @ latency {latency}"] = traced
        out[f"{label}: trace saving %"] = 100.0 * (per_block - traced) / per_block
    return out


def run_pipelining_ablation(load_latency: int = 6) -> Dict[str, float]:
    """Section 6: software pipelining versus unroll-and-schedule.

    For three loop shapes, the modulo schedule's initiation interval
    (exact steady-state cycles/iteration) against the measured
    throughput of balanced scheduling over an unrolled body.
    """
    from ..extensions.modulo import modulo_schedule
    from ..frontend.lowering import compile_minif
    from ..simulate.throughput import throughput

    loops = {
        "stream": """
program p
  array a[64], c[64]
  kernel k freq 1
    t1 = a[i] * a[i+1]
    c[i] = t1 + t1
  end
end
""",
        "dot": """
program p
  array a[64], b[64]
  kernel k freq 1
    s = s + a[i] * b[i]
  end
end
""",
        "filter": """
program p
  array x[64]
  kernel k freq 1
    s = s * c0 + x[i]
  end
end
""",
    }
    out: Dict[str, float] = {}
    for name, source in loops.items():
        body = compile_minif(source, pointer_loads=False).functions[0].blocks[0]
        kernel = modulo_schedule(body, BalancedScheduler())
        unrolled = throughput(
            body, BalancedScheduler(), load_latency, factors=(4, 8, 12)
        )
        out[f"{name}: modulo II (cycles/iteration)"] = float(kernel.ii)
        out[f"{name}: unrolled balanced cycles/iteration"] = (
            unrolled.cycles_per_iteration
        )
        out[f"{name}: pipeline stages overlapped"] = float(kernel.stage_count)
    return out


#: Every ablation, in report order.  Each runs with its default
#: program and shares nothing with the others, so `run_all_ablations`
#: can fan them out over the experiment process pool.
ALL_ABLATIONS = (
    ("non-blocking loads (Section 1 motivation)", run_blocking_ablation),
    ("average-weight variant (Section 3)", run_average_weight_ablation),
    ("scheduler direction", run_direction_ablation),
    ("spill pool (Section 4.1)", run_spill_pool_ablation),
    ("alias model (Section 4.2)", run_alias_ablation),
    ("superscalar width (Section 6)", run_superscalar_ablation),
    ("trace scheduling (Section 6)", run_trace_ablation),
    ("register allocator (Table 4 sensitivity)", run_allocator_ablation),
    ("software pipelining (Section 6)", run_pipelining_ablation),
)


def _run_one_ablation(index: int) -> Dict[str, float]:
    """Worker entry point (indexed so only an int crosses the pipe)."""
    return ALL_ABLATIONS[index][1]()


def _run_one_ablation_timed(index: int):
    """Worker entry point: one ablation plus (wall seconds, pid)."""
    import os
    import time

    start = time.perf_counter()
    table = _run_one_ablation(index)
    return table, time.perf_counter() - start, os.getpid()


def run_all_ablations(
    jobs: int = 1, cache=None, manifest=None, resume=None
) -> AblationResult:
    """Run every ablation with its default program.

    Each ablation's whole table is one checkpoint unit (they are
    deterministic: every random stream is string-keyed with fixed
    seeds); ``cache``/``manifest``/``resume`` default to the ambient
    engine session.
    """
    import os

    from .cache import object_key
    from .common import PoolMapStats, current_session, pool_map

    session = current_session()
    if cache is None:
        cache = session.cache
    if manifest is None:
        manifest = session.manifest
    if resume is None:
        resume = session.resume

    def key_for(label: str) -> str:
        return object_key("ablation", label)

    def record(label: str, wall: float, worker: int, status: str,
               retried: int = 0) -> None:
        if manifest is not None:
            manifest.record_cell(
                key=key_for(label), program="-", system="ablation",
                processor=label, wall_s=wall, worker=worker, cache=status,
                retries=retried,
            )

    tables: List[Optional[Dict[str, float]]] = [None] * len(ALL_ABLATIONS)
    missing: List[int] = []
    for index, (label, _fn) in enumerate(ALL_ABLATIONS):
        cached = (
            cache.get_object(key_for(label))
            if cache is not None and resume
            else None
        )
        if cached is not None:
            tables[index] = cached
            record(label, 0.0, os.getpid(), "hit")
        else:
            missing.append(index)
    if missing:
        stats = PoolMapStats()

        def consume(pos: int, timed) -> None:
            table, wall, worker = timed
            index = missing[pos]
            tables[index] = table
            label = ALL_ABLATIONS[index][0]
            if cache is not None:
                cache.put_object(key_for(label), table)
            record(label, wall, worker, "miss",
                   stats.item_attempts.get(pos, 0))

        pool_map(
            _run_one_ablation_timed, missing, jobs,
            stats=stats, on_result=consume,
        )
    result = AblationResult()
    for (label, _fn), table in zip(ALL_ABLATIONS, tables):
        result.tables[label] = table
    return result
