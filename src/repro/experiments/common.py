"""Shared machinery for the table/figure experiments.

An experiment *cell* is one (program, system row, processor model)
triple: both schedulers compile the program, the simulator runs every
block 30 times on the modelled machine, and the paper's bootstrap
yields the percentage improvement plus the component statistics
(instruction counts, interlock percentages, spill percentages)
reported across Tables 2-5.

Compilation is machine-independent for the balanced scheduler and
depends only on the optimistic latency for the traditional scheduler,
so compiled artefacts are memoised in a process-wide
:class:`CompilationCache`: each (program, policy, latency, register
file, alias model) combination compiles exactly once per process, no
matter how many tables or :class:`ProgramEvaluator` instances ask.

Cells are independent by construction -- every random stream is derived
from string keys via :func:`repro.simulate.rng.spawn`, never from
shared mutable generator state -- so :func:`evaluate_cells` can fan a
list of :class:`CellSpec` out over a ``concurrent.futures`` process
pool and return bit-identical results in spec order regardless of
worker count or completion order (see docs/performance.md).

The engine is also crash-safe and observable: finished cells are
checkpointed to an on-disk :class:`~repro.experiments.cache.
ResultCache` as they complete (so an interrupted run resumes where it
died), a dead worker breaks only its in-flight batches -- which are
retried on a rebuilt pool and, past the retry budget, degraded to
inline execution -- and every cell is logged to a run manifest
(``results/manifest.jsonl``).  See the "Crash safety and resume"
section of docs/performance.md.
"""

from __future__ import annotations

import atexit
import logging
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..analysis.alias import AliasModel
from ..core.balanced import BalancedScheduler
from ..core.pipeline import CompilationResult, compile_program
from ..core.traditional import TraditionalScheduler
from ..ir.block import Program
from ..machine.config import SystemRow
from ..machine.processor import ProcessorModel, UNLIMITED
from ..obs import recorder as _obs
from ..obs import requesttrace as _reqtrace
from ..obs.metrics import MetricsRegistry, split_series_key, summarize_delta
from ..obs.recorder import span as _span
from ..regalloc.target import DEFAULT_REGISTER_FILE, RegisterFile
from ..simulate.program import DEFAULT_RUNS, ProgramRuns, simulate_program
from ..simulate.rng import DEFAULT_SEED, spawn
from ..simulate.stats import (
    DEFAULT_BOOTSTRAP,
    ImprovementResult,
    percentage_improvement,
    program_bootstrap_runtimes,
)
from ..workloads.perfect import load_program
from .cache import ResultCache, cell_key
from .manifest import ManifestWriter

logger = logging.getLogger("repro.experiments")


class CompilationCache:
    """Process-wide memo of :func:`compile_program` results.

    Keys are ``(program identity, policy key, register file, alias
    model)``; the cache keeps a strong reference to each keyed program
    so object identities stay valid for the life of the process (the
    Perfect Club suite is itself cached for the process lifetime, so
    this adds nothing for the standard tables).
    """

    def __init__(self) -> None:
        self._entries: Dict[tuple, CompilationResult] = {}
        self._programs: Dict[int, Program] = {}

    def get_or_compile(
        self,
        program: Program,
        policy_key: tuple,
        factory: Callable[[], CompilationResult],
    ) -> CompilationResult:
        key = (id(program),) + policy_key
        result = self._entries.get(key)
        if result is None:
            result = self._entries[key] = factory()
            self._programs[id(program)] = program
        return result

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._programs.clear()


#: The shared cache every :class:`ProgramEvaluator` compiles through.
COMPILATION_CACHE = CompilationCache()


@dataclass
class CellResult:
    """One evaluated (program, system, processor) cell."""

    program: str
    system: SystemRow
    processor: ProcessorModel
    improvement: ImprovementResult
    traditional_instructions: float
    balanced_instructions: float
    traditional_interlock_pct: float
    balanced_interlock_pct: float
    traditional_spill_pct: float
    balanced_spill_pct: float

    @property
    def imp_pct(self) -> float:
        return self.improvement.mean


class ProgramEvaluator:
    """Compiles a program once per policy and evaluates table cells."""

    def __init__(
        self,
        program: Program,
        register_file: Optional[RegisterFile] = DEFAULT_REGISTER_FILE,
        alias_model: AliasModel = AliasModel.FORTRAN,
        seed: int = DEFAULT_SEED,
        runs: int = DEFAULT_RUNS,
        n_boot: int = DEFAULT_BOOTSTRAP,
    ):
        self.program = program
        self.register_file = register_file
        self.alias_model = alias_model
        self.seed = seed
        self.runs = runs
        self.n_boot = n_boot

    # ------------------------------------------------------------------
    # Compilation (memoised process-wide in COMPILATION_CACHE)
    # ------------------------------------------------------------------
    def balanced(self) -> CompilationResult:
        """The balanced compilation (machine-independent; compiled once)."""
        return COMPILATION_CACHE.get_or_compile(
            self.program,
            ("balanced", self.register_file, self.alias_model),
            lambda: compile_program(
                self.program,
                BalancedScheduler(),
                register_file=self.register_file,
                alias_model=self.alias_model,
            ),
        )

    def traditional(self, optimistic_latency: float) -> CompilationResult:
        """The traditional compilation for one optimistic latency."""
        # Normalise through the scheduler so 2 and 2.0 share a key but
        # 2.15 and 2.4 stay exactly distinct (Fraction, not float).
        latency_key = TraditionalScheduler(optimistic_latency).optimistic_latency
        return COMPILATION_CACHE.get_or_compile(
            self.program,
            ("traditional", latency_key, self.register_file, self.alias_model),
            lambda: compile_program(
                self.program,
                TraditionalScheduler(optimistic_latency),
                register_file=self.register_file,
                alias_model=self.alias_model,
            ),
        )

    def optimal(self, load_latency: float) -> CompilationResult:
        """The exact compilation for one fixed memory latency.

        Like :meth:`traditional` but through the branch-and-bound
        backend (:class:`repro.core.OptimalScheduler`): the schedule is
        provably cycle-minimal under the fixed-latency model whenever
        the per-block search certifies within budget, and never worse
        than the balanced schedule otherwise.
        """
        from ..core.optimal import OptimalScheduler

        scheduler = OptimalScheduler(load_latency)
        return COMPILATION_CACHE.get_or_compile(
            self.program,
            (
                "optimal",
                scheduler.load_latency,
                self.register_file,
                self.alias_model,
            ),
            lambda: compile_program(
                self.program,
                scheduler,
                register_file=self.register_file,
                alias_model=self.alias_model,
            ),
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _simulate(
        self,
        compilation: CompilationResult,
        row: SystemRow,
        processor: ProcessorModel,
        policy_tag: str,
    ) -> ProgramRuns:
        rng = spawn(
            "sim",
            self.program.name,
            row.memory.name,
            f"{row.optimistic_latency:g}",
            processor.name,
            policy_tag,
            seed=self.seed,
        )
        return simulate_program(
            compilation.final_blocks,
            processor,
            row.memory,
            rng,
            runs=self.runs,
            name=f"{self.program.name}/{policy_tag}",
        )

    def cell(
        self, row: SystemRow, processor: ProcessorModel = UNLIMITED
    ) -> CellResult:
        """Evaluate one table cell (compile if needed, simulate, bootstrap).

        The ``cell`` span's args (program/system/processor) become the
        ambient labels every metric recorded below it carries -- see
        :meth:`repro.obs.recorder.Recorder.context`.
        """
        with _span(
            "cell",
            program=self.program.name,
            system=row.label,
            processor=processor.name,
        ):
            return self._cell(row, processor)

    def _cell(
        self, row: SystemRow, processor: ProcessorModel
    ) -> CellResult:
        with _span("compile", policy="balanced"):
            balanced = self.balanced()
        with _span("compile", policy="traditional"):
            traditional = self.traditional(row.optimistic_latency)

        with _span("simulate_program", policy="traditional"):
            trad_runs = self._simulate(
                traditional, row, processor, "traditional"
            )
        with _span("simulate_program", policy="balanced"):
            bal_runs = self._simulate(balanced, row, processor, "balanced")

        boot_rng = spawn(
            "boot",
            self.program.name,
            row.memory.name,
            f"{row.optimistic_latency:g}",
            processor.name,
            seed=self.seed,
        )
        with _span("bootstrap"):
            t_boot = program_bootstrap_runtimes(
                trad_runs, boot_rng, self.n_boot
            )
            b_boot = program_bootstrap_runtimes(
                bal_runs, boot_rng, self.n_boot
            )
            improvement = percentage_improvement(t_boot, b_boot)

        return CellResult(
            program=self.program.name,
            system=row,
            processor=processor,
            improvement=improvement,
            traditional_instructions=traditional.dynamic_instructions,
            balanced_instructions=balanced.dynamic_instructions,
            traditional_interlock_pct=trad_runs.interlock_percentage(),
            balanced_interlock_pct=bal_runs.interlock_percentage(),
            traditional_spill_pct=traditional.spill_percentage,
            balanced_spill_pct=balanced.spill_percentage,
        )


def geometric_layout(values: Sequence[float], width: int = 6) -> str:
    """Small helper: format a row of numbers for the console tables."""
    return " ".join(f"{v:{width}.1f}" for v in values)


# ----------------------------------------------------------------------
# Parallel cell evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellSpec:
    """One table cell as a picklable work item.

    The program is referenced by suite name (workers reload it from the
    process-local cache) and everything else is a frozen value object,
    so a spec can cross a process boundary and still evaluate to the
    exact cell the serial path would produce.
    """

    program: str
    system: SystemRow
    processor: ProcessorModel = UNLIMITED
    seed: int = DEFAULT_SEED
    runs: int = DEFAULT_RUNS
    n_boot: int = DEFAULT_BOOTSTRAP
    register_file: Optional[RegisterFile] = DEFAULT_REGISTER_FILE
    alias_model: AliasModel = AliasModel.FORTRAN
    #: Trace ids of the service requests waiting on this cell, threaded
    #: through the pool so workers can report span fragments under the
    #: right request (see :mod:`repro.obs.requesttrace`).  Excluded from
    #: equality/repr, and deliberately invisible to ``spec_token`` --
    #: tracing never perturbs cache keys or results.
    trace_ids: Tuple[str, ...] = field(default=(), compare=False, repr=False)


#: Per-process evaluators, keyed by everything but (system, processor):
#: a worker handed many cells of one program reuses one evaluator (and,
#: through COMPILATION_CACHE, every compilation it has already done).
_EVALUATORS: Dict[tuple, ProgramEvaluator] = {}


class PoolBrokenError(RuntimeError):
    """The process pool kept breaking and inline fallback was declined.

    Raised by :func:`pool_map` (and everything layered on it) only when
    called with ``inline_fallback=False`` -- the scheduling service uses
    that mode so a dying pool surfaces as a retriable 503 instead of
    silently absorbing the work into the serving process.  ``items`` is
    how many work items were still undelivered when the budget ran out;
    ``cause`` is the repr of the last pool-breaking exception.
    """

    def __init__(self, items: int, cause: Optional[str] = None) -> None:
        super().__init__(
            f"process pool broke past its retry budget with {items} "
            f"item(s) undelivered" + (f" (cause: {cause})" if cause else "")
        )
        self.items = items
        self.cause = cause


class CellEvaluationError(RuntimeError):
    """A cell failed deterministically; names the offending spec.

    Raised (in place of losing the context across the process
    boundary) when evaluating one work item throws a real exception --
    as opposed to the pool itself breaking, which is transient and
    retried.  The original exception is chained as ``__cause__`` and
    kept on ``.cause``.
    """

    def __init__(self, item, cause: Optional[BaseException] = None) -> None:
        super().__init__(f"evaluating {item!r} failed: {cause!r}")
        self.item = item
        self.cause = cause

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) into ``__init__``; rebuild from the real fields so
        # the error survives the worker->parent pipe intact.
        return (CellEvaluationError, (self.item, self.cause))


# ----------------------------------------------------------------------
# Engine session: the cache/manifest context `run <exp>` executes in
# ----------------------------------------------------------------------
@dataclass
class EngineSession:
    """What the engine persists while evaluating cells.

    ``cache`` replays finished cells across runs (crash/resume),
    ``manifest`` logs what ran, ``resume`` gates cache *reads* (writes
    always happen, so ``--fresh`` still repopulates the store).
    """

    cache: Optional[ResultCache] = None
    manifest: Optional[ManifestWriter] = None
    resume: bool = True


_SESSION = EngineSession()


def current_session() -> EngineSession:
    return _SESSION


@contextmanager
def engine_session(
    cache: Optional[ResultCache] = None,
    manifest: Optional[ManifestWriter] = None,
    resume: bool = True,
) -> Iterator[EngineSession]:
    """Install a session for the duration of a ``with`` block; every
    ``evaluate_cells``/table call inside it checkpoints through it
    unless given explicit overrides."""
    global _SESSION
    previous = _SESSION
    _SESSION = EngineSession(cache=cache, manifest=manifest, resume=resume)
    try:
        yield _SESSION
    finally:
        _SESSION = previous


# ----------------------------------------------------------------------
# Fault injection (tests and the CI crash drill only)
# ----------------------------------------------------------------------
#: Name a program here and the first worker to evaluate one of its
#: cells dies hard (``os._exit``), simulating an OOM-killed or
#: segfaulted worker.
FAULT_PROGRAM_ENV = "BALANCED_SCHED_FAULT_PROGRAM"
#: Sentinel file path making the crash one-shot: created atomically by
#: the dying worker, so rebuilt pools (which see the same environment)
#: do not crash again and the retry can succeed.
FAULT_ONCE_ENV = "BALANCED_SCHED_FAULT_ONCE_FILE"

#: Pid of the process that imported this module.  Fault injection only
#: ever fires in *forked pool workers* (pid differs), never in the
#: parent -- the inline fast path and the degraded-to-inline path run
#: worker entry points in the parent process, and killing it would
#: defeat the crash drill the hook exists for.
_MAIN_PID = os.getpid()


def _maybe_inject_fault(spec: CellSpec) -> None:
    if os.getpid() == _MAIN_PID:
        return
    target = os.environ.get(FAULT_PROGRAM_ENV)
    if not target or spec.program != target:
        return
    sentinel = os.environ.get(FAULT_ONCE_ENV)
    if not sentinel:
        return
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return  # already crashed once; behave normally
    os.close(fd)
    os._exit(1)


def _evaluate_cell(spec: CellSpec) -> CellResult:
    """Worker entry point: evaluate one cell in this process."""
    key = (
        spec.program,
        spec.seed,
        spec.runs,
        spec.n_boot,
        spec.register_file,
        spec.alias_model,
    )
    evaluator = _EVALUATORS.get(key)
    if evaluator is None:
        evaluator = _EVALUATORS[key] = ProgramEvaluator(
            load_program(spec.program),
            register_file=spec.register_file,
            alias_model=spec.alias_model,
            seed=spec.seed,
            runs=spec.runs,
            n_boot=spec.n_boot,
        )
    return evaluator.cell(spec.system, spec.processor)


#: One timed cell as it crosses back from a worker: result, wall
#: seconds, worker pid, (with obs on) the cell's metrics delta, and
#: (for traced service requests) the cell's span fragments.
_TimedCell = Tuple[CellResult, float, int, Optional[dict], List[dict]]


def _stall_cycles(delta: Optional[dict]) -> float:
    """Total load-stall cycles attributed inside one metrics delta."""
    if not delta:
        return 0.0
    return sum(
        MetricsRegistry.histogram_total(hist)
        for key, hist in delta.get("histograms", {}).items()
        if split_series_key(key)[0] == "sim.load_stall_cycles"
    )


def _trace_fragments(
    spec: CellSpec,
    wall: float,
    t0_wall_ns: int,
    t0_clock_ns: int,
    rec: Optional[_obs.Recorder],
    new_spans: Sequence[_obs.SpanEvent],
    delta: Optional[dict],
) -> List[dict]:
    """Span fragments for one evaluated cell, one set per waiting trace.

    The root ``evaluate_cell`` fragment carries the references the
    tentpole asks for: the cell key (joins the trace to its manifest
    record and cache entry), the load-stall cycles this evaluation
    attributed, and whether a decision log was captured.  Top-level
    recorder spans (compile / simulate_program / bootstrap) become
    child fragments, remapped from the recorder's monotonic clock onto
    the epoch timeline so multi-process traces line up.
    """
    if not spec.trace_ids:
        return []
    args = {
        "cell_key": cell_key(spec),
        "program": spec.program,
        "system": spec.system.label,
        "processor": spec.processor.name,
        "stall_cycles": _stall_cycles(delta),
        "decision_log": (
            "recorded"
            if rec is not None and rec.decisions is not None
            else "off"
        ),
    }
    fragments: List[dict] = []
    children: List[Tuple[str, int, int, dict]] = []
    if (
        rec is not None
        and new_spans
        and rec._clock is time.perf_counter_ns  # mappable to epoch time
    ):
        min_depth = min(span.depth for span in new_spans)
        for span in new_spans:
            if span.depth > min_depth + 1:
                continue
            raw_start = span.start_ns + rec.epoch_ns
            children.append(
                (
                    span.name,
                    t0_wall_ns + (raw_start - t0_clock_ns),
                    span.duration_ns,
                    span.args_dict,
                )
            )
    for trace_id in spec.trace_ids:
        fragments.append(
            _reqtrace.fragment(
                trace_id,
                f"evaluate_cell {spec.program}",
                cat="engine",
                start_ns=t0_wall_ns,
                dur_ns=int(wall * 1e9),
                args=args,
            )
        )
        for name, start_ns, dur_ns, span_args in children:
            fragments.append(
                _reqtrace.fragment(
                    trace_id,
                    name,
                    cat="engine",
                    start_ns=start_ns,
                    dur_ns=dur_ns,
                    args=span_args,
                )
            )
    return fragments


def _evaluate_group_timed(specs: Sequence[CellSpec]) -> List[_TimedCell]:
    """Worker entry point: evaluate one compile-sharing group of cells,
    returning ``(cell, wall_seconds, worker_pid, metrics_delta,
    span_fragments)`` tuples for the manifest and the request trace
    store.  Deterministic per-cell failures are wrapped so the parent
    knows exactly which spec died.

    With observability on, each cell's metrics are captured as a
    snapshot delta around its evaluation -- that delta is what crosses
    the process boundary, gets folded into the parent's registry, and
    is summarised onto the cell's manifest record.  (Workers inherit
    the enabled recorder by forking; spans recorded in workers stay
    worker-local, but cells carrying ``trace_ids`` export their
    top-level spans as epoch-timestamped fragments.)
    """
    out: List[_TimedCell] = []
    rec = _obs.get()
    for spec in specs:
        _maybe_inject_fault(spec)
        before = rec.metrics.snapshot() if rec is not None else None
        spans_mark = len(rec.spans) if rec is not None else 0
        t0_wall = time.time_ns()
        t0_clock = time.perf_counter_ns()
        start = time.perf_counter()
        try:
            cell = _evaluate_cell(spec)
        except Exception as exc:
            raise CellEvaluationError(spec, exc) from exc
        wall = time.perf_counter() - start
        delta = (
            MetricsRegistry.delta(before, rec.metrics.snapshot())
            if rec is not None
            else None
        )
        fragments = _trace_fragments(
            spec, wall, t0_wall, t0_clock, rec,
            rec.spans[spans_mark:] if rec is not None else (), delta,
        )
        out.append((cell, wall, os.getpid(), delta, fragments))
    return out


def _evaluate_group(specs: Sequence[CellSpec]) -> List[CellResult]:
    """Worker entry point: evaluate one compile-sharing group of cells."""
    return [cell for cell, _, _, _, _ in _evaluate_group_timed(specs)]


#: Lazily created, reused across evaluate_cells calls (so `run all`
#: forks once and the workers' compilation caches persist from one
#: table to the next -- the compile cost is paid once per process, not
#: once per table).
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_JOBS = 0

#: How many times a broken pool is rebuilt before the failed items
#: degrade to inline (in-process) execution.
MAX_POOL_RETRIES = 2


def _pool(jobs: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_JOBS
    if _POOL is None or _POOL_JOBS != jobs:
        # Drain the old executor completely before replacing it so a
        # jobs change never strands its workers.
        shutdown_pool(wait=True)
        _POOL = ProcessPoolExecutor(max_workers=jobs)
        _POOL_JOBS = jobs
    return _POOL


def shutdown_pool(wait: bool = True) -> None:
    """Shut down the shared experiment pool (idempotent).

    Registered via ``atexit`` so the CLI and test runs never strand
    orphaned worker processes; also the way tests force a cold pool.
    """
    global _POOL
    pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown(wait=wait, cancel_futures=True)


atexit.register(shutdown_pool)


@dataclass
class PoolMapStats:
    """What :func:`pool_map` had to do beyond plain dispatch.

    ``pool_rebuilds`` counts pool breakages survived; ``inline_items``
    counts items that exhausted the retry budget and ran in-process;
    ``item_attempts[i]`` is how many times item ``i`` was re-dispatched
    after a breakage (0 for items that succeeded first try);
    ``last_error`` is the repr of the most recent pool-breaking
    exception, so a manifest ``pool_downgrade`` record can say *why*
    the pool was abandoned.
    """

    pool_rebuilds: int = 0
    inline_items: int = 0
    item_attempts: Dict[int, int] = field(default_factory=dict)
    last_error: Optional[str] = None


def pool_map(
    fn: Callable,
    items: Sequence,
    jobs: int = 1,
    retries: int = MAX_POOL_RETRIES,
    stats: Optional[PoolMapStats] = None,
    on_result: Optional[Callable[[int, object], None]] = None,
    inline_fallback: bool = True,
    force_pool: bool = False,
) -> List:
    """Map a picklable function over items through the shared pool.

    Order-preserving.  ``jobs == 1`` (or a single item) runs inline;
    otherwise the persistent experiment pool is used, so repeated calls
    within one process reuse warm workers (and their compilation
    caches).

    Fault tolerance separates the two failure modes:

    * **The pool broke** (a worker died: OOM kill, segfault, hard
      exit).  All undelivered items are re-dispatched on a freshly
      built pool, up to ``retries`` times; items that still cannot be
      delivered degrade to inline execution in this process, with the
      downgrade logged.  ``pool_map`` itself never fails because of a
      dead worker.
    * **The item is poison** (a deterministic exception from ``fn``,
      e.g. an unpicklable argument or a bad spec).  The healthy pool
      is kept -- warm workers and their compilation caches survive --
      and the exception propagates immediately, wrapped in
      :class:`CellEvaluationError` naming the offending item (unless
      the worker already named it).

    ``on_result`` fires as each item completes (in completion order),
    which is what lets ``evaluate_cells`` checkpoint results while
    later items are still running.  ``stats`` collects retry counts
    for the run manifest.  ``inline_fallback=False`` replaces the
    degrade-to-inline step with :class:`PoolBrokenError` -- the
    scheduling service declines inline execution so a dying pool
    becomes a 503 for the affected requests instead of CPU work on the
    serving process (delivered items keep their results either way).
    ``force_pool=True`` disables the single-item inline shortcut: even
    a lone item is dispatched to a real worker process.  The service
    uses it (with ``jobs > 1``) so every request's work runs off the
    serving process -- which is also what lets a traced request collect
    span fragments from a genuine pool worker.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    items = list(items)
    if stats is None:
        stats = PoolMapStats()
    results: List = [None] * len(items)
    if not force_pool and (jobs == 1 or len(items) <= 1):
        for index, item in enumerate(items):
            results[index] = fn(item)
            if on_result is not None:
                on_result(index, results[index])
        return results

    pending = list(range(len(items)))
    while pending:
        executor = _pool(jobs)
        futures = {executor.submit(fn, items[i]): i for i in pending}
        broken: List[int] = []
        for future in as_completed(futures):
            index = futures[future]
            try:
                results[index] = future.result()
            except BrokenExecutor as exc:
                broken.append(index)
                stats.last_error = repr(exc)
            except Exception as exc:
                # Deterministic failure: the pool is healthy, keep it.
                if isinstance(exc, CellEvaluationError):
                    raise
                raise CellEvaluationError(items[index], exc) from exc
            else:
                if on_result is not None:
                    on_result(index, results[index])
        if not broken:
            return results
        broken.sort()
        shutdown_pool(wait=False)  # the pool is dead; don't block on it
        stats.pool_rebuilds += 1
        for index in broken:
            stats.item_attempts[index] = stats.item_attempts.get(index, 0) + 1
        if stats.pool_rebuilds > retries:
            if not inline_fallback:
                raise PoolBrokenError(len(broken), stats.last_error)
            logger.warning(
                "process pool broke %d times (retry budget %d); running "
                "%d item(s) inline in this process",
                stats.pool_rebuilds, retries, len(broken),
            )
            for index in broken:
                results[index] = fn(items[index])
                stats.inline_items += 1
                if on_result is not None:
                    on_result(index, results[index])
            return results
        logger.warning(
            "process pool broke (a worker died); rebuilding and retrying "
            "%d item(s) [attempt %d/%d]",
            len(broken), stats.pool_rebuilds, retries,
        )
        pending = broken
    return results


def evaluate_cells(
    specs: Sequence[CellSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    manifest: Optional[ManifestWriter] = None,
    resume: Optional[bool] = None,
    retries: int = MAX_POOL_RETRIES,
    inline_fallback: bool = True,
    stats: Optional[PoolMapStats] = None,
    force_pool: bool = False,
) -> List[CellResult]:
    """Evaluate cells, optionally fanned out over a process pool.

    Results come back in spec order.  Every random stream a cell uses
    is derived from string keys (program, memory, latency, processor,
    policy) plus the seed -- never from shared generator state -- so
    the output is bit-identical for any ``jobs``; parallelism only
    changes wall-clock time.

    ``cache``/``manifest``/``resume`` default to the ambient
    :func:`engine_session`.  With a cache, finished cells are replayed
    from disk before any work is dispatched (unless ``resume`` is
    false) and every newly computed cell is persisted *as its batch
    completes* -- so a crash or Ctrl-C loses at most the in-flight
    batches, and the next run recomputes only what is missing.
    Replayed cells are pickle round-trips of the originals, so cached,
    resumed and fresh runs are byte-identical for any ``jobs``.

    The unit of distribution is a *compile-sharing group*: all cells
    with the same (program, optimistic latency, compile settings) need
    exactly the same two compilations, so keeping a group in one worker
    means no traditional compilation ever runs twice anywhere (the
    cheap balanced compilation is duplicated at most once per worker
    per program).  Groups are then packed into a few cell-balanced
    batches -- enough for load balancing, few enough that task
    round-trips stay off the critical path.

    ``retries`` / ``inline_fallback`` / ``stats`` are forwarded to
    :func:`pool_map`; the scheduling service passes
    ``inline_fallback=False`` (and its own retry budget) so pool death
    raises :class:`PoolBrokenError` -- already-delivered cells are still
    cached and recorded, so a client retry replays them for free.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    session = _SESSION
    if cache is None:
        cache = session.cache
    if manifest is None:
        manifest = session.manifest
    if resume is None:
        resume = session.resume
    specs = list(specs)
    out: List[Optional[CellResult]] = [None] * len(specs)

    def record(spec: CellSpec, wall: float, worker: int, status: str,
               retried: int, metrics: Optional[dict] = None) -> None:
        if manifest is not None:
            manifest.record_cell(
                key=cell_key(spec),
                program=spec.program,
                system=spec.system.label,
                processor=spec.processor.name,
                wall_s=wall,
                worker=worker,
                cache=status,
                retries=retried,
                metrics=metrics,
            )

    missing: List[int] = []
    for index, spec in enumerate(specs):
        cached = cache.get(spec) if (cache is not None and resume) else None
        if cached is not None:
            out[index] = cached
            if spec.trace_ids:
                # A traced request served from cache still gets an
                # engine fragment, so its span tree explains the miss
                # of pool work.
                now = time.time_ns()
                _reqtrace.record_fragments(
                    _reqtrace.fragment(
                        trace_id,
                        f"cache_hit {spec.program}",
                        cat="engine",
                        start_ns=now,
                        dur_ns=0,
                        args={"cell_key": cell_key(spec)},
                    )
                    for trace_id in spec.trace_ids
                )
            record(spec, 0.0, os.getpid(), "hit", 0)
        else:
            missing.append(index)
    if not missing:
        return out

    if not force_pool and (jobs == 1 or len(missing) <= 1):
        rec = _obs.get()
        for index in missing:
            spec = specs[index]
            before = rec.metrics.snapshot() if rec is not None else None
            spans_mark = len(rec.spans) if rec is not None else 0
            t0_wall = time.time_ns()
            t0_clock = time.perf_counter_ns()
            start = time.perf_counter()
            out[index] = _evaluate_cell(spec)
            wall = time.perf_counter() - start
            summary = None
            delta = None
            if rec is not None:
                delta = MetricsRegistry.delta(before, rec.metrics.snapshot())
                summary = summarize_delta(delta) or None
            if spec.trace_ids:
                _reqtrace.record_fragments(
                    _trace_fragments(
                        spec, wall, t0_wall, t0_clock, rec,
                        rec.spans[spans_mark:] if rec is not None else (),
                        delta,
                    )
                )
                store = _reqtrace.active()
                if store is not None:
                    for trace_id in spec.trace_ids:
                        store.note_timing(trace_id, "pool", wall * 1000.0)
            if cache is not None:
                cache.put(spec, out[index])
            record(spec, wall, os.getpid(), "miss", 0,
                   metrics=summary)
        return out

    groups: Dict[tuple, List[int]] = {}
    for index in missing:
        spec = specs[index]
        key = (
            spec.program,
            spec.system.optimistic_latency,
            spec.seed,
            spec.runs,
            spec.n_boot,
            spec.register_file,
            spec.alias_model,
        )
        groups.setdefault(key, []).append(index)
    per_batch = max(1, -(-len(missing) // (jobs * 4)))
    batches: List[List[int]] = []
    current: List[int] = []
    for indices in groups.values():
        current.extend(indices)
        if len(current) >= per_batch:
            batches.append(current)
            current = []
    if current:
        batches.append(current)
    tasks = [[specs[i] for i in batch] for batch in batches]
    if stats is None:
        stats = PoolMapStats()

    parent_rec = _obs.get()
    parent_pid = os.getpid()

    def consume(batch_pos: int, timed: List[_TimedCell]) -> None:
        # Runs as each batch completes: checkpoint immediately so a
        # later crash cannot lose this batch.
        retried = stats.item_attempts.get(batch_pos, 0)
        for index, (cell, wall, worker, delta, fragments) in zip(
            batches[batch_pos], timed
        ):
            out[index] = cell
            if cache is not None:
                cache.put(specs[index], cell)
            summary = None
            if delta is not None:
                # Fold worker-recorded metrics into the parent registry
                # so --metrics-out is complete for any --jobs (inline
                # degraded items already recorded into it directly).
                if parent_rec is not None and worker != parent_pid:
                    parent_rec.metrics.merge(delta)
                summary = summarize_delta(delta) or None
            if fragments:
                _reqtrace.record_fragments(fragments)
                store = _reqtrace.active()
                if store is not None:
                    for trace_id in specs[index].trace_ids:
                        store.note_timing(trace_id, "pool", wall * 1000.0)
            record(specs[index], wall, worker, "miss", retried,
                   metrics=summary)

    pool_map(
        _evaluate_group_timed, tasks, jobs, retries=retries, stats=stats,
        on_result=consume, inline_fallback=inline_fallback,
        force_pool=force_pool,
    )
    if stats.inline_items and manifest is not None:
        manifest.record_pool_downgrade(
            stats.inline_items, cause=stats.last_error,
            trace_ids=sorted(
                {t for i in missing for t in specs[i].trace_ids}
            ) or None,
        )
    return out
