"""Shared machinery for the table/figure experiments.

An experiment *cell* is one (program, system row, processor model)
triple: both schedulers compile the program, the simulator runs every
block 30 times on the modelled machine, and the paper's bootstrap
yields the percentage improvement plus the component statistics
(instruction counts, interlock percentages, spill percentages)
reported across Tables 2-5.

Compilation is machine-independent for the balanced scheduler and
depends only on the optimistic latency for the traditional scheduler,
so compiled artefacts are memoised in a process-wide
:class:`CompilationCache`: each (program, policy, latency, register
file, alias model) combination compiles exactly once per process, no
matter how many tables or :class:`ProgramEvaluator` instances ask.

Cells are independent by construction -- every random stream is derived
from string keys via :func:`repro.simulate.rng.spawn`, never from
shared mutable generator state -- so :func:`evaluate_cells` can fan a
list of :class:`CellSpec` out over a ``concurrent.futures`` process
pool and return bit-identical results in spec order regardless of
worker count or completion order (see docs/performance.md).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.alias import AliasModel
from ..core.balanced import BalancedScheduler
from ..core.pipeline import CompilationResult, compile_program
from ..core.traditional import TraditionalScheduler
from ..ir.block import Program
from ..machine.config import SystemRow
from ..machine.processor import ProcessorModel, UNLIMITED
from ..regalloc.target import DEFAULT_REGISTER_FILE, RegisterFile
from ..simulate.program import DEFAULT_RUNS, ProgramRuns, simulate_program
from ..simulate.rng import DEFAULT_SEED, spawn
from ..simulate.stats import (
    DEFAULT_BOOTSTRAP,
    ImprovementResult,
    percentage_improvement,
    program_bootstrap_runtimes,
)
from ..workloads.perfect import load_program


class CompilationCache:
    """Process-wide memo of :func:`compile_program` results.

    Keys are ``(program identity, policy key, register file, alias
    model)``; the cache keeps a strong reference to each keyed program
    so object identities stay valid for the life of the process (the
    Perfect Club suite is itself cached for the process lifetime, so
    this adds nothing for the standard tables).
    """

    def __init__(self) -> None:
        self._entries: Dict[tuple, CompilationResult] = {}
        self._programs: Dict[int, Program] = {}

    def get_or_compile(
        self,
        program: Program,
        policy_key: tuple,
        factory: Callable[[], CompilationResult],
    ) -> CompilationResult:
        key = (id(program),) + policy_key
        result = self._entries.get(key)
        if result is None:
            result = self._entries[key] = factory()
            self._programs[id(program)] = program
        return result

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._programs.clear()


#: The shared cache every :class:`ProgramEvaluator` compiles through.
COMPILATION_CACHE = CompilationCache()


@dataclass
class CellResult:
    """One evaluated (program, system, processor) cell."""

    program: str
    system: SystemRow
    processor: ProcessorModel
    improvement: ImprovementResult
    traditional_instructions: float
    balanced_instructions: float
    traditional_interlock_pct: float
    balanced_interlock_pct: float
    traditional_spill_pct: float
    balanced_spill_pct: float

    @property
    def imp_pct(self) -> float:
        return self.improvement.mean


class ProgramEvaluator:
    """Compiles a program once per policy and evaluates table cells."""

    def __init__(
        self,
        program: Program,
        register_file: Optional[RegisterFile] = DEFAULT_REGISTER_FILE,
        alias_model: AliasModel = AliasModel.FORTRAN,
        seed: int = DEFAULT_SEED,
        runs: int = DEFAULT_RUNS,
        n_boot: int = DEFAULT_BOOTSTRAP,
    ):
        self.program = program
        self.register_file = register_file
        self.alias_model = alias_model
        self.seed = seed
        self.runs = runs
        self.n_boot = n_boot

    # ------------------------------------------------------------------
    # Compilation (memoised process-wide in COMPILATION_CACHE)
    # ------------------------------------------------------------------
    def balanced(self) -> CompilationResult:
        """The balanced compilation (machine-independent; compiled once)."""
        return COMPILATION_CACHE.get_or_compile(
            self.program,
            ("balanced", self.register_file, self.alias_model),
            lambda: compile_program(
                self.program,
                BalancedScheduler(),
                register_file=self.register_file,
                alias_model=self.alias_model,
            ),
        )

    def traditional(self, optimistic_latency: float) -> CompilationResult:
        """The traditional compilation for one optimistic latency."""
        # Normalise through the scheduler so 2 and 2.0 share a key but
        # 2.15 and 2.4 stay exactly distinct (Fraction, not float).
        latency_key = TraditionalScheduler(optimistic_latency).optimistic_latency
        return COMPILATION_CACHE.get_or_compile(
            self.program,
            ("traditional", latency_key, self.register_file, self.alias_model),
            lambda: compile_program(
                self.program,
                TraditionalScheduler(optimistic_latency),
                register_file=self.register_file,
                alias_model=self.alias_model,
            ),
        )

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _simulate(
        self,
        compilation: CompilationResult,
        row: SystemRow,
        processor: ProcessorModel,
        policy_tag: str,
    ) -> ProgramRuns:
        rng = spawn(
            "sim",
            self.program.name,
            row.memory.name,
            f"{row.optimistic_latency:g}",
            processor.name,
            policy_tag,
            seed=self.seed,
        )
        return simulate_program(
            compilation.final_blocks,
            processor,
            row.memory,
            rng,
            runs=self.runs,
            name=f"{self.program.name}/{policy_tag}",
        )

    def cell(
        self, row: SystemRow, processor: ProcessorModel = UNLIMITED
    ) -> CellResult:
        """Evaluate one table cell (compile if needed, simulate, bootstrap)."""
        balanced = self.balanced()
        traditional = self.traditional(row.optimistic_latency)

        trad_runs = self._simulate(traditional, row, processor, "traditional")
        bal_runs = self._simulate(balanced, row, processor, "balanced")

        boot_rng = spawn(
            "boot",
            self.program.name,
            row.memory.name,
            f"{row.optimistic_latency:g}",
            processor.name,
            seed=self.seed,
        )
        t_boot = program_bootstrap_runtimes(trad_runs, boot_rng, self.n_boot)
        b_boot = program_bootstrap_runtimes(bal_runs, boot_rng, self.n_boot)
        improvement = percentage_improvement(t_boot, b_boot)

        return CellResult(
            program=self.program.name,
            system=row,
            processor=processor,
            improvement=improvement,
            traditional_instructions=traditional.dynamic_instructions,
            balanced_instructions=balanced.dynamic_instructions,
            traditional_interlock_pct=trad_runs.interlock_percentage(),
            balanced_interlock_pct=bal_runs.interlock_percentage(),
            traditional_spill_pct=traditional.spill_percentage,
            balanced_spill_pct=balanced.spill_percentage,
        )


def geometric_layout(values: Sequence[float], width: int = 6) -> str:
    """Small helper: format a row of numbers for the console tables."""
    return " ".join(f"{v:{width}.1f}" for v in values)


# ----------------------------------------------------------------------
# Parallel cell evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellSpec:
    """One table cell as a picklable work item.

    The program is referenced by suite name (workers reload it from the
    process-local cache) and everything else is a frozen value object,
    so a spec can cross a process boundary and still evaluate to the
    exact cell the serial path would produce.
    """

    program: str
    system: SystemRow
    processor: ProcessorModel = UNLIMITED
    seed: int = DEFAULT_SEED
    runs: int = DEFAULT_RUNS
    n_boot: int = DEFAULT_BOOTSTRAP
    register_file: Optional[RegisterFile] = DEFAULT_REGISTER_FILE
    alias_model: AliasModel = AliasModel.FORTRAN


#: Per-process evaluators, keyed by everything but (system, processor):
#: a worker handed many cells of one program reuses one evaluator (and,
#: through COMPILATION_CACHE, every compilation it has already done).
_EVALUATORS: Dict[tuple, ProgramEvaluator] = {}


def _evaluate_cell(spec: CellSpec) -> CellResult:
    """Worker entry point: evaluate one cell in this process."""
    key = (
        spec.program,
        spec.seed,
        spec.runs,
        spec.n_boot,
        spec.register_file,
        spec.alias_model,
    )
    evaluator = _EVALUATORS.get(key)
    if evaluator is None:
        evaluator = _EVALUATORS[key] = ProgramEvaluator(
            load_program(spec.program),
            register_file=spec.register_file,
            alias_model=spec.alias_model,
            seed=spec.seed,
            runs=spec.runs,
            n_boot=spec.n_boot,
        )
    return evaluator.cell(spec.system, spec.processor)


def _evaluate_group(specs: Sequence[CellSpec]) -> List[CellResult]:
    """Worker entry point: evaluate one compile-sharing group of cells."""
    return [_evaluate_cell(spec) for spec in specs]


#: Lazily created, reused across evaluate_cells calls (so `run all`
#: forks once and the workers' compilation caches persist from one
#: table to the next -- the compile cost is paid once per process, not
#: once per table).
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_JOBS = 0


def _pool(jobs: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_JOBS
    if _POOL is None or _POOL_JOBS != jobs:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        _POOL = ProcessPoolExecutor(max_workers=jobs)
        _POOL_JOBS = jobs
    return _POOL


def pool_map(fn: Callable, items: Sequence, jobs: int = 1) -> List:
    """Map a picklable function over items through the shared pool.

    Order-preserving.  ``jobs == 1`` (or a single item) runs inline;
    otherwise the persistent experiment pool is used, so repeated calls
    within one process reuse warm workers (and their compilation
    caches).  If the pool breaks, it is discarded so the next call
    starts fresh.
    """
    global _POOL
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        return list(_pool(jobs).map(fn, items))
    except Exception:
        if _POOL is not None:
            _POOL.shutdown(wait=False)
            _POOL = None
        raise


def evaluate_cells(
    specs: Sequence[CellSpec], jobs: int = 1
) -> List[CellResult]:
    """Evaluate cells, optionally fanned out over a process pool.

    Results come back in spec order.  Every random stream a cell uses
    is derived from string keys (program, memory, latency, processor,
    policy) plus the seed -- never from shared generator state -- so
    the output is bit-identical for any ``jobs``; parallelism only
    changes wall-clock time.

    The unit of distribution is a *compile-sharing group*: all cells
    with the same (program, optimistic latency, compile settings) need
    exactly the same two compilations, so keeping a group in one worker
    means no traditional compilation ever runs twice anywhere (the
    cheap balanced compilation is duplicated at most once per worker
    per program).  Groups are then packed into a few cell-balanced
    batches -- enough for load balancing, few enough that task
    round-trips stay off the critical path.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(specs) <= 1:
        return [_evaluate_cell(spec) for spec in specs]
    groups: Dict[tuple, List[int]] = {}
    for index, spec in enumerate(specs):
        key = (
            spec.program,
            spec.system.optimistic_latency,
            spec.seed,
            spec.runs,
            spec.n_boot,
            spec.register_file,
            spec.alias_model,
        )
        groups.setdefault(key, []).append(index)
    per_batch = max(1, -(-len(specs) // (jobs * 4)))
    batches: List[List[int]] = []
    current: List[int] = []
    for indices in groups.values():
        current.extend(indices)
        if len(current) >= per_batch:
            batches.append(current)
            current = []
    if current:
        batches.append(current)
    tasks = [[specs[i] for i in batch] for batch in batches]
    out: List[Optional[CellResult]] = [None] * len(specs)
    for batch, cells in zip(batches, pool_map(_evaluate_group, tasks, jobs)):
        for index, cell in zip(batch, cells):
            out[index] = cell
    return out
