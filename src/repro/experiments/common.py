"""Shared machinery for the table/figure experiments.

An experiment *cell* is one (program, system row, processor model)
triple: both schedulers compile the program, the simulator runs every
block 30 times on the modelled machine, and the paper's bootstrap
yields the percentage improvement plus the component statistics
(instruction counts, interlock percentages, spill percentages)
reported across Tables 2-5.

Compilation is machine-independent for the balanced scheduler and
depends only on the optimistic latency for the traditional scheduler,
so :class:`ProgramEvaluator` caches compiled artefacts and reuses them
across the (many) rows of a table.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.alias import AliasModel
from ..core.balanced import BalancedScheduler
from ..core.pipeline import CompilationResult, compile_program
from ..core.traditional import TraditionalScheduler
from ..ir.block import Program
from ..machine.config import SystemRow
from ..machine.processor import ProcessorModel, UNLIMITED
from ..regalloc.target import DEFAULT_REGISTER_FILE, RegisterFile
from ..simulate.program import DEFAULT_RUNS, ProgramRuns, simulate_program
from ..simulate.rng import DEFAULT_SEED, spawn
from ..simulate.stats import (
    DEFAULT_BOOTSTRAP,
    ImprovementResult,
    percentage_improvement,
    program_bootstrap_runtimes,
)


@dataclass
class CellResult:
    """One evaluated (program, system, processor) cell."""

    program: str
    system: SystemRow
    processor: ProcessorModel
    improvement: ImprovementResult
    traditional_instructions: float
    balanced_instructions: float
    traditional_interlock_pct: float
    balanced_interlock_pct: float
    traditional_spill_pct: float
    balanced_spill_pct: float

    @property
    def imp_pct(self) -> float:
        return self.improvement.mean


class ProgramEvaluator:
    """Compiles a program once per policy and evaluates table cells."""

    def __init__(
        self,
        program: Program,
        register_file: Optional[RegisterFile] = DEFAULT_REGISTER_FILE,
        alias_model: AliasModel = AliasModel.FORTRAN,
        seed: int = DEFAULT_SEED,
        runs: int = DEFAULT_RUNS,
        n_boot: int = DEFAULT_BOOTSTRAP,
    ):
        self.program = program
        self.register_file = register_file
        self.alias_model = alias_model
        self.seed = seed
        self.runs = runs
        self.n_boot = n_boot
        self._balanced: Optional[CompilationResult] = None
        self._traditional: Dict[Fraction, CompilationResult] = {}

    # ------------------------------------------------------------------
    # Compilation caches
    # ------------------------------------------------------------------
    def balanced(self) -> CompilationResult:
        """The balanced compilation (machine-independent; computed once)."""
        if self._balanced is None:
            self._balanced = compile_program(
                self.program,
                BalancedScheduler(),
                register_file=self.register_file,
                alias_model=self.alias_model,
            )
        return self._balanced

    def traditional(self, optimistic_latency: float) -> CompilationResult:
        """The traditional compilation for one optimistic latency."""
        key = TraditionalScheduler(optimistic_latency).optimistic_latency
        if key not in self._traditional:
            self._traditional[key] = compile_program(
                self.program,
                TraditionalScheduler(optimistic_latency),
                register_file=self.register_file,
                alias_model=self.alias_model,
            )
        return self._traditional[key]

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def _simulate(
        self,
        compilation: CompilationResult,
        row: SystemRow,
        processor: ProcessorModel,
        policy_tag: str,
    ) -> ProgramRuns:
        rng = spawn(
            "sim",
            self.program.name,
            row.memory.name,
            f"{row.optimistic_latency:g}",
            processor.name,
            policy_tag,
            seed=self.seed,
        )
        return simulate_program(
            compilation.final_blocks,
            processor,
            row.memory,
            rng,
            runs=self.runs,
            name=f"{self.program.name}/{policy_tag}",
        )

    def cell(
        self, row: SystemRow, processor: ProcessorModel = UNLIMITED
    ) -> CellResult:
        """Evaluate one table cell (compile if needed, simulate, bootstrap)."""
        balanced = self.balanced()
        traditional = self.traditional(row.optimistic_latency)

        trad_runs = self._simulate(traditional, row, processor, "traditional")
        bal_runs = self._simulate(balanced, row, processor, "balanced")

        boot_rng = spawn(
            "boot",
            self.program.name,
            row.memory.name,
            f"{row.optimistic_latency:g}",
            processor.name,
            seed=self.seed,
        )
        t_boot = program_bootstrap_runtimes(trad_runs, boot_rng, self.n_boot)
        b_boot = program_bootstrap_runtimes(bal_runs, boot_rng, self.n_boot)
        improvement = percentage_improvement(t_boot, b_boot)

        return CellResult(
            program=self.program.name,
            system=row,
            processor=processor,
            improvement=improvement,
            traditional_instructions=traditional.dynamic_instructions,
            balanced_instructions=balanced.dynamic_instructions,
            traditional_interlock_pct=trad_runs.interlock_percentage(),
            balanced_interlock_pct=bal_runs.interlock_percentage(),
            traditional_spill_pct=traditional.spill_percentage,
            balanced_spill_pct=balanced.spill_percentage,
        )


def geometric_layout(values: Sequence[float], width: int = 6) -> str:
    """Small helper: format a row of numbers for the console tables."""
    return " ".join(f"{v:{width}.1f}" for v in values)
