"""Shared-memory scheduling engine: flat DAG wire format + pool fan-out.

The experiment pool distributes work as :class:`~.common.CellSpec`
values -- programs travel by *name* and every worker recompiles them.
That is the right trade for table cells (compilation is the cheap
part), but the fan-outs on the ROADMAP (scheduling-as-a-service, the
ablation engine sweeping scheduler variants over a fixed program)
invert it: the DAGs are already built and weighted in the parent, and
what crosses the process boundary per task must not be a pickle of
every ``Instruction``/``CodeDAG`` object graph.

This module gives those fan-outs an array-native wire format:

* :func:`encode_blocks` flattens blocks and their DAGs into one
  contiguous int64 payload -- CSR edge arrays (``succ_ptr`` /
  ``succ_dst`` / ``succ_kind``), opcode/latency/ident/tag tables,
  defs/uses register tables (CSR over an interned register table),
  memory operands, live-in/live-out lists, and exact weights as
  numerator/denominator pairs -- and places it in a
  :mod:`multiprocessing.shared_memory` segment.  Strings (block names,
  memory regions, tags) are interned once per arena into a small
  pickled directory at the head of the segment.
* :class:`ArenaReader` attaches to a segment by name and rebuilds
  ``(BasicBlock, CodeDAG)`` pairs from the buffers -- no unpickling of
  instruction objects, one attach per worker process.
* :func:`schedule_blocks` is the fan-out entry point: tasks are
  ``(arena name, block index)`` handles, workers reconstruct from
  shared memory, schedule, and ship back only the slim outcome
  (order, no-op span, priorities, slots).  Blocks are re-emitted in
  the parent, so instruction objects never cross a process boundary
  in either direction.

Exactness: weights and per-edge latency overrides are
:class:`~fractions.Fraction` values; they travel as int64
numerator/denominator pairs (with a pickled escape hatch for values
that overflow int64, which no real block produces) and reconstruct to
equal values, so pooled scheduling is byte-identical to inline
scheduling -- the engine property tests assert it.
"""

from __future__ import annotations

import atexit
import pickle
import struct
import weakref
from dataclasses import dataclass, field
from fractions import Fraction
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.dag import CodeDAG, DepKind
from ..core.scheduler import ListScheduler, ScheduleResult
from ..ir.block import BasicBlock
from ..ir.instructions import Instruction, Opcode
from ..ir.operands import (
    Immediate,
    MemRef,
    PhysReg,
    Register,
    RegClass,
    VirtualReg,
)
from .common import pool_map

_OPCODES = list(Opcode)
_OPCODE_CODE = {op: code for code, op in enumerate(_OPCODES)}
_KINDS = list(DepKind)
_KIND_CODE = {kind: code for code, kind in enumerate(_KINDS)}
_RCLASSES = list(RegClass)
_RCLASS_CODE = {rclass: code for code, rclass in enumerate(_RCLASSES)}

#: ``affine_coeff is None`` on the wire (no valid coefficient is near it).
_NONE_COEFF = -(1 << 62)
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: Segment header: payload offset of the int64 array (the pickled
#: directory sits between the header and the payload).
_HEADER = struct.Struct("<qq")  # (directory length, payload offset)


def _fits(value: int) -> bool:
    return _INT64_MIN <= value <= _INT64_MAX


class _Packer:
    """Append int64 arrays to one payload, remembering each slice."""

    def __init__(self) -> None:
        self._chunks: List[np.ndarray] = []
        self._length = 0

    def put(self, values) -> Tuple[int, int]:
        arr = np.asarray(list(values), dtype=np.int64).ravel()
        slot = (self._length, arr.size)
        self._chunks.append(arr)
        self._length += arr.size
        return slot

    def payload(self) -> np.ndarray:
        if not self._chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self._chunks)


@dataclass
class _BlockDirectory:
    """Per-block directory: payload slices plus the non-numeric bits."""

    name: str
    frequency: float
    n: int
    slots: Dict[str, Tuple[int, int]]
    #: Escape hatch for weights / overrides too large for int64 words.
    big_weights: Dict[int, Fraction] = field(default_factory=dict)
    big_overrides: Dict[Tuple[int, int], Fraction] = field(default_factory=dict)


@dataclass
class _ArenaDirectory:
    """The pickled head of a segment: everything that is not int64."""

    strings: List[str]
    reg_slot: Tuple[int, int]
    blocks: List[_BlockDirectory]


#: Every live (undisposed) arena owned by this process.  Shared-memory
#: segments outlive the process unless unlinked, so an interrupted
#: ``schedule``/``serve`` must be able to sweep them all on the way out
#: -- :func:`dispose_all_arenas` is registered with ``atexit`` and
#: called from the CLI's interrupt paths.
_LIVE_ARENAS: "weakref.WeakSet[BlockArena]" = weakref.WeakSet()


def dispose_all_arenas() -> None:
    """Dispose every live arena this process still owns (idempotent)."""
    for arena in list(_LIVE_ARENAS):
        arena.dispose()


atexit.register(dispose_all_arenas)


class BlockArena:
    """An owned shared-memory segment of encoded blocks."""

    def __init__(self, shm: shared_memory.SharedMemory, count: int):
        self._shm = shm
        self.count = count
        _LIVE_ARENAS.add(self)

    @property
    def name(self) -> str:
        return self._shm.name

    def dispose(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double dispose
                pass
            self._shm = None


def _frac_parts(value) -> Tuple[int, int]:
    frac = Fraction(value)
    return frac.numerator, frac.denominator


def encode_blocks(
    blocks: Sequence[BasicBlock], dags: Sequence[CodeDAG]
) -> BlockArena:
    """Flatten ``(block, dag)`` pairs into one shared-memory arena."""
    if len(blocks) != len(dags):
        raise ValueError("need exactly one DAG per block")
    packer = _Packer()
    strings: List[str] = []
    string_ids: Dict[str, int] = {}
    registers: List[Register] = []
    register_ids: Dict[Register, int] = {}

    def intern_string(text: str) -> int:
        code = string_ids.get(text)
        if code is None:
            code = string_ids[text] = len(strings)
            strings.append(text)
        return code

    def intern_reg(reg: Register) -> int:
        code = register_ids.get(reg)
        if code is None:
            code = register_ids[reg] = len(registers)
            registers.append(reg)
        return code

    directories: List[_BlockDirectory] = []
    for block, dag in zip(blocks, dags):
        if list(dag.instructions) != list(block.instructions):
            raise ValueError(
                f"DAG of block {block.name!r} was built from different "
                f"instructions"
            )
        n = len(block)
        directory = _BlockDirectory(
            name=block.name, frequency=block.frequency, n=n, slots={}
        )
        slots = directory.slots

        op = [0] * n
        lat = [0] * n
        ident = [0] * n
        tag = [0] * n
        imm_flag = [0] * n
        imm_val = [0] * n
        mem_flag = [0] * n
        mem_region = [0] * n
        mem_base = [0] * n
        mem_off = [0] * n
        mem_coeff = [0] * n
        defs_ptr = [0] * (n + 1)
        defs_reg: List[int] = []
        uses_ptr = [0] * (n + 1)
        uses_reg: List[int] = []
        for v, inst in enumerate(block.instructions):
            op[v] = _OPCODE_CODE[inst.opcode]
            lat[v] = inst.latency
            ident[v] = inst.ident
            tag[v] = intern_string(inst.tag)
            if inst.imm is not None:
                imm_flag[v] = 1
                imm_val[v] = inst.imm.value
            if inst.mem is not None:
                mem_flag[v] = 1
                mem_region[v] = intern_string(inst.mem.region)
                mem_base[v] = (
                    intern_reg(inst.mem.base) if inst.mem.base is not None else -1
                )
                mem_off[v] = inst.mem.offset
                mem_coeff[v] = (
                    inst.mem.affine_coeff
                    if inst.mem.affine_coeff is not None
                    else _NONE_COEFF
                )
            defs_reg.extend(intern_reg(r) for r in inst.defs)
            defs_ptr[v + 1] = len(defs_reg)
            uses_reg.extend(intern_reg(r) for r in inst.uses)
            uses_ptr[v + 1] = len(uses_reg)

        succ_ptr = [0] * (n + 1)
        succ_dst: List[int] = []
        succ_kind: List[int] = []
        for v in range(n):
            for dst, kind in sorted(dag._succ[v].items()):
                succ_dst.append(dst)
                succ_kind.append(_KIND_CODE[kind])
            succ_ptr[v + 1] = len(succ_dst)

        wnum = [0] * n
        wden = [1] * n
        for v, weight in enumerate(dag.weights):
            num, den = _frac_parts(weight)
            if _fits(num) and _fits(den):
                wnum[v], wden[v] = num, den
            else:  # pragma: no cover - pathological weights
                directory.big_weights[v] = Fraction(weight)

        overrides: List[int] = []
        for (src, dst), latency in sorted(dag._edge_latency.items()):
            num, den = _frac_parts(latency)
            if _fits(num) and _fits(den):
                overrides.extend((src, dst, num, den))
            else:  # pragma: no cover - pathological overrides
                directory.big_overrides[(src, dst)] = Fraction(latency)

        slots["op"] = packer.put(op)
        slots["lat"] = packer.put(lat)
        slots["ident"] = packer.put(ident)
        slots["tag"] = packer.put(tag)
        slots["imm_flag"] = packer.put(imm_flag)
        slots["imm_val"] = packer.put(imm_val)
        slots["mem_flag"] = packer.put(mem_flag)
        slots["mem_region"] = packer.put(mem_region)
        slots["mem_base"] = packer.put(mem_base)
        slots["mem_off"] = packer.put(mem_off)
        slots["mem_coeff"] = packer.put(mem_coeff)
        slots["defs_ptr"] = packer.put(defs_ptr)
        slots["defs_reg"] = packer.put(defs_reg)
        slots["uses_ptr"] = packer.put(uses_ptr)
        slots["uses_reg"] = packer.put(uses_reg)
        slots["live_in"] = packer.put(intern_reg(r) for r in block.live_in)
        slots["live_out"] = packer.put(intern_reg(r) for r in block.live_out)
        slots["carried"] = packer.put(
            code
            for out_reg, in_reg in block.carried.items()
            for code in (intern_reg(out_reg), intern_reg(in_reg))
        )
        slots["succ_ptr"] = packer.put(succ_ptr)
        slots["succ_dst"] = packer.put(succ_dst)
        slots["succ_kind"] = packer.put(succ_kind)
        slots["wnum"] = packer.put(wnum)
        slots["wden"] = packer.put(wden)
        slots["overrides"] = packer.put(overrides)
        directories.append(directory)

    reg_rows: List[int] = []
    for reg in registers:
        reg_rows.extend(
            (
                1 if isinstance(reg, PhysReg) else 0,
                reg.index,
                _RCLASS_CODE[reg.rclass],
                1 if getattr(reg, "is_spill_pool", False) else 0,
            )
        )
    reg_slot = packer.put(reg_rows)

    head = pickle.dumps(
        _ArenaDirectory(strings=strings, reg_slot=reg_slot, blocks=directories),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    payload = packer.payload()
    payload_offset = _HEADER.size + len(head)
    payload_offset += -payload_offset % 8  # 8-align the int64 payload
    total = max(1, payload_offset + payload.nbytes)
    shm = shared_memory.SharedMemory(create=True, size=total)
    shm.buf[: _HEADER.size] = _HEADER.pack(len(head), payload_offset)
    shm.buf[_HEADER.size : _HEADER.size + len(head)] = head
    if payload.size:
        np.frombuffer(
            shm.buf, dtype=np.int64, count=payload.size, offset=payload_offset
        )[:] = payload
    return BlockArena(shm, len(blocks))


class ArenaReader:
    """Reconstructs blocks and DAGs from a shared-memory arena."""

    def __init__(self, name: str):
        self._shm = shared_memory.SharedMemory(name=name)
        head_len, payload_offset = _HEADER.unpack_from(self._shm.buf, 0)
        self._directory: _ArenaDirectory = pickle.loads(
            bytes(self._shm.buf[_HEADER.size : _HEADER.size + head_len])
        )
        count = (len(self._shm.buf) - payload_offset) // 8
        self._payload = np.frombuffer(
            self._shm.buf, dtype=np.int64, count=count, offset=payload_offset
        )
        offset, length = self._directory.reg_slot
        rows = self._payload[offset : offset + length]
        self._registers: List[Register] = []
        for k in range(length // 4):
            is_phys, index, rclass, spill = (
                int(x) for x in rows[4 * k : 4 * k + 4]
            )
            if is_phys:
                self._registers.append(
                    PhysReg(index, _RCLASSES[rclass], bool(spill))
                )
            else:
                self._registers.append(VirtualReg(index, _RCLASSES[rclass]))

    def __len__(self) -> int:
        return len(self._directory.blocks)

    def close(self) -> None:
        if self._shm is not None:
            self._payload = None
            self._shm.close()
            self._shm = None

    # ------------------------------------------------------------------
    def materialize(self, index: int) -> Tuple[BasicBlock, CodeDAG]:
        """Rebuild one ``(block, dag)`` pair from the buffers."""
        directory = self._directory.blocks[index]
        strings = self._directory.strings
        regs = self._registers
        payload = self._payload

        def arr(key: str) -> np.ndarray:
            offset, length = directory.slots[key]
            return payload[offset : offset + length]

        n = directory.n
        op = arr("op")
        lat = arr("lat")
        ident = arr("ident")
        tag = arr("tag")
        imm_flag = arr("imm_flag")
        imm_val = arr("imm_val")
        mem_flag = arr("mem_flag")
        mem_region = arr("mem_region")
        mem_base = arr("mem_base")
        mem_off = arr("mem_off")
        mem_coeff = arr("mem_coeff")
        defs_ptr = arr("defs_ptr")
        defs_reg = arr("defs_reg")
        uses_ptr = arr("uses_ptr")
        uses_reg = arr("uses_reg")

        instructions: List[Instruction] = []
        for v in range(n):
            mem = None
            if mem_flag[v]:
                coeff = int(mem_coeff[v])
                base = int(mem_base[v])
                mem = MemRef(
                    region=strings[int(mem_region[v])],
                    base=regs[base] if base >= 0 else None,
                    offset=int(mem_off[v]),
                    affine_coeff=None if coeff == _NONE_COEFF else coeff,
                )
            imm = Immediate(int(imm_val[v])) if imm_flag[v] else None
            instructions.append(
                Instruction(
                    opcode=_OPCODES[int(op[v])],
                    defs=tuple(
                        regs[int(r)]
                        for r in defs_reg[int(defs_ptr[v]) : int(defs_ptr[v + 1])]
                    ),
                    uses=tuple(
                        regs[int(r)]
                        for r in uses_reg[int(uses_ptr[v]) : int(uses_ptr[v + 1])]
                    ),
                    mem=mem,
                    imm=imm,
                    latency=int(lat[v]),
                    ident=int(ident[v]),
                    tag=strings[int(tag[v])],
                )
            )

        block = BasicBlock(directory.name, frequency=directory.frequency)
        block.instructions = instructions
        block.live_in = [regs[int(r)] for r in arr("live_in")]
        block.live_out = [regs[int(r)] for r in arr("live_out")]
        carried = arr("carried")
        block.carried = {
            regs[int(carried[2 * k])]: regs[int(carried[2 * k + 1])]
            for k in range(len(carried) // 2)
        }

        dag = CodeDAG(instructions)
        succ_ptr = arr("succ_ptr")
        succ_dst = arr("succ_dst")
        succ_kind = arr("succ_kind")
        succ = dag._succ
        pred = dag._pred
        for v in range(n):
            for e in range(int(succ_ptr[v]), int(succ_ptr[v + 1])):
                dst = int(succ_dst[e])
                kind = _KINDS[int(succ_kind[e])]
                succ[v][dst] = kind
                pred[dst][v] = kind
        wnum = arr("wnum")
        wden = arr("wden")
        for v in range(n):
            den = int(wden[v])
            dag.weights[v] = (
                int(wnum[v]) if den == 1 else Fraction(int(wnum[v]), den)
            )
        for v, weight in directory.big_weights.items():
            dag.weights[v] = weight
        overrides = arr("overrides")
        for k in range(len(overrides) // 4):
            src, dst, num, den = (int(x) for x in overrides[4 * k : 4 * k + 4])
            dag._edge_latency[(src, dst)] = (
                num if den == 1 else Fraction(num, den)
            )
        dag._edge_latency.update(directory.big_overrides)
        return block, dag


# ----------------------------------------------------------------------
# Pool fan-out
# ----------------------------------------------------------------------
#: Per-process reader cache.  One arena is live at a time (the parent
#: disposes it when its fan-out returns), so attaching to a new name
#: closes the previous mapping.
_READERS: Dict[str, ArenaReader] = {}


def _attach(name: str) -> ArenaReader:
    reader = _READERS.get(name)
    if reader is None:
        for stale in list(_READERS):
            _READERS.pop(stale).close()
        reader = _READERS[name] = ArenaReader(name)
    return reader


#: What a worker ships back per block: everything in a
#: :class:`ScheduleResult` except the emitted block (re-emitted in the
#: parent so instruction objects never cross the boundary).
_SlimResult = Tuple[List[int], Fraction, list, dict]


def _schedule_shared(task: Tuple[str, int, ListScheduler]) -> _SlimResult:
    """Worker entry point: reconstruct one block from shared memory
    and schedule it."""
    arena_name, index, scheduler = task
    block, dag = _attach(arena_name).materialize(index)
    del block  # scheduling needs only the DAG; emission happens parent-side
    result = scheduler.schedule(dag)
    return result.order, result.noop_span, result.priorities, result.slots


def schedule_blocks(
    blocks: Sequence[BasicBlock],
    dags: Sequence[CodeDAG],
    scheduler: Optional[ListScheduler] = None,
    jobs: int = 1,
) -> List[ScheduleResult]:
    """Schedule many weighted DAGs, optionally fanned over the pool.

    ``dags[i]`` must be the DAG of ``blocks[i]`` with weights already
    assigned (run the policy's ``assign_weights`` first).  With
    ``jobs > 1`` the blocks travel to workers through a shared-memory
    arena (:func:`encode_blocks`) and only slim outcomes travel back;
    results are byte-identical to the inline path for any ``jobs``.
    """
    scheduler = scheduler if scheduler is not None else ListScheduler()
    blocks = list(blocks)
    dags = list(dags)
    if len(blocks) != len(dags):
        raise ValueError("need exactly one DAG per block")
    if jobs == 1 or len(blocks) <= 1:
        return [scheduler.schedule(dag, blk) for blk, dag in zip(blocks, dags)]
    arena = encode_blocks(blocks, dags)
    try:
        slim = pool_map(
            _schedule_shared,
            [(arena.name, i, scheduler) for i in range(len(blocks))],
            jobs=jobs,
        )
    finally:
        arena.dispose()
    results: List[ScheduleResult] = []
    for blk, dag, (order, noop_span, priorities, slots) in zip(
        blocks, dags, slim
    ):
        results.append(
            ScheduleResult(
                order=order,
                block=ListScheduler._emit(dag, order, blk),
                noop_span=noop_span,
                priorities=priorities,
                slots=slots,
            )
        )
    return results
