"""Delay-tracking study: does compile-time scheduling still matter when
the hardware adapts at run time?

Balanced scheduling's premise is that the *compiler* must spread
uncertain load latencies because the hardware cannot.  A delay-tracking
issue unit (:mod:`repro.machine.processor`,
``load_delay_tracking``) weakens that premise: loads that win a
tracking-table entry announce their return time, and the front end
parks stalled instructions and issues younger ready work meanwhile.
This study sweeps the tracking-table size from 0 (the paper's in-order
interlocked machine) to effectively infinite (perfect per-load
knowledge) and measures, per Perfect Club program on the canonical
N(2,5) network memory, the runtime improvement of three
compile-time-knowledge policies over the traditional scheduler:

* **balanced** -- the paper's policy (no latency knowledge assumed);
* **known-latency** -- balanced weights with every load pinned to the
  memory system's mean (:func:`repro.extensions.known_latency.
  expected_latency`), the compile-time counterpart of delay tracking;
* **optimal** -- the branch-and-bound backend's exact schedule under
  the fixed mean-latency model (best-effort at the study budget).

Every simulated issue order is additionally verified: one seeded
latency draw per (program, policy, table) replays through
:func:`repro.simulate.simulator.delaytrack_issue_trace` and must pass
the independent admissibility oracle
(:func:`repro.verify.check_delaytrack_issue`); the report prints the
violation count and the CI smoke gate requires zero.

All numbers are deterministic for a fixed seed, so the rendered report
is byte-stable and committed under ``results/delay_tracking.txt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.balanced import BalancedScheduler
from ..core.pipeline import compile_program
from ..core.traditional import TraditionalScheduler
from ..extensions.known_latency import KnownLatencyScheduler, expected_latency
from ..machine.config import N_2_5
from ..machine.memory import MemorySystem
from ..machine.processor import ProcessorModel, delay_tracking
from ..simulate.program import simulate_program
from ..simulate.rng import DEFAULT_SEED, spawn
from ..simulate.simulator import delaytrack_issue_trace
from ..simulate.stats import (
    percentage_improvement,
    program_bootstrap_runtimes,
)
from ..verify.oracle import check_delaytrack_issue
from ..workloads.perfect import load_program, program_names

#: Tracking-table sizes swept by the study.  0 is the paper's in-order
#: interlocked machine; 64 exceeds every suite block's load count, so
#: it is the perfect-knowledge limit.
DEFAULT_TABLES: Tuple[int, ...] = (0, 1, 2, 4, 64)

#: Branch-and-bound expansion budget per block for the optimal policy
#: (deterministic; large enough to certify every suite block).
STUDY_NODE_BUDGET = 50_000

#: The comparison policies, in presentation order.
POLICY_ORDER: Tuple[str, ...] = ("balanced", "known-latency", "optimal")


@dataclass(frozen=True)
class DelayTrackCell:
    """Improvement of one policy over traditional at one table size."""

    program: str
    table: int
    policy: str
    improvement_pct: float
    ci_low: float
    ci_high: float


@dataclass
class DelayTrackReport:
    """The full sweep plus the issue-trace verification tally."""

    memory_name: str
    optimistic_latency: float
    tables: Tuple[int, ...]
    cells: List[DelayTrackCell] = field(default_factory=list)
    traces_checked: int = 0
    oracle_violations: int = 0
    runs: int = 0
    seed: int = DEFAULT_SEED

    def cell(self, program: str, table: int, policy: str) -> DelayTrackCell:
        for c in self.cells:
            if (
                c.program == program
                and c.table == table
                and c.policy == policy
            ):
                return c
        raise KeyError((program, table, policy))

    def mean_improvement(self, table: int, policy: str) -> float:
        rows = [
            c for c in self.cells if c.table == table and c.policy == policy
        ]
        if not rows:
            return 0.0
        return sum(c.improvement_pct for c in rows) / len(rows)

    # ------------------------------------------------------------------
    def format(self) -> str:
        programs = sorted({c.program for c in self.cells})
        lines = [
            "Delay-tracking study: scheduling vs. hardware that adapts",
            f"  memory {self.memory_name}, traditional W="
            f"{self.optimistic_latency:g}, {self.runs} runs, "
            f"seed {self.seed}",
            "  cells: % runtime improvement over the traditional schedule",
            "  on the same processor (positive = policy is faster)",
            "",
        ]
        for policy in POLICY_ORDER:
            lines.append(f"  policy {policy}:")
            header = f"  {'program':10s}" + "".join(
                f"{self._table_label(t):>10s}" for t in self.tables
            )
            lines.append(header)
            lines.append("  " + "-" * (len(header) - 2))
            for program in programs:
                row = f"  {program:10s}"
                for table in self.tables:
                    c = self.cell(program, table, policy)
                    row += f"{c.improvement_pct:>+10.1f}"
                lines.append(row)
            mean_row = f"  {'mean':10s}"
            for table in self.tables:
                mean_row += f"{self.mean_improvement(table, policy):>+10.1f}"
            lines.append(mean_row)
            lines.append("")
        lines.append(
            f"  issue traces oracle-checked: {self.traces_checked}, "
            f"violations: {self.oracle_violations}"
        )
        return "\n".join(lines)

    @staticmethod
    def _table_label(table: int) -> str:
        if table == 0:
            return "in-order"
        if table >= 64:
            return "DT-inf"
        return f"DT-{table}"


# ----------------------------------------------------------------------
def _policies(memory: MemorySystem, optimistic_latency: float):
    """The four compiled policies of the study (traditional is the
    baseline the others are measured against)."""
    from ..core.optimal import OptimalScheduler

    return {
        "traditional": TraditionalScheduler(optimistic_latency),
        "balanced": BalancedScheduler(),
        "known-latency": KnownLatencyScheduler(expected_latency(memory)),
        "optimal": OptimalScheduler(
            int(optimistic_latency), node_budget=STUDY_NODE_BUDGET
        ),
    }


def _verify_traces(
    blocks,
    processor: ProcessorModel,
    memory: MemorySystem,
    key: Tuple,
    seed: int,
) -> Tuple[int, int]:
    """One seeded latency draw per block, replayed through the scalar
    engine's issue log and checked by the independent oracle."""
    checked = 0
    violations = 0
    for block in blocks:
        if not block.instructions:
            continue
        n_loads = sum(1 for i in block.instructions if i.is_load)
        rng = spawn("delaytrack-verify", *key, block.name, seed=seed)
        latencies = [int(x) for x in memory.sample_many(rng, n_loads)]
        trace = delaytrack_issue_trace(
            block.instructions, latencies, processor
        )
        checked += 1
        violations += len(check_delaytrack_issue(
            block.instructions, latencies, processor, trace
        ))
    return checked, violations


def run_delay_tracking(
    programs: Optional[Sequence[str]] = None,
    tables: Sequence[int] = DEFAULT_TABLES,
    memory: MemorySystem = N_2_5,
    seed: int = DEFAULT_SEED,
    runs: int = 30,
) -> DelayTrackReport:
    """Run the sweep over the paper suite (or a subset)."""
    names = list(programs) if programs is not None else program_names()
    optimistic = float(memory.optimistic_latencies[0])
    report = DelayTrackReport(
        memory_name=memory.name,
        optimistic_latency=optimistic,
        tables=tuple(tables),
        runs=runs,
        seed=seed,
    )
    policies = _policies(memory, optimistic)
    for name in names:
        program = load_program(name)
        compiled = {
            tag: compile_program(program, policy)
            for tag, policy in policies.items()
        }
        for table in tables:
            processor = delay_tracking(int(table))
            boots: Dict[str, "object"] = {}
            for tag, artefacts in compiled.items():
                key = (name, memory.name, f"t{table}", tag)
                series = simulate_program(
                    artefacts.final_blocks,
                    processor,
                    memory,
                    spawn("delaytrack", *key, seed=seed),
                    runs=runs,
                )
                boots[tag] = program_bootstrap_runtimes(
                    series, spawn("delaytrackb", *key, seed=seed)
                )
                checked, violations = _verify_traces(
                    artefacts.final_blocks, processor, memory, key, seed
                )
                report.traces_checked += checked
                report.oracle_violations += violations
            for policy in POLICY_ORDER:
                result = percentage_improvement(
                    boots["traditional"], boots[policy]
                )
                report.cells.append(DelayTrackCell(
                    program=name,
                    table=int(table),
                    policy=policy,
                    improvement_pct=result.mean,
                    ci_low=result.ci_low,
                    ci_high=result.ci_high,
                ))
    return report
