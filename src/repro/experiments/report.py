"""Machine-readable exports of the experiment results.

Each table's result object renders to the console through its own
``format()``; this module flattens them into records and serialises
records as CSV or GitHub-flavoured markdown, for plotting or
spreadsheet work.  Use through :func:`export` or the CLI's
``--format`` option.
"""

from __future__ import annotations

import io
from typing import Dict, List, Sequence, Union

from .figure3 import Figure3Result
from .table1 import Table1Result
from .table2 import Table2Result
from .table3 import Table3Result
from .table4 import OPTIMISTIC_LATENCIES, Table4Result
from .table5 import Table5Result

Record = Dict[str, Union[str, float, int]]
Exportable = Union[
    Figure3Result, Table1Result, Table2Result, Table3Result, Table4Result,
    Table5Result,
]


# ----------------------------------------------------------------------
# Flattening
# ----------------------------------------------------------------------
def records_of(result: Exportable) -> List[Record]:
    """Flatten any exportable result into a list of flat dicts."""
    if isinstance(result, Figure3Result):
        return [
            {
                "schedule": name,
                **{
                    f"latency_{latency}": counts[index]
                    for index, latency in enumerate(result.latencies)
                },
            }
            for name, counts in result.interlocks.items()
        ]
    if isinstance(result, Table1Result):
        out: List[Record] = []
        for load, row in sorted(result.matrix.items()):
            record: Record = {"load": load}
            for contributor, value in sorted(row.items()):
                record[contributor] = float(value)
            record["weight"] = float(result.weights[load])
            out.append(record)
        return out
    if isinstance(result, Table2Result):
        out = []
        for row in result.rows:
            record = {
                "system": row.system.memory.name,
                "optimistic_latency": row.system.optimistic_latency,
                "group": row.system.group,
            }
            for program, cell in row.cells.items():
                record[program] = round(cell.imp_pct, 2)
            record["mean"] = round(row.mean, 2)
            out.append(record)
        return out
    if isinstance(result, Table3Result):
        out = []
        for (label, processor), cell in result.cells.items():
            out.append(
                {
                    "system": label,
                    "processor": processor,
                    "imp_pct": round(cell.imp_pct, 2),
                    "ti_pct": round(cell.traditional_interlock_pct, 2),
                    "bi_pct": round(cell.balanced_interlock_pct, 2),
                    "tins": cell.traditional_instructions,
                    "bins": cell.balanced_instructions,
                }
            )
        return out
    if isinstance(result, Table4Result):
        out = []
        for row in result.rows:
            record = {
                "program": row.program,
                "bins": row.dynamic_instructions,
                "balanced": round(row.balanced, 3),
            }
            for latency in OPTIMISTIC_LATENCIES:
                record[f"w{latency:g}"] = round(
                    row.traditional[float(latency)], 3
                )
            out.append(record)
        return out
    if isinstance(result, Table5Result):
        out = []
        for (program, processor), cell in result.cells.items():
            out.append(
                {
                    "program": program,
                    "processor": processor,
                    "imp_pct": round(cell.imp_pct, 2),
                    "ti_pct": round(cell.traditional_interlock_pct, 2),
                    "bi_pct": round(cell.balanced_interlock_pct, 2),
                }
            )
        return out
    raise TypeError(f"no record flattening for {type(result).__name__}")


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
def _columns(records: Sequence[Record]) -> List[str]:
    columns: List[str] = []
    for record in records:
        for key in record:
            if key not in columns:
                columns.append(key)
    return columns


def to_csv(records: Sequence[Record]) -> str:
    """Serialise records as CSV (header + one line per record)."""
    import csv

    columns = _columns(records)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for record in records:
        writer.writerow(record)
    return buffer.getvalue()


def to_markdown(records: Sequence[Record]) -> str:
    """Serialise records as a GitHub-flavoured markdown table."""
    columns = _columns(records)
    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for record in records:
        cells = []
        for column in columns:
            value = record.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:g}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def export(result: Exportable, fmt: str = "text") -> str:
    """Render ``result`` as ``text`` (its own format()), ``csv`` or
    ``markdown``."""
    if fmt == "text":
        return result.format()  # type: ignore[union-attr]
    records = records_of(result)
    if fmt == "csv":
        return to_csv(records)
    if fmt == "markdown":
        return to_markdown(records)
    raise ValueError(f"unknown format {fmt!r} (text / csv / markdown)")
