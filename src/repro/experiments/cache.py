"""Content-addressed on-disk store for evaluated experiment cells.

A table cell's value is a pure function of its :class:`~repro.
experiments.common.CellSpec` (see docs/performance.md), so a completed
:class:`~repro.experiments.common.CellResult` can be persisted and
replayed verbatim: a re-run after a crash, a Ctrl-C, or a worker death
recomputes only the cells that never finished.  The store is what
backs ``balanced-sched run --resume`` (the default; ``--fresh``
recomputes everything).

Keys are SHA-256 digests of a *canonical token* built from every field
that influences the result -- program name, memory-system family and
parameters, optimistic latency, processor attributes, seed, runs,
bootstrap resamples, register file, alias model -- plus
:data:`CODE_VERSION`, a salt bumped whenever compilation or simulation
semantics change so stale entries can never masquerade as current
results.  Tokens use only primitive values (never ``hash()``, which is
randomised per process), so a key is stable across processes, machines
and Python versions.

Values are pickled exactly as computed; pickling preserves float bits,
so a cached, a resumed and a fresh run print byte-identical tables.
Layout: ``<root>/<first two hex chars>/<digest>.pkl``, with writes
staged through a same-directory temp file and ``os.replace`` so a
crash mid-write can only ever leave a temp file behind, never a
truncated entry.  Unreadable or corrupt entries are treated as misses
and overwritten.
"""

from __future__ import annotations

import json
import logging
import os
import pickle
import tempfile
from hashlib import sha256
from pathlib import Path
from typing import Any, Optional

logger = logging.getLogger("repro.experiments.cache")

#: Bump when a change to compilation, scheduling, simulation or
#: statistics semantics invalidates previously cached results.
CODE_VERSION = "1"

#: Environment override for the cache root used by the CLI.
CACHE_DIR_ENV = "BALANCED_SCHED_CACHE_DIR"

#: The CLI's default cache root (relative to the working directory).
DEFAULT_CACHE_DIR = os.path.join("results", "cache")


def default_cache_dir() -> str:
    """The CLI cache root: ``$BALANCED_SCHED_CACHE_DIR`` or results/cache."""
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


# ----------------------------------------------------------------------
# Canonical tokens and keys
# ----------------------------------------------------------------------
def spec_token(spec: Any) -> list:
    """The canonical, JSON-serialisable identity of a ``CellSpec``.

    Duck-typed (reads attributes) so this module never imports
    ``common`` -- ``common`` imports us.  Every field that can change a
    cell's value appears here; ``SystemRow.group`` is presentation
    only and deliberately excluded.
    """
    memory = spec.system.memory
    register_file = spec.register_file
    return [
        "cell",
        spec.program,
        type(memory).__name__,
        memory.name,
        repr(float(spec.system.optimistic_latency)),
        [
            spec.processor.name,
            spec.processor.max_outstanding_loads,
            spec.processor.max_load_cycles,
            spec.processor.issue_width,
            spec.processor.blocking_loads,
        ],
        int(spec.seed),
        int(spec.runs),
        int(spec.n_boot),
        None
        if register_file is None
        else [
            register_file.n_int,
            register_file.n_fp,
            register_file.base_pool,
            register_file.enlarged_pool,
            register_file.fifo_pool,
        ],
        spec.alias_model.value,
    ]


def object_key(*parts: Any) -> str:
    """A stable SHA-256 key for arbitrary JSON-serialisable parts.

    :data:`CODE_VERSION` is always folded in, so bumping it orphans
    every existing entry at once.
    """
    token = json.dumps([CODE_VERSION, list(parts)], sort_keys=True)
    return sha256(token.encode("utf-8")).hexdigest()


def cell_key(spec: Any) -> str:
    """The store key of one experiment cell."""
    return object_key(spec_token(spec))


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ResultCache:
    """A directory of pickled results, addressed by stable keys.

    ``get``/``put`` work on cell specs; ``get_object``/``put_object``
    take raw keys (from :func:`object_key`) so coarser-grained results
    -- Table 4 rows, whole ablation tables -- checkpoint through the
    same store.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    def get(self, spec: Any) -> Optional[Any]:
        return self.get_object(cell_key(spec))

    def put(self, spec: Any, result: Any) -> None:
        self.put_object(cell_key(spec), result)

    def get_object(self, key: str) -> Optional[Any]:
        """The stored value, or ``None`` on a miss or a corrupt entry."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception as exc:
            # A torn or stale entry (truncated pickle after a SIGKILL,
            # a bad disk, a foreign file dropped into the tree) is a
            # miss; the next put overwrites.  Warn so silent corruption
            # never masquerades as a plain cold cache.
            logger.warning(
                "corrupt result-cache entry %s (%s: %s); treating as a "
                "miss", path, type(exc).__name__, exc,
            )
            return None

    def put_object(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` (crash mid-write leaves no
        partial entry: the temp file lives in the target directory and
        lands via ``os.replace``)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> None:
        """Delete every entry (keeps the directory tree)."""
        if not self.root.is_dir():
            return
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass
