"""Command-line entry point.

Installed as ``balanced-sched``.  Four modes:

Regenerate a paper artifact (the bare form is shorthand for ``run``)::

    balanced-sched table2
    balanced-sched run table2 --format csv
    balanced-sched all

Compile a minif source file and print both schedulers' output::

    balanced-sched compile kernel.mf
    balanced-sched compile kernel.mf --latency 5

Show the Figure-6 balanced weights (optionally the full Table-1 style
contribution matrix) for a kernel::

    balanced-sched weights kernel.mf --matrix

Trace one simulated execution of a compiled kernel (pipeline diagram
plus stall attribution)::

    balanced-sched trace kernel.mf --memory "N(2,5)" --policy balanced

Summarise the most recent recorded run(s) from the manifest log::

    balanced-sched manifest
    balanced-sched manifest --last 8

Common options: ``--seed`` (root RNG seed), ``--runs`` (simulation runs
per block; the paper uses 30), ``--quick`` (3 runs).

Crash safety: ``run`` checkpoints every finished cell to an on-disk
result cache (``results/cache`` by default) and appends what ran to
``results/manifest.jsonl``; an interrupted or crashed run re-executed
with the same arguments recomputes only the missing cells
(``--resume``, the default).  ``--fresh`` recomputes everything; see
docs/performance.md ("Crash safety and resume").
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from ..simulate.rng import DEFAULT_SEED
from .ablations import run_all_ablations
from .cache import ResultCache, default_cache_dir
from .common import engine_session
from .manifest import ManifestWriter, default_manifest_path, summarize_manifest
from .figure2 import run_figure2
from .figure3 import run_figure3
from .report import export
from .table1 import run_table1
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4
from .table5 import run_table5

EXPERIMENTS: List[str] = [
    "figure2",
    "figure3",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "ablations",
]

#: Results that can be exported as csv/markdown.
_EXPORTABLE = {"figure3", "table1", "table2", "table3", "table4", "table5"}


def _dispatch(name: str, seed: int, runs: int, jobs: int = 1):
    if name == "figure2":
        return run_figure2()
    if name == "figure3":
        return run_figure3()
    if name == "table1":
        return run_table1()
    if name == "table2":
        return run_table2(seed=seed, runs=runs, jobs=jobs)
    if name == "table3":
        return run_table3(seed=seed, runs=runs, jobs=jobs)
    if name == "table4":
        return run_table4(seed=seed, jobs=jobs)
    if name == "table5":
        return run_table5(seed=seed, runs=runs, jobs=jobs)
    if name == "ablations":
        return run_all_ablations(jobs=jobs)
    raise KeyError(name)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _cmd_run(args: argparse.Namespace) -> int:
    runs = 3 if args.quick else args.runs
    jobs = args.jobs
    cores = _usable_cores()
    if jobs > cores:
        # Worker processes timeshare cores; oversubscribing a small
        # machine only adds fork/pickle overhead.  Results do not
        # depend on the worker count, so clamping is safe.
        print(
            f"  [--jobs {jobs} clamped to {cores} usable core(s)]",
            file=sys.stderr,
        )
        jobs = cores
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    manifest = ManifestWriter(args.manifest)
    names = EXPERIMENTS if args.experiment == "all" else [args.experiment]
    timings = []
    with engine_session(cache=cache, manifest=manifest, resume=args.resume):
        for name in names:
            start = time.time()
            manifest.start_run(
                name, seed=args.seed, runs=runs, jobs=jobs,
                resume=args.resume,
            )
            try:
                result = _dispatch(name, args.seed, runs, jobs)
            except KeyboardInterrupt:
                elapsed = time.time() - start
                manifest.end_run(wall_s=elapsed, status="interrupted")
                print(
                    f"\n  [interrupted during {name} after {elapsed:.1f}s; "
                    "finished cells are checkpointed -- re-run the same "
                    "command to resume]",
                    file=sys.stderr,
                )
                return 130
            except BaseException:
                manifest.end_run(
                    wall_s=time.time() - start, status="failed"
                )
                raise
            elapsed = time.time() - start
            manifest.end_run(wall_s=elapsed, status="ok")
            timings.append((name, elapsed))
            if args.format != "text" and name in _EXPORTABLE:
                print(export(result, args.format))
            else:
                print(result.format())
            print(f"\n  [{name} regenerated in {elapsed:.1f}s]\n")
    if len(names) > 1:
        total = sum(elapsed for _, elapsed in timings)
        print(f"  timing summary (--jobs {jobs}):")
        for name, elapsed in timings:
            print(f"    {name:10s} {elapsed:6.1f}s")
        print(f"    {'total':10s} {total:6.1f}s")
    return 0


def _cmd_manifest(args: argparse.Namespace) -> int:
    print(summarize_manifest(args.path, last=args.last, top=args.top))
    return 0


def _compile_file(path: str):
    from ..frontend.lowering import compile_minif

    with open(path) as handle:
        return compile_minif(handle.read())


def _cmd_compile(args: argparse.Namespace) -> int:
    from ..core.balanced import BalancedScheduler
    from ..core.pipeline import compile_program
    from ..core.traditional import TraditionalScheduler
    from ..ir.printer import format_block

    program = _compile_file(args.file)
    policies = [BalancedScheduler(), TraditionalScheduler(args.latency)]
    for policy in policies:
        compiled = compile_program(program, policy)
        print(f"==== {policy.name}")
        for block in compiled.final_blocks:
            print(format_block(block))
            print()
        print(
            f"  dynamic instructions: {compiled.dynamic_instructions:,.0f}"
            f"  (spill {compiled.spill_percentage:.2f}%)\n"
        )
    return 0


def _cmd_weights(args: argparse.Namespace) -> int:
    from fractions import Fraction

    from ..analysis.dependence import build_dag
    from ..core.weights import balanced_weights, contribution_matrix

    program = _compile_file(args.file)
    for function in program:
        for block in function:
            dag = build_dag(block)
            weights = balanced_weights(dag)
            print(f"==== {block.name} ({len(block)} instructions, "
                  f"{len(weights)} loads)")
            if args.matrix:
                matrix = contribution_matrix(dag)
                for node in sorted(matrix):
                    row = ", ".join(
                        f"{i}:{v}" for i, v in sorted(matrix[node].items()) if v
                    )
                    print(f"  load {node:3d} <- {row}")
            for node in sorted(weights):
                print(
                    f"  {node:3d} {str(dag.instructions[node]):40s} "
                    f"weight {weights[node]}  (~{float(weights[node]):.2f})"
                )
            print()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from ..core.balanced import BalancedScheduler
    from ..core.pipeline import compile_program
    from ..core.traditional import TraditionalScheduler
    from ..machine.config import SYSTEMS_BY_NAME
    from ..simulate.rng import spawn
    from ..simulate.trace import trace_with_memory

    memory = SYSTEMS_BY_NAME.get(args.memory)
    if memory is None:
        print(
            f"unknown memory system {args.memory!r}; "
            f"choose from {sorted(SYSTEMS_BY_NAME)}",
            file=sys.stderr,
        )
        return 2
    policy = (
        BalancedScheduler()
        if args.policy == "balanced"
        else TraditionalScheduler(args.latency)
    )
    program = _compile_file(args.file)
    compiled = compile_program(program, policy)
    rng = spawn("cli-trace", args.file, memory.name, seed=args.seed)
    for block in compiled.final_blocks:
        print(f"==== {block.name} on {memory.name} under {policy.name}")
        trace = trace_with_memory(block, _processor_for(args), memory, rng)
        print(trace.render())
        by_reason = trace.stalls_by_reason()
        if by_reason:
            print("  stalls: " + ", ".join(
                f"{reason.value}={cycles}" for reason, cycles in by_reason.items()
            ))
        print()
    return 0


def _processor_for(args: argparse.Namespace):
    from ..machine.processor import LEN_8, MAX_8, UNLIMITED

    return {"unlimited": UNLIMITED, "max8": MAX_8, "len8": LEN_8}[
        args.processor
    ]


# ----------------------------------------------------------------------
def _positive_int(text: str) -> int:
    """argparse type for options that must be >= 1 (--runs, --jobs)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="balanced-sched",
        description=(
            "Balanced Scheduling (Kerns & Eggers, PLDI 1993): regenerate "
            "the paper, or compile and trace your own minif kernels"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="regenerate a table or figure")
    run.add_argument("experiment", choices=EXPERIMENTS + ["all"])
    run.add_argument("--seed", type=int, default=DEFAULT_SEED)
    run.add_argument("--runs", type=_positive_int, default=30)
    run.add_argument("--quick", action="store_true", help="3-run smoke pass")
    run.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the table experiments (results are "
        "bit-identical for any value)",
    )
    run.add_argument(
        "--format", choices=["text", "csv", "markdown"], default="text"
    )
    run.add_argument(
        "--resume",
        dest="resume",
        action="store_true",
        default=True,
        help="replay finished cells from the result cache (default)",
    )
    run.add_argument(
        "--fresh",
        dest="resume",
        action="store_false",
        help="recompute every cell, ignoring cached results "
        "(the cache is still refreshed)",
    )
    run.add_argument(
        "--cache-dir",
        default=default_cache_dir(),
        help="result-cache directory (env BALANCED_SCHED_CACHE_DIR; "
        "default results/cache)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache entirely",
    )
    run.add_argument(
        "--manifest",
        default=default_manifest_path(),
        help="run-manifest JSONL path (env BALANCED_SCHED_MANIFEST; "
        "default results/manifest.jsonl)",
    )
    run.set_defaults(handler=_cmd_run)

    manifest = sub.add_parser(
        "manifest", help="summarise the most recent recorded run(s)"
    )
    manifest.add_argument(
        "--path",
        default=default_manifest_path(),
        help="manifest JSONL to read (default results/manifest.jsonl)",
    )
    manifest.add_argument(
        "--last", type=_positive_int, default=1,
        help="how many recent runs to show",
    )
    manifest.add_argument(
        "--top", type=_positive_int, default=5,
        help="slowest cells to list per run",
    )
    manifest.set_defaults(handler=_cmd_manifest)

    compile_cmd = sub.add_parser("compile", help="compile a minif file")
    compile_cmd.add_argument("file")
    compile_cmd.add_argument(
        "--latency",
        type=float,
        default=2,
        help="optimistic latency for the traditional baseline",
    )
    compile_cmd.set_defaults(handler=_cmd_compile)

    weights = sub.add_parser(
        "weights", help="show balanced load weights for a minif file"
    )
    weights.add_argument("file")
    weights.add_argument(
        "--matrix",
        action="store_true",
        help="also print the per-instruction contribution matrix",
    )
    weights.set_defaults(handler=_cmd_weights)

    trace = sub.add_parser("trace", help="trace one simulated execution")
    trace.add_argument("file")
    trace.add_argument("--memory", default="N(2,5)")
    trace.add_argument(
        "--policy", choices=["balanced", "traditional"], default="balanced"
    )
    trace.add_argument("--latency", type=float, default=2)
    trace.add_argument(
        "--processor",
        choices=["unlimited", "max8", "len8"],
        default="unlimited",
    )
    trace.add_argument("--seed", type=int, default=DEFAULT_SEED)
    trace.set_defaults(handler=_cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Bare experiment names are shorthand for `run <experiment>`.
    if argv and argv[0] in EXPERIMENTS + ["all"]:
        argv = ["run"] + argv
    parser = _build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
