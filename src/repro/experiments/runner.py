"""Command-line entry point.

Installed as ``balanced-sched``.  Modes:

Regenerate a paper artifact (the bare form is shorthand for ``run``)::

    balanced-sched table2
    balanced-sched run table2 --format csv
    balanced-sched run table2 --obs --trace-out trace.json --metrics-out m.json
    balanced-sched run table2 --verify      # oracle-check every compilation
    balanced-sched all

Replay every compilation behind the published tables under the
schedule-legality oracle (exit status 1 on any violation)::

    balanced-sched verify
    balanced-sched verify --programs ADM,MDG

Differentially fuzz the pipeline: random minif programs through both
schedulers and both simulators, failures shrunk and written as replay
artifacts::

    balanced-sched fuzz --seed 7 --iters 100
    balanced-sched fuzz --iters 25 --out /tmp/fuzz

Profile an experiment with the observability layer on (phase timings,
hottest stalled loads, scheduler tie-break pressure)::

    balanced-sched profile table2 --quick --programs ADM

Explain, step by step, why the balanced and traditional schedulers
order a block differently (diffable decision logs)::

    balanced-sched explain ADM
    balanced-sched explain kernel.mf --block kernel0

Compile a minif source file and print both schedulers' output::

    balanced-sched compile kernel.mf
    balanced-sched compile kernel.mf --latency 5

Show the Figure-6 balanced weights (optionally the full Table-1 style
contribution matrix) for a kernel::

    balanced-sched weights kernel.mf --matrix

Trace one simulated execution of a compiled kernel (pipeline diagram
plus stall attribution)::

    balanced-sched trace kernel.mf --memory "N(2,5)" --policy balanced

Summarise the most recent recorded run(s) from the manifest log::

    balanced-sched manifest
    balanced-sched manifest --last 8

Common options: ``--seed`` (root RNG seed), ``--runs`` (simulation runs
per block; the paper uses 30), ``--quick`` (3 runs).  Global ``-v`` /
``-q`` raise/lower the ``repro.*`` logging verbosity on stderr
(diagnostics only -- results always go to stdout).

Observability: ``run --obs`` (implied by ``--trace-out`` /
``--metrics-out``) records hierarchical spans, metrics and stall
attribution for the whole run at a cost of roughly one dict update per
instrumented event; the trace JSON loads directly into Perfetto
(https://ui.perfetto.dev).  See docs/observability.md.

Crash safety: ``run`` checkpoints every finished cell to an on-disk
result cache (``results/cache`` by default) and appends what ran to
``results/manifest.jsonl``; an interrupted or crashed run re-executed
with the same arguments recomputes only the missing cells
(``--resume``, the default).  ``--fresh`` recomputes everything; see
docs/performance.md ("Crash safety and resume").
"""

from __future__ import annotations

import argparse
import io
import logging
import os
import signal
import sys
import threading
import time
from typing import Dict, List, Optional

from ..analysis.alias import AliasModel
from ..frontend.errors import MinifError
from ..obs import recorder as _obs
from ..obs.export import phase_summary, write_chrome_trace, write_metrics
from ..obs.metrics import MetricsRegistry, counter_total, split_series_key
from ..simulate.rng import DEFAULT_SEED
from ..verify import hooks as _verify_hooks
from .ablations import run_all_ablations
from .cache import ResultCache, default_cache_dir
from .common import engine_session
from .manifest import ManifestWriter, default_manifest_path, summarize_manifest
from .figure2 import run_figure2
from .figure3 import run_figure3
from .report import export
from .table1 import run_table1
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4
from .table5 import run_table5

logger = logging.getLogger("repro.experiments.runner")

EXPERIMENTS: List[str] = [
    "figure2",
    "figure3",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "ablations",
]

#: Results that can be exported as csv/markdown.
_EXPORTABLE = {"figure3", "table1", "table2", "table3", "table4", "table5"}


def _dispatch(
    name: str,
    seed: int,
    runs: int,
    jobs: int = 1,
    programs: Optional[List[str]] = None,
):
    if name == "figure2":
        return run_figure2()
    if name == "figure3":
        return run_figure3()
    if name == "table1":
        return run_table1()
    if name == "table2":
        return run_table2(seed=seed, runs=runs, jobs=jobs, programs=programs)
    if name == "table3":
        return run_table3(seed=seed, runs=runs, jobs=jobs)
    if name == "table4":
        return run_table4(seed=seed, jobs=jobs)
    if name == "table5":
        return run_table5(seed=seed, runs=runs, jobs=jobs)
    if name == "ablations":
        return run_all_ablations(jobs=jobs)
    raise KeyError(name)


# ----------------------------------------------------------------------
# Logging (the -v/-q switches)
# ----------------------------------------------------------------------
class _StderrHandler(logging.Handler):
    """Writes to whatever ``sys.stderr`` currently is.

    Resolving the stream at emit time (instead of capturing it at
    handler creation like ``StreamHandler``) keeps the handler valid
    when the surrounding process swaps stderr -- pytest's capture does
    exactly that between tests.
    """

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - last-ditch
            self.handleError(record)


def _configure_logging(verbose: int, quiet: int) -> None:
    """Configure the ``repro`` logger tree once, for the whole CLI.

    Diagnostics (clamp notes, retry warnings, timing chatter) go to
    stderr through here; experiment results are printed to stdout and
    never pass through logging.  Default level is WARNING; each ``-v``
    drops a level, each ``-q`` raises one.  Propagation to the root
    logger stays on (the handler is ours, so nothing double-prints
    unless the embedding application configures the root itself).
    """
    root = logging.getLogger("repro")
    level = logging.WARNING - 10 * verbose + 10 * quiet
    root.setLevel(max(logging.DEBUG, min(logging.CRITICAL, level)))
    if not any(getattr(h, "_repro_cli", False) for h in root.handlers):
        handler = _StderrHandler()
        handler.setFormatter(
            logging.Formatter("  [%(levelname)s %(name)s] %(message)s")
        )
        handler._repro_cli = True  # type: ignore[attr-defined]
        root.addHandler(handler)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _parse_programs(args: argparse.Namespace) -> Optional[List[str]]:
    """Validate a ``--programs`` subset against the Perfect Club suite."""
    text = getattr(args, "programs", None)
    if text is None:
        return None
    from ..workloads.perfect import program_names

    if args.experiment not in ("table2",):
        print(
            f"--programs applies to table2 only "
            f"(got {args.experiment!r})",
            file=sys.stderr,
        )
        raise SystemExit(2)
    known = program_names()
    names = [n for n in (part.strip() for part in text.split(",")) if n]
    unknown = [n for n in names if n not in known]
    if not names or unknown:
        print(
            f"unknown program(s) {unknown or [text]}; "
            f"choose from {known}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return names


def _wants_obs(args: argparse.Namespace) -> bool:
    return bool(args.obs or args.trace_out or args.metrics_out)


def _finish_obs(rec, args: argparse.Namespace) -> None:
    """Export what a recorder collected (also runs on interrupt)."""
    if args.trace_out:
        path = write_chrome_trace(args.trace_out, rec)
        logger.info(
            "wrote Chrome trace to %s (load it in https://ui.perfetto.dev)",
            path,
        )
    if args.metrics_out:
        path = write_metrics(args.metrics_out, rec.metrics)
        logger.info("wrote metrics to %s", path)
    print()
    print(phase_summary(rec))


def _cmd_run(args: argparse.Namespace) -> int:
    runs = 3 if args.quick else args.runs
    jobs = args.jobs
    cores = _usable_cores()
    if jobs > cores:
        # Worker processes timeshare cores; oversubscribing a small
        # machine only adds fork/pickle overhead.  Results do not
        # depend on the worker count, so clamping is safe.
        logger.warning("--jobs %d clamped to %d usable core(s)", jobs, cores)
        jobs = cores
    programs = _parse_programs(args)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    manifest = ManifestWriter(args.manifest)
    names = EXPERIMENTS if args.experiment == "all" else [args.experiment]
    # Enable *before* any work so lazily-forked pool workers inherit
    # the recorder (their metrics come back as per-cell deltas).
    rec = _obs.enable() if _wants_obs(args) else None
    verify_hook = None
    if args.verify:
        if args.resume:
            # Cells replayed from the result cache skip compilation
            # entirely, so nothing would reach the oracle.
            logger.warning(
                "--verify forces a fresh run: cached cells skip "
                "compilation and would go unchecked"
            )
            args.resume = False
        # Same fork-inheritance rule as the recorder: enable before
        # any pool exists.  A violation raises LegalityError inside
        # the compiling process and fails the run loudly.
        verify_hook = _verify_hooks.enable()
    timings = []
    try:
        with engine_session(cache=cache, manifest=manifest, resume=args.resume):
            for name in names:
                start = time.time()
                manifest.start_run(
                    name, seed=args.seed, runs=runs, jobs=jobs,
                    resume=args.resume,
                )
                try:
                    result = _dispatch(name, args.seed, runs, jobs, programs)
                except KeyboardInterrupt:
                    elapsed = time.time() - start
                    manifest.end_run(wall_s=elapsed, status="interrupted")
                    logger.warning(
                        "interrupted during %s after %.1fs; finished cells "
                        "are checkpointed -- re-run the same command to "
                        "resume", name, elapsed,
                    )
                    # Tear down shared state eagerly: atexit hooks may
                    # never run if the signal arrives again, and a
                    # half-dead pool would leak workers and shm
                    # segments past the 130 exit.
                    from .common import shutdown_pool
                    from .engine import dispose_all_arenas

                    shutdown_pool(wait=False)
                    dispose_all_arenas()
                    return 130
                except BaseException:
                    manifest.end_run(
                        wall_s=time.time() - start, status="failed"
                    )
                    raise
                elapsed = time.time() - start
                manifest.end_run(wall_s=elapsed, status="ok")
                timings.append((name, elapsed))
                if args.format != "text" and name in _EXPORTABLE:
                    print(export(result, args.format))
                else:
                    print(result.format())
                print(f"\n  [{name} regenerated in {elapsed:.1f}s]\n")
        if len(names) > 1:
            total = sum(elapsed for _, elapsed in timings)
            logger.info("timing summary (--jobs %d):", jobs)
            for name, elapsed in timings:
                logger.info("  %-10s %6.1fs", name, elapsed)
            logger.info("  %-10s %6.1fs", "total", total)
        return 0
    finally:
        if verify_hook is not None:
            _verify_hooks.disable()
            _print_verify_summary(verify_hook, rec, jobs)
        if rec is not None:
            _obs.disable()
            _finish_obs(rec, args)


def _print_verify_summary(hook, rec, jobs: int) -> None:
    """One line accounting for what the pipeline hook checked.

    Worker processes keep their own hook counters; their numbers come
    back to the parent only as observability metric deltas, so the
    recorder is the authoritative count when it exists.
    """
    checked = hook.blocks_checked
    violations = hook.violations
    note = ""
    if rec is not None:
        checked = int(counter_total(rec.metrics.counters, "verify.blocks_checked"))
        violations = int(counter_total(rec.metrics.counters, "verify.violations"))
    elif jobs > 1:
        note = " (parent process only; add --obs for cross-worker counts)"
    print(
        f"\n  [verify: {checked} block(s) oracle-checked, "
        f"{violations} violation(s){note}]"
    )


def _cmd_verify(args: argparse.Namespace) -> int:
    """Replay every compilation behind the published tables under the
    legality oracle."""
    from ..verify.replay import verify_perfect_suite
    from ..workloads.perfect import program_names

    names = None
    if args.programs:
        known = program_names()
        names = [n for n in (p.strip() for p in args.programs.split(",")) if n]
        unknown = [n for n in names if n not in known]
        if not names or unknown:
            print(
                f"unknown program(s) {unknown or [args.programs]}; "
                f"choose from {known}",
                file=sys.stderr,
            )
            return 2
    start = time.time()
    report = verify_perfect_suite(
        programs=names,
        alias_model=AliasModel(args.alias),
        progress=lambda line: print(line, file=sys.stderr),
    )
    print(report.format())
    print(f"\n  [suite verified in {time.time() - start:.1f}s]")
    return 0 if report.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Differentially fuzz the pipeline with random minif programs."""
    from ..verify.fuzz import run_fuzz

    start = time.time()
    report = run_fuzz(
        seed=args.seed,
        iters=args.iters,
        max_insns=args.max_insns,
        out_dir=args.out,
        runs=args.runs,
        shrink=not args.no_shrink,
        progress=lambda line: print(line, file=sys.stderr),
    )
    print(report.format())
    print(f"\n  [fuzzed in {time.time() - start:.1f}s]")
    return 0 if report.failures == 0 else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run one experiment under the observability layer and report
    where the time and the stall cycles went (no caching: a profile
    must measure real work, not replay)."""
    runs = 3 if args.quick else args.runs
    programs = _parse_programs(args)
    # Process-level memos would replay compilation (and skip the
    # frontend entirely), leaving the profile with nothing but
    # simulation; drop them so every phase does real work.
    from ..workloads.perfect import clear_cache
    from .common import COMPILATION_CACHE

    clear_cache()
    COMPILATION_CACHE.clear()
    rec = _obs.enable()
    try:
        with engine_session(cache=None, manifest=None, resume=False):
            start = time.time()
            _dispatch(args.experiment, args.seed, runs, args.jobs, programs)
            elapsed = time.time() - start
    finally:
        _obs.disable()
    print(f"profile: {args.experiment} "
          f"(seed {args.seed}, {runs} runs, {elapsed:.1f}s)\n")
    print(phase_summary(rec))
    print()
    print(_profile_report(rec.metrics, top=args.top))
    if args.trace_out:
        path = write_chrome_trace(args.trace_out, rec)
        logger.info(
            "wrote Chrome trace to %s (load it in https://ui.perfetto.dev)",
            path,
        )
    if args.metrics_out:
        path = write_metrics(args.metrics_out, rec.metrics)
        logger.info("wrote metrics to %s", path)
    return 0


def _profile_report(metrics: MetricsRegistry, top: int = 10) -> str:
    """The ``profile`` payload below the phase table: tie-break
    pressure and the hottest stalled loads, straight from the
    registry's exact histograms."""
    lines: List[str] = []

    reasons: Dict[str, float] = {}
    for key, value in metrics.counters.items():
        base, labels = split_series_key(key)
        if base == "sched.select_reason":
            reason = labels.get("reason", "?")
            reasons[reason] = reasons.get(reason, 0) + value
    if reasons:
        lines.append("scheduler selection reasons:")
        width = max(len(reason) for reason in reasons)
        for reason in sorted(reasons, key=lambda r: (-reasons[r], r)):
            lines.append(f"  {reason:<{width}}  {int(reasons[reason]):>10,}")
        lines.append("")

    rows = []
    for key, hist in metrics.histograms.items():
        base, labels = split_series_key(key)
        if base != "sim.load_stall_cycles":
            continue
        rows.append((
            MetricsRegistry.histogram_total(hist),
            MetricsRegistry.histogram_count(hist),
            labels,
        ))
    if rows:
        rows.sort(key=lambda row: (-row[0], sorted(row[2].items())))
        lines.append("hottest loads (stall cycles summed over all runs):")
        for total, count, labels in rows[:top]:
            where = "/".join(
                part for part in
                (labels.get("program"), labels.get("block")) if part
            )
            lines.append(
                f"  {int(total):>10,} cycles  {count:>8,} stalls  "
                f"{where} load #{labels.get('load', '?')}  "
                f"[{labels.get('policy', '?')} @ {labels.get('system', '?')}]"
            )
        if len(rows) > top:
            lines.append(f"  ... and {len(rows) - top} more load sites")
        lines.append("")

    skipped = sum(
        value for key, value in metrics.counters.items()
        if split_series_key(key)[0] == "sim.attribution_skipped"
    )
    if skipped:
        lines.append(
            f"note: {int(skipped):,} run(s) on multi-issue or blocking "
            "processors are counted but not attributed per load"
        )
    if not lines:
        lines.append("(no scheduler/simulator metrics recorded)")
    return "\n".join(lines).rstrip()


def render_explain(
    program,
    block: Optional[str] = None,
    latency: float = 2.0,
    context: int = 3,
    full: bool = False,
) -> str:
    """The ``explain`` report as a string.

    Shared verbatim by the CLI (which writes it to stdout) and the
    service (which returns it over HTTP), so the two are
    byte-identical by construction.  Raises :class:`KeyError` with a
    one-line message when ``block`` names no block.
    """
    from ..core.balanced import BalancedScheduler
    from ..core.pipeline import compile_block
    from ..core.traditional import TraditionalScheduler
    from ..obs.decisions import DecisionLog

    blocks = [blk for function in program for blk in function]
    if block is not None:
        names = [blk.name for blk in blocks]
        blocks = [blk for blk in blocks if blk.name == block]
        if not blocks:
            raise KeyError(
                f"no block named {block!r}; choose from {names}"
            )
    buf = io.StringIO()
    trad_label = f"traditional W={latency:g}"
    for blk in blocks:
        logs: Dict[str, DecisionLog] = {}
        for tag, policy in (
            ("balanced", BalancedScheduler()),
            (trad_label, TraditionalScheduler(latency)),
        ):
            # register_file=None: explain the *scheduling* decisions on
            # the virtual-register code, without regalloc's pass-2
            # rewrites muddying the diff.
            with _obs.recording(decisions=True) as rec:
                compile_block(blk, policy, register_file=None)
            logs[tag] = rec.decisions
        print(f"==== {blk.name} ({len(blk)} instructions)", file=buf)
        for tag, log in logs.items():
            counts = log.counts_by_reason()
            rendered = ", ".join(f"{r}={c}" for r, c in counts.items())
            print(f"  {tag:20s} {rendered}", file=buf)
        diff = DecisionLog.diff(
            logs["balanced"], logs[trad_label],
            "balanced", trad_label,
            block=blk.name, context=context,
        )
        if full:
            for tag, log in logs.items():
                print(f"\n-- decision log: {tag}", file=buf)
                print("\n".join(log.render(block=blk.name)), file=buf)
        elif diff:
            print(file=buf)
            print("\n".join(diff), file=buf)
        else:
            print(
                "  (both policies make identical step-by-step choices)",
                file=buf,
            )
        print(file=buf)
    return buf.getvalue()


def _cmd_explain(args: argparse.Namespace) -> int:
    """Schedule each block under both policies with decision logging on
    and show why their step-by-step choices diverge."""
    program = _load_program_argument(args.program)
    try:
        text = render_explain(
            program,
            block=args.block,
            latency=args.latency,
            context=args.context,
            full=args.full,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    sys.stdout.write(text)
    return 0


def _load_program_argument(text: str):
    """``explain`` accepts a minif file path or a Perfect Club name."""
    if os.path.exists(text):
        return _compile_file(text)
    from ..workloads.perfect import load_program, program_names

    try:
        return load_program(text)
    except KeyError:
        print(
            f"{text!r} is neither a file nor a known program; "
            f"programs: {program_names()}",
            file=sys.stderr,
        )
        raise SystemExit(2)


def _cmd_manifest(args: argparse.Namespace) -> int:
    print(summarize_manifest(args.path, last=args.last, top=args.top))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the service package pulls in asyncio plumbing
    # no batch command needs.
    from ..service import SchedulingService

    jobs = args.jobs
    cores = _usable_cores()
    if jobs > cores:
        logger.warning("--jobs %d clamped to %d usable core(s)", jobs, cores)
        jobs = cores
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    manifest = ManifestWriter(args.manifest)
    service = SchedulingService(
        jobs=jobs,
        cache=cache,
        manifest=manifest,
        max_queue=args.max_queue,
        deadline_s=args.deadline if args.deadline > 0 else None,
        pool_retries=args.pool_retries,
        batch_window_s=args.batch_window,
        trace_requests=not args.no_tracing,
        trace_capacity=args.trace_capacity,
    )
    return service.run(host=args.host, port=args.port)


def _compile_file(path: str):
    from ..frontend.lowering import compile_minif

    with open(path) as handle:
        return compile_minif(handle.read())


def render_compile(program, latency: float = 2.0) -> str:
    """The ``compile`` listing (both policies) as a string; shared by
    the CLI and the service so their outputs are byte-identical."""
    from ..core.balanced import BalancedScheduler
    from ..core.pipeline import compile_program
    from ..core.traditional import TraditionalScheduler
    from ..ir.printer import format_block

    buf = io.StringIO()
    policies = [BalancedScheduler(), TraditionalScheduler(latency)]
    for policy in policies:
        compiled = compile_program(program, policy)
        print(f"==== {policy.name}", file=buf)
        for block in compiled.final_blocks:
            print(format_block(block), file=buf)
            print(file=buf)
        print(
            f"  dynamic instructions: {compiled.dynamic_instructions:,.0f}"
            f"  (spill {compiled.spill_percentage:.2f}%)\n",
            file=buf,
        )
    return buf.getvalue()


def _cmd_compile(args: argparse.Namespace) -> int:
    program = _compile_file(args.file)
    sys.stdout.write(render_compile(program, latency=args.latency))
    return 0


def _cmd_weights(args: argparse.Namespace) -> int:
    from fractions import Fraction

    from ..analysis.dependence import build_dag
    from ..core.weights import balanced_weights, contribution_matrix

    program = _compile_file(args.file)
    for function in program:
        for block in function:
            dag = build_dag(block)
            weights = balanced_weights(dag)
            print(f"==== {block.name} ({len(block)} instructions, "
                  f"{len(weights)} loads)")
            if args.matrix:
                matrix = contribution_matrix(dag)
                for node in sorted(matrix):
                    row = ", ".join(
                        f"{i}:{v}" for i, v in sorted(matrix[node].items()) if v
                    )
                    print(f"  load {node:3d} <- {row}")
            for node in sorted(weights):
                print(
                    f"  {node:3d} {str(dag.instructions[node]):40s} "
                    f"weight {weights[node]}  (~{float(weights[node]):.2f})"
                )
            print()
    return 0


def render_schedule(
    program,
    policy_name: str = "balanced",
    latency: float = 2.0,
    jobs: int = 1,
    verbose: bool = False,
) -> str:
    """The ``schedule`` listing as a string; shared by the CLI and the
    service so their outputs are byte-identical (``jobs`` changes only
    wall-clock time, never the listing)."""
    from ..analysis.dependence import build_dag
    from ..core.balanced import BalancedScheduler
    from ..core.optimal import OptimalScheduler
    from ..core.traditional import TraditionalScheduler
    from .engine import schedule_blocks

    blocks = program.all_blocks()
    if policy_name == "optimal":
        # The exact backend searches rather than list-schedules, so it
        # runs through the policy interface block by block (`jobs`
        # still only affects wall-clock: the search is deterministic).
        policy = OptimalScheduler(latency)
        results = [
            policy.schedule_dag(build_dag(block), block) for block in blocks
        ]
    else:
        policy = (
            BalancedScheduler()
            if policy_name == "balanced"
            else TraditionalScheduler(latency)
        )
        dags = []
        for block in blocks:
            dag = build_dag(block)
            policy.assign_weights(dag)
            dags.append(dag)
        results = schedule_blocks(blocks, dags, policy._scheduler, jobs=jobs)
    buf = io.StringIO()
    for block, result in zip(blocks, results):
        print(
            f"==== {block.name}  ({len(block)} instructions, "
            f"noop span {result.noop_span})",
            file=buf,
        )
        if policy_name == "optimal":
            status = "certified optimal" if result.certified else (
                f"best-effort (lower bound {result.lower_bound})"
            )
            print(
                f"     cost {result.cost} cycles at W={result.load_latency}, "
                f"{status}, {result.expanded} expansions",
                file=buf,
            )
        if verbose:
            for v in result.order:
                print(f"  {v:3d}  {block.instructions[v]}", file=buf)
    total = sum(len(b) for b in blocks)
    print(f"scheduled {len(blocks)} block(s), {total} instructions "
          f"under {policy.name} (jobs={jobs})", file=buf)
    return buf.getvalue()


def _cmd_schedule(args: argparse.Namespace) -> int:
    program = _compile_file(args.file)
    try:
        listing = render_schedule(
            program,
            policy_name=args.policy,
            latency=args.latency,
            jobs=args.jobs,
            verbose=args.verbose,
        )
    except ValueError as exc:  # e.g. --policy optimal --latency 2.5
        print(f"balanced-sched: {exc}", file=sys.stderr)
        return 2
    sys.stdout.write(listing)
    return 0


def _cmd_optimal_gap(args: argparse.Namespace) -> int:
    from ..workloads.perfect import program_names
    from .optimalgap import run_optimal_gap

    if args.programs is not None:
        names = args.programs.split(",")
        unknown = [n for n in names if n not in program_names()]
        if unknown:
            print(
                f"balanced-sched: unknown program(s) {', '.join(unknown)}; "
                f"choose from {', '.join(program_names())}",
                file=sys.stderr,
            )
            return 2
    else:
        names = None
    from ..core.optimal import DEFAULT_NODE_BUDGET

    report = run_optimal_gap(
        programs=names,
        node_budget=(
            args.budget if args.budget is not None else DEFAULT_NODE_BUDGET
        ),
        pareto=not args.no_pareto,
    )
    text = report.format() + "\n"
    if args.out is not None:
        with open(args.out, "w") as fh:
            fh.write(text)
        logger.info("wrote %s", args.out)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_delay_track(args: argparse.Namespace) -> int:
    from ..workloads.perfect import program_names
    from .delaytrack import DEFAULT_TABLES, run_delay_tracking

    if args.programs is not None:
        names = args.programs.split(",")
        unknown = [n for n in names if n not in program_names()]
        if unknown:
            print(
                f"balanced-sched: unknown program(s) {', '.join(unknown)}; "
                f"choose from {', '.join(program_names())}",
                file=sys.stderr,
            )
            return 2
    else:
        names = None
    if args.tables is not None:
        try:
            tables = tuple(
                int(part) for part in args.tables.split(",") if part.strip()
            )
        except ValueError:
            print(
                f"balanced-sched: --tables wants comma-separated integers, "
                f"got {args.tables!r}",
                file=sys.stderr,
            )
            return 2
        if not tables or any(t < 0 for t in tables):
            print(
                "balanced-sched: --tables wants non-negative table sizes",
                file=sys.stderr,
            )
            return 2
    else:
        tables = DEFAULT_TABLES
    runs = 3 if args.quick else args.runs
    report = run_delay_tracking(
        programs=names, tables=tables, seed=args.seed, runs=runs
    )
    text = report.format() + "\n"
    if args.out is not None:
        with open(args.out, "w") as fh:
            fh.write(text)
        logger.info("wrote %s", args.out)
    else:
        sys.stdout.write(text)
    return 0 if report.oracle_violations == 0 else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from ..core.balanced import BalancedScheduler
    from ..core.pipeline import compile_program
    from ..core.traditional import TraditionalScheduler
    from ..machine.config import SYSTEMS_BY_NAME
    from ..simulate.rng import spawn
    from ..simulate.trace import trace_with_memory

    memory = SYSTEMS_BY_NAME.get(args.memory)
    if memory is None:
        print(
            f"unknown memory system {args.memory!r}; "
            f"choose from {sorted(SYSTEMS_BY_NAME)}",
            file=sys.stderr,
        )
        return 2
    try:
        processor = _processor_for(args)
    except ValueError as exc:
        print(f"balanced-sched: {exc}", file=sys.stderr)
        return 2
    if processor.issue_width != 1 or processor.load_delay_tracking:
        print(
            f"balanced-sched: trace models in-order single-issue only; "
            f"{processor.name} reorders or multi-issues (try "
            f"`balanced-sched delay-track` for adaptive-issue results)",
            file=sys.stderr,
        )
        return 2
    policy = (
        BalancedScheduler()
        if args.policy == "balanced"
        else TraditionalScheduler(args.latency)
    )
    program = _compile_file(args.file)
    compiled = compile_program(program, policy)
    rng = spawn("cli-trace", args.file, memory.name, seed=args.seed)
    for block in compiled.final_blocks:
        print(f"==== {block.name} on {memory.name} under {policy.name}")
        trace = trace_with_memory(block, processor, memory, rng)
        print(trace.render())
        by_reason = trace.stalls_by_reason()
        if by_reason:
            print("  stalls: " + ", ".join(
                f"{reason.value}={cycles}" for reason, cycles in by_reason.items()
            ))
        print()
    return 0


def _processor_for(args: argparse.Namespace):
    from ..machine.config import parse_processor

    return parse_processor(args.processor)


# ----------------------------------------------------------------------
def _positive_int(text: str) -> int:
    """argparse type for options that must be >= 1 (--runs, --jobs)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_obs_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Chrome trace_event JSON of the run's spans "
        "(loadable in Perfetto); implies --obs",
    )
    sub.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the run's metrics registry as JSON; implies --obs",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="balanced-sched",
        description=(
            "Balanced Scheduling (Kerns & Eggers, PLDI 1993): regenerate "
            "the paper, or compile and trace your own minif kernels"
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="more stderr diagnostics (repeatable)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="fewer stderr diagnostics (repeatable)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="regenerate a table or figure")
    run.add_argument("experiment", choices=EXPERIMENTS + ["all"])
    run.add_argument("--seed", type=int, default=DEFAULT_SEED)
    run.add_argument("--runs", type=_positive_int, default=30)
    run.add_argument("--quick", action="store_true", help="3-run smoke pass")
    run.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the table experiments (results are "
        "bit-identical for any value)",
    )
    run.add_argument(
        "--programs",
        default=None,
        help="comma-separated subset of Perfect Club programs "
        "(table2 only), e.g. --programs ADM,MDG",
    )
    run.add_argument(
        "--format", choices=["text", "csv", "markdown"], default="text"
    )
    run.add_argument(
        "--obs",
        action="store_true",
        help="record spans/metrics/stall attribution for the whole run "
        "and print a phase summary at the end",
    )
    run.add_argument(
        "--verify",
        action="store_true",
        help="oracle-check every compiled block while the run executes "
        "(forces a fresh run; any legality violation fails the run)",
    )
    _add_obs_arguments(run)
    run.add_argument(
        "--resume",
        dest="resume",
        action="store_true",
        default=True,
        help="replay finished cells from the result cache (default)",
    )
    run.add_argument(
        "--fresh",
        dest="resume",
        action="store_false",
        help="recompute every cell, ignoring cached results "
        "(the cache is still refreshed)",
    )
    run.add_argument(
        "--cache-dir",
        default=default_cache_dir(),
        help="result-cache directory (env BALANCED_SCHED_CACHE_DIR; "
        "default results/cache)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache entirely",
    )
    run.add_argument(
        "--manifest",
        default=default_manifest_path(),
        help="run-manifest JSONL path (env BALANCED_SCHED_MANIFEST; "
        "default results/manifest.jsonl)",
    )
    run.set_defaults(handler=_cmd_run)

    verify = sub.add_parser(
        "verify",
        help="replay every table-backing compilation under the "
        "schedule-legality oracle (exit 1 on any violation)",
    )
    verify.add_argument(
        "--programs",
        default=None,
        help="comma-separated subset of Perfect Club programs "
        "(default: the whole suite)",
    )
    verify.add_argument(
        "--alias",
        choices=[model.value for model in AliasModel],
        default=AliasModel.FORTRAN.value,
        help="alias model to compile and check under",
    )
    verify.set_defaults(handler=_cmd_verify)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random minif programs through both "
        "schedulers and both simulators, failures shrunk to artifacts",
    )
    fuzz.add_argument("--seed", type=int, default=DEFAULT_SEED)
    fuzz.add_argument(
        "--iters", type=_positive_int, default=200,
        help="programs to generate and check",
    )
    fuzz.add_argument(
        "--max-insns", type=_positive_int, default=40,
        help="approximate lowered-size bound per generated kernel",
    )
    fuzz.add_argument(
        "--runs", type=_positive_int, default=3,
        help="simulation runs per (block, processor) pair",
    )
    fuzz.add_argument(
        "--out",
        default=os.path.join("results", "fuzz"),
        help="artifact directory for shrunk failures "
        "(untouched when the run is clean)",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="write failing programs as-is, skipping minimization",
    )
    fuzz.set_defaults(handler=_cmd_fuzz)

    profile = sub.add_parser(
        "profile",
        help="run one experiment with observability on and report "
        "phase timings, tie-break pressure and the hottest loads",
    )
    profile.add_argument("experiment", choices=EXPERIMENTS)
    profile.add_argument("--seed", type=int, default=DEFAULT_SEED)
    profile.add_argument("--runs", type=_positive_int, default=30)
    profile.add_argument(
        "--quick", action="store_true", help="3-run smoke pass"
    )
    profile.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes (note: spans recorded in workers stay "
        "worker-local; profile with --jobs 1 for complete phase "
        "timings -- metrics come back for any value)",
    )
    profile.add_argument(
        "--programs",
        default=None,
        help="comma-separated subset of Perfect Club programs "
        "(table2 only)",
    )
    profile.add_argument(
        "--top", type=_positive_int, default=10,
        help="stalled load sites to list",
    )
    _add_obs_arguments(profile)
    profile.set_defaults(handler=_cmd_profile)

    explain = sub.add_parser(
        "explain",
        help="diff the two schedulers' step-by-step decisions on a "
        "program's blocks",
    )
    explain.add_argument(
        "program",
        help="a minif source file or a Perfect Club program name",
    )
    explain.add_argument(
        "--block", default=None, help="explain only this block"
    )
    explain.add_argument(
        "--latency",
        type=float,
        default=2,
        help="optimistic latency for the traditional baseline",
    )
    explain.add_argument(
        "--context", type=_positive_int, default=3,
        help="unified-diff context lines",
    )
    explain.add_argument(
        "--full",
        action="store_true",
        help="print both full decision logs instead of the diff",
    )
    explain.set_defaults(handler=_cmd_explain)

    manifest = sub.add_parser(
        "manifest", help="summarise the most recent recorded run(s)"
    )
    manifest.add_argument(
        "--path",
        default=default_manifest_path(),
        help="manifest JSONL to read (default results/manifest.jsonl)",
    )
    manifest.add_argument(
        "--last", type=_positive_int, default=1,
        help="how many recent runs to show",
    )
    manifest.add_argument(
        "--top", type=_positive_int, default=5,
        help="slowest cells to list per run",
    )
    manifest.set_defaults(handler=_cmd_manifest)

    compile_cmd = sub.add_parser("compile", help="compile a minif file")
    compile_cmd.add_argument("file")
    compile_cmd.add_argument(
        "--latency",
        type=float,
        default=2,
        help="optimistic latency for the traditional baseline",
    )
    compile_cmd.set_defaults(handler=_cmd_compile)

    weights = sub.add_parser(
        "weights", help="show balanced load weights for a minif file"
    )
    weights.add_argument("file")
    weights.add_argument(
        "--matrix",
        action="store_true",
        help="also print the per-instruction contribution matrix",
    )
    weights.set_defaults(handler=_cmd_weights)

    schedule = sub.add_parser(
        "schedule",
        help="schedule a minif file's blocks (optionally over the pool)",
    )
    schedule.add_argument("file")
    schedule.add_argument(
        "--policy",
        choices=["balanced", "traditional", "optimal"],
        default="balanced",
    )
    schedule.add_argument(
        "--latency",
        type=float,
        default=2,
        help="load latency: the traditional weight, or the optimal "
        "backend's fixed memory model (must be an integer there)",
    )
    schedule.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fan blocks over the shared-memory scheduling engine",
    )
    schedule.add_argument(
        "--verbose", action="store_true", help="print the scheduled order"
    )
    schedule.set_defaults(handler=_cmd_schedule)

    optimal_gap = sub.add_parser(
        "optimal-gap",
        help="exact-scheduler report: per-block optimality gaps and "
        "latency-vs-pressure Pareto fronts (see docs/optimal.md)",
    )
    optimal_gap.add_argument(
        "--programs",
        default=None,
        help="comma-separated subset of Perfect Club programs, "
        "e.g. --programs ADM,MDG (default: the whole suite)",
    )
    optimal_gap.add_argument(
        "--budget",
        type=_positive_int,
        default=None,
        help="branch-and-bound expansion budget per block "
        "(a deterministic count, not wall-clock; default 250000)",
    )
    optimal_gap.add_argument(
        "--no-pareto",
        action="store_true",
        help="skip the ε-constraint register-pressure sweeps "
        "(they dominate the runtime)",
    )
    optimal_gap.add_argument(
        "--out",
        default=None,
        help="write the report here instead of stdout "
        "(the committed copy lives at results/optimal_gap.txt)",
    )
    optimal_gap.set_defaults(handler=_cmd_optimal_gap)

    delay_track = sub.add_parser(
        "delay-track",
        help="delay-tracking study: scheduling-policy improvements vs. "
        "tracking-table size on adaptive hardware "
        "(see docs/delay_tracking.md)",
    )
    delay_track.add_argument(
        "--programs",
        default=None,
        help="comma-separated subset of Perfect Club programs, "
        "e.g. --programs ADM,MDG (default: the whole suite)",
    )
    delay_track.add_argument(
        "--tables",
        default=None,
        help="comma-separated tracking-table sizes to sweep "
        "(default 0,1,2,4,64; 0 = the paper's in-order machine)",
    )
    delay_track.add_argument("--seed", type=int, default=DEFAULT_SEED)
    delay_track.add_argument("--runs", type=_positive_int, default=30)
    delay_track.add_argument(
        "--quick", action="store_true", help="3-run smoke pass"
    )
    delay_track.add_argument(
        "--out",
        default=None,
        help="write the report here instead of stdout "
        "(the committed copy lives at results/delay_tracking.txt)",
    )
    delay_track.set_defaults(handler=_cmd_delay_track)

    trace = sub.add_parser("trace", help="trace one simulated execution")
    trace.add_argument("file")
    trace.add_argument("--memory", default="N(2,5)")
    trace.add_argument(
        "--policy", choices=["balanced", "traditional"], default="balanced"
    )
    trace.add_argument("--latency", type=float, default=2)
    trace.add_argument(
        "--processor",
        default="unlimited",
        help="processor spec: <base>[x<width>][+dt<table>] with base "
        "unlimited/max8/len8/blocking, or dt<table> "
        "(e.g. max8, unlimitedx4, dt8, len8x2+dt4)",
    )
    trace.add_argument("--seed", type=int, default=DEFAULT_SEED)
    trace.set_defaults(handler=_cmd_trace)

    serve = sub.add_parser(
        "serve",
        help="serve compile/schedule/simulate/explain over HTTP "
        "(see docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321)
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="process-pool workers for simulation batches",
    )
    serve.add_argument(
        "--cache-dir",
        default=default_cache_dir(),
        help="result-cache directory shared with `run`",
    )
    serve.add_argument(
        "--no-cache", action="store_true", help="serve without a result cache"
    )
    serve.add_argument(
        "--manifest",
        default=default_manifest_path(),
        help="manifest JSONL to append request records to",
    )
    serve.add_argument(
        "--max-queue",
        type=_positive_int,
        default=64,
        help="simulation requests queued/in-flight before 429",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        help="default per-request deadline in seconds (0 disables)",
    )
    serve.add_argument(
        "--pool-retries",
        type=int,
        default=2,
        help="pool rebuilds before a batch fails with 503",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.01,
        help="seconds to hold a simulation request for coalescing",
    )
    serve.add_argument(
        "--no-tracing",
        action="store_true",
        help="disable request tracing (traceparent ids, /debug routes)",
    )
    serve.add_argument(
        "--trace-capacity",
        type=_positive_int,
        default=256,
        help="recent requests kept for /debug/requests and /debug/trace",
    )
    serve.set_defaults(handler=_cmd_serve)

    return parser


_VERBOSITY_FLAGS = ("-v", "--verbose", "-q", "--quiet")


def _install_sigterm_handler() -> None:
    """Convert SIGTERM into KeyboardInterrupt for the batch commands.

    `kill <pid>` then unwinds through the same except/finally chain as
    Ctrl-C: the manifest records ``interrupted``, checkpoints land,
    obs exports finish (atomically), and the pool and shared-memory
    arenas are torn down -- instead of the default handler killing the
    process mid-write.  ``serve`` replaces this with its own asyncio
    handler.  Signals can only be installed from the main thread;
    embedders calling :func:`main` elsewhere keep their own handling.
    """
    if threading.current_thread() is not threading.main_thread():
        return

    def _raise(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _raise)
    except (ValueError, OSError):  # pragma: no cover - exotic embedding
        pass


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Bare experiment names are shorthand for `run <experiment>`; any
    # leading -v/-q flags may precede the name.
    head = 0
    while head < len(argv) and argv[head] in _VERBOSITY_FLAGS:
        head += 1
    if head < len(argv) and argv[head] in EXPERIMENTS + ["all"]:
        argv.insert(head, "run")
    parser = _build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose, args.quiet)
    _install_sigterm_handler()
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        print("balanced-sched: interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:  # e.g. `balanced-sched ... | head`
        return 1
    except MinifError as exc:
        print(f"balanced-sched: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # Bad paths and unwritable outputs (FileNotFoundError,
        # IsADirectoryError, PermissionError ...): one line, no
        # traceback, non-zero exit.
        print(f"balanced-sched: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
