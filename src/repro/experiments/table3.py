"""Table 3: detailed component analysis of MDG.

For every system row and all three processor models (UNLIMITED, MAX-8,
LEN-8) the table reports:

* ``Imp%`` -- percentage improvement of balanced over traditional,
* ``TI%`` / ``BI%`` -- the share of execution cycles that are
  interlock cycles under each scheduler,
* ``TIns`` / ``BIns`` -- dynamic instruction counts (spill code makes
  them differ).

The paper's headline observation -- improvements come from *both*
fewer interlocks (BI% < TI%) and fewer executed instructions -- is
checked by :meth:`Table3Result.shape_report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..machine.config import SystemRow, paper_system_rows
from ..machine.processor import LEN_8, MAX_8, PAPER_PROCESSORS, ProcessorModel, UNLIMITED
from ..simulate.rng import DEFAULT_SEED
from .common import CellResult, CellSpec, evaluate_cells

DEFAULT_PROGRAM = "MDG"


@dataclass
class Table3Result:
    """Cells keyed by (system label, processor name)."""

    program: str
    cells: Dict[Tuple[str, str], CellResult]
    balanced_instructions: float

    def cell(self, system_label: str, processor: ProcessorModel) -> CellResult:
        return self.cells[(system_label, processor.name)]

    # ------------------------------------------------------------------
    def shape_report(self) -> Dict[str, bool]:
        unlimited = [
            c for (label, proc), c in self.cells.items() if proc == "UNLIMITED"
        ]
        interlock_wins = sum(
            1
            for c in unlimited
            if c.balanced_interlock_pct <= c.traditional_interlock_pct
        )
        return {
            "balanced interlocks less on most UNLIMITED rows": interlock_wins
            >= 0.7 * len(unlimited),
            "interlock share grows with mean latency (N rows)": (
                self.cells[("N(30,5) @ 30", "UNLIMITED")].traditional_interlock_pct
                > self.cells[("N(5,2) @ 5", "UNLIMITED")].traditional_interlock_pct
                > self.cells[("N(2,2) @ 2", "UNLIMITED")].traditional_interlock_pct
            ),
            # LEN-8's freeze windows bind hard when the mean latency is
            # far beyond the 8-cycle limit.
            "LEN-8 stalls more than UNLIMITED at N(30,5)": (
                self.cells[("N(30,5) @ 30", "LEN-8")].traditional_interlock_pct
                >= self.cells[("N(30,5) @ 30", "UNLIMITED")].traditional_interlock_pct
            ),
        }

    def format(self) -> str:
        processors = [p.name for p in PAPER_PROCESSORS]
        header = f"  {'system':22s}{'TIns':>8s}"
        for proc in processors:
            header += f"{proc + ' Imp%':>16s}{'TI%':>7s}{'BI%':>7s}"
        lines = [
            f"Table 3: detailed analysis of {self.program} "
            f"(BIns = {self.balanced_instructions:,.0f})",
            "",
            header,
            "  " + "-" * (len(header) - 2),
        ]
        seen = []
        for (label, _proc) in self.cells:
            if label not in seen:
                seen.append(label)
        for label in seen:
            any_cell = self.cells[(label, processors[0])]
            row = f"  {label:22s}{any_cell.traditional_instructions:8,.0f}"
            for proc in processors:
                cell = self.cells[(label, proc)]
                row += (
                    f"{cell.imp_pct:16.1f}"
                    f"{cell.traditional_interlock_pct:7.1f}"
                    f"{cell.balanced_interlock_pct:7.1f}"
                )
            lines.append(row)
        lines.append("")
        lines.append("  shape checks:")
        for claim, holds in self.shape_report().items():
            lines.append(f"    [{'ok' if holds else 'FAIL'}] {claim}")
        return "\n".join(lines)


def run_table3(
    program: str = DEFAULT_PROGRAM,
    seed: int = DEFAULT_SEED,
    runs: int = 30,
    jobs: int = 1,
    cache=None,
    manifest=None,
    resume=None,
) -> Table3Result:
    """Evaluate the detail table for one program (MDG by default).

    ``cache``/``manifest``/``resume`` checkpoint and log the run; they
    default to the ambient engine session (see ``evaluate_cells``).
    """
    specs = [
        CellSpec(
            program=program, system=system, processor=processor,
            seed=seed, runs=runs,
        )
        for system in paper_system_rows()
        for processor in PAPER_PROCESSORS
    ]
    results = evaluate_cells(
        specs, jobs=jobs, cache=cache, manifest=manifest, resume=resume
    )
    cells: Dict[Tuple[str, str], CellResult] = {
        (spec.system.label, spec.processor.name): cell
        for spec, cell in zip(specs, results)
    }
    return Table3Result(
        program=program,
        cells=cells,
        balanced_instructions=results[0].balanced_instructions,
    )
