"""Table 5: the N(30,5) analysis -- when latencies exceed the ILP.

"When load latencies are much larger than the amount of load level
parallelism and therefore cannot be hidden via instruction scheduling,
there is no guarantee the balanced scheduler will do better."

For every program and all three processor models at N(30,5) @ 30:
TIns, BIns, Imp%, TI%, BI%.  The shape targets: both schedulers are
interlock-dominated (high TI%/BI%), improvements are small and of
mixed sign, and spill-heavy programs can lose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..machine.config import system_row
from ..machine.processor import PAPER_PROCESSORS, ProcessorModel
from ..simulate.rng import DEFAULT_SEED
from ..workloads.perfect import program_names
from .common import CellResult, CellSpec, evaluate_cells

N30_LABEL = "N(30,5)"
N30_LATENCY = 30


@dataclass
class Table5Result:
    cells: Dict[Tuple[str, str], CellResult]  # (program, processor name)

    def cell(self, program: str, processor: ProcessorModel) -> CellResult:
        return self.cells[(program, processor.name)]

    def shape_report(self) -> Dict[str, bool]:
        unlimited = [
            c for (_, proc), c in self.cells.items() if proc == "UNLIMITED"
        ]
        return {
            "interlock-dominated (TI% > 45 everywhere)": all(
                c.traditional_interlock_pct > 45 for c in unlimited
            ),
            "improvements small (|imp| < 20)": all(
                abs(c.imp_pct) < 20 for c in unlimited
            ),
            "balanced loses on at least one program": any(
                c.imp_pct < 0 for c in unlimited
            ),
        }

    def format(self) -> str:
        processors = [p.name for p in PAPER_PROCESSORS]
        header = f"  {'program':8s}{'TIns':>10s}{'BIns':>10s}"
        for proc in processors:
            header += f"{proc + ' Imp%':>16s}{'TI%':>7s}{'BI%':>7s}"
        lines = [
            "Table 5: analysis of N(30,5) results -- the effect of spill code",
            "",
            header,
            "  " + "-" * (len(header) - 2),
        ]
        for program in program_names():
            first = self.cells[(program, processors[0])]
            row = (
                f"  {program:8s}"
                f"{first.traditional_instructions:10,.0f}"
                f"{first.balanced_instructions:10,.0f}"
            )
            for proc in processors:
                cell = self.cells[(program, proc)]
                row += (
                    f"{cell.imp_pct:16.1f}"
                    f"{cell.traditional_interlock_pct:7.1f}"
                    f"{cell.balanced_interlock_pct:7.1f}"
                )
            lines.append(row)
        lines.append("")
        lines.append("  shape checks:")
        for claim, holds in self.shape_report().items():
            lines.append(f"    [{'ok' if holds else 'FAIL'}] {claim}")
        return "\n".join(lines)


def run_table5(
    seed: int = DEFAULT_SEED,
    runs: int = 30,
    jobs: int = 1,
    cache=None,
    manifest=None,
    resume=None,
) -> Table5Result:
    """Evaluate N(30,5) for every program and processor model.

    ``cache``/``manifest``/``resume`` checkpoint and log the run; they
    default to the ambient engine session (see ``evaluate_cells``).
    """
    row = system_row(N30_LABEL, N30_LATENCY)
    specs = [
        CellSpec(
            program=name, system=row, processor=processor,
            seed=seed, runs=runs,
        )
        for name in program_names()
        for processor in PAPER_PROCESSORS
    ]
    results = evaluate_cells(
        specs, jobs=jobs, cache=cache, manifest=manifest, resume=resume
    )
    cells: Dict[Tuple[str, str], CellResult] = {
        (spec.program, spec.processor.name): cell
        for spec, cell in zip(specs, results)
    }
    return Table5Result(cells=cells)
