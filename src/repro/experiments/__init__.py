"""Experiments: one module per table/figure of the paper's evaluation.

Each ``run_*`` function returns a result object with a ``format()``
method that renders the table the way the paper lays it out, plus
shape-check helpers the test suite asserts on.  The ``balanced-sched``
CLI (see :mod:`repro.experiments.runner`) regenerates everything.
"""

from .ablations import (
    AblationResult,
    run_alias_ablation,
    run_allocator_ablation,
    run_blocking_ablation,
    run_all_ablations,
    run_average_weight_ablation,
    run_direction_ablation,
    run_pipelining_ablation,
    run_spill_pool_ablation,
    run_superscalar_ablation,
    run_trace_ablation,
)
from .common import CellResult, ProgramEvaluator
from .figure2 import PAPER_SCHEDULES, PAPER_WEIGHTS, Figure2Result, run_figure2
from .figure3 import Figure3Result, run_figure3
from .table1 import (
    PAPER_TABLE1_CELLS,
    PAPER_TABLE1_TOTALS,
    Table1Result,
    run_table1,
)
from .table2 import PAPER_TABLE2_MEANS, Table2Result, Table2Row, run_table2
from .table3 import Table3Result, run_table3
from .table4 import OPTIMISTIC_LATENCIES, Table4Result, Table4Row, run_table4
from .table5 import Table5Result, run_table5

__all__ = [
    "AblationResult",
    "run_alias_ablation",
    "run_allocator_ablation",
    "run_blocking_ablation",
    "run_all_ablations",
    "run_average_weight_ablation",
    "run_direction_ablation",
    "run_pipelining_ablation",
    "run_spill_pool_ablation",
    "run_superscalar_ablation",
    "run_trace_ablation",
    "CellResult",
    "ProgramEvaluator",
    "PAPER_SCHEDULES",
    "PAPER_WEIGHTS",
    "Figure2Result",
    "run_figure2",
    "Figure3Result",
    "run_figure3",
    "PAPER_TABLE1_CELLS",
    "PAPER_TABLE1_TOTALS",
    "Table1Result",
    "run_table1",
    "PAPER_TABLE2_MEANS",
    "Table2Result",
    "Table2Row",
    "run_table2",
    "Table3Result",
    "run_table3",
    "OPTIMISTIC_LATENCIES",
    "Table4Result",
    "Table4Row",
    "run_table4",
    "Table5Result",
    "run_table5",
]
