"""Table 4: spill instructions executed.

For each program: the balanced scheduler's spill percentage, and the
traditional scheduler's at each of the paper's nine optimistic
latencies (2, 2.15, 2.4, 2.6, 3, 3.6, 5, 7.6, 30).  A spill
instruction is "any instruction that is inserted by the register
allocator"; percentages are of dynamic (profile-weighted) instructions
executed.

This table is fully deterministic -- no simulation is involved, only
compilation -- so it regenerates bit-identically.

Reproduction note (documented in EXPERIMENTS.md): our linear-scan
allocator is pressure-optimal for compact schedules, so the fixed-
weight baseline at *small* optimistic latencies spills less here than
GCC's allocator did in the paper; the balanced-vs-traditional ordering
the paper reports is reproduced against the larger optimistic
latencies, and on the deep-tree programs (e.g. BDNA) at every latency.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..simulate.rng import DEFAULT_SEED
from ..workloads.perfect import load_program, program_names
from .cache import object_key
from .common import PoolMapStats, ProgramEvaluator, current_session, pool_map

#: The paper's Table 4 column set.
OPTIMISTIC_LATENCIES = (2, 2.15, 2.4, 2.6, 3, 3.6, 5, 7.6, 30)


@dataclass
class Table4Row:
    """Spill percentages for one program."""

    program: str
    dynamic_instructions: float
    balanced: float
    traditional: Dict[float, float]

    def balanced_not_worse_count(self, tolerance: float = 1e-9) -> int:
        """How many latency columns have balanced <= traditional."""
        return sum(
            1
            for value in self.traditional.values()
            if self.balanced <= value + tolerance
        )


@dataclass
class Table4Result:
    rows: List[Table4Row]

    def row(self, program: str) -> Table4Row:
        for candidate in self.rows:
            if candidate.program == program:
                return candidate
        raise KeyError(program)

    def format(self) -> str:
        header = f"  {'program':8s}{'BIns':>10s}{'balanced':>10s}"
        header += "".join(f"{lat:>8g}" for lat in OPTIMISTIC_LATENCIES)
        lines = [
            "Table 4: spill instructions as % of instructions executed",
            "",
            header,
            "  " + "-" * (len(header) - 2),
        ]
        for row in self.rows:
            cells = "".join(
                f"{row.traditional[lat]:8.2f}" for lat in OPTIMISTIC_LATENCIES
            )
            lines.append(
                f"  {row.program:8s}{row.dynamic_instructions:10,.0f}"
                f"{row.balanced:10.2f}{cells}"
            )
        lines.append("")
        lines.append(
            "  (balanced <= traditional count per program, of "
            f"{len(OPTIMISTIC_LATENCIES)} columns: "
            + ", ".join(
                f"{r.program}={r.balanced_not_worse_count()}" for r in self.rows
            )
            + ")"
        )
        return "\n".join(lines)


def _spill_row(task) -> Table4Row:
    """Worker entry point: all compilations for one program's row."""
    name, seed = task
    evaluator = ProgramEvaluator(load_program(name), seed=seed)
    balanced = evaluator.balanced()
    traditional = {
        float(lat): evaluator.traditional(lat).spill_percentage
        for lat in OPTIMISTIC_LATENCIES
    }
    return Table4Row(
        program=name,
        dynamic_instructions=balanced.dynamic_instructions,
        balanced=balanced.spill_percentage,
        traditional=traditional,
    )


def _spill_row_timed(task):
    """Worker entry point: one row plus (wall seconds, worker pid)."""
    start = time.perf_counter()
    row = _spill_row(task)
    return row, time.perf_counter() - start, os.getpid()


def _row_key(name: str, seed: int) -> str:
    return object_key("table4-row", name, seed, list(OPTIMISTIC_LATENCIES))


def run_table4(
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    cache=None,
    manifest=None,
    resume: Optional[bool] = None,
) -> Table4Result:
    """Compile every program under every policy and count spills.

    The unit of checkpointing is one program's whole row (this table
    is compile-only and deterministic, so a cached row replays
    exactly); ``cache``/``manifest``/``resume`` default to the ambient
    engine session.
    """
    session = current_session()
    if cache is None:
        cache = session.cache
    if manifest is None:
        manifest = session.manifest
    if resume is None:
        resume = session.resume
    names = program_names()

    def record(name: str, wall: float, worker: int, status: str,
               retried: int = 0) -> None:
        if manifest is not None:
            manifest.record_cell(
                key=_row_key(name, seed), program=name, system="table4-row",
                processor="-", wall_s=wall, worker=worker, cache=status,
                retries=retried,
            )

    rows: List[Optional[Table4Row]] = [None] * len(names)
    missing: List[int] = []
    for index, name in enumerate(names):
        cached = (
            cache.get_object(_row_key(name, seed))
            if cache is not None and resume
            else None
        )
        if cached is not None:
            rows[index] = cached
            record(name, 0.0, os.getpid(), "hit")
        else:
            missing.append(index)
    if missing:
        stats = PoolMapStats()

        def consume(pos: int, timed) -> None:
            row, wall, worker = timed
            index = missing[pos]
            rows[index] = row
            if cache is not None:
                cache.put_object(_row_key(names[index], seed), row)
            record(names[index], wall, worker, "miss",
                   stats.item_attempts.get(pos, 0))

        pool_map(
            _spill_row_timed,
            [(names[i], seed) for i in missing],
            jobs,
            stats=stats,
            on_result=consume,
        )
    return Table4Result(rows=rows)
