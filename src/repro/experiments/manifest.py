"""Run manifests: an append-only JSON-lines log of what actually ran.

Every ``balanced-sched run <exp>`` appends one ``run_start`` record,
one ``cell`` record per evaluated (or cache-replayed) cell, and one
``run_end`` record to ``results/manifest.jsonl``.  The log is the
run's flight recorder: it names the code version (``git describe``),
the seed/runs/jobs configuration, each cell's wall-clock time, which
worker process computed it, whether it was a cache hit, and how many
times its batch was retried after a pool breakage -- so a died run can
be diagnosed and a published table can point at the exact run that
produced it (see EXPERIMENTS.md).

Record schema (one JSON object per line; fields beyond these may be
added, readers must ignore unknown keys):

``run_start``
    ``run_id, experiment, git, seed, runs, jobs, resume, started``
``cell``
    ``run_id, key, program, system, processor, wall_s, worker,
    cache ("hit"|"miss"), retries`` -- plus, when the run was made
    with ``--obs``, a ``metrics`` object (compact per-cell counter /
    histogram summary from :func:`repro.obs.metrics.summarize_delta`)
``pool_downgrade``
    ``run_id, items`` -- plus ``cause`` (repr of the pool-breaking
    exception) when known, and ``trace_ids`` naming the traced service
    requests that were in flight when the pool broke
``request``
    ``run_id, kind ("compile"|"schedule"|"simulate"|"explain"),
    status (HTTP status code), wall_s`` -- one per request served by
    ``balanced-sched serve`` (see docs/service.md); traced requests
    also carry their ``trace_id``
``run_end``
    ``run_id, experiment, status ("ok"|"interrupted"|"failed"),
    wall_s, cells, hits, misses, retries, inline``

``balanced-sched manifest`` summarises the most recent run(s):
hit rate, retry count, total wall-clock and the slowest cells.
"""

from __future__ import annotations

import json
import logging
import math
import os
import subprocess
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

logger = logging.getLogger("repro.experiments.manifest")

#: Environment override for the manifest path used by the CLI.
MANIFEST_ENV = "BALANCED_SCHED_MANIFEST"

#: The CLI's default manifest path (relative to the working directory).
DEFAULT_MANIFEST_PATH = os.path.join("results", "manifest.jsonl")


def default_manifest_path() -> str:
    return os.environ.get(MANIFEST_ENV, DEFAULT_MANIFEST_PATH)


def git_describe() -> str:
    """``git describe --always --dirty`` of the working tree, or
    ``"unknown"`` outside a repository."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() or "unknown"


class ManifestWriter:
    """Appends run records; each record is flushed to disk immediately
    so a crash never loses what already ran."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._run_id: Optional[str] = None
        self._experiment: Optional[str] = None
        self._counts: Dict[str, int] = {}
        # The service appends from the event loop, the CPU executor
        # and the batcher concurrently; one lock keeps records whole.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    def start_run(self, experiment: str, **fields) -> str:
        """Open a run; returns its id (also stamped on cell records)."""
        self._run_id = f"{experiment}-{uuid.uuid4().hex[:8]}"
        self._experiment = experiment
        self._counts = {"cells": 0, "hits": 0, "misses": 0, "retries": 0,
                        "inline": 0}
        self._append(
            {
                "event": "run_start",
                "run_id": self._run_id,
                "experiment": experiment,
                "git": git_describe(),
                "started": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
                **fields,
            }
        )
        return self._run_id

    def record_cell(
        self,
        *,
        key: str,
        program: str,
        system: str,
        processor: str,
        wall_s: float,
        worker: int,
        cache: str,
        retries: int = 0,
        metrics: Optional[dict] = None,
    ) -> None:
        self._counts["cells"] = self._counts.get("cells", 0) + 1
        bucket = "hits" if cache == "hit" else "misses"
        self._counts[bucket] = self._counts.get(bucket, 0) + 1
        self._counts["retries"] = self._counts.get("retries", 0) + retries
        record = {
            "event": "cell",
            "run_id": self._run_id,
            "key": key,
            "program": program,
            "system": system,
            "processor": processor,
            "wall_s": round(wall_s, 6),
            "worker": worker,
            "cache": cache,
            "retries": retries,
        }
        # Only present on --obs runs, so obs-off manifests are
        # byte-compatible with earlier versions.
        if metrics is not None:
            record["metrics"] = metrics
        self._append(record)

    def record_pool_downgrade(
        self,
        items: int,
        cause: Optional[str] = None,
        trace_ids: Optional[List[str]] = None,
    ) -> None:
        """A batch exhausted its pool retries and ran inline (or, under
        the service's ``inline_fallback=False``, was failed with a 503).

        ``cause`` is the repr of the exception that broke the pool
        (when known), so the manifest can answer *why* the downgrade
        happened; ``trace_ids`` names the traced requests that were in
        flight, so the downgrade can be correlated with the requests it
        hurt (``GET /debug/trace/<id>``).
        """
        self._counts["inline"] = self._counts.get("inline", 0) + items
        record = {
            "event": "pool_downgrade",
            "run_id": self._run_id,
            "items": items,
        }
        if cause is not None:
            record["cause"] = cause
        if trace_ids:
            record["trace_ids"] = sorted(trace_ids)
        self._append(record)

    def record_request(
        self, *, kind: str, status: int, wall_s: float, **fields
    ) -> None:
        """One request served by ``balanced-sched serve``.

        ``status`` is the HTTP status code the client saw; extra
        fields (``cache``, ``coalesced`` ...) ride along verbatim.
        """
        self._append(
            {
                "event": "request",
                "run_id": self._run_id,
                "kind": kind,
                "status": status,
                "wall_s": round(wall_s, 6),
                **fields,
            }
        )

    def end_run(self, *, wall_s: float, status: str = "ok") -> None:
        self._append(
            {
                "event": "run_end",
                "run_id": self._run_id,
                "experiment": self._experiment,
                "status": status,
                "wall_s": round(wall_s, 3),
                **self._counts,
            }
        )
        self._run_id = None
        self._experiment = None


# ----------------------------------------------------------------------
# Summaries (`balanced-sched manifest`)
# ----------------------------------------------------------------------
def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class RunSummary:
    """One run reassembled from its manifest records."""

    start: dict
    cells: List[dict] = field(default_factory=list)
    end: Optional[dict] = None
    downgrades: int = 0
    request_records: List[dict] = field(default_factory=list)

    @property
    def requests(self) -> int:
        return len(self.request_records)

    @property
    def run_id(self) -> str:
        return self.start.get("run_id", "?")

    @property
    def experiment(self) -> str:
        return self.start.get("experiment", "?")

    @property
    def hits(self) -> int:
        return sum(1 for c in self.cells if c.get("cache") == "hit")

    @property
    def misses(self) -> int:
        return len(self.cells) - self.hits

    @property
    def retries(self) -> int:
        return sum(int(c.get("retries", 0)) for c in self.cells)

    @property
    def status(self) -> str:
        if self.end is None:
            return "incomplete (no run_end -- crashed or still running)"
        return self.end.get("status", "?")

    def slowest(self, top: int = 5) -> List[dict]:
        return sorted(
            self.cells, key=lambda c: c.get("wall_s", 0.0), reverse=True
        )[:top]

    def route_latency_stats(self) -> List[dict]:
        """Per-route latency stats over this run's ``request`` records:
        ``[{route, count, p50_ms, p99_ms}, ...]``, routes sorted by
        name.  Percentiles use the nearest-rank method, so they are
        exact observed values, not interpolations."""
        by_route: Dict[str, List[float]] = {}
        for record in self.request_records:
            route = str(record.get("kind", "?"))
            by_route.setdefault(route, []).append(
                float(record.get("wall_s", 0.0))
            )
        out = []
        for route in sorted(by_route):
            walls = sorted(by_route[route])
            out.append(
                {
                    "route": route,
                    "count": len(walls),
                    "p50_ms": round(_percentile(walls, 0.50) * 1000.0, 3),
                    "p99_ms": round(_percentile(walls, 0.99) * 1000.0, 3),
                }
            )
        return out

    def format(self, top: int = 5) -> str:
        lines = [
            f"run {self.run_id} ({self.experiment})",
            f"  git {self.start.get('git', '?')}  seed "
            f"{self.start.get('seed', '?')}  runs "
            f"{self.start.get('runs', '?')}  jobs {self.start.get('jobs', '?')}",
            f"  status: {self.status}"
            + (
                f"  wall {self.end['wall_s']:.1f}s"
                if self.end and "wall_s" in self.end
                else ""
            ),
        ]
        if self.requests:
            lines.append(f"  requests served: {self.requests}")
            for stat in self.route_latency_stats():
                lines.append(
                    f"    {stat['route']:10s} count {stat['count']:5d}  "
                    f"p50 {stat['p50_ms']:8.3f}ms  "
                    f"p99 {stat['p99_ms']:8.3f}ms"
                )
        if self.cells:
            rate = 100.0 * self.hits / len(self.cells)
            lines.append(
                f"  cells: {len(self.cells)}  cache hits: {self.hits} "
                f"({rate:.0f}%)  retries: {self.retries}"
                + (f"  inline downgrades: {self.downgrades}" if self.downgrades else "")
            )
            slow = [c for c in self.slowest(top) if c.get("cache") != "hit"]
            if slow:
                lines.append(f"  slowest cells:")
                for c in slow:
                    lines.append(
                        f"    {c.get('wall_s', 0.0):8.3f}s  "
                        f"{c.get('program', '?'):8s} {c.get('system', '?'):22s} "
                        f"{c.get('processor', '?'):10s} worker {c.get('worker', '?')}"
                        + (
                            f"  (retried x{c['retries']})"
                            if c.get("retries")
                            else ""
                        )
                    )
        else:
            lines.append("  cells: 0")
        return "\n".join(lines)


def read_runs(path) -> List[RunSummary]:
    """Every run in the manifest, oldest first.  Unparseable lines
    (torn writes from a crash -- e.g. a partial final line after a
    SIGKILL mid-append) are skipped with a logged warning."""
    runs: List[RunSummary] = []
    by_id: Dict[str, RunSummary] = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        return []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            logger.warning(
                "skipping unparseable manifest record %s:%d (torn "
                "write?): %.60r", path, lineno, line,
            )
            continue
        if not isinstance(record, dict):
            logger.warning(
                "skipping non-object manifest record %s:%d", path, lineno,
            )
            continue
        event = record.get("event")
        run_id = record.get("run_id")
        if event == "run_start" and run_id:
            summary = RunSummary(start=record)
            runs.append(summary)
            by_id[run_id] = summary
        elif run_id in by_id:
            if event == "cell":
                by_id[run_id].cells.append(record)
            elif event == "run_end":
                by_id[run_id].end = record
            elif event == "pool_downgrade":
                by_id[run_id].downgrades += int(record.get("items", 0))
            elif event == "request":
                by_id[run_id].request_records.append(record)
    return runs


def summarize_manifest(path, last: int = 1, top: int = 5) -> str:
    """Human summary of the ``last`` most recent runs."""
    runs = read_runs(path)
    if not runs:
        return f"no runs recorded in {path}"
    chosen = runs[-last:]
    blocks = [run.format(top=top) for run in reversed(chosen)]
    blocks.append(f"({len(runs)} run(s) in {path})")
    return "\n\n".join(blocks)
