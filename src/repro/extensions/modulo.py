"""Section 6 extension: software pipelining by iterative modulo
scheduling.

"...techniques that enlarge basic blocks (trace scheduling and
software pipelining)..."

Where :mod:`repro.extensions.unrolling` enlarges the block and lets
the ordinary schedulers work on it, modulo scheduling overlaps
iterations *explicitly*: every instruction gets a slot in a kernel of
``II`` cycles (the initiation interval), one iteration starting every
``II`` cycles.  This module implements the classic iterative scheme
(Rau's formulation, simplified to the single-issue machine of the
paper):

1. ``MII = max(resource bound, recurrence bound)`` where the resource
   bound is ``ceil(instructions / issue width)`` and the recurrence
   bound is the longest latency cycle through the loop-carried values
   (:func:`repro.simulate.throughput.recurrence_bound`).
2. For ``II = MII, MII+1, ...``: place instructions in priority order
   (critical path first) at the earliest start satisfying their
   scheduled predecessors, searching ``II`` consecutive slots for a
   free modulo issue slot; evict-and-retry with a bounded budget; on
   budget exhaustion, increase ``II``.

Latency uncertainty enters exactly as in the rest of the repository:
the scheduler is handed per-load weights, so a *balanced-weighted*
modulo schedule budgets each load by its measured parallelism while a
fixed-weight one uses the optimistic constant.  The achieved ``II`` is
the steady-state cycles/iteration when latencies match the weights;
:meth:`ModuloSchedule.validate` checks the modulo dependence
constraint ``slot(dst) + II*distance >= slot(src) + latency`` for
every edge, including the loop-carried back edges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..analysis.critical_path import priorities as compute_priorities
from ..analysis.dag import CodeDAG, DepKind
from ..analysis.dependence import build_dag
from ..core.policy import SchedulingPolicy
from ..extensions.unrolling import infer_carried
from ..ir.block import BasicBlock
from ..ir.operands import Register


class ModuloSchedulingError(ValueError):
    """Raised when no schedule is found within the II search window."""


@dataclass(frozen=True)
class CarriedEdge:
    """A distance-1 dependence from an iteration into the next."""

    src: int
    dst: int
    latency: Fraction


@dataclass
class ModuloSchedule:
    """A kernel schedule: one start slot per instruction."""

    block: BasicBlock
    ii: int
    slots: Dict[int, int]
    carried_edges: List[CarriedEdge] = field(default_factory=list)
    #: The weighted DAG the schedule was built from.
    dag: Optional[CodeDAG] = None
    #: Modulo issue slots available per cycle.
    issue_width: int = 1

    @property
    def stage_count(self) -> int:
        """Pipeline depth: how many iterations overlap in steady state."""
        if not self.slots:
            return 0
        return max(self.slots.values()) // self.ii + 1

    def validate(self) -> None:
        """Check every dependence (intra- and inter-iteration).

        Intra-iteration edge ``src -> dst``: ``slot(dst) >= slot(src) +
        latency``.  Carried edge (distance 1): ``slot(dst) + II >=
        slot(src) + latency``.  Also checks the modulo issue-slot
        resource: at most one instruction per slot mod II.
        """
        assert self.dag is not None
        problems: List[str] = []
        for src in self.dag.nodes():
            for dst, _kind in self.dag.successor_items(src):
                latency = Fraction(self.dag.edge_latency(src, dst))
                if self.slots[dst] < self.slots[src] + latency:
                    problems.append(
                        f"edge {src}->{dst}: slot {self.slots[dst]} < "
                        f"{self.slots[src]} + {latency}"
                    )
        for edge in self.carried_edges:
            if self.slots[edge.dst] + self.ii < self.slots[edge.src] + edge.latency:
                problems.append(
                    f"carried edge {edge.src}->{edge.dst}: "
                    f"{self.slots[edge.dst]} + II {self.ii} < "
                    f"{self.slots[edge.src]} + {edge.latency}"
                )
        occupancy: Dict[int, int] = {}
        for node, slot in self.slots.items():
            key = slot % self.ii
            occupancy[key] = occupancy.get(key, 0) + 1
        overfull = {
            k: v for k, v in occupancy.items() if v > self.issue_width
        }
        if overfull:
            problems.append(f"modulo issue slots oversubscribed: {overfull}")
        if problems:
            raise ModuloSchedulingError(
                "invalid modulo schedule:\n  " + "\n  ".join(problems)
            )

    def format(self) -> str:
        lines = [
            f"modulo schedule: II = {self.ii}, "
            f"{self.stage_count} overlapped stages"
        ]
        for node, slot in sorted(self.slots.items(), key=lambda kv: kv[1]):
            stage, offset = divmod(slot, self.ii)
            lines.append(
                f"  slot {slot:3d} (stage {stage}, cycle {offset}): "
                f"{self.block[node]}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _carried_edges(
    block: BasicBlock,
    dag: CodeDAG,
    carried: Dict[Register, Register],
) -> List[CarriedEdge]:
    """Distance-1 edges: def of a carried value -> next-iteration uses."""
    edges: List[CarriedEdge] = []
    for source, sink in carried.items():
        producers = [
            v for v in dag.nodes() if source in dag.instructions[v].defs
        ]
        consumers = [
            v for v in dag.nodes() if sink in dag.instructions[v].all_uses()
        ]
        for producer in producers:
            latency = Fraction(dag.weights[producer])
            for consumer in consumers:
                edges.append(CarriedEdge(producer, consumer, latency))
    return edges


def minimum_ii(
    block: BasicBlock,
    issue_width: int = 1,
    load_latency: Optional[int] = None,
) -> int:
    """``MII`` = max(resource bound, recurrence bound)."""
    # Imported lazily: repro.simulate.throughput uses the unrolling
    # extension, so a module-level import would be circular.
    from ..simulate.throughput import recurrence_bound

    resource = math.ceil(len(block) / issue_width)
    if load_latency is None:
        load_latency = 1
    recurrence = math.ceil(recurrence_bound(block, load_latency))
    return max(resource, recurrence, 1)


def modulo_schedule(
    block: BasicBlock,
    policy: SchedulingPolicy,
    carried: Optional[Dict[Register, Register]] = None,
    issue_width: int = 1,
    max_ii: Optional[int] = None,
    budget_per_ii: int = 200,
) -> ModuloSchedule:
    """Iteratively modulo-schedule the loop body under ``policy``.

    ``policy`` supplies the load weights (balanced or fixed) exactly as
    for straight-line scheduling; the achieved II is returned in the
    schedule.  ``issue_width`` > 1 models the superscalar extension
    (that many modulo issue slots per cycle).
    """
    if len(block) == 0:
        raise ModuloSchedulingError("cannot pipeline an empty block")
    if carried is None:
        carried = infer_carried(block)

    dag = build_dag(block)
    policy.assign_weights(dag)
    carried_edges = _carried_edges(block, dag, carried)
    node_priorities = compute_priorities(dag)

    mii = max(
        math.ceil(len(block) / issue_width),
        _carried_mii(dag, carried_edges),
        1,
    )
    if max_ii is None:
        max_ii = mii + len(block) + 8

    order = sorted(dag.nodes(), key=lambda v: (-node_priorities[v], v))
    for ii in range(mii, max_ii + 1):
        slots = _try_schedule(
            dag, carried_edges, order, ii, issue_width, budget_per_ii
        )
        if slots is not None:
            schedule = ModuloSchedule(
                block=block,
                ii=ii,
                slots=slots,
                carried_edges=carried_edges,
                dag=dag,
                issue_width=issue_width,
            )
            schedule.validate()
            return schedule
    raise ModuloSchedulingError(
        f"no schedule found for II in [{mii}, {max_ii}]"
    )


def _carried_mii(dag: CodeDAG, carried_edges: List[CarriedEdge]) -> int:
    """Recurrence MII from the weighted carried edges.

    For a cycle that is one carried edge plus an intra-iteration path
    back, II >= (path latency + carried latency) is conservative; we
    use the longest intra-iteration latency path from each carried
    destination to its source plus the carried edge's own latency.
    """
    n = len(dag)
    best = 1
    for edge in carried_edges:
        # Longest latency path dst ->* src within the iteration.
        distance: Dict[int, Fraction] = {edge.dst: Fraction(0)}
        for v in range(n):
            if v not in distance:
                continue
            for succ, _k in dag.successor_items(v):
                candidate = distance[v] + Fraction(dag.edge_latency(v, succ))
                if candidate > distance.get(succ, Fraction(-1)):
                    distance[succ] = candidate
        if edge.src in distance:
            cycle_latency = distance[edge.src] + edge.latency
            best = max(best, math.ceil(cycle_latency))
    return best


def _try_schedule(
    dag: CodeDAG,
    carried_edges: List[CarriedEdge],
    order: List[int],
    ii: int,
    issue_width: int,
    budget: int,
) -> Optional[Dict[int, int]]:
    """One II attempt: list placement with evict-and-retry."""
    slots: Dict[int, int] = {}
    occupancy: Dict[int, List[int]] = {}
    worklist = list(order)
    attempts = 0

    def earliest_start(node: int) -> int:
        start = 0
        for pred, _k in dag.predecessor_items(node):
            if pred in slots:
                need = slots[pred] + Fraction(dag.edge_latency(pred, node))
                start = max(start, math.ceil(need))
        for edge in carried_edges:
            if edge.dst == node and edge.src in slots:
                need = slots[edge.src] + edge.latency - ii
                start = max(start, math.ceil(need))
        return start

    while worklist:
        attempts += 1
        if attempts > budget:
            return None
        node = worklist.pop(0)
        start = earliest_start(node)
        placed = False
        for offset in range(ii):
            candidate = start + offset
            key = candidate % ii
            users = occupancy.setdefault(key, [])
            if len(users) < issue_width:
                users.append(node)
                slots[node] = candidate
                placed = True
                break
        if not placed:
            # Evict the occupant of the preferred slot and retry it.
            key = start % ii
            victim = occupancy[key].pop(0)
            del slots[victim]
            occupancy[key].append(node)
            slots[node] = start
            worklist.append(victim)

    # Fixup: eviction may have left successors earlier than producers;
    # verify and fail this II if so (the caller will retry higher II).
    for src in dag.nodes():
        for dst, _k in dag.successor_items(src):
            if slots[dst] < slots[src] + Fraction(dag.edge_latency(src, dst)):
                return None
    for edge in carried_edges:
        if slots[edge.dst] + ii < slots[edge.src] + edge.latency:
            return None
    return slots
