"""Section 6 extension: superscalar architectures.

The simulator supports in-order multi-issue directly
(:class:`repro.machine.processor.ProcessorModel` with
``issue_width > 1``); this module packages a comparison sweep showing
how balanced scheduling's advantage evolves with issue width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.balanced import BalancedScheduler
from ..core.pipeline import compile_program
from ..core.traditional import TraditionalScheduler
from ..ir.block import Program
from ..machine.config import SystemRow
from ..machine.processor import superscalar
from ..simulate.program import simulate_program
from ..simulate.rng import DEFAULT_SEED, spawn
from ..simulate.stats import percentage_improvement, program_bootstrap_runtimes


@dataclass
class WidthSweepResult:
    """Improvement of balanced over traditional per issue width."""

    program: str
    system: SystemRow
    improvements: Dict[int, float]

    def format(self) -> str:
        lines = [
            f"Superscalar sweep: {self.program} on {self.system.label}",
        ]
        for width, improvement in sorted(self.improvements.items()):
            lines.append(f"  issue width {width}: {improvement:+6.1f}%")
        return "\n".join(lines)


def run_width_sweep(
    program: Program,
    system: SystemRow,
    widths: Sequence[int] = (1, 2, 4),
    seed: int = DEFAULT_SEED,
    runs: int = 30,
) -> WidthSweepResult:
    """Measure balanced-over-traditional improvement per issue width."""
    traditional = compile_program(
        program, TraditionalScheduler(system.optimistic_latency)
    )
    balanced = compile_program(program, BalancedScheduler())

    improvements: Dict[int, float] = {}
    for width in widths:
        # ``superscalar(1)`` degenerates to UNLIMITED; every width runs
        # on the batch simulator's native vector path.
        processor = superscalar(width)
        key = (program.name, system.memory.name, f"w{width}")
        trad_runs = simulate_program(
            traditional.final_blocks,
            processor,
            system.memory,
            spawn("width", *key, "t", seed=seed),
            runs=runs,
        )
        bal_runs = simulate_program(
            balanced.final_blocks,
            processor,
            system.memory,
            spawn("width", *key, "b", seed=seed),
            runs=runs,
        )
        t_boot = program_bootstrap_runtimes(
            trad_runs, spawn("widthb", *key, "t", seed=seed)
        )
        b_boot = program_bootstrap_runtimes(
            bal_runs, spawn("widthb", *key, "b", seed=seed)
        )
        improvements[width] = percentage_improvement(t_boot, b_boot).mean
    return WidthSweepResult(
        program=program.name, system=system, improvements=improvements
    )
