"""Section 6 extension: block-enlarging transformations.

"...techniques that enlarge basic blocks (trace scheduling and
software pipelining)..."

:func:`enlarge_block` replicates a straight-line loop body ``factor``
times at the IR level: every copy gets fresh virtual registers, affine
memory references shift by the iteration distance, and loop-carried
values (live-out of one copy feeding live-in of the next) are wired
through according to a caller-supplied ``carried`` map.
:func:`infer_carried` derives that map for blocks produced by the
minif frontend, whose convention pairs the k-th floating point live-in
scalar with the k-th live-out scalar.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.block import BasicBlock
from ..ir.operands import MemRef, RegClass, Register, VirtualReg


class UnrollError(ValueError):
    """Raised for blocks that cannot be mechanically enlarged."""


def infer_carried(block: BasicBlock) -> Dict[Register, Register]:
    """Pair live-out values with the live-in they feed next iteration.

    Frontend-produced blocks carry the wiring explicitly
    (``block.carried``); for hand-built blocks without it, a block with
    no live-out values carries nothing, and otherwise the floating
    point live-in scalars are paired with the live-out scalars
    positionally.  Raises when that fallback is ambiguous (the caller
    must then supply the map explicitly).
    """
    if block.carried:
        return dict(block.carried)
    if not block.live_out:
        return {}
    fp_live_in = [r for r in block.live_in if r.rclass is RegClass.FP]
    if len(fp_live_in) != len(block.live_out):
        raise UnrollError(
            f"cannot infer carried values: {len(block.live_out)} live-out vs "
            f"{len(fp_live_in)} floating point live-in registers"
        )
    return dict(zip(block.live_out, fp_live_in))


def enlarge_block(
    block: BasicBlock,
    factor: int,
    carried: Optional[Dict[Register, Register]] = None,
    iteration_stride: int = 1,
) -> BasicBlock:
    """Unroll ``block`` ``factor`` times at the IR level.

    ``carried`` maps each live-out register of one copy to the live-in
    register it replaces in the next copy; ``iteration_stride`` is the
    number of array elements one iteration advances (affine memory
    offsets shift by ``stride * copy * coeff``).
    """
    if factor < 1:
        raise UnrollError("factor must be >= 1")
    if factor == 1:
        return block.replaced(list(block.instructions))
    if carried is None:
        carried = infer_carried(block)

    next_index = 1 + max(
        (r.index for inst in block.instructions for r in inst.all_regs()
         if isinstance(r, VirtualReg)),
        default=0,
    )

    out = BasicBlock(
        f"{block.name}x{factor}",
        frequency=block.frequency / factor,
        live_in=list(block.live_in),
    )
    #: registers whose value flows into the current copy.
    inbound: Dict[Register, Register] = {r: r for r in block.live_in}
    last_defs: Dict[Register, Register] = {}

    for copy in range(factor):
        rename: Dict[Register, Register] = {}

        def resolve(reg: Register) -> Register:
            if reg in rename:
                return rename[reg]
            if reg in inbound:
                return inbound[reg]
            return reg

        for inst in block.instructions:
            uses = tuple(resolve(r) for r in inst.uses)
            mem_base = None
            new_mem: Optional[MemRef] = inst.mem
            if inst.mem is not None:
                if inst.mem.base is not None:
                    mem_base = resolve(inst.mem.base)
                shift = 0
                if inst.mem.affine_coeff:
                    shift = inst.mem.affine_coeff * iteration_stride * copy
                new_mem = MemRef(
                    region=inst.mem.region,
                    base=mem_base,
                    offset=inst.mem.offset + shift,
                    affine_coeff=inst.mem.affine_coeff,
                )
            defs: List[Register] = []
            for reg in inst.defs:
                if isinstance(reg, VirtualReg):
                    fresh = VirtualReg(next_index, reg.rclass)
                    next_index += 1
                else:  # physical registers cannot be renamed
                    fresh = reg
                rename[reg] = fresh
                defs.append(fresh)
            clone = inst.copy()
            clone.defs = tuple(defs)
            clone.uses = uses
            clone.mem = new_mem
            out.append(clone)

        # Wire carried values into the next copy.
        for source, sink in carried.items():
            inbound[sink] = rename.get(source, inbound.get(source, source))
        last_defs = {src: rename.get(src, src) for src in carried}

    out.live_out = [last_defs.get(r, r) for r in block.live_out]
    return out
