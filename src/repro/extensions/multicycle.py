"""Section 6 extension: balanced weights for other multi-cycle units.

"The technique should be applicable to a wider set of problems, such
as other multi-cycle instructions (e.g., floating point operations
coupled with asynchronous floating point units)."

:class:`MultiCycleBalancedScheduler` treats every instruction matched
by its predicate -- loads plus, by default, multi-cycle FP operations
-- as an uncertain-latency instruction: it receives a balanced weight
computed from the parallelism available to it, and ``Chances`` counts
all weighted instructions in series, not just loads.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..analysis.dag import CodeDAG
from ..core.policy import SchedulingPolicy
from ..core.scheduler import DEFAULT_TIE_BREAKS, Direction, TieBreak
from ..core.weights import balanced_weights
from ..ir.instructions import FP_OPCODES, Instruction


def uncertain_load_or_multicycle(dag: CodeDAG, node: int) -> bool:
    """Default predicate: loads, plus FP ops with latency > 1."""
    instruction = dag.instructions[node]
    if instruction.is_load:
        return True
    return instruction.opcode in FP_OPCODES and instruction.latency > 1


class MultiCycleBalancedScheduler(SchedulingPolicy):
    """Balanced weighting extended beyond loads (Section 6)."""

    name = "balanced-multicycle"

    def __init__(
        self,
        is_weighted: Callable[[CodeDAG, int], bool] = uncertain_load_or_multicycle,
        tie_breaks: Sequence[TieBreak] = DEFAULT_TIE_BREAKS,
        direction: Direction = Direction.BOTTOM_UP,
    ):
        super().__init__(tie_breaks, direction)
        self.is_weighted = is_weighted

    def assign_weights(self, dag: CodeDAG) -> None:
        for node, weight in balanced_weights(dag, self.is_weighted).items():
            dag.set_weight(node, weight)


def with_fp_latency(
    instructions: Sequence[Instruction], latency: int
) -> None:
    """Mark FP arithmetic as multi-cycle, in place (test/demo helper).

    Models an asynchronous FP unit whose operations take ``latency``
    cycles; the simulator already honours per-instruction latencies.
    """
    if latency < 1:
        raise ValueError("latency must be >= 1")
    for instruction in instructions:
        if instruction.opcode in FP_OPCODES:
            instruction.latency = latency
