"""Section 6 extension: pin loads whose latency is actually known.

"...disabling balanced scheduling when the latency is known (e.g.,
for the second access to a cache line)."

:class:`KnownLatencyScheduler` takes an oracle mapping a load to its
known latency (or ``None`` when unknown).  Known loads get that fixed
weight; unknown loads get balanced weights.  Because weights enter
``Chances`` only through load counting, the balanced computation is
unchanged -- we simply overwrite the known nodes afterwards.

:func:`second_access_same_line` is the paper's worked example of an
oracle: the second access to a cache line is a hit, so any load whose
region/offset falls in the same line as an earlier load in the block
is pinned to the hit latency.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Set, Tuple

from ..analysis.dag import CodeDAG
from ..core.policy import SchedulingPolicy
from ..core.scheduler import DEFAULT_TIE_BREAKS, Direction, TieBreak
from ..core.weights import balanced_weights
from ..ir.instructions import Instruction

#: Oracle: (dag, node) -> known latency in cycles, or None.
LatencyOracle = Callable[[CodeDAG, int], Optional[int]]


def second_access_same_line(
    hit_latency: int = 2, line_elements: int = 4
) -> LatencyOracle:
    """Oracle pinning same-cache-line repeat accesses to the hit time.

    Two affine references to the same region whose offsets fall in the
    same ``line_elements``-sized line touch the same cache line; the
    later one is known to hit.
    """

    def oracle(dag: CodeDAG, node: int) -> Optional[int]:
        instruction = dag.instructions[node]
        if instruction.mem is None or instruction.mem.affine_coeff is None:
            return None
        line = (instruction.mem.region, instruction.mem.offset // line_elements)
        for earlier in range(node):
            other = dag.instructions[earlier]
            if not other.is_load or other.mem is None:
                continue
            if other.mem.affine_coeff is None:
                continue
            other_line = (other.mem.region, other.mem.offset // line_elements)
            if other_line == line:
                return hit_latency
        return None

    return oracle


def expected_latency(memory) -> LatencyOracle:
    """Oracle pinning *every* load to the memory system's mean latency.

    The compile-time counterpart of a delay-tracking issue unit: where
    the hardware learns each load's actual return time after issue, a
    compiler armed with the memory system's distribution can at best
    schedule for its expectation.  ``memory`` is anything with a
    ``mean_latency`` property (a :class:`repro.machine.MemorySystem`);
    the mean is rounded to whole cycles, floored at 1.
    """
    pinned = max(1, round(float(memory.mean_latency)))

    def oracle(dag: CodeDAG, node: int) -> Optional[int]:
        return pinned

    return oracle


class KnownLatencyScheduler(SchedulingPolicy):
    """Balanced weights, except where the latency oracle knows better."""

    name = "balanced-known-latency"

    def __init__(
        self,
        oracle: LatencyOracle,
        tie_breaks: Sequence[TieBreak] = DEFAULT_TIE_BREAKS,
        direction: Direction = Direction.BOTTOM_UP,
    ):
        super().__init__(tie_breaks, direction)
        self.oracle = oracle

    def assign_weights(self, dag: CodeDAG) -> None:
        weights = balanced_weights(dag)
        for node in dag.load_nodes():
            known = self.oracle(dag, node)
            if known is not None:
                dag.set_weight(node, known)
            else:
                dag.set_weight(node, weights[node])

    def known_loads(self, dag: CodeDAG) -> Dict[int, int]:
        """The loads the oracle pins, with their latencies (diagnostics)."""
        out: Dict[int, int] = {}
        for node in dag.load_nodes():
            known = self.oracle(dag, node)
            if known is not None:
                out[node] = known
        return out
