"""Section 6 extension: trace scheduling.

"...techniques that enlarge basic blocks (trace scheduling and
software pipelining)..."

Trace scheduling picks the hottest control-flow path through a CFG,
splices its blocks into one long *trace*, and schedules the trace as a
unit -- giving the balanced weight computation far more load-level
parallelism to distribute.  Off-trace branches become *side exits*
inside the trace, and correctness across them is preserved by a
conservative, explicitly documented motion discipline:

* a **store** may not cross a side exit in either direction (the
  off-trace path must observe exactly the memory state its position
  implies);
* any instruction originally **above** a side exit may not sink below
  it (the off-trace path may consume its value);
* instructions from **below** a side exit may speculatively hoist
  above it -- loads are assumed non-faulting, and their targets are
  dead on the off-trace path (single-assignment virtual registers make
  that true by construction before allocation).

These rules are encoded as CONTROL edges in the trace's dependence
DAG, so the ordinary list scheduler -- balanced or traditional --
needs no changes at all, which is exactly the paper's modularity
argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.alias import AliasModel
from ..analysis.dag import CodeDAG, DepKind
from ..analysis.dependence import build_dag
from ..core.policy import SchedulingPolicy
from ..core.scheduler import ScheduleResult
from ..ir.block import BasicBlock
from ..ir.cfg import CFG
from ..ir.instructions import Instruction


class TraceError(ValueError):
    """Raised for traces that cannot be formed."""


@dataclass
class Trace:
    """A spliced hot path: one block, with side-exit positions."""

    block: BasicBlock
    #: Names of the blocks the trace was formed from, in order.
    source_blocks: List[str]
    #: Instruction indices of the side-exit branches inside ``block``.
    side_exits: List[int]


def form_trace(cfg: CFG, path: Optional[Sequence[str]] = None) -> Trace:
    """Splice the blocks along ``path`` (default: the hottest path).

    The terminating branch of every non-final block becomes a side
    exit retained in the instruction stream; the final block's
    terminator (if any) stays the trace terminator.  Blocks must come
    from one virtual-register space (one function).
    """
    cfg.validate()
    names = list(path) if path is not None else cfg.hottest_path()
    if not names:
        raise TraceError("empty trace path")
    for earlier, later in zip(names, names[1:]):
        if later not in {e.dst for e in cfg.successors(earlier)}:
            raise TraceError(f"{earlier!r} -> {later!r} is not a CFG edge")

    first = cfg.block(names[0])
    trace_block = BasicBlock(
        "+".join(names),
        frequency=first.frequency,
        live_in=list(first.live_in),
    )
    side_exits: List[int] = []
    for position, name in enumerate(names):
        block = cfg.block(name)
        # Later blocks' live-ins that are not defined on the trace are
        # genuine trace live-ins (values from before the region).
        if position > 0:
            defined = {
                reg for inst in trace_block.instructions for reg in inst.defs
            }
            for reg in block.live_in:
                if reg not in defined and reg not in trace_block.live_in:
                    trace_block.live_in.append(reg)
        for index, inst in enumerate(block.instructions):
            is_final_block = position == len(names) - 1
            if inst.is_terminator and not is_final_block:
                side_exits.append(len(trace_block.instructions))
            trace_block.append(inst)
        trace_block.live_out = list(block.live_out)
        trace_block.carried.update(block.carried)
    return Trace(
        block=trace_block, source_blocks=names, side_exits=side_exits
    )


def trace_dag(
    trace: Trace, alias_model: AliasModel = AliasModel.FORTRAN
) -> CodeDAG:
    """The trace's dependence DAG with side-exit motion constraints."""
    dag = build_dag(trace.block, alias_model=alias_model,
                    serialize_terminator=True)
    n = len(dag)
    for exit_index in trace.side_exits:
        for earlier in range(exit_index):
            # Nothing originally above the exit may sink below it.
            if dag.edge_kind(earlier, exit_index) is None:
                dag.add_edge(earlier, exit_index, DepKind.CONTROL)
        for later in range(exit_index + 1, n):
            # Stores must not hoist above the exit either.
            if dag.instructions[later].is_store:
                if dag.edge_kind(exit_index, later) is None:
                    dag.add_edge(exit_index, later, DepKind.CONTROL)
    return dag


def schedule_trace(
    trace: Trace,
    policy: SchedulingPolicy,
    alias_model: AliasModel = AliasModel.FORTRAN,
) -> ScheduleResult:
    """Weight and schedule the whole trace under ``policy``."""
    dag = trace_dag(trace, alias_model)
    return policy.schedule_dag(dag, trace.block)


def compare_trace_vs_blocks(
    cfg: CFG,
    policy_factory,
    simulate,
) -> Tuple[float, float]:
    """Helper for experiments: (block-by-block runtime, trace runtime).

    ``policy_factory`` builds a fresh policy; ``simulate(block) ->
    cycles`` evaluates one scheduled block.  Off-trace blocks are
    ignored (the comparison is over the hot path both ways).
    """
    path = cfg.hottest_path()
    per_block = 0.0
    for name in path:
        scheduled = policy_factory().schedule_block(cfg.block(name))
        per_block += simulate(scheduled.block)
    trace = form_trace(cfg, path)
    traced = schedule_trace(trace, policy_factory())
    return per_block, simulate(traced.block)
