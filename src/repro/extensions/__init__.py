"""Section 6 extensions: multi-cycle units, known latencies,
block enlarging, trace scheduling, software pipelining (modulo
scheduling), superscalar issue."""

from .known_latency import (
    KnownLatencyScheduler,
    LatencyOracle,
    second_access_same_line,
)
from .modulo import (
    CarriedEdge,
    ModuloSchedule,
    ModuloSchedulingError,
    minimum_ii,
    modulo_schedule,
)
from .multicycle import (
    MultiCycleBalancedScheduler,
    uncertain_load_or_multicycle,
    with_fp_latency,
)
from .superscalar import WidthSweepResult, run_width_sweep
from .trace import (
    Trace,
    TraceError,
    compare_trace_vs_blocks,
    form_trace,
    schedule_trace,
    trace_dag,
)
from .unrolling import UnrollError, enlarge_block, infer_carried

__all__ = [
    "KnownLatencyScheduler",
    "LatencyOracle",
    "second_access_same_line",
    "CarriedEdge",
    "ModuloSchedule",
    "ModuloSchedulingError",
    "minimum_ii",
    "modulo_schedule",
    "MultiCycleBalancedScheduler",
    "uncertain_load_or_multicycle",
    "with_fp_latency",
    "WidthSweepResult",
    "run_width_sweep",
    "Trace",
    "TraceError",
    "compare_trace_vs_blocks",
    "form_trace",
    "schedule_trace",
    "trace_dag",
    "UnrollError",
    "enlarge_block",
    "infer_carried",
]
