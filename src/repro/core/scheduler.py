"""The list scheduler shared by both weighting policies.

Faithful to Section 4.1 of the paper:

* **Bottom-up by default**: "Our list scheduler is a bottom-up
  scheduler, therefore we generate schedules in reverse order by
  scheduling from the leaves of the code DAG toward the roots."  The
  bottom-up direction is what the table experiments use, and it is
  what gives the evaluation its character: a bottom-up scheduler with
  fixed load weights systematically misallocates the scarce
  independent instructions (they cluster at the leaf end of the
  block), which is precisely the pathology the paper's Section 5
  describes for the traditional scheduler and which balanced
  weighting corrects.  A ``top-down`` direction is also provided: the
  *illustrated* schedules (Figures 2 and 5) are what a forward
  scheduler emits, so the figure-reproduction experiments use it.
  EXPERIMENTS.md discusses the distinction; the direction ablation
  benchmark quantifies it.
* **Delayed ready-list insertion**: "our scheduler defers adding these
  instructions to the ready list until each predecessor has exhausted
  its expected latency.  In the case of starvation the scheduler
  inserts virtual no-op's into the instruction stream."  (In the
  bottom-up direction the roles of predecessor/successor mirror: a
  node becomes ready once its own latency has elapsed past every
  scheduled consumer.)
* **Priority**: "the priority of an instruction is equal to its weight
  plus the maximum priority among its successors."
* **Tie-breaks**, in order: (1) "the largest difference between
  consumed and defined registers", taken literally (see
  :func:`consumed_minus_defined` for why the literal form matters);
  (2) most DAG nodes exposed for scheduling; (3) original program
  order ("the instruction that was generated the earliest"),
  direction-mirrored so both directions prefer to preserve source
  order among equals.

Because balanced weights are fractions, scheduling time is exact
:class:`fractions.Fraction`; on starvation, time advances directly to
the earliest pending ready time (the gap is the virtual no-op span).
Virtual no-ops never reach the emitted block -- the simulated
processors use hardware interlocks (Section 4.1).
"""

from __future__ import annotations

import enum
from bisect import insort
from dataclasses import dataclass, field
from fractions import Fraction
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.critical_path import priorities as compute_priorities
from ..analysis.dag import CodeDAG
from ..ir.block import BasicBlock
from ..obs import recorder as _obs
from ..obs.decisions import Candidate, Decision
from . import schedfast

Weight = Union[int, Fraction]


class Direction(enum.Enum):
    """Which end of the DAG the scheduler fills first."""

    BOTTOM_UP = "bottom-up"
    TOP_DOWN = "top-down"


#: A tie-break key function: maps (scheduler state, node) -> sortable
#: value; larger wins.  A tie-break whose value never changes while a
#: block is being scheduled (it reads only the DAG and the direction,
#: not the mutable state) may set ``state_invariant = True`` on the
#: function; the scheduler then computes it once per node instead of
#: once per (slot, candidate).  Unmarked tie-breaks are re-evaluated
#: every time, which is always correct.
TieBreak = Callable[["_SchedulerState", int], Union[int, float, Fraction]]


def consumed_minus_defined(state: "_SchedulerState", node: int) -> int:
    """Tie-break 1, the paper's wording taken literally: "the largest
    difference between consumed and defined registers".

    In a forward scheduler this retires values quickly (consuming
    instructions go first).  In the paper's bottom-up scheduler the
    same preference defers value-*producing* instructions among ties,
    pushing loads up and away from their consumers -- which is what
    gives the fixed-weight traditional baseline the register-pressure
    profile Section 5 describes (and GCC exhibited).
    """
    inst = state.dag.instructions[node]
    return len(inst.all_uses()) - len(inst.defs)


consumed_minus_defined.state_invariant = True


def register_pressure(state: "_SchedulerState", node: int) -> int:
    """Direction-mirrored pressure tie-break (ablation variant).

    Prefers whichever candidate shrinks the live set in the direction
    actually being scheduled; in the bottom-up direction this
    serialises independent chains and produces markedly lower register
    pressure than the paper's scheduler -- the ablation benchmark
    quantifies the difference.
    """
    inst = state.dag.instructions[node]
    delta = len(inst.all_uses()) - len(inst.defs)
    return delta if state.direction is Direction.TOP_DOWN else -delta


register_pressure.state_invariant = True


def exposed_count(state: "_SchedulerState", node: int) -> int:
    """Tie-break 2: how many DAG nodes scheduling ``node`` exposes.

    "the number of successors in the code DAG that would be exposed
    for scheduling if that instruction were to be selected" -- in the
    bottom-up direction the exposed nodes are predecessors.
    """
    if state.direction is Direction.TOP_DOWN:
        return sum(
            1
            for s in state.dag.successors(node)
            if state.unscheduled_neighbors[s] == 1
        )
    return sum(
        1
        for p in state.dag.predecessors(node)
        if state.unscheduled_neighbors[p] == 1
    )


def original_order(state: "_SchedulerState", node: int) -> int:
    """Tie-break 3: "the instruction that was generated the earliest".

    Mirrored per direction so that equals keep their source order in
    the *forward* schedule either way.
    """
    ident = state.dag.instructions[node].ident
    return -ident if state.direction is Direction.TOP_DOWN else ident


original_order.state_invariant = True


DEFAULT_TIE_BREAKS: Tuple[TieBreak, ...] = (
    consumed_minus_defined,
    exposed_count,
    original_order,
)


@dataclass
class ScheduleResult:
    """Outcome of scheduling one basic block.

    ``order`` lists node indices in forward (issue) order; ``block``
    is the input block with instructions reordered accordingly;
    ``noop_span`` is the total time gap covered by virtual no-ops (a
    diagnostic: how often the ready list starved); ``priorities`` are
    the computed node priorities; ``slots`` maps each node to the time
    slot the scheduler placed it in (reverse time for bottom-up).
    """

    order: List[int]
    block: BasicBlock
    noop_span: Fraction
    priorities: List[Weight]
    slots: Dict[int, Fraction] = field(default_factory=dict)


class _SchedulerState:
    """Mutable bookkeeping for one scheduling run (visible to tie-breaks)."""

    def __init__(self, dag: CodeDAG, direction: Direction):
        self.dag = dag
        self.direction = direction
        if direction is Direction.BOTTOM_UP:
            self.unscheduled_neighbors = [len(s) for s in dag._succ]
        else:
            self.unscheduled_neighbors = [len(p) for p in dag._pred]
        self.slot: Dict[int, Fraction] = {}
        self.ready_time: Dict[int, Fraction] = {}

    def compute_ready_time(self, node: int) -> Fraction:
        """Earliest slot ``node`` may occupy given scheduled neighbours.

        Top-down: ``forward(node) >= forward(p) + latency(p -> node)``.
        Bottom-up: the constraint mirrors to
        ``reverse(node) >= reverse(s) + latency(node -> s)``.
        """
        ready = Fraction(0)
        if self.direction is Direction.BOTTOM_UP:
            for succ, _kind in self.dag.successor_items(node):
                latency = self.dag.edge_latency(node, succ)
                candidate = self.slot[succ] + Fraction(latency)
                if candidate > ready:
                    ready = candidate
        else:
            for pred, _kind in self.dag.predecessor_items(node):
                latency = self.dag.edge_latency(pred, node)
                candidate = self.slot[pred] + Fraction(latency)
                if candidate > ready:
                    ready = candidate
        return ready


class ListScheduler:
    """The list scheduler; construct once, reuse across blocks."""

    def __init__(
        self,
        tie_breaks: Sequence[TieBreak] = DEFAULT_TIE_BREAKS,
        direction: Direction = Direction.BOTTOM_UP,
    ):
        self.tie_breaks: Tuple[TieBreak, ...] = tuple(tie_breaks)
        self.direction = direction

    # ------------------------------------------------------------------
    def schedule(
        self, dag: CodeDAG, block: Optional[BasicBlock] = None
    ) -> ScheduleResult:
        """Schedule ``dag``; if ``block`` given, also emit the reordered block.

        Dispatches to the array-native engine (:mod:`repro.core.
        schedfast`: packed int64 selection keys over a scaled-integer
        clock) whenever the tie-break chain is expressible there --
        every tie-break ``state_invariant`` or the known
        ``exposed_count`` -- and falls back to the reference
        ``Fraction`` path otherwise.  Both engines produce byte-
        identical results; the property tests and the differential
        fuzz sweep hold them together.
        """
        plan = None
        static_vals: List[Optional[List]] = []
        if len(dag) > 0:
            state = _SchedulerState(dag, self.direction)
            static_vals = [
                [tb(state, v) for v in range(len(dag))]
                if getattr(tb, "state_invariant", False)
                else None
                for tb in self.tie_breaks
            ]
            plan = schedfast.build_plan(
                dag,
                self.tie_breaks,
                static_vals,
                self.direction is Direction.BOTTOM_UP,
                exposed_count,
            )
        rec = _obs.get()
        if plan is None:
            if rec is not None:
                rec.metrics.inc("sched.fast_path", 1, engine="reference")
            return self._schedule_reference(dag, block, rec)
        if rec is not None:
            rec.metrics.inc("sched.fast_path", 1, engine="fast")
        return self._schedule_fast(dag, block, plan, rec)

    def _schedule_fast(
        self,
        dag: CodeDAG,
        block: Optional[BasicBlock],
        plan: "schedfast.FastPlan",
        rec,
    ) -> ScheduleResult:
        """Run the array-native engine and reconstruct the exact
        ``Fraction`` result surface (slots, no-op span, priorities)."""
        scale = plan.scale
        observe = None
        if rec is not None:
            block_label = (
                block.name if block is not None else None
            ) or str(rec.context().get("block", "?"))
            metrics = rec.metrics
            log = rec.decisions
            instructions = dag.instructions
            priority_text = [str(Fraction(u, scale)) for u in plan.prio_units]
            step_box = [0]

            def observe(ready_pairs, chosen, reason, time_units):
                metrics.observe(
                    "sched.ready_size", len(ready_pairs), block=block_label
                )
                metrics.inc(
                    "sched.select_reason", 1, block=block_label, reason=reason
                )
                if log is not None:
                    log.record(
                        Decision(
                            block=block_label,
                            step=step_box[0],
                            time=str(Fraction(time_units, scale)),
                            chosen=chosen,
                            reason=reason,
                            candidates=tuple(
                                Candidate(
                                    node=node,
                                    priority=priority_text[node],
                                    text=str(instructions[node]),
                                )
                                for _s, node in ready_pairs
                            ),
                        )
                    )
                step_box[0] += 1

        placement, slot_units, noop_units = schedfast.run_plan(
            plan, observe, self.tie_breaks
        )
        bottom_up = self.direction is Direction.BOTTOM_UP
        order = list(reversed(placement)) if bottom_up else placement
        return ScheduleResult(
            order=order,
            block=self._emit(dag, order, block),
            noop_span=Fraction(noop_units, scale),
            priorities=[Fraction(u, scale) for u in plan.prio_units],
            slots={v: Fraction(slot_units[v], scale) for v in placement},
        )

    def _schedule_reference(
        self, dag: CodeDAG, block: Optional[BasicBlock], rec
    ) -> ScheduleResult:
        """The reference engine (exact ``Fraction`` clock; the oracle
        the fast path is tested against).

        Hot-path layout: exposed-but-not-yet-ready nodes wait in a heap
        keyed by ready time; ready nodes live in a list kept in global
        discovery order (the order the old linear scan of ``available``
        produced), so selection still walks candidates earliest-first
        and all tie-break semantics -- including insertion-order wins on
        exact key ties -- are preserved byte-for-byte.  Priorities are
        compared through dense integer ranks instead of ``Fraction``
        arithmetic, and ``state_invariant`` tie-break values are cached
        per node, so a slot costs one integer scan of the ready list
        plus tie-break evaluation only among the priority co-leaders.
        """
        n = len(dag)
        node_priorities = compute_priorities(dag)
        state = _SchedulerState(dag, self.direction)

        # Priorities never change mid-run: map each distinct Fraction
        # to its dense sort rank once, then select on int comparisons.
        distinct = sorted(set(node_priorities))
        rank_of = {p: i for i, p in enumerate(distinct)}
        prio_rank = [rank_of[p] for p in node_priorities]

        tie_breaks = self.tie_breaks
        static_vals: List[Optional[List]] = [
            [tb(state, v) for v in range(n)]
            if getattr(tb, "state_invariant", False)
            else None
            for tb in tie_breaks
        ]

        zero = Fraction(0)
        # ``pending`` holds exposed nodes whose ready time is still in
        # the future: (ready_time, seq, node).  ``ready`` holds nodes
        # eligible now, as (seq, node) sorted by seq -- the global
        # discovery order, identical to the old ``available`` scan.
        pending: List[Tuple[Fraction, int, int]] = []
        ready: List[Tuple[int, int]] = []
        seq = 0
        for v in dag.nodes():
            if state.unscheduled_neighbors[v] == 0:
                state.ready_time[v] = zero
                ready.append((seq, v))
                seq += 1

        time = zero
        noop_span = zero
        placement: List[int] = []
        bottom_up = self.direction is Direction.BOTTOM_UP

        # Observability: the recorder is read once per schedule() call
        # by the dispatcher; the ``rec is None`` branch below is the
        # only per-slot cost when disabled.
        block_label = None
        if rec is not None:
            block_label = (block.name if block is not None else None) or str(
                rec.context().get("block", "?")
            )

        while len(placement) < n:
            while pending and pending[0][0] <= time:
                _, s, v = heappop(pending)
                insort(ready, (s, v))
            if not ready:
                # Starvation: virtual no-ops fill the gap to the next
                # pending ready time.
                next_time = pending[0][0]
                noop_span += next_time - time
                time = next_time
                continue

            if rec is None:
                idx = self._select_index(
                    state, ready, prio_rank, static_vals, tie_breaks
                )
            else:
                idx = self._select_observed(
                    rec, state, ready, prio_rank, static_vals, tie_breaks,
                    node_priorities, block_label, time, len(placement),
                )
            chosen = ready.pop(idx)[1]
            state.slot[chosen] = time
            placement.append(chosen)
            time += 1

            neighbors = (
                dag.predecessors(chosen)
                if bottom_up
                else dag.successors(chosen)
            )
            unscheduled = state.unscheduled_neighbors
            for neighbor in neighbors:
                unscheduled[neighbor] -= 1
                if unscheduled[neighbor] == 0:
                    rt = state.compute_ready_time(neighbor)
                    state.ready_time[neighbor] = rt
                    if rt <= time:
                        insort(ready, (seq, neighbor))
                    else:
                        heappush(pending, (rt, seq, neighbor))
                    seq += 1

        order = (
            list(reversed(placement))
            if bottom_up
            else placement
        )
        scheduled_block = self._emit(dag, order, block)
        return ScheduleResult(
            order=order,
            block=scheduled_block,
            noop_span=noop_span,
            priorities=node_priorities,
            slots=dict(state.slot),
        )

    # ------------------------------------------------------------------
    def _select_index(
        self,
        state: _SchedulerState,
        ready: List[Tuple[int, int]],
        prio_rank: List[int],
        static_vals: List[Optional[List]],
        tie_breaks: Tuple[TieBreak, ...],
    ) -> int:
        """Index into ``ready`` of the winner: max priority, then the
        tie-breaks, earliest discovery on exact ties."""
        best_i = 0
        best_r = prio_rank[ready[0][1]]
        tied: Optional[List[Tuple[int, int]]] = None
        for i in range(1, len(ready)):
            node = ready[i][1]
            r = prio_rank[node]
            if r > best_r:
                best_i, best_r = i, r
                tied = None
            elif r == best_r:
                if tied is None:
                    tied = [(best_i, ready[best_i][1])]
                tied.append((i, node))
        # With no co-leaders there is nothing to break; with an empty
        # tie-break chain the earliest co-leader wins -- and that is
        # ``best_i`` in both cases (``tied[0]`` is always
        # ``(best_i, ...)``: co-leaders are collected in scan order).
        if tied is None or not tie_breaks:
            return best_i

        def key(node: int) -> Tuple:
            return tuple(
                vals[node] if vals is not None else tb(state, node)
                for tb, vals in zip(tie_breaks, static_vals)
            )

        best_i, best_node = tied[0]
        best_key = key(best_node)
        for i, node in tied[1:]:
            k = key(node)
            if k > best_key:
                best_i, best_key = i, k
        return best_i

    def _explain_selection(
        self,
        state: _SchedulerState,
        ready: List[Tuple[int, int]],
        prio_rank: List[int],
        static_vals: List[Optional[List]],
        tie_breaks: Tuple[TieBreak, ...],
    ) -> Tuple[int, str]:
        """:meth:`_select_index` with its working shown.

        Returns the winning index *and why it won*: ``only-candidate``,
        ``priority`` (unique max), ``tie-break:<fn>`` (first tie-break
        level that singles out one co-leader), or ``discovery-order``
        (all keys tied exactly; earliest-exposed wins).  Narrowing the
        co-leader set level by level is the lexicographic key
        comparison of :meth:`_select_index` unrolled, so both always
        agree -- the equivalence test holds them together.
        """
        if len(ready) == 1:
            return 0, "only-candidate"
        best_r = max(prio_rank[node] for _s, node in ready)
        tied = [
            (i, node)
            for i, (_s, node) in enumerate(ready)
            if prio_rank[node] == best_r
        ]
        if len(tied) == 1:
            return tied[0][0], "priority"
        for tb, vals in zip(tie_breaks, static_vals):
            values = [
                vals[node] if vals is not None else tb(state, node)
                for _i, node in tied
            ]
            best = max(values)
            tied = [pair for pair, v in zip(tied, values) if v == best]
            if len(tied) == 1:
                return tied[0][0], f"tie-break:{tb.__name__}"
        return tied[0][0], "discovery-order"

    def _select_observed(
        self,
        rec,
        state: _SchedulerState,
        ready: List[Tuple[int, int]],
        prio_rank: List[int],
        static_vals: List[Optional[List]],
        tie_breaks: Tuple[TieBreak, ...],
        node_priorities: List[Weight],
        block_label: str,
        time: Fraction,
        step: int,
    ) -> int:
        """Selection with metrics (and, if on, the decision log)."""
        idx, reason = self._explain_selection(
            state, ready, prio_rank, static_vals, tie_breaks
        )
        metrics = rec.metrics
        metrics.observe("sched.ready_size", len(ready), block=block_label)
        metrics.inc(
            "sched.select_reason", 1, block=block_label, reason=reason
        )
        log = rec.decisions
        if log is not None:
            instructions = state.dag.instructions
            log.record(
                Decision(
                    block=block_label,
                    step=step,
                    time=str(time),
                    chosen=ready[idx][1],
                    reason=reason,
                    candidates=tuple(
                        Candidate(
                            node=node,
                            priority=str(node_priorities[node]),
                            text=str(instructions[node]),
                        )
                        for _s, node in ready
                    ),
                )
            )
        return idx

    def _select(
        self,
        state: _SchedulerState,
        ready: List[int],
        node_priorities: List[Weight],
    ) -> int:
        """Pick from a plain ready list (reference path, kept for
        equivalence testing against :meth:`_select_index`)."""
        best = ready[0]
        best_key = self._key(state, best, node_priorities)
        for candidate in ready[1:]:
            key = self._key(state, candidate, node_priorities)
            if key > best_key:
                best, best_key = candidate, key
        return best

    def _key(
        self, state: _SchedulerState, node: int, node_priorities: List[Weight]
    ) -> Tuple:
        parts: List[Union[int, float, Fraction]] = [
            Fraction(node_priorities[node])
        ]
        for tie_break in self.tie_breaks:
            parts.append(tie_break(state, node))
        return tuple(parts)

    # ------------------------------------------------------------------
    @staticmethod
    def _emit(
        dag: CodeDAG, order: List[int], block: Optional[BasicBlock]
    ) -> BasicBlock:
        instructions = [dag.instructions[v] for v in order]
        if block is not None:
            return block.replaced(instructions)
        out = BasicBlock("scheduled")
        out.instructions = instructions
        return out


def schedule_dag(
    dag: CodeDAG,
    block: Optional[BasicBlock] = None,
    tie_breaks: Sequence[TieBreak] = DEFAULT_TIE_BREAKS,
    direction: Direction = Direction.BOTTOM_UP,
) -> ScheduleResult:
    """One-shot convenience wrapper around :class:`ListScheduler`."""
    return ListScheduler(tie_breaks, direction).schedule(dag, block)
