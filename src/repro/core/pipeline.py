"""The two-pass compilation pipeline (schedule / allocate / re-schedule).

Section 4.1: "GCC performs instruction scheduling both before and
after register allocation.  Since register allocation may add spill
code and/or copy instructions, the second scheduling pass serves to
integrate these additional instructions into the final schedule."

:func:`compile_block` runs exactly that pipeline on one block;
:func:`compile_program` maps it over a whole program and aggregates
spill statistics.  Both scheduling passes use the same policy object
(traditional or balanced); the balanced policy recomputes its weights
on the post-allocation DAG, so spill reloads -- which are loads with
uncertain latency like any other -- are weighted too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis.alias import AliasModel
from ..analysis.dependence import build_dag
from ..ir.block import BasicBlock, Program
from ..obs.recorder import span as _span
from ..regalloc.linear_scan import AllocationResult, LinearScanAllocator
from ..regalloc.target import DEFAULT_REGISTER_FILE, RegisterFile
from ..verify import hooks as _verify
from .policy import SchedulingPolicy
from .scheduler import ScheduleResult


@dataclass
class CompiledBlock:
    """Per-block pipeline artefacts."""

    source: BasicBlock
    final: BasicBlock
    pass1: ScheduleResult
    allocation: Optional[AllocationResult]
    pass2: Optional[ScheduleResult]

    @property
    def spill_count(self) -> int:
        """Static count of allocator-inserted instructions."""
        return self.final.count_spills()

    @property
    def dynamic_spills(self) -> float:
        """Profile-weighted spill instruction count."""
        return self.spill_count * self.final.frequency

    @property
    def dynamic_instructions(self) -> float:
        """Profile-weighted executed instruction count."""
        return len(self.final) * self.final.frequency


@dataclass
class CompilationResult:
    """Whole-program pipeline output."""

    program_name: str
    policy_name: str
    blocks: List[CompiledBlock] = field(default_factory=list)

    @property
    def final_blocks(self) -> List[BasicBlock]:
        return [b.final for b in self.blocks]

    @property
    def dynamic_instructions(self) -> float:
        return sum(b.dynamic_instructions for b in self.blocks)

    @property
    def dynamic_spills(self) -> float:
        return sum(b.dynamic_spills for b in self.blocks)

    @property
    def spill_percentage(self) -> float:
        """Spill instructions as a % of executed instructions (Table 4)."""
        total = self.dynamic_instructions
        if total == 0:
            return 0.0
        return 100.0 * self.dynamic_spills / total


def compile_block(
    block: BasicBlock,
    policy: SchedulingPolicy,
    register_file: Optional[RegisterFile] = DEFAULT_REGISTER_FILE,
    alias_model: AliasModel = AliasModel.FORTRAN,
    second_pass: bool = True,
    allocator: Optional[object] = None,
) -> CompiledBlock:
    """Run schedule -> allocate -> re-schedule on one block.

    Pass ``register_file=None`` to skip allocation entirely (pure
    scheduling studies on virtual-register code, e.g. the worked
    figures of Sections 2-3).  ``allocator`` selects an alternative
    register allocator (any object with ``allocate(block) ->
    AllocationResult``, e.g.
    :class:`repro.regalloc.chaitin.ChaitinAllocator`); the default is
    linear scan over ``register_file``.
    """
    with _span("compile_block", block=block.name, policy=policy.name):
        with _span("pass1"):
            pass1 = policy.schedule_block(block, alias_model=alias_model)

        if register_file is None and allocator is None:
            compiled = CompiledBlock(
                source=block, final=pass1.block, pass1=pass1, allocation=None, pass2=None
            )
            return _checked(compiled, alias_model)

        if allocator is None:
            allocator = LinearScanAllocator(register_file)
        with _span("regalloc"):
            allocation = allocator.allocate(pass1.block)

        pass2: Optional[ScheduleResult] = None
        final = allocation.block
        if second_pass:
            with _span("pass2"):
                dag = build_dag(final, alias_model=alias_model)
                pass2 = policy.schedule_dag(dag, final)
            final = pass2.block

        compiled = CompiledBlock(
            source=block, final=final, pass1=pass1, allocation=allocation, pass2=pass2
        )
        return _checked(compiled, alias_model)


def _checked(compiled: CompiledBlock, alias_model: AliasModel) -> CompiledBlock:
    """Push the artefact through the legality oracle when verification
    is enabled (``balanced-sched run --verify`` / ``verify.hooks``);
    one attribute read when it is not."""
    hook = _verify.get()
    if hook is not None:
        with _span("verify", block=compiled.final.name):
            hook.check(compiled, alias_model)
    return compiled


def compile_program(
    program: Program,
    policy: SchedulingPolicy,
    register_file: Optional[RegisterFile] = DEFAULT_REGISTER_FILE,
    alias_model: AliasModel = AliasModel.FORTRAN,
    second_pass: bool = True,
    allocator: Optional[object] = None,
) -> CompilationResult:
    """Compile every block of every function under ``policy``."""
    result = CompilationResult(
        program_name=program.name, policy_name=policy.name
    )
    for function in program:
        for block in function:
            result.blocks.append(
                compile_block(
                    block,
                    policy,
                    register_file=register_file,
                    alias_model=alias_model,
                    second_pass=second_pass,
                    allocator=allocator,
                )
            )
    return result
