"""Array-native fast path for the list scheduler.

The reference implementation in :mod:`repro.core.scheduler` walks a
``(seq, node)`` ready list under an exact :class:`fractions.Fraction`
clock.  This module re-expresses one scheduling run over plain
integers and packed ``int64`` selection keys so the per-slot work is a
single ``argmax`` over a compact array plus O(degree) integer updates:

* **Scaled-integer clock.**  All node weights and per-edge latency
  overrides of one DAG are fractions; multiplying every latency by
  ``L`` -- the LCM of their denominators, computed per block -- makes
  every ready time, time advance and virtual-no-op span an exact
  integer.  Dividing by ``L`` on the way out reconstructs the exact
  Fractions the reference path produces, so results are byte-identical
  (``Fraction(a*L, L)`` normalises to ``Fraction(a)``).
* **Packed selection keys.**  Selection order is lexicographic:
  priority, then the tie-break chain, then earliest discovery
  (``seq``).  Priorities are rank-compressed to dense ints;
  ``state_invariant`` tie-break columns are evaluated once per node
  and rank-compressed; the dynamic ``exposed_count`` tie-break is
  maintained incrementally (a neighbour's unscheduled count crossing
  1 adjusts the exposure of every node it would expose); ``seq`` is
  direction-mirrored into a larger-is-earlier field.  Each field gets
  a bit range inside one non-negative ``int64``, so the lexicographic
  comparison is a single integer comparison and the ready "list" is a
  numpy key array: the winner is ``argmax`` over the live prefix.

A plan is buildable only when every tie-break is either marked
``state_invariant`` or is the known ``exposed_count`` function, and
when the packed key fits 62 bits; :func:`build_plan` returns ``None``
otherwise and the caller falls back to the reference path.  The
equivalence is enforced by the property tests (schedules, no-op spans,
slot maps and decision logs must match the reference exactly) and by
the differential fuzz sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from heapq import heappop, heappush
from math import gcd
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.dag import CodeDAG, DepKind

#: Hard cap on the packed-key width.  int64 is signed; staying at 62
#: bits keeps every key non-negative with headroom for the in-place
#: exposure increments.
_MAX_KEY_BITS = 62


def _to_units(value, scale: int) -> Optional[int]:
    """``value * scale`` as an exact int, or None if ``value`` is not
    an int/Fraction (floats would break exactness)."""
    if isinstance(value, Fraction):
        return value.numerator * (scale // value.denominator)
    if isinstance(value, int):
        return value * scale
    return None


def _denominator(value) -> Optional[int]:
    if isinstance(value, Fraction):
        return value.denominator
    if isinstance(value, int):
        return 1
    return None


def _rank_compress(values: Sequence) -> Tuple[List[int], int]:
    """Dense sort ranks of ``values`` (larger value -> larger rank) and
    the maximum rank."""
    distinct = sorted(set(values))
    rank_of = {v: i for i, v in enumerate(distinct)}
    return [rank_of[v] for v in values], len(distinct) - 1


@dataclass
class FastPlan:
    """Everything one array-native scheduling run needs, precomputed."""

    n: int
    scale: int                      # L: the per-block clock multiplier
    prio_units: List[int]           # critical-path priority * L
    base_keys: List[int]            # static key part per node
    exposed0: List[int]             # initial exposed_count per node
    unscheduled0: List[int]         # initial unscheduled-neighbor counts
    sched_targets: List[List[int]]  # counts to decrement on schedule
    expose_targets: List[List[int]]  # exposure targets per neighbor
    lat_edges: List[List[Tuple[int, int]]]  # ready-time edges (units)
    exposed_shift: Optional[int]    # bit offset of the dynamic field
    seq_shift: int
    seq_top: int                    # seq field value = seq_top - seq
    #: Raw tie-break value columns in chain order (static lists, or
    #: None marking the dynamic exposed_count level) -- only consulted
    #: by the observed path to narrate selections.
    raw_columns: List[Optional[List]]


def build_plan(
    dag: CodeDAG,
    tie_breaks: Sequence[Callable],
    static_vals: Sequence[Optional[List]],
    bottom_up: bool,
    exposed_fn: Callable,
) -> Optional[FastPlan]:
    """Build the array-native plan for one run, or ``None`` when the
    configuration needs the reference path (unknown dynamic tie-break,
    non-rational weights, or a packed key wider than 62 bits)."""
    n = len(dag)
    if n == 0:
        return None

    # ---- the scaled-integer clock -----------------------------------
    scale = 1
    for w in dag.weights:
        d = _denominator(w)
        if d is None:
            return None
        scale = scale * d // gcd(scale, d)
    overrides = dag._edge_latency
    for value in overrides.values():
        d = _denominator(value)
        if d is None:
            return None
        scale = scale * d // gcd(scale, d)
    weight_units = [_to_units(w, scale) for w in dag.weights]

    # ---- adjacency --------------------------------------------------
    # Only ``sched_targets`` needs the reference's sorted neighbour
    # order (it fixes the discovery ``seq`` of newly exposed nodes);
    # latency edges and exposure targets are consumed by max/sum
    # reductions, so the raw dict order is fine and cheaper.
    succ_dicts = dag._succ
    pred_dicts = dag._pred
    true_kind = DepKind.TRUE

    def edge_units(src: int, dst: int, kind, src_units: int) -> int:
        override = overrides.get((src, dst))
        if override is not None:
            return _to_units(override, scale)
        return src_units if kind is true_kind else scale

    if bottom_up:
        sched_targets = [sorted(pred_dicts[v]) for v in range(n)]
        expose_targets = [list(succ_dicts[v]) for v in range(n)]
        unscheduled0 = [len(succ_dicts[v]) for v in range(n)]
        if overrides:
            lat_edges = [
                [
                    (s, edge_units(v, s, kind, weight_units[v]))
                    for s, kind in succ_dicts[v].items()
                ]
                for v in range(n)
            ]
        else:
            lat_edges = [
                [
                    (s, weight_units[v] if kind is true_kind else scale)
                    for s, kind in succ_dicts[v].items()
                ]
                for v in range(n)
            ]
    else:
        sched_targets = [sorted(succ_dicts[v]) for v in range(n)]
        expose_targets = [list(pred_dicts[v]) for v in range(n)]
        unscheduled0 = [len(pred_dicts[v]) for v in range(n)]
        if overrides:
            lat_edges = [
                [
                    (p, edge_units(p, v, kind, weight_units[p]))
                    for p, kind in pred_dicts[v].items()
                ]
                for v in range(n)
            ]
        else:
            lat_edges = [
                [
                    (p, weight_units[p] if kind is true_kind else scale)
                    for p, kind in pred_dicts[v].items()
                ]
                for v in range(n)
            ]
    exposed0 = [0] * n
    for p in range(n):
        if unscheduled0[p] == 1:
            for t in expose_targets[p]:
                exposed0[t] += 1

    # ---- rank-compressed priority (critical path in clock units) ----
    prio_units = [0] * n
    for v in reversed(range(n)):
        best = 0
        for s in succ_dicts[v]:
            u = prio_units[s]
            if u > best:
                best = u
        prio_units[v] = weight_units[v] + best
    prio_rank, prio_max = _rank_compress(prio_units)

    # ---- tie-break columns ------------------------------------------
    # Each level is either a static rank column or the single dynamic
    # exposed_count field maintained incrementally by the run loop.
    columns: List[Optional[Tuple[List[int], int]]] = []
    raw_columns: List[Optional[List]] = []
    dynamic_seen = False
    for tb, vals in zip(tie_breaks, static_vals):
        if vals is not None:
            ranks, top = _rank_compress(vals)
            columns.append((ranks, top))
            raw_columns.append(list(vals))
        elif tb is exposed_fn and not dynamic_seen:
            dynamic_seen = True
            columns.append(None)
            raw_columns.append(None)
        else:
            return None  # unknown dynamic tie-break: reference path

    # ---- key packing: prio | tb levels... | seq ---------------------
    max_exposed = max((len(t) for t in sched_targets), default=0)
    seq_top = n - 1
    fields: List[int] = [prio_max.bit_length()]
    for col in columns:
        if col is None:
            fields.append(max_exposed.bit_length())
        else:
            fields.append(col[1].bit_length())
    fields.append(seq_top.bit_length())
    if sum(fields) > _MAX_KEY_BITS:
        return None

    shifts: List[int] = []
    offset = 0
    for width in reversed(fields):
        shifts.append(offset)
        offset += width
    shifts.reverse()
    prio_shift, level_shifts, seq_shift = shifts[0], shifts[1:-1], shifts[-1]

    exposed_shift = None
    base_keys = [r << prio_shift for r in prio_rank]
    for col, shift in zip(columns, level_shifts):
        if col is None:
            exposed_shift = shift
            continue
        ranks = col[0]
        for v in range(n):
            base_keys[v] |= ranks[v] << shift

    return FastPlan(
        n=n,
        scale=scale,
        prio_units=prio_units,
        base_keys=base_keys,
        exposed0=exposed0,
        unscheduled0=unscheduled0,
        sched_targets=sched_targets,
        expose_targets=expose_targets,
        lat_edges=lat_edges,
        exposed_shift=exposed_shift,
        seq_shift=seq_shift,
        seq_top=seq_top,
        raw_columns=raw_columns,
    )


def run_plan(
    plan: FastPlan,
    observe: Optional[Callable[[List[Tuple[int, int]], int, str, int], None]],
    tie_breaks: Sequence[Callable] = (),
) -> Tuple[List[int], List[int], int]:
    """Execute one scheduling run over a :class:`FastPlan`.

    Returns ``(placement, slot_units, noop_units)``: node indices in
    placement order, each node's slot in clock units, and the virtual
    no-op span in clock units.  ``observe``, when given, is called per
    slot with the ready list in discovery order, the chosen node, the
    selection reason and the integer time -- the observed path derives
    decision-log records from it.
    """
    n = plan.n
    scale = plan.scale
    unscheduled = list(plan.unscheduled0)
    exposed = list(plan.exposed0)
    base_keys = plan.base_keys
    exposed_shift = plan.exposed_shift
    seq_shift = plan.seq_shift
    seq_top = plan.seq_top
    exposed_one = (1 << exposed_shift) if exposed_shift is not None else 0

    keys = np.zeros(n, dtype=np.int64)
    rnodes: List[int] = [0] * n            # ready prefix [0:rsize]
    pos = [-1] * n                         # node -> index into rnodes
    seq_of = [0] * n
    rsize = 0

    def make_key(v: int, seq: int) -> int:
        key = base_keys[v] | ((seq_top - seq) << seq_shift)
        if exposed_shift is not None:
            key |= exposed[v] << exposed_shift
        return key

    def add_ready(v: int, seq: int) -> None:
        nonlocal rsize
        keys[rsize] = make_key(v, seq)
        rnodes[rsize] = v
        pos[v] = rsize
        rsize += 1

    pending: List[Tuple[int, int, int]] = []
    seq = 0
    for v in range(n):
        if unscheduled[v] == 0:
            seq_of[v] = seq
            add_ready(v, seq)
            seq += 1

    slot_units = [0] * n
    placement: List[int] = []
    time = 0
    noop_units = 0
    sched_targets = plan.sched_targets
    expose_targets = plan.expose_targets
    lat_edges = plan.lat_edges

    while len(placement) < n:
        while pending and pending[0][0] <= time:
            _, s, v = heappop(pending)
            add_ready(v, s)
        if rsize == 0:
            next_time = pending[0][0]
            noop_units += next_time - time
            time = next_time
            continue

        if observe is not None:
            ready_pairs = sorted((seq_of[v], v) for v in rnodes[:rsize])
            chosen, reason = _explain(plan, exposed, ready_pairs, tie_breaks)
            observe(ready_pairs, chosen, reason, time)
        elif rsize == 1:
            chosen = rnodes[0]
        else:
            chosen = rnodes[keys[:rsize].argmax()]

        # Swap-remove the winner from the ready prefix.
        i = pos[chosen]
        last = rsize - 1
        moved = rnodes[last]
        rnodes[i] = moved
        keys[i] = keys[last]
        pos[moved] = i
        pos[chosen] = -1
        rsize = last

        slot_units[chosen] = time
        placement.append(chosen)
        time += scale

        for neighbor in sched_targets[chosen]:
            count = unscheduled[neighbor] - 1
            unscheduled[neighbor] = count
            if count == 1:
                for t in expose_targets[neighbor]:
                    exposed[t] += 1
                    p = pos[t]
                    if p >= 0:
                        keys[p] += exposed_one
            elif count == 0:
                for t in expose_targets[neighbor]:
                    exposed[t] -= 1
                    p = pos[t]
                    if p >= 0:
                        keys[p] -= exposed_one
                ready_at = 0
                for u, lat in lat_edges[neighbor]:
                    candidate = slot_units[u] + lat
                    if candidate > ready_at:
                        ready_at = candidate
                seq_of[neighbor] = seq
                if ready_at <= time:
                    add_ready(neighbor, seq)
                else:
                    heappush(pending, (ready_at, seq, neighbor))
                seq += 1

    return placement, slot_units, noop_units


def _explain(
    plan: FastPlan,
    exposed: List[int],
    ready_pairs: List[Tuple[int, int]],
    tie_breaks: Sequence[Callable],
) -> Tuple[int, str]:
    """The reference ``_explain_selection`` re-derived from plan data:
    narrow the co-leader set level by level and name the level that
    decided.  Only runs under observability."""
    if len(ready_pairs) == 1:
        return ready_pairs[0][1], "only-candidate"
    prio = plan.prio_units
    best = max(prio[node] for _s, node in ready_pairs)
    tied = [pair for pair in ready_pairs if prio[pair[1]] == best]
    if len(tied) == 1:
        return tied[0][1], "priority"
    for tb, column in zip(tie_breaks, plan.raw_columns):
        if column is None:
            values = [exposed[node] for _s, node in tied]
        else:
            values = [column[node] for _s, node in tied]
        best_v = max(values)
        tied = [pair for pair, v in zip(tied, values) if v == best_v]
        if len(tied) == 1:
            return tied[0][1], f"tie-break:{tb.__name__}"
    return tied[0][1], "discovery-order"
