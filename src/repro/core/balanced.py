"""The balanced scheduling policy (the paper's contribution).

Each load's weight is computed from the load level parallelism
available to it (Figure 6), so schedules are optimised for the
*program* rather than for any particular machine.  The policy is
deliberately machine-independent: it is never told the optimistic
latency, the outstanding-load limit, or anything else about the
implementation (Section 4.4: "The balanced scheduler has not been
specifically configured for any of the processor models").
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..analysis.dag import CodeDAG
from .policy import SchedulingPolicy, observe_load_weights
from .scheduler import DEFAULT_TIE_BREAKS, Direction, TieBreak
from .weights import average_block_weight, balanced_weights


class BalancedScheduler(SchedulingPolicy):
    """Load weights = 1 + distributed load-level parallelism."""

    name = "balanced"

    def __init__(
        self,
        tie_breaks: Sequence[TieBreak] = DEFAULT_TIE_BREAKS,
        direction: Direction = Direction.BOTTOM_UP,
    ):
        super().__init__(tie_breaks, direction)

    def assign_weights(self, dag: CodeDAG) -> None:
        weights = balanced_weights(dag)
        dag.set_load_weights(weights)
        observe_load_weights(self.name, weights)


class AverageWeightScheduler(SchedulingPolicy):
    """The Section 3 rejected alternative (ablation baseline).

    Assigns every load in a block the *average* balanced weight of the
    block's loads.  The paper reports this "produced schedules that
    executed no faster than schedules from the traditional scheduler";
    the ablation benchmark reproduces that comparison.
    """

    name = "average-weight"

    def __init__(
        self,
        tie_breaks: Sequence[TieBreak] = DEFAULT_TIE_BREAKS,
        direction: Direction = Direction.BOTTOM_UP,
    ):
        super().__init__(tie_breaks, direction)

    def assign_weights(self, dag: CodeDAG) -> None:
        average = average_block_weight(dag)
        if average is None:
            return
        for node in dag.load_nodes():
            dag.set_weight(node, average)
        observe_load_weights(
            self.name, {node: average for node in dag.load_nodes()}
        )
