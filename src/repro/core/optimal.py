"""Exact basic-block scheduling: the combinatorial baseline.

The paper's evaluation compares two *heuristic* list schedulers; this
module supplies the missing ground truth.  Following the combinatorial
survey of Castañeda Lozano & Schulte (arXiv 1409.7628) we pose single
basic-block scheduling as a complete search over topological orderings
of the dependence DAG and solve it with branch-and-bound:

* **Objective.**  Completion cycles of the block on the paper's
  single-issue machine under a *fixed-latency* memory model: every
  load takes exactly ``load_latency`` cycles (the optimistic model is
  the cache hit time, the pessimistic model the miss time).  For any
  topological order the objective equals
  ``simulate_block(order, [load_latency] * loads, UNLIMITED).cycles``
  -- the property tests pin this equality -- so the exact scheduler
  optimises precisely what the simulator measures.
* **Search.**  Forward (issue-order) enumeration.  A search state is
  the set of already-issued instructions (a bitset), the next issue
  slot ``t`` and the earliest-start times induced by issued TRUE
  predecessors.  States are memoised per bitset with *dominance*
  pruning: a state is cut when a recorded state over the same set had
  no-later ``t`` and componentwise no-later normalised earliest
  starts (completion cost is monotone in both).
* **Bounds.**  Lower bound = max of the slot count (single issue: one
  instruction per cycle) and, per unscheduled node, earliest start
  (static longest path from the roots, dynamic starts from issued
  predecessors, and the current slot) plus its longest latency path to
  a leaf.  The incumbent is seeded with the balanced schedule (and the
  fixed-weight schedule at the model latency), so the search proves
  optimality of the list schedules instead of rediscovering them.
* **Symmetry.**  Interchangeable ready siblings -- same issue time,
  same latency, identical successor structure -- are expanded once.
* **Budget.**  The search counts *expansions* (a deterministic,
  machine-independent unit); past ``node_budget`` it returns the
  incumbent as a *best-effort* schedule together with the root lower
  bound, flagged ``certified=False``.  An optional wall-clock budget
  (``time_budget_s``) exists for interactive use but is off by
  default, keeping reports byte-stable across machines.

A register-pressure cap (``max_live``) turns the same search into the
ε-constraint solver behind the latency-vs-pressure Pareto front: only
orders whose live-register count never exceeds the cap are enumerated.

Everything here is stdlib-only and independent of the list scheduler's
selection machinery; every schedule it emits is a topological order of
the same ``CodeDAG`` and is checked by the ``repro.verify`` oracle in
the pipeline, the fuzz harness and CI.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.critical_path import priorities as compute_priorities
from ..analysis.dag import CodeDAG
from ..ir.block import BasicBlock
from ..obs.recorder import span as _span
from .policy import SchedulingPolicy, observe_load_weights
from .scheduler import (
    DEFAULT_TIE_BREAKS,
    Direction,
    ListScheduler,
    ScheduleResult,
    TieBreak,
)
from .weights import balanced_weights

#: Default branch-and-bound expansion budget per block.  Expansions are
#: deterministic (no wall clock involved), so certified/best-effort
#: status is identical on every machine.  The default certifies every
#: block of the paper suite (<= 64 instructions) with a wide margin.
DEFAULT_NODE_BUDGET = 250_000

#: Dominance entries kept per bitset; a bounded frontier keeps memory
#: linear in visited states while still catching almost all revisits.
_MEMO_WIDTH = 12

_INF = float("inf")


class InfeasiblePressureError(ValueError):
    """No topological order satisfies the requested ``max_live`` cap."""


def _require_int_latency(load_latency) -> int:
    """Normalise the model latency like the traditional scheduler does
    (2 and 2.0 are the same model) but insist on an integer: the cost
    model is the integer-cycle simulator."""
    as_fraction = Fraction(load_latency)
    if as_fraction.denominator != 1 or as_fraction < 0:
        raise ValueError(
            f"optimal scheduling needs a non-negative integer load "
            f"latency, got {load_latency!r}"
        )
    return int(as_fraction)


def _model_latencies(dag: CodeDAG, load_latency: int) -> List[int]:
    """Per-node completion latency under the fixed-latency model."""
    return [
        load_latency if inst.is_load else inst.latency
        for inst in dag.instructions
    ]


def issue_times(
    dag: CodeDAG, order: Sequence[int], load_latency: int
) -> Dict[int, int]:
    """Issue slot of every node when ``order`` runs on the single-issue
    interlocked machine with every load at ``load_latency`` cycles.

    The recurrence mirrors :func:`repro.simulate.simulator.
    simulate_block` exactly: an instruction issues at the first free
    slot once every TRUE (register) predecessor's result is ready;
    anti/output/memory edges constrain only the order, which a
    topological enumeration satisfies by construction.
    """
    lat = _model_latencies(dag, load_latency)
    pred_items = [dag.predecessor_items(v) for v in range(len(dag))]
    issue: Dict[int, int] = {}
    t = 0
    for v in order:
        start = t
        for p, kind in pred_items[v]:
            if kind.carries_latency:
                ready = issue[p] + lat[p]
                if ready > start:
                    start = ready
        issue[v] = start
        t = start + 1
    return issue


def schedule_cost(dag: CodeDAG, order: Sequence[int], load_latency: int) -> int:
    """Completion cycles of ``order`` under the fixed-latency model
    (equal to the scalar simulator's ``cycles`` on UNLIMITED)."""
    if not order:
        return 0
    times = issue_times(dag, order, load_latency)
    return times[order[-1]] + 1


# ----------------------------------------------------------------------
# Register pressure (the ε-constraint axis)
# ----------------------------------------------------------------------
def max_live_registers(
    dag: CodeDAG,
    order: Sequence[int],
    live_in: Sequence = (),
    live_out: Sequence = (),
) -> int:
    """Peak live-register count of ``order``.

    A register is live at a program point when it holds a value
    (defined by an already-issued instruction or live into the block)
    that a not-yet-issued instruction still reads, or that is live out
    of the block.  The count is measured after every issue slot; the
    same definition drives the incremental bookkeeping inside the
    ε-constrained search, so the brute-force tests can hold the two
    together.
    """
    state = _PressureState(dag, live_in, live_out)
    peak = state.live_count
    for v in order:
        state.apply(v)
        if state.live_count > peak:
            peak = state.live_count
    return peak


class _PressureState:
    """Incremental live-set bookkeeping with O(changes) undo."""

    __slots__ = ("_uses_left", "_live_out", "_live", "_node_uses", "_node_defs")

    def __init__(self, dag: CodeDAG, live_in: Sequence, live_out: Sequence):
        uses_left: Dict[object, int] = {}
        node_uses: List[Tuple] = []
        node_defs: List[Tuple] = []
        for inst in dag.instructions:
            uses = tuple(set(inst.all_uses()))
            node_uses.append(uses)
            node_defs.append(tuple(inst.defs))
            for reg in uses:
                uses_left[reg] = uses_left.get(reg, 0) + 1
        self._uses_left = uses_left
        self._live_out = frozenset(live_out)
        self._node_uses = node_uses
        self._node_defs = node_defs
        live = set()
        for reg in live_in:
            if uses_left.get(reg, 0) > 0 or reg in self._live_out:
                live.add(reg)
        self._live = live

    @property
    def live_count(self) -> int:
        return len(self._live)

    def apply(self, node: int) -> List[Tuple]:
        """Issue ``node``; returns an undo log for :meth:`undo`."""
        log: List[Tuple] = []
        uses_left = self._uses_left
        live = self._live
        live_out = self._live_out
        for reg in self._node_uses[node]:
            uses_left[reg] -= 1
            log.append(("use", reg))
            if uses_left[reg] == 0 and reg in live and reg not in live_out:
                live.discard(reg)
                log.append(("unlive", reg))
        for reg in self._node_defs[node]:
            was_live = reg in live
            needed = uses_left.get(reg, 0) > 0 or reg in live_out
            if needed and not was_live:
                live.add(reg)
                log.append(("live", reg))
            elif not needed and was_live:
                live.discard(reg)
                log.append(("unlive", reg))
        return log

    def undo(self, log: List[Tuple]) -> None:
        uses_left = self._uses_left
        live = self._live
        for op, reg in reversed(log):
            if op == "use":
                uses_left[reg] += 1
            elif op == "live":
                live.discard(reg)
            else:  # "unlive"
                live.add(reg)


# ----------------------------------------------------------------------
# The branch-and-bound search
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OptimalSearch:
    """Outcome of one branch-and-bound run.

    ``certified`` means the search ran to completion within budget, so
    ``cost == lower_bound`` is the exact optimum; otherwise ``cost`` is
    the best schedule found (never worse than the seeds) and
    ``lower_bound`` is a sound root bound on the true optimum.
    """

    order: Tuple[int, ...]
    cost: int
    lower_bound: int
    certified: bool
    expanded: int
    memo_hits: int
    feasible: bool = True


def optimize_order(
    dag: CodeDAG,
    load_latency: int,
    seed_orders: Sequence[Sequence[int]] = (),
    max_live: Optional[int] = None,
    live_in: Sequence = (),
    live_out: Sequence = (),
    node_budget: int = DEFAULT_NODE_BUDGET,
    time_budget_s: Optional[float] = None,
) -> OptimalSearch:
    """Minimise completion cycles over topological orders of ``dag``.

    ``seed_orders`` feed the incumbent (infeasible seeds -- under a
    ``max_live`` cap -- are skipped).  With ``max_live`` set, only
    orders whose peak live-register count stays within the cap are
    admitted; ``feasible=False`` reports an unsatisfiable cap.
    """
    load_latency = _require_int_latency(load_latency)
    n = len(dag)
    if n == 0:
        return OptimalSearch((), 0, 0, True, 0, 0)
    if node_budget < 1:
        raise ValueError(f"node_budget must be >= 1, got {node_budget}")

    lat = _model_latencies(dag, load_latency)
    true_succs: List[Tuple[int, ...]] = []
    all_succs: List[Tuple[int, ...]] = []
    succ_sig: List[Tuple] = []
    for v in range(n):
        items = dag.successor_items(v)
        true_succs.append(
            tuple(s for s, kind in items if kind.carries_latency)
        )
        all_succs.append(tuple(s for s, _k in items))
        succ_sig.append(tuple((s, kind.carries_latency) for s, kind in items))

    # Longest latency path *from* each node to a leaf (inclusive)...
    down = [1] * n
    for v in reversed(range(n)):
        best = 1
        for s, kind in dag.successor_items(v):
            d = (lat[v] if kind.carries_latency else 1) + down[s]
            if d > best:
                best = d
        down[v] = best
    # ... and the earliest possible issue slot of each node.
    head = [0] * n
    for v in range(n):
        base = head[v]
        for s, kind in dag.successor_items(v):
            d = base + (lat[v] if kind.carries_latency else 1)
            if d > head[s]:
                head[s] = d
    root_lb = max(n, max(head[v] + down[v] for v in range(n)))

    pressure = (
        _PressureState(dag, live_in, live_out) if max_live is not None else None
    )
    if pressure is not None and pressure.live_count > max_live:
        return OptimalSearch((), 0, root_lb, True, 0, 0, feasible=False)

    best_cost: float = _INF
    best_order: Optional[List[int]] = None
    for seed in seed_orders:
        if len(seed) != n:
            continue
        if (
            max_live is not None
            and max_live_registers(dag, seed, live_in, live_out) > max_live
        ):
            continue
        cost = schedule_cost(dag, seed, load_latency)
        if cost < best_cost:
            best_cost = cost
            best_order = list(seed)

    if best_order is not None and best_cost <= root_lb:
        return OptimalSearch(
            tuple(best_order), int(best_cost), root_lb, True, 0, 0
        )

    ready_preds = [len(dag.predecessors(v)) for v in range(n)]
    est = [0] * n
    scheduled = bytearray(n)
    order_stack: List[int] = []
    memo: Dict[int, List[Tuple[int, Tuple[int, ...]]]] = {}
    full_mask = (1 << n) - 1
    deadline = (
        _time.monotonic() + time_budget_s if time_budget_s is not None else None
    )

    stats = {"expanded": 0, "memo_hits": 0}
    aborted = [False]

    def visit(mask: int, t: int) -> None:
        if mask == full_mask:
            nonlocal best_cost, best_order
            if t < best_cost:
                best_cost = t
                best_order = order_stack.copy()
            return
        stats["expanded"] += 1
        if stats["expanded"] > node_budget:
            aborted[0] = True
            return
        if (
            deadline is not None
            and (stats["expanded"] & 255) == 0
            and _time.monotonic() > deadline
        ):
            aborted[0] = True
            return

        # One pass over the unscheduled set: lower bound + memo key.
        remaining = n - len(order_stack)
        lb = t + remaining
        rel: List[int] = []
        for v in range(n):
            if scheduled[v]:
                continue
            e = est[v]
            start = e if e > t else t
            h = head[v]
            if h > start:
                start = h
            b = start + down[v]
            if b > lb:
                lb = b
            rel.append(e - t if e > t else 0)
        if lb >= best_cost:
            return
        key = tuple(rel)
        entries = memo.get(mask)
        if entries is None:
            memo[mask] = [(t, key)]
        else:
            for t0, rel0 in entries:
                if t0 <= t and all(a <= b for a, b in zip(rel0, key)):
                    stats["memo_hits"] += 1
                    return
            entries.append((t, key))
            if len(entries) > _MEMO_WIDTH:
                entries.pop(0)

        candidates = [
            v for v in range(n) if not scheduled[v] and ready_preds[v] == 0
        ]
        candidates.sort(
            key=lambda v: ((est[v] if est[v] > t else t), -down[v], v)
        )
        seen_sigs = set() if pressure is None else None
        for v in candidates:
            start = est[v] if est[v] > t else t
            if seen_sigs is not None:
                sig = (start, lat[v], succ_sig[v])
                if sig in seen_sigs:
                    continue  # interchangeable with an expanded sibling
                seen_sigs.add(sig)
            if pressure is not None:
                log = pressure.apply(v)
                if pressure.live_count > max_live:
                    pressure.undo(log)
                    continue
            scheduled[v] = 1
            order_stack.append(v)
            completion = start + lat[v]
            est_undo: List[Tuple[int, int]] = []
            for s in true_succs[v]:
                if completion > est[s]:
                    est_undo.append((s, est[s]))
                    est[s] = completion
            for s in all_succs[v]:
                ready_preds[s] -= 1
            visit(mask | (1 << v), start + 1)
            for s in all_succs[v]:
                ready_preds[s] += 1
            for s, old in est_undo:
                est[s] = old
            order_stack.pop()
            scheduled[v] = 0
            if pressure is not None:
                pressure.undo(log)
            if aborted[0]:
                return

    visit(0, 0)

    if best_order is None:
        # No completion found: with a cap that means infeasible (when
        # the search finished) or budget exhaustion before any seed-free
        # solution; without a cap the seeds always supply an incumbent.
        return OptimalSearch(
            (), 0, root_lb, not aborted[0], stats["expanded"],
            stats["memo_hits"], feasible=False,
        )
    certified = not aborted[0]
    return OptimalSearch(
        tuple(best_order),
        int(best_cost),
        int(best_cost) if certified else root_lb,
        certified,
        stats["expanded"],
        stats["memo_hits"],
    )


# ----------------------------------------------------------------------
# The policy wrapper (the third `--policy` choice)
# ----------------------------------------------------------------------
@dataclass
class OptimalScheduleResult(ScheduleResult):
    """A :class:`ScheduleResult` plus the search's certificate.

    ``noop_span`` reports the model interlock (completion cycles minus
    instructions), the diagnostic analogous to the list scheduler's
    starvation span; ``slots`` hold the exact issue cycle of every
    node under the fixed-latency model.
    """

    cost: int = 0
    lower_bound: int = 0
    certified: bool = False
    expanded: int = 0
    load_latency: int = 0


class OptimalScheduler(SchedulingPolicy):
    """Exact scheduling as a drop-in :class:`SchedulingPolicy`.

    Weights every load with the model latency (so priorities and
    diagnostics read like the traditional scheduler's) but replaces
    list selection with the branch-and-bound search, seeded by both
    list schedules.  Flows through :func:`repro.core.compile_block`
    unchanged -- register allocation, the second scheduling pass and
    the verify hook all see a richer :class:`ScheduleResult`.
    """

    name = "optimal"

    def __init__(
        self,
        load_latency: float = 2,
        node_budget: int = DEFAULT_NODE_BUDGET,
        time_budget_s: Optional[float] = None,
        max_live: Optional[int] = None,
        tie_breaks: Sequence[TieBreak] = DEFAULT_TIE_BREAKS,
        direction: Direction = Direction.BOTTOM_UP,
    ):
        super().__init__(tie_breaks, direction)
        self.load_latency = _require_int_latency(load_latency)
        self.node_budget = node_budget
        self.time_budget_s = time_budget_s
        self.max_live = max_live
        self.name = f"optimal(W={self.load_latency})"

    def assign_weights(self, dag: CodeDAG) -> None:
        weights = {node: self.load_latency for node in dag.load_nodes()}
        dag.set_load_weights(weights)
        observe_load_weights(self.name, weights)

    def schedule_dag(
        self, dag: CodeDAG, block: Optional[BasicBlock] = None
    ) -> OptimalScheduleResult:
        live_in = block.live_in if block is not None else ()
        live_out = block.live_out if block is not None else ()
        seeds: List[Sequence[int]] = []
        with _span("weights", policy=self.name):
            if len(dag) > 0:
                # Seed 1: the balanced schedule (the upper bound the
                # issue calls for); seed 2: the fixed-weight schedule
                # at the model latency.
                dag.set_load_weights(balanced_weights(dag))
                seeds.append(self._scheduler.schedule(dag).order)
            self.assign_weights(dag)
            if len(dag) > 0:
                seeds.append(self._scheduler.schedule(dag).order)
        with _span("schedule", policy=self.name):
            search = optimize_order(
                dag,
                self.load_latency,
                seed_orders=seeds,
                max_live=self.max_live,
                live_in=live_in,
                live_out=live_out,
                node_budget=self.node_budget,
                time_budget_s=self.time_budget_s,
            )
        if not search.feasible:
            raise InfeasiblePressureError(
                f"no schedule of {block.name if block else 'block'} fits "
                f"max_live={self.max_live}"
            )
        order = list(search.order)
        times = issue_times(dag, order, self.load_latency)
        return OptimalScheduleResult(
            order=order,
            block=ListScheduler._emit(dag, order, block),
            noop_span=Fraction(max(search.cost - len(order), 0)),
            priorities=compute_priorities(dag),
            slots={v: Fraction(t) for v, t in times.items()},
            cost=search.cost,
            lower_bound=search.lower_bound,
            certified=search.certified,
            expanded=search.expanded,
            load_latency=self.load_latency,
        )
