"""Balanced load-instruction weights (the paper's Figure 6).

The algorithm, verbatim from the paper::

    1. Initialize the latency of each load instruction to 1.
    2. for each instruction i in G
    3.     G_ind = G - (Pred(i) U Succ(i))
    4.     for each connected component C in G_ind
    5.         Find the path with the maximum number of load instructions.
    6.         for each load instruction l in C
    7.             add IssueSlots(i)/Chances to the weight of l

``Pred``/``Succ`` are transitive closures, so ``G_ind`` holds exactly
the instructions that may execute in parallel with ``i``.  ``Chances``
is the maximum number of loads on any path of the component: those
loads execute in series, so they must share the issue slot ``i``
provides, each receiving ``IssueSlots(i)/Chances`` of it.  Loads in
*parallel* (different components, or parallel paths in one component)
each receive the full contribution, because a single padding
instruction hides latency for all of them simultaneously.

Weights are exact :class:`fractions.Fraction` values -- the worked
example in the paper's Table 1 produces twelfths.

Two implementations are provided and cross-checked by the test suite:

* :func:`balanced_weights` -- batched over all contributors at once:
  uint64 bitset *matrices* for the closures and independent sets,
  structurally identical ``(G_ind, IssueSlots)`` pairs deduplicated
  and computed once (unrolled blocks repeat them heavily), and a
  single topological ``Chances`` DP sweep vectorised across every
  distinct subgraph.  Contributions accumulate as integer
  ``(slots, chances) -> count`` tables and are converted to exact
  rationals once per load at the end -- byte-identical to per-``i``
  accumulation because Fraction arithmetic is exact, commutative and
  associative.
* :func:`balanced_weights_reference` -- a deliberately naive
  re-derivation (per-``i`` BFS closures, BFS components, path DP over
  an explicit node list) used as a correctness oracle.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ..analysis.components import (
    batched_weighted_paths,
    component_loads,
    connected_components,
    longest_load_path,
)
from ..analysis.dag import CodeDAG
from ..analysis.reachability import (
    closure_matrix,
    closures,
    independent_mask,
    independent_matrix,
    mask_from_words,
    mask_member_array,
)
from ..obs import recorder as _obs


#: Predicate selecting which nodes receive balanced weights.  The
#: default is the paper's (loads); the Section 6 extension passes a
#: broader predicate covering other uncertain-latency instructions.
WeightedPredicate = Callable[[CodeDAG, int], bool]


def _is_load(dag: CodeDAG, node: int) -> bool:
    return dag.is_load(node)


def balanced_weights(
    dag: CodeDAG, is_weighted: WeightedPredicate = _is_load
) -> Dict[int, Fraction]:
    """Compute the balanced weight of every weighted node in ``dag``.

    By default the weighted nodes are the loads, exactly as in the
    paper's Figure 6; ``is_weighted`` generalises the computation to
    other uncertain-latency instruction classes (Section 6).  Returns
    a map ``node -> weight``; unweighted nodes keep their static
    latency and do not appear.  The weight is ``1`` (the node's own
    issue slot) plus the accumulated contributions of every
    instruction that may execute in parallel with it.
    """
    load_nodes = [v for v in dag.nodes() if is_weighted(dag, v)]
    weights: Dict[int, Fraction] = {l: Fraction(1) for l in load_nodes}
    if not load_nodes:
        return weights

    n = len(dag)
    pred_m, succ_m = closure_matrix(dag)
    ind_matrix = independent_matrix(dag, pred_m, succ_m)
    neighbor_masks = dag.undirected_neighbor_masks()
    load_mask = 0
    weighted_arr = [0] * n
    for l in load_nodes:
        load_mask |= 1 << l
        weighted_arr[l] = 1

    # Group the contributors: two instructions with the same G_ind and
    # the same issue width make byte-identical contributions, so the
    # component/Chances work runs once per distinct (G_ind, slots) pair
    # and the result is multiplied by the group size.  Exact, because
    # Fraction addition is commutative and associative.  Rows with no
    # independent load are dropped up front (Figure 6 contributes
    # nothing for them).
    load_words = np.frombuffer(
        load_mask.to_bytes(ind_matrix.shape[1] * 8, "little"), dtype=np.uint64
    )
    has_load = (ind_matrix & load_words).any(axis=1)
    groups: Dict[Tuple[bytes, int], int] = {}
    considered = 0
    for i in dag.nodes():
        if not has_load[i]:
            continue
        considered += 1
        key = (ind_matrix[i].tobytes(), dag.issue_slots(i))
        groups[key] = groups.get(key, 0) + 1
    rec = _obs.get()
    if rec is not None:
        rec.metrics.inc("sched.gind_memo_hits", considered - len(groups))

    # Contributions accumulate in integer space first -- per issue
    # width, a (load, chances) -> count matrix -- and become Fractions
    # once per distinct denominator at the end, instead of one exact
    # rational addition per (i, component, load) triple.
    load_idx = np.array(load_nodes, dtype=np.intp)
    counts: Dict[int, np.ndarray] = {}
    group_items = list(groups.items())
    pred_lists = [list(dag._pred[v]) for v in range(n)]
    # Chunk the mask axis so the DP matrix stays modest for huge DAGs.
    chunk = max(1, 8_000_000 // max(n, 1))
    for start in range(0, len(group_items), chunk):
        batch = group_items[start : start + chunk]
        member = np.ascontiguousarray(
            np.unpackbits(
                np.frombuffer(
                    b"".join(key for (key, _slots) in (g[0] for g in batch)),
                    dtype=np.uint8,
                ).reshape(len(batch), -1),
                axis=1,
                bitorder="little",
            )[:, :n].T
        ).astype(bool)
        paths = batched_weighted_paths(pred_lists, member, weighted_arr)
        for column, ((key, slots), multiplicity) in enumerate(batch):
            ind = mask_from_words(key)
            per_mask = np.ascontiguousarray(paths[:, column])
            matrix = counts.get(slots)
            if matrix is None:
                matrix = counts[slots] = np.zeros(
                    (len(load_nodes), n + 1), dtype=np.int64
                )
            for component in connected_components(dag, ind, neighbor_masks):
                if not component & load_mask:
                    continue
                comp_member = mask_member_array(component, n)
                comp_load_rows = np.flatnonzero(comp_member[load_idx])
                chances = int(per_mask[comp_member].max())
                matrix[comp_load_rows, chances] += multiplicity

    for slots, matrix in counts.items():
        for row, l in enumerate(load_nodes):
            entries = matrix[row]
            for chances in np.flatnonzero(entries):
                weights[l] += Fraction(
                    slots * int(entries[chances]), int(chances)
                )
    return weights


def contribution_matrix(dag: CodeDAG) -> Dict[int, Dict[int, Fraction]]:
    """Per-(load, contributor) contribution table (the paper's Table 1).

    ``matrix[l][i]`` is the amount instruction ``i`` adds to load
    ``l``'s weight; every pair of nodes appears (zero when ``i``
    contributes nothing to ``l``).  The load's total weight is
    ``1 + sum(matrix[l].values())``.
    """
    load_nodes = dag.load_nodes()
    matrix: Dict[int, Dict[int, Fraction]] = {
        l: {i: Fraction(0) for i in dag.nodes() if i != l} for l in load_nodes
    }
    if not load_nodes:
        return matrix

    pred_masks, succ_masks = closures(dag)
    neighbor_masks = dag.undirected_neighbor_masks()

    for i in dag.nodes():
        ind = independent_mask(dag, i, pred_masks, succ_masks)
        slots = dag.issue_slots(i)
        for component in connected_components(dag, ind, neighbor_masks):
            loads = component_loads(dag, component)
            if not loads:
                continue
            chances = longest_load_path(dag, component)
            for l in loads:
                matrix[l][i] += Fraction(slots, chances)
    return matrix


# ----------------------------------------------------------------------
# Reference (oracle) implementation
# ----------------------------------------------------------------------
def _closure_bfs(dag: CodeDAG, start: int, forward: bool) -> Set[int]:
    """Transitive closure by explicit BFS (oracle building block)."""
    seen: Set[int] = set()
    frontier = [start]
    while frontier:
        node = frontier.pop()
        neighbors = dag.successors(node) if forward else dag.predecessors(node)
        for nxt in neighbors:
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def _components_bfs(dag: CodeDAG, nodes: Set[int]) -> List[Set[int]]:
    """Weakly connected components by explicit BFS (oracle)."""
    remaining = set(nodes)
    out: List[Set[int]] = []
    while remaining:
        seed = remaining.pop()
        component = {seed}
        frontier = [seed]
        while frontier:
            v = frontier.pop()
            for u in dag.successors(v) + dag.predecessors(v):
                if u in remaining:
                    remaining.discard(u)
                    component.add(u)
                    frontier.append(u)
        out.append(component)
    return out


def _chances_dp(dag: CodeDAG, component: Set[int]) -> int:
    """Max loads on any path (oracle DP over sorted node order)."""
    best: Dict[int, int] = {}
    answer = 0
    for v in sorted(component):
        through = max(
            (best[p] for p in dag.predecessors(v) if p in component), default=0
        )
        best[v] = through + (1 if dag.is_load(v) else 0)
        answer = max(answer, best[v])
    return answer


def balanced_weights_reference(dag: CodeDAG) -> Dict[int, Fraction]:
    """Naive re-derivation of :func:`balanced_weights` (test oracle)."""
    weights: Dict[int, Fraction] = {
        l: Fraction(1) for l in dag.nodes() if dag.is_load(l)
    }
    if not weights:
        return weights
    all_nodes = set(dag.nodes())
    for i in dag.nodes():
        excluded = _closure_bfs(dag, i, forward=True)
        excluded |= _closure_bfs(dag, i, forward=False)
        excluded.add(i)
        independent = all_nodes - excluded
        for component in _components_bfs(dag, independent):
            loads = [v for v in component if dag.is_load(v)]
            if not loads:
                continue
            chances = _chances_dp(dag, component)
            for l in loads:
                weights[l] += Fraction(dag.issue_slots(i), chances)
    return weights


def average_block_weight(dag: CodeDAG) -> Optional[Fraction]:
    """The rejected Section 3 alternative: one average weight per block.

    "An alternate technique ... might compute a weight based on the
    average load level parallelism over all load instructions in a
    basic block."  The paper reports this variant was no faster than
    the traditional scheduler; the ablation benchmark demonstrates the
    same.  Returns ``None`` for blocks without loads.
    """
    per_load = balanced_weights(dag)
    if not per_load:
        return None
    return sum(per_load.values(), Fraction(0)) / len(per_load)
