"""Balanced load-instruction weights (the paper's Figure 6).

The algorithm, verbatim from the paper::

    1. Initialize the latency of each load instruction to 1.
    2. for each instruction i in G
    3.     G_ind = G - (Pred(i) U Succ(i))
    4.     for each connected component C in G_ind
    5.         Find the path with the maximum number of load instructions.
    6.         for each load instruction l in C
    7.             add IssueSlots(i)/Chances to the weight of l

``Pred``/``Succ`` are transitive closures, so ``G_ind`` holds exactly
the instructions that may execute in parallel with ``i``.  ``Chances``
is the maximum number of loads on any path of the component: those
loads execute in series, so they must share the issue slot ``i``
provides, each receiving ``IssueSlots(i)/Chances`` of it.  Loads in
*parallel* (different components, or parallel paths in one component)
each receive the full contribution, because a single padding
instruction hides latency for all of them simultaneously.

Weights are exact :class:`fractions.Fraction` values -- the worked
example in the paper's Table 1 produces twelfths.

Two implementations are provided and cross-checked by the test suite:

* :func:`balanced_weights` -- bitset closures + bitmask connected
  components + a topological DP for ``Chances``; this is the paper's
  O(n^2 * alpha(n)) structure realised with word-parallel set
  operations.
* :func:`balanced_weights_reference` -- a deliberately naive
  re-derivation (per-``i`` BFS closures, BFS components, path DP over
  an explicit node list) used as a correctness oracle.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Set

from ..analysis.components import (
    component_loads,
    connected_components,
    longest_load_path,
)
from ..analysis.dag import CodeDAG
from ..analysis.reachability import bits, closures, independent_mask


#: Predicate selecting which nodes receive balanced weights.  The
#: default is the paper's (loads); the Section 6 extension passes a
#: broader predicate covering other uncertain-latency instructions.
WeightedPredicate = Callable[[CodeDAG, int], bool]


def _is_load(dag: CodeDAG, node: int) -> bool:
    return dag.is_load(node)


def balanced_weights(
    dag: CodeDAG, is_weighted: WeightedPredicate = _is_load
) -> Dict[int, Fraction]:
    """Compute the balanced weight of every weighted node in ``dag``.

    By default the weighted nodes are the loads, exactly as in the
    paper's Figure 6; ``is_weighted`` generalises the computation to
    other uncertain-latency instruction classes (Section 6).  Returns
    a map ``node -> weight``; unweighted nodes keep their static
    latency and do not appear.  The weight is ``1`` (the node's own
    issue slot) plus the accumulated contributions of every
    instruction that may execute in parallel with it.
    """
    load_nodes = [v for v in dag.nodes() if is_weighted(dag, v)]
    weights: Dict[int, Fraction] = {l: Fraction(1) for l in load_nodes}
    if not load_nodes:
        return weights

    pred_masks, succ_masks = closures(dag)
    neighbor_masks = dag.undirected_neighbor_masks()
    load_mask = 0
    for l in load_nodes:
        load_mask |= 1 << l

    for i in dag.nodes():
        ind = independent_mask(dag, i, pred_masks, succ_masks)
        if not ind & load_mask:
            continue  # no load can run in parallel with i
        slots = dag.issue_slots(i)
        for component in connected_components(dag, ind, neighbor_masks):
            if not component & load_mask:
                continue
            chances = _longest_weighted_path(dag, component, load_mask)
            contribution = Fraction(slots, chances)
            for l in _component_weighted(component, load_mask):
                weights[l] += contribution
    return weights


def _component_weighted(component: int, weighted_mask: int) -> List[int]:
    """Weighted nodes inside a component bitmask."""
    return list(bits(component & weighted_mask))


def _longest_weighted_path(dag: CodeDAG, component: int, weighted_mask: int) -> int:
    """``Chances`` generalised: max weighted nodes on any path."""
    best: Dict[int, int] = {}
    chances = 0
    for v in bits(component):
        through = 0
        for p in dag.predecessors(v):
            if component >> p & 1:
                value = best.get(p, 0)
                if value > through:
                    through = value
        best[v] = through + (1 if weighted_mask >> v & 1 else 0)
        if best[v] > chances:
            chances = best[v]
    return chances


def contribution_matrix(dag: CodeDAG) -> Dict[int, Dict[int, Fraction]]:
    """Per-(load, contributor) contribution table (the paper's Table 1).

    ``matrix[l][i]`` is the amount instruction ``i`` adds to load
    ``l``'s weight; every pair of nodes appears (zero when ``i``
    contributes nothing to ``l``).  The load's total weight is
    ``1 + sum(matrix[l].values())``.
    """
    load_nodes = dag.load_nodes()
    matrix: Dict[int, Dict[int, Fraction]] = {
        l: {i: Fraction(0) for i in dag.nodes() if i != l} for l in load_nodes
    }
    if not load_nodes:
        return matrix

    pred_masks, succ_masks = closures(dag)
    neighbor_masks = dag.undirected_neighbor_masks()

    for i in dag.nodes():
        ind = independent_mask(dag, i, pred_masks, succ_masks)
        slots = dag.issue_slots(i)
        for component in connected_components(dag, ind, neighbor_masks):
            loads = component_loads(dag, component)
            if not loads:
                continue
            chances = longest_load_path(dag, component)
            for l in loads:
                matrix[l][i] += Fraction(slots, chances)
    return matrix


# ----------------------------------------------------------------------
# Reference (oracle) implementation
# ----------------------------------------------------------------------
def _closure_bfs(dag: CodeDAG, start: int, forward: bool) -> Set[int]:
    """Transitive closure by explicit BFS (oracle building block)."""
    seen: Set[int] = set()
    frontier = [start]
    while frontier:
        node = frontier.pop()
        neighbors = dag.successors(node) if forward else dag.predecessors(node)
        for nxt in neighbors:
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def _components_bfs(dag: CodeDAG, nodes: Set[int]) -> List[Set[int]]:
    """Weakly connected components by explicit BFS (oracle)."""
    remaining = set(nodes)
    out: List[Set[int]] = []
    while remaining:
        seed = remaining.pop()
        component = {seed}
        frontier = [seed]
        while frontier:
            v = frontier.pop()
            for u in dag.successors(v) + dag.predecessors(v):
                if u in remaining:
                    remaining.discard(u)
                    component.add(u)
                    frontier.append(u)
        out.append(component)
    return out


def _chances_dp(dag: CodeDAG, component: Set[int]) -> int:
    """Max loads on any path (oracle DP over sorted node order)."""
    best: Dict[int, int] = {}
    answer = 0
    for v in sorted(component):
        through = max(
            (best[p] for p in dag.predecessors(v) if p in component), default=0
        )
        best[v] = through + (1 if dag.is_load(v) else 0)
        answer = max(answer, best[v])
    return answer


def balanced_weights_reference(dag: CodeDAG) -> Dict[int, Fraction]:
    """Naive re-derivation of :func:`balanced_weights` (test oracle)."""
    weights: Dict[int, Fraction] = {
        l: Fraction(1) for l in dag.nodes() if dag.is_load(l)
    }
    if not weights:
        return weights
    all_nodes = set(dag.nodes())
    for i in dag.nodes():
        excluded = _closure_bfs(dag, i, forward=True)
        excluded |= _closure_bfs(dag, i, forward=False)
        excluded.add(i)
        independent = all_nodes - excluded
        for component in _components_bfs(dag, independent):
            loads = [v for v in component if dag.is_load(v)]
            if not loads:
                continue
            chances = _chances_dp(dag, component)
            for l in loads:
                weights[l] += Fraction(dag.issue_slots(i), chances)
    return weights


def average_block_weight(dag: CodeDAG) -> Optional[Fraction]:
    """The rejected Section 3 alternative: one average weight per block.

    "An alternate technique ... might compute a weight based on the
    average load level parallelism over all load instructions in a
    basic block."  The paper reports this variant was no faster than
    the traditional scheduler; the ablation benchmark demonstrates the
    same.  Returns ``None`` for blocks without loads.
    """
    per_load = balanced_weights(dag)
    if not per_load:
        return None
    return sum(per_load.values(), Fraction(0)) / len(per_load)
