"""The scheduling-policy interface.

Both schedulers in the paper share one list scheduler and differ only
in how load-instruction weights are assigned (Section 2: "The balanced
scheduler simply incorporates the new method of computing weights for
each load instruction into a traditional list scheduler").  A
:class:`SchedulingPolicy` therefore owns exactly one decision --
``assign_weights`` -- and inherits everything else.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from ..analysis.alias import AliasModel
from ..analysis.dag import CodeDAG
from ..analysis.dependence import build_dag
from ..ir.block import BasicBlock
from ..obs import recorder as _obs
from ..obs.recorder import span as _span
from .scheduler import (
    DEFAULT_TIE_BREAKS,
    Direction,
    ListScheduler,
    ScheduleResult,
    TieBreak,
)


def observe_load_weights(policy_name: str, weights) -> None:
    """Record a policy's per-load weight assignments when obs is on.

    For the balanced policy this is the Figure 6 output -- the one
    number per load the whole paper turns on -- labelled by policy and
    by the block of the enclosing span, as an exact histogram.
    """
    rec = _obs.get()
    if rec is None or not weights:
        return
    block = str(rec.context().get("block", "?"))
    rec.metrics.observe_many(
        "sched.load_weight",
        (float(w) for w in weights.values()),
        policy=policy_name,
        block=block,
    )


class SchedulingPolicy(abc.ABC):
    """A load-weighting policy on top of the shared list scheduler."""

    #: Short human-readable policy name (appears in reports).
    name: str = "abstract"

    def __init__(
        self,
        tie_breaks: Sequence[TieBreak] = DEFAULT_TIE_BREAKS,
        direction: Direction = Direction.BOTTOM_UP,
    ):
        self._scheduler = ListScheduler(tie_breaks, direction)

    @property
    def direction(self) -> Direction:
        return self._scheduler.direction

    @abc.abstractmethod
    def assign_weights(self, dag: CodeDAG) -> None:
        """Install load weights into ``dag`` (in place)."""

    # ------------------------------------------------------------------
    def schedule_dag(self, dag: CodeDAG, block: Optional[BasicBlock] = None) -> ScheduleResult:
        """Weight the DAG, then run the shared list scheduler."""
        with _span("weights", policy=self.name):
            self.assign_weights(dag)
        with _span("schedule", policy=self.name):
            return self._scheduler.schedule(dag, block)

    def schedule_block(
        self,
        block: BasicBlock,
        alias_model: AliasModel = AliasModel.FORTRAN,
    ) -> ScheduleResult:
        """Build the block's DAG and schedule it under this policy."""
        with _span("dependence", block=block.name):
            dag = build_dag(block, alias_model=alias_model)
        return self.schedule_dag(dag, block)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
