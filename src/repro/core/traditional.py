"""The traditional (baseline) scheduling policy.

"Traditional list schedulers use a single constant for the weight of
all load instructions, usually an implementation-defined latency
(e.g., cache hit time)" (Section 2).  The constant is the *optimistic
latency* of the machine being compiled for: the cache hit time or
effective access time on cache machines, the mean of the latency
distribution on network machines (Section 5).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence, Union

from ..analysis.dag import CodeDAG
from .policy import SchedulingPolicy, observe_load_weights
from .scheduler import DEFAULT_TIE_BREAKS, Direction, TieBreak

Latency = Union[int, float, Fraction]


def as_fraction(latency: Latency) -> Fraction:
    """Convert a latency to an exact fraction.

    Floats are converted through their decimal string so 2.6 becomes
    13/5, not the nearest binary float.
    """
    if isinstance(latency, Fraction):
        return latency
    if isinstance(latency, int):
        return Fraction(latency)
    return Fraction(str(latency))


class TraditionalScheduler(SchedulingPolicy):
    """Fixed-optimistic-latency weighting (the paper's baseline)."""

    def __init__(
        self,
        optimistic_latency: Latency = 2,
        tie_breaks: Sequence[TieBreak] = DEFAULT_TIE_BREAKS,
        direction: Direction = Direction.BOTTOM_UP,
    ):
        super().__init__(tie_breaks, direction)
        self.optimistic_latency = as_fraction(optimistic_latency)
        self.name = f"traditional(W={optimistic_latency})"

    def assign_weights(self, dag: CodeDAG) -> None:
        """Every load gets the same implementation-defined weight."""
        for node in dag.load_nodes():
            dag.set_weight(node, self.optimistic_latency)
        observe_load_weights(
            self.name,
            {node: self.optimistic_latency for node in dag.load_nodes()},
        )
