"""The paper's primary contribution: balanced scheduling.

* :func:`balanced_weights` -- Figure 6's weight computation.
* :class:`BalancedScheduler` / :class:`TraditionalScheduler` -- the two
  policies over the shared bottom-up :class:`ListScheduler`.
* :func:`compile_block` / :func:`compile_program` -- the two-pass
  schedule / register-allocate / re-schedule pipeline.
"""

from .balanced import AverageWeightScheduler, BalancedScheduler
from .optimal import (
    DEFAULT_NODE_BUDGET,
    InfeasiblePressureError,
    OptimalScheduler,
    OptimalScheduleResult,
    OptimalSearch,
    max_live_registers,
    optimize_order,
    schedule_cost,
)
from .pipeline import (
    CompilationResult,
    CompiledBlock,
    compile_block,
    compile_program,
)
from .policy import SchedulingPolicy
from .scheduler import (
    DEFAULT_TIE_BREAKS,
    Direction,
    ListScheduler,
    ScheduleResult,
    consumed_minus_defined,
    exposed_count,
    original_order,
    register_pressure,
    schedule_dag,
)
from .traditional import TraditionalScheduler, as_fraction
from .weights import (
    average_block_weight,
    balanced_weights,
    balanced_weights_reference,
    contribution_matrix,
)

__all__ = [
    "AverageWeightScheduler",
    "BalancedScheduler",
    "CompilationResult",
    "CompiledBlock",
    "compile_block",
    "compile_program",
    "DEFAULT_NODE_BUDGET",
    "InfeasiblePressureError",
    "OptimalScheduler",
    "OptimalScheduleResult",
    "OptimalSearch",
    "max_live_registers",
    "optimize_order",
    "schedule_cost",
    "SchedulingPolicy",
    "DEFAULT_TIE_BREAKS",
    "ListScheduler",
    "ScheduleResult",
    "consumed_minus_defined",
    "Direction",
    "original_order",
    "register_pressure",
    "exposed_count",
    "schedule_dag",
    "TraditionalScheduler",
    "as_fraction",
    "average_block_weight",
    "balanced_weights",
    "balanced_weights_reference",
    "contribution_matrix",
]
