"""Exports: Chrome ``trace_event`` JSON, phase summaries, metrics JSON.

The Chrome trace format is the JSON-array flavour documented by the
Trace Event Format spec and consumed by ``chrome://tracing`` and
Perfetto (https://ui.perfetto.dev): a ``traceEvents`` list of complete
(``"ph": "X"``) events with microsecond ``ts``/``dur``.  Spans from a
:class:`~repro.obs.recorder.Recorder` map 1:1 onto complete events;
pid/tid are fixed (the pipeline records spans from one thread), and
events are emitted in span-open order, so with a pinned clock the
whole file is byte-deterministic -- the golden tests rely on that.

:func:`validate_chrome_trace` is the schema check CI runs against
emitted traces; it accepts exactly what this module emits and flags
anything Perfetto would choke on.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from typing import Dict, List, Tuple, Union

from .metrics import MetricsRegistry, split_series_key
from .recorder import Recorder


def _write_atomic(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` via a same-directory temp file and
    ``os.replace``, so an interrupt (SIGTERM mid-export) can never
    leave a half-written artifact behind."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path

#: Fixed process/thread ids for emitted events (single-threaded spans).
TRACE_PID = 1
TRACE_TID = 1


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def chrome_trace(recorder: Recorder) -> dict:
    """Render the recorder's spans as a Chrome trace_event object."""
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": {"name": "balanced-sched"},
        }
    ]
    for span in sorted(recorder.spans, key=lambda s: s.index):
        events.append(
            {
                "name": span.name,
                "cat": "/".join(span.path[:-1]) or "root",
                "ph": "X",
                "ts": span.start_ns / 1000,
                "dur": span.duration_ns / 1000,
                "pid": TRACE_PID,
                "tid": TRACE_TID,
                "args": {str(k): _jsonable(v) for k, v in span.args},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: Union[str, Path], recorder: Recorder) -> Path:
    return _write_atomic(path, json.dumps(chrome_trace(recorder), indent=1) + "\n")


def validate_chrome_trace(data: object) -> List[str]:
    """Schema-check a trace object; returns problems (empty == valid)."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["trace is not a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing event name")
        ph = event.get("ph")
        if ph not in ("X", "M", "B", "E", "i"):
            problems.append(f"{where}: unknown phase {ph!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: {field} must be an integer")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
        if ph == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"{where}: {field} must be a non-negative number"
                    )
    return problems


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# ----------------------------------------------------------------------
# Plain-text phase summary
# ----------------------------------------------------------------------
def phase_summary(recorder: Recorder) -> str:
    """Aggregate spans into an indented per-phase timing table.

    Rows are span *paths* (so ``compile_block > schedule`` and a
    top-level ``schedule`` stay distinct), in first-open order; ``self``
    is the phase's own time with direct children subtracted.
    """
    Agg = Tuple[int, int, int]  # count, total_ns, first_index
    aggregate: Dict[Tuple[str, ...], Agg] = {}
    for span in recorder.spans:
        count, total, first = aggregate.get(span.path, (0, 0, span.index))
        aggregate[span.path] = (
            count + 1, total + span.duration_ns, min(first, span.index)
        )

    child_totals: Dict[Tuple[str, ...], int] = {}
    for path, (_count, total, _first) in aggregate.items():
        if len(path) > 1:
            parent = path[:-1]
            child_totals[parent] = child_totals.get(parent, 0) + total

    header = f"{'phase':<40} {'count':>7} {'total':>12} {'self':>12}"
    lines = [header, "-" * len(header)]
    for path in sorted(aggregate, key=lambda p: aggregate[p][2]):
        count, total, _first = aggregate[path]
        self_ns = total - child_totals.get(path, 0)
        name = "  " * (len(path) - 1) + path[-1]
        lines.append(
            f"{name:<40} {count:>7} {_ms(total):>12} {_ms(self_ns):>12}"
        )
    if len(lines) == 2:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


def _ms(ns: int) -> str:
    return f"{ns / 1e6:.3f}ms"


# ----------------------------------------------------------------------
# Metrics JSON
# ----------------------------------------------------------------------
def metrics_json(metrics: MetricsRegistry) -> dict:
    """Render a registry as a sorted, JSON-safe object.

    Histogram keys (observed values) become strings because JSON keys
    must be; readers sort them numerically via ``float(key)``.
    """
    return {
        "counters": {k: metrics.counters[k] for k in sorted(metrics.counters)},
        "gauges": {k: metrics.gauges[k] for k in sorted(metrics.gauges)},
        "histograms": {
            key: {
                str(value): hist[value]
                for value in sorted(hist, key=float)
            }
            for key, hist in sorted(metrics.histograms.items())
        },
    }


def write_metrics(
    path: Union[str, Path], metrics: MetricsRegistry
) -> Path:
    return _write_atomic(path, json.dumps(metrics_json(metrics), indent=1) + "\n")


# ----------------------------------------------------------------------
# Prometheus text exposition (the service's /metrics endpoint)
# ----------------------------------------------------------------------
#: A legal Prometheus metric name; everything else is mapped to "_".
_PROM_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(base: str) -> str:
    """Map a registry series base name onto a legal Prometheus metric
    name (``sim.load_stall_cycles`` -> ``sim_load_stall_cycles``)."""
    name = _PROM_NAME_BAD.sub("_", base)
    if not name or not _PROM_NAME_OK.match(name):
        name = "_" + name
    return name


def _prom_label_value(value: str) -> str:
    """Escape a label value per the exposition-format rules."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_series(base: str, labels: Dict[str, str], extra: str = "") -> str:
    """``name{label="value",...}`` with sanitised names and escaped
    values; ``extra`` appends a pre-rendered label (the histogram
    ``le``)."""
    name = prometheus_name(base)
    parts = [
        f'{_PROM_LABEL_BAD.sub("_", key)}="{_prom_label_value(str(labels[key]))}"'
        for key in sorted(labels)
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return name
    return f"{name}{{{','.join(parts)}}}"


def _prom_number(value: object) -> str:
    """Render a sample value (integers stay integral)."""
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def prometheus_text(metrics: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters and gauges map 1:1; the registry's *exact* histograms
    render as real Prometheus histograms -- every observed value
    becomes an ``le`` bucket boundary (cumulative counts), plus the
    standard ``+Inf`` bucket, ``_sum`` and ``_count`` series.  Output
    is deterministic: one ``# TYPE`` line per metric name, series in
    sorted-key order.  This is what ``balanced-sched serve`` exposes
    at ``/metrics``.
    """
    by_name: Dict[str, List[str]] = {}
    types: Dict[str, str] = {}

    def emit(base: str, kind: str, line: str) -> None:
        name = prometheus_name(base)
        types.setdefault(name, kind)
        by_name.setdefault(name, []).append(line)

    for key in sorted(metrics.counters):
        base, labels = split_series_key(key)
        emit(
            base, "counter",
            f"{_prom_series(base, labels)} "
            f"{_prom_number(metrics.counters[key])}",
        )
    for key in sorted(metrics.gauges):
        base, labels = split_series_key(key)
        emit(
            base, "gauge",
            f"{_prom_series(base, labels)} "
            f"{_prom_number(metrics.gauges[key])}",
        )
    for key in sorted(metrics.histograms):
        base, labels = split_series_key(key)
        hist = metrics.histograms[key]
        name = prometheus_name(base)
        exemplar = metrics.exemplars.get(key)
        cumulative = 0
        for value in sorted(hist, key=float):
            cumulative += hist[value]
            suffix = ""
            if exemplar is not None and float(exemplar["value"]) <= float(value):
                # OpenMetrics exemplar on the first bucket containing
                # the exemplar observation: `... # {trace_id="..."} v`.
                suffix = _prom_exemplar(exemplar)
                exemplar = None
            emit(
                base, "histogram",
                f"{_prom_series(base + '_bucket', labels, extra=_le_label(value))} "
                f"{cumulative}{suffix}",
            )
        inf_label = 'le="+Inf"'
        emit(
            base, "histogram",
            f"{_prom_series(base + '_bucket', labels, extra=inf_label)} "
            f"{cumulative}",
        )
        emit(
            base, "histogram",
            f"{_prom_series(base + '_sum', labels)} "
            f"{_prom_number(MetricsRegistry.histogram_total(hist))}",
        )
        emit(
            base, "histogram",
            f"{_prom_series(base + '_count', labels)} {cumulative}",
        )
        types.setdefault(name, "histogram")
    lines: List[str] = []
    for name in sorted(by_name):
        lines.append(f"# TYPE {name} {types[name]}")
        lines.extend(by_name[name])
    return "\n".join(lines) + ("\n" if lines else "")


def _le_label(value: object) -> str:
    """The ``le`` bucket label for one observed histogram value."""
    return f'le="{_prom_number(value)}"'


def _prom_exemplar(exemplar: dict) -> str:
    """Render one exemplar suffix (OpenMetrics syntax) for a bucket
    line: `` # {label="value",...} <observed value>``."""
    labels = exemplar.get("labels", {})
    inner = ",".join(
        f'{_PROM_LABEL_BAD.sub("_", key)}="{_prom_label_value(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return f" # {{{inner}}} {_prom_number(exemplar['value'])}"


_PROM_LABELS_RE = (
    r"\{(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\")*)?\}"
)
_PROM_NUMBER_RE = r"-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|\+?Inf|NaN)"
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    rf"(?:{_PROM_LABELS_RE})?"  # labels
    rf" {_PROM_NUMBER_RE}"  # value
    # Optional OpenMetrics exemplar: ` # {labels} value [timestamp]`.
    rf"(?P<exemplar> # {_PROM_LABELS_RE} {_PROM_NUMBER_RE}"
    rf"(?: {_PROM_NUMBER_RE})?)?$"
)
_PROM_TYPE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
    r"(counter|gauge|histogram|summary|untyped)$"
)
_PROM_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def validate_prometheus_text(text: str) -> List[str]:
    """Schema-check a text exposition; returns problems (empty == valid).

    Checks line syntax (TYPE comments, samples, exemplar suffixes),
    that every sample's metric name was TYPE-declared (histogram series
    resolve to their parent), that exemplars appear only on ``_bucket``
    samples, and that each histogram's cumulative bucket counts are
    non-decreasing in ``le`` order.  Used by the service tests and
    ``tools/check_service.py``.
    """
    problems: List[str] = []
    declared: Dict[str, str] = {}
    # (name, labels-minus-le) -> list of (le, count, lineno) in file order.
    buckets: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                  List[Tuple[float, float, int]]] = {}
    if text and not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            problems.append(f"line {lineno}: blank line")
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                if not _PROM_TYPE.match(line):
                    problems.append(f"line {lineno}: malformed TYPE: {line!r}")
                else:
                    _, _, name, kind = line.split(" ", 3)
                    if name in declared:
                        problems.append(
                            f"line {lineno}: duplicate TYPE for {name}"
                        )
                    declared[name] = kind
            # Other comments (# HELP ...) are legal and unchecked.
            continue
        match = _PROM_SAMPLE.match(line)
        if not match:
            problems.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        if match.group("exemplar") and not name.endswith("_bucket"):
            problems.append(
                f"line {lineno}: exemplar on non-bucket sample {name}"
            )
        parent = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in declared and parent not in declared:
            problems.append(
                f"line {lineno}: sample {name} has no TYPE declaration"
            )
        if name.endswith("_bucket"):
            sample = line.split(" # ", 1)[0]  # strip any exemplar
            series, _, value_text = sample.rpartition(" ")
            labels = dict(_PROM_LABEL_PAIR.findall(series))
            le_text = labels.pop("le", None)
            if le_text is None:
                problems.append(
                    f"line {lineno}: bucket sample without an 'le' label"
                )
                continue
            try:
                le = float(le_text.replace("+Inf", "inf"))
                count = float(value_text)
            except ValueError:
                continue  # the sample regex already vetted the syntax
            group = (name, tuple(sorted(labels.items())))
            buckets.setdefault(group, []).append((le, count, lineno))
    for (name, _labels), rows in buckets.items():
        rows.sort(key=lambda row: row[0])
        for (lo_le, lo_count, _), (hi_le, hi_count, hi_line) in zip(
            rows, rows[1:]
        ):
            if hi_count < lo_count:
                problems.append(
                    f"line {hi_line}: non-monotone bucket counts for "
                    f"{name}: le={_fmt_le(hi_le)} has {hi_count:g} < "
                    f"{lo_count:g} at le={_fmt_le(lo_le)}"
                )
    return problems


def _fmt_le(le: float) -> str:
    return "+Inf" if le == float("inf") else f"{le:g}"
