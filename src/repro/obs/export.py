"""Exports: Chrome ``trace_event`` JSON, phase summaries, metrics JSON.

The Chrome trace format is the JSON-array flavour documented by the
Trace Event Format spec and consumed by ``chrome://tracing`` and
Perfetto (https://ui.perfetto.dev): a ``traceEvents`` list of complete
(``"ph": "X"``) events with microsecond ``ts``/``dur``.  Spans from a
:class:`~repro.obs.recorder.Recorder` map 1:1 onto complete events;
pid/tid are fixed (the pipeline records spans from one thread), and
events are emitted in span-open order, so with a pinned clock the
whole file is byte-deterministic -- the golden tests rely on that.

:func:`validate_chrome_trace` is the schema check CI runs against
emitted traces; it accepts exactly what this module emits and flags
anything Perfetto would choke on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from .metrics import MetricsRegistry
from .recorder import Recorder

#: Fixed process/thread ids for emitted events (single-threaded spans).
TRACE_PID = 1
TRACE_TID = 1


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
def chrome_trace(recorder: Recorder) -> dict:
    """Render the recorder's spans as a Chrome trace_event object."""
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": {"name": "balanced-sched"},
        }
    ]
    for span in sorted(recorder.spans, key=lambda s: s.index):
        events.append(
            {
                "name": span.name,
                "cat": "/".join(span.path[:-1]) or "root",
                "ph": "X",
                "ts": span.start_ns / 1000,
                "dur": span.duration_ns / 1000,
                "pid": TRACE_PID,
                "tid": TRACE_TID,
                "args": {str(k): _jsonable(v) for k, v in span.args},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: Union[str, Path], recorder: Recorder) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(recorder), indent=1) + "\n")
    return path


def validate_chrome_trace(data: object) -> List[str]:
    """Schema-check a trace object; returns problems (empty == valid)."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["trace is not a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing event name")
        ph = event.get("ph")
        if ph not in ("X", "M", "B", "E", "i"):
            problems.append(f"{where}: unknown phase {ph!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: {field} must be an integer")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
        if ph == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"{where}: {field} must be a non-negative number"
                    )
    return problems


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# ----------------------------------------------------------------------
# Plain-text phase summary
# ----------------------------------------------------------------------
def phase_summary(recorder: Recorder) -> str:
    """Aggregate spans into an indented per-phase timing table.

    Rows are span *paths* (so ``compile_block > schedule`` and a
    top-level ``schedule`` stay distinct), in first-open order; ``self``
    is the phase's own time with direct children subtracted.
    """
    Agg = Tuple[int, int, int]  # count, total_ns, first_index
    aggregate: Dict[Tuple[str, ...], Agg] = {}
    for span in recorder.spans:
        count, total, first = aggregate.get(span.path, (0, 0, span.index))
        aggregate[span.path] = (
            count + 1, total + span.duration_ns, min(first, span.index)
        )

    child_totals: Dict[Tuple[str, ...], int] = {}
    for path, (_count, total, _first) in aggregate.items():
        if len(path) > 1:
            parent = path[:-1]
            child_totals[parent] = child_totals.get(parent, 0) + total

    header = f"{'phase':<40} {'count':>7} {'total':>12} {'self':>12}"
    lines = [header, "-" * len(header)]
    for path in sorted(aggregate, key=lambda p: aggregate[p][2]):
        count, total, _first = aggregate[path]
        self_ns = total - child_totals.get(path, 0)
        name = "  " * (len(path) - 1) + path[-1]
        lines.append(
            f"{name:<40} {count:>7} {_ms(total):>12} {_ms(self_ns):>12}"
        )
    if len(lines) == 2:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


def _ms(ns: int) -> str:
    return f"{ns / 1e6:.3f}ms"


# ----------------------------------------------------------------------
# Metrics JSON
# ----------------------------------------------------------------------
def metrics_json(metrics: MetricsRegistry) -> dict:
    """Render a registry as a sorted, JSON-safe object.

    Histogram keys (observed values) become strings because JSON keys
    must be; readers sort them numerically via ``float(key)``.
    """
    return {
        "counters": {k: metrics.counters[k] for k in sorted(metrics.counters)},
        "gauges": {k: metrics.gauges[k] for k in sorted(metrics.gauges)},
        "histograms": {
            key: {
                str(value): hist[value]
                for value in sorted(hist, key=float)
            }
            for key, hist in sorted(metrics.histograms.items())
        },
    }


def write_metrics(
    path: Union[str, Path], metrics: MetricsRegistry
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(metrics_json(metrics), indent=1) + "\n")
    return path
