"""``repro.obs``: zero-dependency observability for the whole pipeline.

Three streams behind one module-level switch (off by default, and a
pure no-op guard when off):

* hierarchical **spans** (:func:`span`, exported as Chrome
  ``trace_event`` JSON or a plain-text phase summary);
* a **metrics** registry (counters / gauges / exact histograms, e.g.
  per-load stall-cycle attribution that reconciles with simulator
  cycle counts);
* a scheduler **decision log** (per-step candidate sets and win
  reasons, diffable between weighting policies).

Typical use::

    from repro import obs

    with obs.recording() as rec:
        ...  # run the pipeline
        print(obs.phase_summary(rec))
        obs.write_chrome_trace("trace.json", rec)
        obs.write_metrics("metrics.json", rec.metrics)

See ``docs/observability.md`` for the span names, metric names and
file formats.
"""

from .decisions import Candidate, Decision, DecisionLog
from .export import (
    chrome_trace,
    metrics_json,
    phase_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from .metrics import (
    MetricsRegistry,
    series_key,
    split_series_key,
    summarize_delta,
)
from .recorder import (
    NULL_SPAN,
    Recorder,
    SpanEvent,
    disable,
    enable,
    enabled,
    get,
    recording,
    span,
)

__all__ = [
    "Candidate",
    "Decision",
    "DecisionLog",
    "MetricsRegistry",
    "NULL_SPAN",
    "Recorder",
    "SpanEvent",
    "chrome_trace",
    "disable",
    "enable",
    "enabled",
    "get",
    "metrics_json",
    "phase_summary",
    "recording",
    "series_key",
    "span",
    "split_series_key",
    "summarize_delta",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics",
]
