"""Request-scoped trace context and span-fragment assembly.

The scheduling service tags every request with a W3C-style
``traceparent`` id (caller-supplied or generated) and threads that
trace context through the batcher and the experiment engine all the
way into pool workers.  Each hop records *span fragments* -- flat,
picklable dicts carrying the trace id, a real process id and epoch
timestamps -- which flow back to the serving process and are
reassembled here into a per-request span tree.

Two pieces:

* :func:`parse_traceparent` / :class:`TraceContext` -- the wire
  format (``00-<32 hex trace id>-<16 hex span id>-<2 hex flags>``);
* :class:`RequestTraceStore` -- a bounded ring buffer of recent
  requests (id, route, cell keys, phase timings, status, fragments)
  behind ``GET /debug/requests``, with :meth:`RequestTraceStore.trace`
  rendering one request as Perfetto-loadable Chrome ``trace_event``
  JSON (``GET /debug/trace/<id>``).

The store is installed as a module-global sink (:func:`install`) so
the engine can forward worker fragments without the service threading
a handle through ``evaluate_cells``; with no sink installed every hook
is a no-op, which is what keeps the batch CLI byte-identical to a
tracing-off daemon.

Fragments use wall-clock epoch nanoseconds (``time.time_ns``), not the
recorder's monotonic clock, so spans from different processes line up
on one timeline.
"""

from __future__ import annotations

import os
import re
import secrets
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

__all__ = [
    "TraceContext",
    "RequestTraceStore",
    "parse_traceparent",
    "new_context",
    "new_span_id",
    "install",
    "uninstall",
    "active",
    "record_fragments",
    "fragment",
]

#: ``version-traceid-spanid-flags`` per the W3C Trace Context spec;
#: only version 00 is produced, any version except ``ff`` is accepted.
_TRACEPARENT = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


@dataclass(frozen=True)
class TraceContext:
    """One request's identity on the trace wire.

    ``span_id`` is the *current* span (the server's root span for this
    request); ``parent_id`` is the caller's span id when the request
    arrived with a ``traceparent`` header, else ``None``.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    sampled: bool = True

    def traceparent(self) -> str:
        """The header value to echo back / propagate downstream."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.span_id}-{flags}"


def new_span_id() -> str:
    return secrets.token_hex(8)


def new_context() -> TraceContext:
    """A fresh root context (for requests without a ``traceparent``)."""
    return TraceContext(trace_id=secrets.token_hex(16), span_id=new_span_id())


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header into a server-side context.

    Returns ``None`` for a missing or malformed header (the server then
    generates a fresh context rather than failing the request).  The
    caller's span id becomes ``parent_id``; a new ``span_id`` is minted
    for the server's root span, as the spec prescribes for a
    participating service.
    """
    if not header:
        return None
    match = _TRACEPARENT.match(header.strip().lower())
    if match is None:
        return None
    version, trace_id, parent_id, flags = match.groups()
    # All-zero ids and the reserved version are invalid per spec.
    if version == "ff" or trace_id == "0" * 32 or parent_id == "0" * 16:
        return None
    return TraceContext(
        trace_id=trace_id,
        span_id=new_span_id(),
        parent_id=parent_id,
        sampled=bool(int(flags, 16) & 0x01),
    )


# ----------------------------------------------------------------------
# Span fragments
# ----------------------------------------------------------------------
def fragment(
    trace_id: str,
    name: str,
    *,
    start_ns: int,
    dur_ns: int,
    cat: str = "service",
    pid: Optional[int] = None,
    tid: int = 1,
    args: Optional[dict] = None,
) -> dict:
    """One span fragment: a flat dict that pickles across the pool
    boundary and maps 1:1 onto a Chrome ``"ph": "X"`` event."""
    return {
        "trace_id": trace_id,
        "name": name,
        "cat": cat,
        "pid": os.getpid() if pid is None else pid,
        "tid": tid,
        "start_ns": int(start_ns),
        "dur_ns": max(0, int(dur_ns)),
        "args": dict(args or {}),
    }


# ----------------------------------------------------------------------
# The recent-requests ring buffer
# ----------------------------------------------------------------------
class RequestTraceStore:
    """A bounded, thread-safe ring buffer of recent traced requests.

    The service begins a record per request, every layer appends span
    fragments and phase timings under the trace id, and the HTTP debug
    endpoints read the assembled result.  Accessed concurrently from
    the event loop, the CPU executor thread and the batcher's flush
    task, so every method takes the lock.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: "OrderedDict[str, dict]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------
    def begin(self, ctx: TraceContext, route: str) -> None:
        """Open the record for one request (evicting the oldest past
        ``capacity``).  A trace id reused by a client reopens its slot."""
        with self._lock:
            self._records[ctx.trace_id] = {
                "trace_id": ctx.trace_id,
                "parent_id": ctx.parent_id,
                "route": route,
                "status": None,
                "started_ns": time.time_ns(),
                "duration_ms": None,
                "cell_keys": [],
                "timings_ms": {},
                "fragments": [],
            }
            self._records.move_to_end(ctx.trace_id)
            while len(self._records) > self.capacity:
                self._records.popitem(last=False)

    def add_fragments(self, fragments: Iterable[dict]) -> None:
        """File fragments under their own trace ids; fragments for
        evicted (or never-seen) traces are dropped silently."""
        with self._lock:
            for frag in fragments:
                record = self._records.get(frag.get("trace_id"))
                if record is not None:
                    record["fragments"].append(frag)

    def note_timing(self, trace_id: str, phase: str, ms: float) -> None:
        """Accumulate one phase timing (queue/batch/pool/render ...)."""
        with self._lock:
            record = self._records.get(trace_id)
            if record is not None:
                timings = record["timings_ms"]
                timings[phase] = round(timings.get(phase, 0.0) + ms, 3)

    def note_cell(self, trace_id: str, cell_key: str) -> None:
        with self._lock:
            record = self._records.get(trace_id)
            if record is not None and cell_key not in record["cell_keys"]:
                record["cell_keys"].append(cell_key)

    def mark(self, trace_id: str, key: str, value) -> None:
        """Attach an annotation (e.g. ``pool_downgrade``) to a record."""
        with self._lock:
            record = self._records.get(trace_id)
            if record is not None:
                record[key] = value

    def finish(self, trace_id: str, status: int, duration_ms: float) -> None:
        with self._lock:
            record = self._records.get(trace_id)
            if record is not None:
                record["status"] = status
                record["duration_ms"] = round(duration_ms, 3)

    # ------------------------------------------------------------------
    def recent(self) -> List[dict]:
        """Summaries of the buffered requests, newest first (the
        ``GET /debug/requests`` payload -- fragments excluded)."""
        with self._lock:
            records = list(self._records.values())
        out = []
        for record in reversed(records):
            summary = {
                k: v for k, v in record.items() if k != "fragments"
            }
            summary["spans"] = len(record["fragments"])
            out.append(summary)
        return out

    def trace(self, trace_id: str) -> Optional[dict]:
        """One request's span tree as Chrome ``trace_event`` JSON
        (``GET /debug/trace/<id>``), or ``None`` for an unknown id.

        Events from every process that touched the request appear under
        their real pid, with per-pid ``process_name`` metadata so
        Perfetto labels the server and pool-worker tracks.
        """
        with self._lock:
            record = self._records.get(trace_id)
            if record is None:
                return None
            fragments = list(record["fragments"])
            route = record["route"]
            started_ns = record["started_ns"]
        server_pid = os.getpid()
        base_ns = min(
            [started_ns] + [f["start_ns"] for f in fragments]
        )
        events: List[dict] = []
        for pid in sorted({f["pid"] for f in fragments} | {server_pid}):
            name = (
                "balanced-sched server"
                if pid == server_pid
                else "balanced-sched pool worker"
            )
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 1,
                    "args": {"name": name},
                }
            )
        for frag in sorted(fragments, key=lambda f: f["start_ns"]):
            events.append(
                {
                    "name": frag["name"],
                    "cat": frag.get("cat", "service"),
                    "ph": "X",
                    "ts": (frag["start_ns"] - base_ns) / 1000,
                    "dur": frag["dur_ns"] / 1000,
                    "pid": frag["pid"],
                    "tid": frag.get("tid", 1),
                    "args": frag.get("args", {}),
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"trace_id": trace_id, "route": route},
        }


# ----------------------------------------------------------------------
# The module-global sink
# ----------------------------------------------------------------------
#: The active store, if a service installed one.  The engine forwards
#: worker span fragments here; with no store every hook is a no-op, so
#: batch runs and tracing-off daemons record nothing.
_ACTIVE: Optional[RequestTraceStore] = None


def install(store: RequestTraceStore) -> RequestTraceStore:
    global _ACTIVE
    _ACTIVE = store
    return store


def uninstall(store: Optional[RequestTraceStore] = None) -> None:
    """Remove the active store (only if it is ``store``, when given --
    so shutting one service down never unhooks another's)."""
    global _ACTIVE
    if store is None or _ACTIVE is store:
        _ACTIVE = None


def active() -> Optional[RequestTraceStore]:
    return _ACTIVE


def record_fragments(fragments: Iterable[dict]) -> None:
    """Forward fragments to the active store, if any."""
    store = _ACTIVE
    if store is not None:
        store.add_fragments(fragments)
