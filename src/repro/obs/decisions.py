"""Scheduler decision logs: per-step candidate sets, diffable.

Every scheduling step the list scheduler picks one instruction from
its ready list by priority, then (among priority co-leaders) by the
tie-break chain, then by discovery order.  A :class:`Decision` records
one such step: the time slot, the full candidate set with priorities,
the winner, and *why* it won:

* ``only-candidate`` -- the ready list held a single node;
* ``priority`` -- a unique maximum priority (the common case);
* ``tie-break:<name>`` -- the first tie-break level whose value
  singled out one node among the priority co-leaders;
* ``discovery-order`` -- every key tied exactly; the node exposed
  earliest wins (the scheduler's first-discovery rule).

The log renders to stable plain text, so two runs of the *same* block
under different weighting policies (``balanced`` vs ``traditional``)
diff cleanly -- :func:`DecisionLog.diff` produces the unified diff the
``balanced-sched explain`` subcommand prints.  Logging is enabled
separately from spans/metrics (``Recorder(decisions=True)``): a full
table run takes millions of scheduling steps and the log is by far
the heaviest stream.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Candidate:
    """One ready-list entry at decision time."""

    node: int
    #: Priority rendered as text (exact ``Fraction`` survives rendering).
    priority: str
    text: str


@dataclass(frozen=True)
class Decision:
    """One scheduling step: who could have gone, who went, and why."""

    block: str
    step: int
    #: Scheduler clock at selection (reverse time for bottom-up).
    time: str
    chosen: int
    reason: str
    candidates: Tuple[Candidate, ...]


class DecisionLog:
    """An append-only list of :class:`Decision` records."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[Decision] = []

    def __len__(self) -> int:
        return len(self.entries)

    def record(self, decision: Decision) -> None:
        self.entries.append(decision)

    # ------------------------------------------------------------------
    def blocks(self) -> List[str]:
        """Block labels in first-appearance order."""
        seen: Dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.block, None)
        return list(seen)

    def for_block(self, block: str) -> List[Decision]:
        return [e for e in self.entries if e.block == block]

    def counts_by_reason(self) -> Dict[str, int]:
        """How often each selection reason fired (tie-break pressure)."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.reason] = counts.get(entry.reason, 0) + 1
        return dict(sorted(counts.items()))

    # ------------------------------------------------------------------
    def render(self, block: str = None) -> List[str]:
        """Stable plain-text rendering (one block, or everything).

        The format deliberately excludes anything non-deterministic so
        renderings of identical schedules are byte-identical and
        renderings of different policies diff tightly.
        """
        entries: Iterable[Decision] = (
            self.entries if block is None else self.for_block(block)
        )
        lines: List[str] = []
        current = object()
        for entry in entries:
            if entry.block != current:
                current = entry.block
                lines.append(f"== block {entry.block} ==")
            lines.append(
                f"step {entry.step:>4} t={entry.time:<6} "
                f"-> #{entry.chosen}  [{entry.reason}]"
            )
            for cand in entry.candidates:
                marker = "*" if cand.node == entry.chosen else " "
                lines.append(
                    f"    {marker} #{cand.node:<4} "
                    f"p={cand.priority:<8} {cand.text}"
                )
        return lines

    @staticmethod
    def diff(
        a: "DecisionLog",
        b: "DecisionLog",
        label_a: str = "a",
        label_b: str = "b",
        block: str = None,
        context: int = 3,
    ) -> List[str]:
        """Unified diff of two rendered logs (``explain``'s payload)."""
        return list(
            difflib.unified_diff(
                a.render(block),
                b.render(block),
                fromfile=label_a,
                tofile=label_b,
                n=context,
                lineterm="",
            )
        )
