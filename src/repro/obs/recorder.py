"""The span recorder and the module-global observability switch.

Disabled is the default and costs (almost) nothing: the whole pipeline
talks to observability through :func:`span`, :func:`get` and
:func:`enabled`, and with no recorder installed those return a shared
no-op span / ``None`` -- one global read plus one ``is None`` test per
call site, hoisted out of every hot loop.  No state is allocated, no
clock is read.  The scale benchmarks (``BENCH_scale.json``) are
recorded with observability off and must stay noise-identical; the
``BENCH_obs.json`` benchmark watches exactly this property.

Enabled (``balanced-sched run --obs``, ``profile``, ``explain``, or
:func:`recording` in tests), a :class:`Recorder` collects three
streams:

* **spans** -- hierarchical wall-clock phases (``frontend``,
  ``dependence``, ``weights``, ``schedule``, ``regalloc``,
  ``simulate`` ... per block), exportable as Chrome ``trace_event``
  JSON and as a plain-text phase summary (:mod:`repro.obs.export`);
* **metrics** -- a :class:`~repro.obs.metrics.MetricsRegistry`;
* **decisions** -- a :class:`~repro.obs.decisions.DecisionLog` of
  per-step scheduler choices (off unless requested: it is by far the
  most voluminous stream).

Span *arguments* double as ambient labels: :meth:`Recorder.context`
merges the args of every active span, so a deeply nested call site
(say, the per-block simulator) can label its metrics with the
program/policy/system of the enclosing experiment cell without any of
those being threaded through the call chain.

Everything a recorder collects is deterministic for a fixed seed
except the clock readings, so two traces of the same run diff cleanly
modulo ``ts``/``dur`` (the golden tests pin the clock to prove it).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .decisions import DecisionLog
from .metrics import MetricsRegistry


@dataclass(frozen=True)
class SpanEvent:
    """One closed span."""

    name: str
    #: Names from the root span down to (and including) this one.
    path: Tuple[str, ...]
    args: Tuple[Tuple[str, object], ...]
    start_ns: int
    duration_ns: int
    depth: int
    #: Order the span *opened* in (stable tie order for exports).
    index: int

    @property
    def args_dict(self) -> Dict[str, object]:
        return dict(self.args)


class _NullSpan:
    """The disabled-mode span: a reusable, stateless no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """A live span; records itself on exit."""

    __slots__ = ("_recorder", "name", "args", "_start", "_index", "_depth")

    def __init__(self, recorder: "Recorder", name: str, args: dict):
        self._recorder = recorder
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        rec = self._recorder
        self._index = rec._next_index
        rec._next_index += 1
        self._depth = len(rec._stack)
        rec._stack.append(self)
        self._start = rec._clock()
        return self

    def __exit__(self, *exc_info) -> bool:
        rec = self._recorder
        end = rec._clock()
        rec._stack.pop()
        rec.spans.append(
            SpanEvent(
                name=self.name,
                path=tuple(s.name for s in rec._stack) + (self.name,),
                args=tuple(sorted(self.args.items())),
                start_ns=self._start - rec.epoch_ns,
                duration_ns=end - self._start,
                depth=self._depth,
                index=self._index,
            )
        )
        return False


class Recorder:
    """One observability session: spans + metrics + decisions.

    ``clock`` is injectable (nanosecond counter) so exports can be made
    byte-deterministic in tests; the default is
    :func:`time.perf_counter_ns`.
    """

    def __init__(
        self,
        decisions: bool = False,
        clock: Callable[[], int] = time.perf_counter_ns,
    ) -> None:
        self._clock = clock
        self.epoch_ns = clock()
        self.spans: List[SpanEvent] = []
        self.metrics = MetricsRegistry()
        self.decisions: Optional[DecisionLog] = (
            DecisionLog() if decisions else None
        )
        self._stack: List[_Span] = []
        self._next_index = 0

    # ------------------------------------------------------------------
    def span(self, name: str, **args) -> _Span:
        """Open a hierarchical span (use as a context manager)."""
        return _Span(self, name, args)

    def context(self) -> Dict[str, object]:
        """Merged args of every active span (innermost wins)."""
        merged: Dict[str, object] = {}
        for span in self._stack:
            merged.update(span.args)
        return merged


# ----------------------------------------------------------------------
# The module-global switch
# ----------------------------------------------------------------------
_RECORDER: Optional[Recorder] = None


def get() -> Optional[Recorder]:
    """The active recorder, or ``None`` when observability is off.

    Hot loops fetch this once per call and branch on ``is None``; the
    disabled path never allocates or reads a clock.
    """
    return _RECORDER


def enabled() -> bool:
    return _RECORDER is not None


def enable(
    decisions: bool = False,
    clock: Callable[[], int] = time.perf_counter_ns,
) -> Recorder:
    """Install (and return) a fresh global recorder."""
    global _RECORDER
    _RECORDER = Recorder(decisions=decisions, clock=clock)
    return _RECORDER


def disable() -> None:
    """Remove the global recorder (observability back to no-op)."""
    global _RECORDER
    _RECORDER = None


@contextmanager
def recording(
    decisions: bool = False,
    clock: Callable[[], int] = time.perf_counter_ns,
) -> Iterator[Recorder]:
    """Scoped enable/disable; restores whatever was installed before."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = Recorder(decisions=decisions, clock=clock)
    try:
        yield _RECORDER
    finally:
        _RECORDER = previous


def span(name: str, **args):
    """A span on the active recorder, or the shared no-op when off."""
    rec = _RECORDER
    if rec is None:
        return NULL_SPAN
    return rec.span(name, **args)
