"""The metrics registry: counters, gauges and exact histograms.

Metrics are identified by a base name plus optional labels; the pair
is flattened into a single Prometheus-style series key with sorted
label order (``sim.load_stall_cycles{block=vdiff,load=3}``), so a
registry is a plain dict and every export is deterministic.

Three instrument kinds:

* **counters** -- monotonically accumulated numbers (cycle totals,
  spill counts);
* **gauges** -- last-write-wins values (configuration echoes, sizes);
* **histograms** -- *exact* value -> occurrence-count maps rather than
  bucketed approximations.  Stall attributions and latency draws are
  small integers, so exact histograms stay compact while letting the
  totals reconcile to the cycle counters without rounding -- the
  property the observability acceptance tests rely on.

Registries support ``snapshot`` / ``delta`` / ``merge`` so a per-cell
metric delta can be computed in a worker process, pickled across the
pool boundary, folded into the parent's registry, and summarised onto
the cell's run-manifest record (see ``repro.experiments.common``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

Number = Union[int, float]

#: A histogram is an exact value -> count map.
Histogram = Dict[Number, int]


def _escape(text: str) -> str:
    """Backslash-escape the key syntax characters inside a label part."""
    return (
        text.replace("\\", "\\\\").replace(",", "\\,").replace("=", "\\=")
    )


def series_key(name: str, labels: Dict[str, object]) -> str:
    """Flatten ``name`` + ``labels`` into one deterministic series key.

    Label names and values are backslash-escaped, so values containing
    the syntax characters (e.g. the system label ``N(30,5) @ 30``)
    round-trip exactly through :func:`split_series_key`.
    """
    if not labels:
        return name
    inner = ",".join(
        f"{_escape(str(k))}={_escape(str(labels[k]))}" for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def split_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`series_key` (labels come back as strings)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: Dict[str, str] = {}
    buf: List[str] = []
    label: Optional[str] = None
    escaped = False

    def flush() -> None:
        nonlocal label, buf
        if label is not None:
            labels[label] = "".join(buf)
        elif buf:
            labels["".join(buf)] = ""
        label, buf = None, []

    for ch in inner[:-1]:
        if escaped:
            buf.append(ch)
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == "=" and label is None:
            label = "".join(buf)
            buf = []
        elif ch == ",":
            flush()
        else:
            buf.append(ch)
    flush()
    return name, labels


class MetricsRegistry:
    """Counters, gauges and exact histograms keyed by flattened series."""

    __slots__ = ("counters", "gauges", "histograms", "exemplars")

    def __init__(self) -> None:
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, Number] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: Last exemplar per histogram series: ``{"value": observed,
        #: "labels": {...}}`` -- e.g. a trace id attached to a latency
        #: observation, rendered onto the matching ``_bucket`` line of
        #: the Prometheus exposition (OpenMetrics exemplar syntax).
        self.exemplars: Dict[str, dict] = {}

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def inc(self, name: str, value: Number = 1, **labels) -> None:
        key = series_key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + value

    def set_gauge(self, name: str, value: Number, **labels) -> None:
        self.gauges[series_key(name, labels)] = value

    def observe(
        self,
        name: str,
        value: Number,
        *,
        exemplar: Optional[Dict[str, str]] = None,
        **labels,
    ) -> None:
        key = series_key(name, labels)
        hist = self.histograms.setdefault(key, {})
        hist[value] = hist.get(value, 0) + 1
        if exemplar:
            # Last write wins: one representative (value, labels) pair
            # per series, e.g. {"trace_id": ...} for /metrics exemplars.
            self.exemplars[key] = {"value": value, "labels": dict(exemplar)}

    def observe_many(
        self, name: str, values: Iterable[Number], **labels
    ) -> None:
        hist = self.histograms.setdefault(series_key(name, labels), {})
        for value in values:
            hist[value] = hist.get(value, 0) + 1

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @staticmethod
    def histogram_total(hist: Histogram) -> Number:
        """Sum of all observed values (value * count)."""
        return sum(value * count for value, count in hist.items())

    @staticmethod
    def histogram_count(hist: Histogram) -> int:
        return sum(hist.values())

    def snapshot(self) -> dict:
        """A deep, picklable copy of the whole registry.

        The ``exemplars`` key is present only when non-empty, so
        snapshots from exemplar-free registries (workers, the batch
        CLI) keep their historical three-key shape.
        """
        snap = {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(h) for k, h in self.histograms.items()},
        }
        if self.exemplars:
            snap["exemplars"] = {
                k: {"value": e["value"], "labels": dict(e["labels"])}
                for k, e in self.exemplars.items()
            }
        return snap

    @staticmethod
    def delta(before: dict, after: dict) -> dict:
        """What changed between two snapshots (zero entries dropped).

        Counters and histogram bins subtract; gauges keep the ``after``
        value of every series that appeared or changed.  Registries
        only ever grow, so a delta is always non-negative.
        """
        counters = {}
        for key, value in after["counters"].items():
            changed = value - before["counters"].get(key, 0)
            if changed:
                counters[key] = changed
        gauges = {
            key: value
            for key, value in after["gauges"].items()
            if before["gauges"].get(key) != value
        }
        histograms = {}
        for key, hist in after["histograms"].items():
            old = before["histograms"].get(key)
            if old is None:
                trimmed = {v: c for v, c in hist.items() if c}
            else:
                trimmed = {
                    v: c - old.get(v, 0)
                    for v, c in hist.items()
                    if c - old.get(v, 0)
                }
            if trimmed:
                histograms[key] = trimmed
        out = {
            "counters": counters, "gauges": gauges, "histograms": histograms
        }
        exemplars = {
            key: value
            for key, value in after.get("exemplars", {}).items()
            if before.get("exemplars", {}).get(key) != value
        }
        if exemplars:
            out["exemplars"] = exemplars
        return out

    def merge(self, snap: dict) -> None:
        """Fold a snapshot/delta (e.g. from a worker process) into this
        registry: counters and histogram bins add, gauges and exemplars
        overwrite."""
        for key, value in snap.get("counters", {}).items():
            self.counters[key] = self.counters.get(key, 0) + value
        self.gauges.update(snap.get("gauges", {}))
        for key, hist in snap.get("histograms", {}).items():
            mine = self.histograms.setdefault(key, {})
            for value, count in hist.items():
                mine[value] = mine.get(value, 0) + count
        for key, exemplar in snap.get("exemplars", {}).items():
            self.exemplars[key] = exemplar

    # ------------------------------------------------------------------
    def series(self, name: str) -> List[Tuple[str, Dict[str, str]]]:
        """Every recorded series of one base name, with parsed labels."""
        out: List[Tuple[str, Dict[str, str]]] = []
        for store in (self.counters, self.gauges, self.histograms):
            for key in store:
                base, labels = split_series_key(key)
                if base == name:
                    out.append((key, labels))
        return sorted(out)


def counter_total(counters: dict, base: str) -> float:
    """Sum one counter across all of its label series.

    ``counters`` is the ``"counters"`` mapping of an exported metrics
    JSON (or ``MetricsRegistry.counters``); ``base`` is the unlabelled
    series name, e.g. ``"verify.violations"``.  Used by the CI gates
    (``tools/check_obs.py`` / ``tools/check_verify.py``).
    """
    return sum(
        value
        for key, value in counters.items()
        if split_series_key(key)[0] == base
    )


def summarize_delta(delta: dict) -> dict:
    """Compress a metrics delta into a compact per-cell summary.

    Counters are summed by base name (labels stripped); histograms
    collapse to ``{count, total}``.  The result is a dozen-key dict
    small enough to ride on a run-manifest ``cell`` record.
    """
    counters: Dict[str, Number] = {}
    for key, value in delta.get("counters", {}).items():
        base, _ = split_series_key(key)
        counters[base] = counters.get(base, 0) + value
    histograms: Dict[str, Dict[str, Number]] = {}
    for key, hist in delta.get("histograms", {}).items():
        base, _ = split_series_key(key)
        entry = histograms.setdefault(base, {"count": 0, "total": 0})
        entry["count"] += MetricsRegistry.histogram_count(hist)
        entry["total"] += MetricsRegistry.histogram_total(hist)
    out: dict = {}
    if counters:
        out["counters"] = {k: counters[k] for k in sorted(counters)}
    if histograms:
        out["histograms"] = {k: histograms[k] for k in sorted(histograms)}
    return out
