"""Memory alias models.

Section 4.2 of the paper: the Perfect Club programs were converted from
FORTRAN with f2c, which forces C's conservative aliasing (every pointer
may alias every other), severely restricting load motion.  The authors
apply a source transformation that restores FORTRAN's no-alias
guarantee between distinct dummy arguments.  We expose the same choice
as an analysis mode:

* :attr:`AliasModel.C_CONSERVATIVE` -- references into *different*
  regions may alias (they came from pointers that could overlap);
  references into the same region alias unless they are provably
  distinct constant offsets of the same base.
* :attr:`AliasModel.FORTRAN` -- distinct regions never alias (the
  FORTRAN standard disallows aliased dummy arguments that are stored
  to); same-region references are disambiguated by their affine index
  expressions when possible.
"""

from __future__ import annotations

import enum

from ..ir.operands import MemRef


class AliasModel(enum.Enum):
    """Which language semantics govern memory disambiguation."""

    C_CONSERVATIVE = "c"
    FORTRAN = "fortran"


#: Regions created by the register allocator for spill slots.  They are
#: compiler-private stack locations, provably disjoint from user memory
#: under *either* language model.
SPILL_REGION_PREFIX = "__spill"


def _same_region_may_alias(a: MemRef, b: MemRef) -> bool:
    """Disambiguate two references into the same region.

    Two references with the same base register and the same induction-
    variable coefficient differ only in their constant offsets, so they
    alias exactly when the offsets are equal.  Anything less structured
    is treated conservatively.
    """
    if a.base == b.base and a.affine_coeff is not None and a.affine_coeff == b.affine_coeff:
        return a.offset == b.offset
    return True


def may_alias(a: MemRef, b: MemRef, model: AliasModel = AliasModel.FORTRAN) -> bool:
    """May the two references touch the same memory location?"""
    if a.region == b.region:
        return _same_region_may_alias(a, b)
    if a.region.startswith(SPILL_REGION_PREFIX) or b.region.startswith(
        SPILL_REGION_PREFIX
    ):
        return False  # spill slots never overlap user memory
    if model is AliasModel.FORTRAN:
        return False
    # C: distinct named regions arrived through pointers that might
    # overlap (the f2c artefact the paper works around).
    return True


def must_alias(a: MemRef, b: MemRef) -> bool:
    """Do the references provably touch the same location?

    Used by tests and by the store-to-load forwarding checks in the
    simulator's consistency assertions.
    """
    return (
        a.region == b.region
        and a.base == b.base
        and a.affine_coeff == b.affine_coeff
        and a.offset == b.offset
    )
