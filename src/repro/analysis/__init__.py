"""Program analyses: dependences, code DAGs, aliasing, liveness.

The analyses here are the substrate shared by both schedulers: the
code DAG (:func:`build_dag`), transitive closures
(:mod:`repro.analysis.reachability`), connected components and
load-path counting (:mod:`repro.analysis.components`), and live
intervals for the register allocator (:mod:`repro.analysis.liveness`).
"""

from .alias import AliasModel, may_alias, must_alias
from .components import (
    component_loads,
    connected_components,
    longest_load_path,
    longest_path_unionfind,
)
from .critical_path import (
    critical_path_length,
    height_in_nodes,
    parallelism_estimate,
    priorities,
    priorities_edge_labelled,
)
from .dag import CodeDAG, DepKind, Edge
from .equivalence import (
    BlockEffect,
    EquivalenceError,
    assert_equivalent,
    block_effect,
    equivalent,
)
from .dependence import build_dag, dependence_summary, ordered_pairs
from .liveness import LiveInterval, live_intervals, max_pressure, pressure_profile
from .reachability import (
    bits,
    closures,
    independent_mask,
    predecessor_closure,
    reachable,
    successor_closure,
)
from .unionfind import DisjointSets, LevelUnionFind, NamedDisjointSets

__all__ = [
    "AliasModel",
    "may_alias",
    "must_alias",
    "component_loads",
    "connected_components",
    "longest_load_path",
    "longest_path_unionfind",
    "critical_path_length",
    "height_in_nodes",
    "parallelism_estimate",
    "priorities",
    "priorities_edge_labelled",
    "CodeDAG",
    "BlockEffect",
    "EquivalenceError",
    "assert_equivalent",
    "block_effect",
    "equivalent",
    "DepKind",
    "Edge",
    "build_dag",
    "dependence_summary",
    "ordered_pairs",
    "LiveInterval",
    "live_intervals",
    "max_pressure",
    "pressure_profile",
    "bits",
    "closures",
    "independent_mask",
    "predecessor_closure",
    "reachable",
    "successor_closure",
    "DisjointSets",
    "LevelUnionFind",
    "NamedDisjointSets",
]
