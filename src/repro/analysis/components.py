"""Connected components and load-path analysis of induced subgraphs.

These are steps 4-5 of the paper's Figure 6: within the independent
subgraph ``G_ind`` computed for an instruction ``i``, find the
(weakly) connected components, and within each component the path
carrying the largest number of load instructions (``Chances``).

Two ``Chances`` computations are provided:

* :func:`longest_load_path` -- the definition-faithful one: a dynamic
  program over topological order counting loads per path.
* :func:`longest_path_unionfind` -- the O(n*alpha(n)) scheme the
  paper sketches (level-labelled union-find; path length =
  max level - min level + 1).  It counts *nodes* on the longest path,
  which equals the load count whenever components consist purely of
  loads (true of every worked example in the paper); tests demonstrate
  both the agreement on those cases and the divergence on mixed paths.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .dag import CodeDAG
from .reachability import bits
from .unionfind import LevelUnionFind


def connected_components(dag: CodeDAG, mask: int, neighbor_masks: Sequence[int]) -> List[int]:
    """Weakly connected components of the subgraph induced by ``mask``.

    Returns one bitmask per component.  ``neighbor_masks`` is the
    undirected adjacency from
    :meth:`CodeDAG.undirected_neighbor_masks`, passed in so callers can
    compute it once per DAG.
    """
    components: List[int] = []
    remaining = mask
    while remaining:
        seed = remaining & -remaining
        component = 0
        frontier = seed
        while frontier:
            component |= frontier
            next_frontier = 0
            # Inline bit extraction: this loop runs once per node per
            # subgraph and generator overhead dominates it otherwise.
            while frontier:
                low = frontier & -frontier
                next_frontier |= neighbor_masks[low.bit_length() - 1]
                frontier ^= low
            frontier = next_frontier & mask & ~component
        components.append(component)
        remaining &= ~component
    return components


def longest_load_path(dag: CodeDAG, component: int) -> int:
    """Maximum number of loads on any directed path within ``component``.

    This is ``Chances`` (Figure 6, line 5).  Node indices are a
    topological order, so a single forward sweep suffices:
    ``best[v] = is_load(v) + max(best[p] for p in preds(v) in C)``.
    """
    best: Dict[int, int] = {}
    chances = 0
    for v in bits(component):
        through = 0
        for p in dag.predecessors(v):
            if component >> p & 1:
                value = best.get(p, 0)
                if value > through:
                    through = value
        best[v] = through + (1 if dag.is_load(v) else 0)
        if best[v] > chances:
            chances = best[v]
    return chances


def batched_weighted_paths(
    pred_lists: Sequence[Sequence[int]],
    in_mask: np.ndarray,
    weighted: Sequence[int],
) -> np.ndarray:
    """The ``Chances`` DP vectorised across many induced subgraphs.

    ``in_mask`` is an ``(n, D)`` boolean matrix: column ``d`` is the
    membership array of subgraph ``d``.  Returns ``B`` of the same
    shape where ``B[v, d]`` is the maximum number of weighted nodes on
    any path *ending at* ``v`` inside subgraph ``d`` (0 when ``v`` is
    not a member).  One topological sweep over the nodes; each step is
    a gather + max over all ``D`` subgraphs at once, so the Python
    overhead is O(n) rather than O(n * D).

    Masking is what makes a single shared sweep correct: a node outside
    subgraph ``d`` has ``B[v, d] = 0`` and contributes nothing through
    the ``max``, exactly as if the per-subgraph DP had skipped it --
    except that a zero from an excluded predecessor is
    indistinguishable from a zero-weight path, which is fine because
    the DP only ever takes maxima of non-negative counts.
    """
    n, count = in_mask.shape
    paths = np.zeros((n, count), dtype=np.int32)
    for v in range(n):
        preds = pred_lists[v]
        weight = weighted[v]
        if preds:
            if len(preds) == 1:
                through = paths[preds[0]]
            else:
                through = paths[preds].max(axis=0)
            if weight:
                through = through + weight
            np.multiply(through, in_mask[v], out=paths[v])
        elif weight:
            np.multiply(weight, in_mask[v], out=paths[v], casting="unsafe")
    return paths


def component_loads(dag: CodeDAG, component: int) -> List[int]:
    """The load nodes inside a component bitmask."""
    return [v for v in bits(component) if dag.is_load(v)]


def _levels_from_leaves(dag: CodeDAG, mask: int) -> Dict[int, int]:
    """Level of each node in the induced subgraph, measured from the
    farthest leaf (leaves have level 0)."""
    levels: Dict[int, int] = {}
    for v in reversed(list(bits(mask))):
        level = 0
        for s in dag.successors(v):
            if mask >> s & 1:
                level = max(level, levels[s] + 1)
        levels[v] = level
    return levels


def longest_path_unionfind(dag: CodeDAG, mask: int) -> Dict[int, int]:
    """Longest path length (in nodes) per component, the paper's way.

    Returns a map from each node in ``mask`` to the longest path length
    of its component, computed with the level-labelled union-find
    described in Section 3.
    """
    nodes = list(bits(mask))
    if not nodes:
        return {}
    position = {v: k for k, v in enumerate(nodes)}
    levels = _levels_from_leaves(dag, mask)
    uf = LevelUnionFind(levels[v] for v in nodes)
    for v in nodes:
        for s in dag.successors(v):
            if mask >> s & 1:
                uf.union(position[v], position[s])
    return {v: uf.path_length(position[v]) for v in nodes}
