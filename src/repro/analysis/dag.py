"""The code DAG: the primary data structure of list scheduling.

Nodes are instructions (identified by their index in the source block,
which is always a valid topological order because dependences point
forward in program order); edges are dependences labelled with their
kind.  Per the paper (Section 2), "nodes represent instructions and
edges represent dependences between them.  Each node is labeled with a
weight reflecting the latency of the instruction."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..ir.block import BasicBlock
from ..ir.instructions import Instruction

Weight = Union[int, Fraction]


class DepKind(enum.Enum):
    """Dependence kinds.

    Only TRUE register dependences carry the producer's full latency;
    every other kind merely orders issue slots (latency 1), because the
    machine maintains store/load consistency in hardware (Section 4.4).
    """

    TRUE = "true"          # register def -> use
    ANTI = "anti"          # register use -> redefinition
    OUTPUT = "output"      # register def -> redefinition
    MEM_TRUE = "mem-true"      # store -> aliasing load
    MEM_ANTI = "mem-anti"      # load -> aliasing store
    MEM_OUTPUT = "mem-output"  # store -> aliasing store
    CONTROL = "control"    # anything -> block terminator

    @property
    def carries_latency(self) -> bool:
        return self is DepKind.TRUE


@dataclass(frozen=True, slots=True)
class Edge:
    """A dependence edge ``src -> dst`` of a given kind."""

    src: int
    dst: int
    kind: DepKind


class CodeDAG:
    """Dependence DAG over the instructions of one basic block.

    The node order (0..n-1) is the original program order and is
    guaranteed topological.  Node weights default to each instruction's
    static latency and are overwritten by the scheduling policy
    (fixed optimistic latency for the traditional scheduler, computed
    load-level-parallelism weights for the balanced scheduler).
    """

    def __init__(self, instructions: Sequence[Instruction]):
        self.instructions: List[Instruction] = list(instructions)
        n = len(self.instructions)
        self._succ: List[Dict[int, DepKind]] = [dict() for _ in range(n)]
        self._pred: List[Dict[int, DepKind]] = [dict() for _ in range(n)]
        self.weights: List[Weight] = [inst.latency for inst in self.instructions]
        #: Per-edge latency overrides ("Edges can also be labeled,
        #: allowing latencies to differ among successor nodes of a
        #: given node, as on the Intel i860" -- paper footnote 1).
        self._edge_latency: Dict[Tuple[int, int], Weight] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, src: int, dst: int, kind: DepKind) -> None:
        """Add ``src -> dst``; a TRUE edge dominates other kinds."""
        if src == dst:
            raise ValueError(f"self edge on node {src}")
        if not (0 <= src < len(self) and 0 <= dst < len(self)):
            raise IndexError(f"edge ({src}, {dst}) outside DAG of size {len(self)}")
        if src > dst:
            raise ValueError(
                f"edge ({src}, {dst}) points backwards in program order"
            )
        existing = self._succ[src].get(dst)
        if existing is not None and existing.carries_latency:
            return
        self._succ[src][dst] = kind
        self._pred[dst][src] = kind

    # ------------------------------------------------------------------
    # Shape queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def nodes(self) -> range:
        return range(len(self))

    def successors(self, node: int) -> List[int]:
        return sorted(self._succ[node])

    def predecessors(self, node: int) -> List[int]:
        return sorted(self._pred[node])

    def successor_items(self, node: int) -> List[Tuple[int, DepKind]]:
        return sorted(self._succ[node].items())

    def predecessor_items(self, node: int) -> List[Tuple[int, DepKind]]:
        return sorted(self._pred[node].items())

    def edge_kind(self, src: int, dst: int) -> Optional[DepKind]:
        return self._succ[src].get(dst)

    def edges(self) -> List[Edge]:
        return [
            Edge(src, dst, kind)
            for src in self.nodes()
            for dst, kind in sorted(self._succ[src].items())
        ]

    def edge_count(self) -> int:
        return sum(len(s) for s in self._succ)

    def roots(self) -> List[int]:
        """Nodes with no predecessors."""
        return [v for v in self.nodes() if not self._pred[v]]

    def leaves(self) -> List[int]:
        """Nodes with no successors."""
        return [v for v in self.nodes() if not self._succ[v]]

    # ------------------------------------------------------------------
    # Instruction-level queries
    # ------------------------------------------------------------------
    def is_load(self, node: int) -> bool:
        return self.instructions[node].is_load

    def load_nodes(self) -> List[int]:
        return [v for v in self.nodes() if self.is_load(v)]

    def issue_slots(self, node: int) -> int:
        return self.instructions[node].issue_slots

    # ------------------------------------------------------------------
    # Weights
    # ------------------------------------------------------------------
    def set_weight(self, node: int, weight: Weight) -> None:
        self.weights[node] = weight

    def set_load_weights(self, weights: Dict[int, Weight]) -> None:
        """Install a weight per load node (other nodes untouched)."""
        for node, weight in weights.items():
            if not self.is_load(node):
                raise ValueError(f"node {node} is not a load")
            self.weights[node] = weight

    def set_edge_latency(self, src: int, dst: int, latency: Weight) -> None:
        """Label one edge with its own latency (i860-style machines,
        paper footnote 1).  Overrides the node-weight rule below."""
        if self._succ[src].get(dst) is None:
            raise KeyError(f"no edge ({src}, {dst})")
        self._edge_latency[(src, dst)] = latency

    def edge_latency(self, src: int, dst: int) -> Weight:
        """Scheduling latency of an edge: an explicit per-edge label if
        present, else the producer weight on TRUE edges, else one issue
        slot (ordering only)."""
        kind = self._succ[src].get(dst)
        if kind is None:
            raise KeyError(f"no edge ({src}, {dst})")
        override = self._edge_latency.get((src, dst))
        if override is not None:
            return override
        return self.weights[src] if kind.carries_latency else 1

    # ------------------------------------------------------------------
    # Structure helpers used by the weight computation
    # ------------------------------------------------------------------
    def undirected_neighbor_masks(self) -> List[int]:
        """Per-node bitmask of DAG neighbours, ignoring direction."""
        masks = [0] * len(self)
        for src in self.nodes():
            for dst in self._succ[src]:
                masks[src] |= 1 << dst
                masks[dst] |= 1 << src
        return masks

    def check_acyclic(self) -> None:
        """Edges always point forward, so acyclicity holds by construction;
        assert it anyway (cheap, used by tests)."""
        for src in self.nodes():
            for dst in self._succ[src]:
                if dst <= src:
                    raise AssertionError("backward edge in CodeDAG")

    def to_dot(self, name: str = "dag") -> str:
        """Graphviz rendering (debugging / documentation aid)."""
        lines = [f"digraph {name} {{"]
        for v in self.nodes():
            inst = self.instructions[v]
            shape = "box" if inst.is_load else "ellipse"
            lines.append(
                f'  n{v} [label="{v}: {inst.opcode.value}\\nw={self.weights[v]}",'
                f" shape={shape}];"
            )
        for edge in self.edges():
            style = "solid" if edge.kind.carries_latency else "dashed"
            lines.append(
                f"  n{edge.src} -> n{edge.dst}"
                f' [style={style}, label="{edge.kind.value}"];'
            )
        lines.append("}")
        return "\n".join(lines)
