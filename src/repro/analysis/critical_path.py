"""Critical-path metrics over a weighted code DAG.

Used by the scheduler's priority function (priority = weight + max
successor priority, Section 4.1), by diagnostics and by the workload
generator (to target specific instruction-level-parallelism regimes).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Union

from .dag import CodeDAG

Weight = Union[int, Fraction]


def priorities(dag: CodeDAG) -> List[Weight]:
    """Scheduling priority per node.

    "The priority of an instruction is equal to its weight plus the
    maximum priority among its successors" (Section 4.1).  A leaf's
    priority is its own weight.  This equals the weighted longest path
    from the node to any leaf, the classic critical-path heuristic.
    """
    n = len(dag)
    out: List[Weight] = [0] * n
    for v in reversed(range(n)):
        best: Weight = 0
        for s in dag.successors(v):
            if out[s] > best:
                best = out[s]
        out[v] = dag.weights[v] + best
    return out


def priorities_edge_labelled(dag: CodeDAG) -> List[Weight]:
    """Priorities under per-edge latency labels (paper footnote 1).

    Weighted longest path to a leaf where each hop costs that edge's
    own latency (``CodeDAG.set_edge_latency``) instead of the node
    weight; equals :func:`priorities` when no labels are installed and
    every non-TRUE edge costs one slot.
    """
    n = len(dag)
    out: List[Weight] = [0] * n
    for v in reversed(range(n)):
        best: Weight = dag.weights[v]
        for s in dag.successors(v):
            candidate = dag.edge_latency(v, s) + out[s]
            if candidate > best:
                best = candidate
        out[v] = best
    return out


def critical_path_length(dag: CodeDAG) -> Weight:
    """Weighted length of the longest root-to-leaf path."""
    if len(dag) == 0:
        return 0
    return max(priorities(dag))


def height_in_nodes(dag: CodeDAG) -> int:
    """Longest path length counted in nodes (unweighted)."""
    n = len(dag)
    if n == 0:
        return 0
    depth = [1] * n
    for v in reversed(range(n)):
        for s in dag.successors(v):
            depth[v] = max(depth[v], depth[s] + 1)
    return max(depth)


def parallelism_estimate(dag: CodeDAG) -> float:
    """Average instruction-level parallelism: n / height.

    A bushy DAG (high ILP) scores high; a dependence chain scores 1.
    The workload generator uses this to label kernels by regime.
    """
    n = len(dag)
    if n == 0:
        return 0.0
    return n / height_in_nodes(dag)
